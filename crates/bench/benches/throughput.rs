//! E11 — wall-clock throughput of the real lock implementations under
//! mixed read/write workloads, versus the baselines and the `std` lock.
//!
//! Absolute numbers are machine-dependent (and this CI host has one core);
//! the comparison of *shapes* across read ratios is what EXPERIMENTS.md
//! records.
//!
//! Runs as a plain `harness = false` benchmark binary (the workspace
//! carries no external bench dependency): each configuration is timed over
//! a fixed number of whole-workload repetitions after one warm-up run.

use rmr_baselines::{
    CentralizedRwLock, DistributedFlagRwLock, StdRwLock, TicketRwLock, TournamentRwLock,
};
use rmr_bench::workloads::{run_mixed, Workload};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::raw::RawRwLock;
use std::sync::Arc;
use std::time::Instant;

const THREADS: usize = 4;
const OPS: usize = 300;
const REPS: u32 = 5;

fn bench_lock<L: RawRwLock + 'static>(name: &str, make: impl Fn() -> L) {
    for read_pct in [50u32, 90, 99] {
        let workload = Workload {
            threads: THREADS,
            read_ratio: f64::from(read_pct) / 100.0,
            ops_per_thread: OPS,
        };
        // Warm-up (also validates the lock: run_mixed panics on lost updates).
        run_mixed(Arc::new(make()), workload, 0xBEEF);
        let t0 = Instant::now();
        let mut ops = 0u64;
        for _ in 0..REPS {
            ops += run_mixed(Arc::new(make()), workload, 0xBEEF).ops;
        }
        let elapsed = t0.elapsed();
        println!(
            "mixed_throughput/{name}/read{read_pct}: {:>12.0} ops/s  ({ops} ops in {elapsed:?})",
            ops as f64 / elapsed.as_secs_f64(),
        );
    }
}

fn main() {
    println!("# E11 — mixed-workload throughput ({THREADS} threads x {OPS} ops, {REPS} reps)\n");
    bench_lock("fig3-starvation-free", || MwmrStarvationFree::new(THREADS));
    bench_lock("fig3-reader-priority", || MwmrReaderPriority::new(THREADS));
    bench_lock("fig4-writer-priority", || MwmrWriterPriority::new(THREADS));
    bench_lock("centralized-1971", || CentralizedRwLock::new(THREADS));
    bench_lock("ticket-rw", || TicketRwLock::new(THREADS));
    bench_lock("distributed-flag", || DistributedFlagRwLock::new(THREADS));
    bench_lock("tournament-tree", || TournamentRwLock::new(THREADS));
    bench_lock("std-rwlock", || StdRwLock::new(THREADS));
}
