//! E11 — wall-clock throughput of the real lock implementations under
//! mixed read/write workloads, versus the baselines and production locks.
//!
//! Absolute numbers are machine-dependent (and this CI host has one core);
//! the comparison of *shapes* across read ratios is what EXPERIMENTS.md
//! records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmr_baselines::{
    CentralizedRwLock, DistributedFlagRwLock, ParkingLotRwLock, StdRwLock, TicketRwLock,
    TournamentRwLock,
};
use rmr_bench::workloads::{run_mixed, Workload};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::raw::RawRwLock;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 4;
const OPS: usize = 300;

fn bench_lock<L: RawRwLock + 'static>(
    c: &mut Criterion,
    group: &str,
    name: &str,
    make: impl Fn() -> L,
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for read_pct in [50u32, 90, 99] {
        g.bench_with_input(BenchmarkId::new(name, read_pct), &read_pct, |b, &pct| {
            b.iter(|| {
                let lock = Arc::new(make());
                run_mixed(
                    lock,
                    Workload {
                        threads: THREADS,
                        read_ratio: f64::from(pct) / 100.0,
                        ops_per_thread: OPS,
                    },
                    0xBEEF,
                )
            });
        });
    }
    g.finish();
}

fn paper_locks(c: &mut Criterion) {
    bench_lock(c, "mixed_throughput", "fig3-starvation-free", || {
        MwmrStarvationFree::new(THREADS)
    });
    bench_lock(c, "mixed_throughput", "fig3-reader-priority", || {
        MwmrReaderPriority::new(THREADS)
    });
    bench_lock(c, "mixed_throughput", "fig4-writer-priority", || {
        MwmrWriterPriority::new(THREADS)
    });
}

fn baseline_locks(c: &mut Criterion) {
    bench_lock(c, "mixed_throughput", "centralized-1971", || CentralizedRwLock::new(THREADS));
    bench_lock(c, "mixed_throughput", "ticket-rw", || TicketRwLock::new(THREADS));
    bench_lock(c, "mixed_throughput", "distributed-flag", || {
        DistributedFlagRwLock::new(THREADS)
    });
    bench_lock(c, "mixed_throughput", "tournament-tree", || TournamentRwLock::new(THREADS));
    bench_lock(c, "mixed_throughput", "std-rwlock", || StdRwLock::new(THREADS));
    bench_lock(c, "mixed_throughput", "parking-lot", || ParkingLotRwLock::new(THREADS));
}

criterion_group!(benches, paper_locks, baseline_locks);
criterion_main!(benches);
