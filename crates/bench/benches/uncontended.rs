//! E11 (latency slice) — uncontended single-thread acquire/release cost of
//! every lock. This isolates the per-operation constant the RMR bound is
//! about, with no contention noise.

use criterion::{criterion_group, criterion_main, Criterion};
use rmr_baselines::{
    CentralizedRwLock, DistributedFlagRwLock, ParkingLotRwLock, StdRwLock, TicketRwLock,
    TournamentRwLock,
};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use rmr_core::swmr::{SwmrReaderPriority, SwmrWriterPriority};
use std::time::Duration;

fn bench_pair<L: RawRwLock>(c: &mut Criterion, name: &str, lock: &L) {
    let pid = Pid::from_index(0);
    let mut g = c.benchmark_group("uncontended");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(600));
    g.bench_function(format!("{name}/read"), |b| {
        b.iter(|| {
            let t = lock.read_lock(pid);
            lock.read_unlock(pid, t);
        });
    });
    g.bench_function(format!("{name}/write"), |b| {
        b.iter(|| {
            let t = lock.write_lock(pid);
            lock.write_unlock(pid, t);
        });
    });
    g.finish();
}

fn paper_locks(c: &mut Criterion) {
    bench_pair(c, "fig3-starvation-free", &MwmrStarvationFree::new(4));
    bench_pair(c, "fig3-reader-priority", &MwmrReaderPriority::new(4));
    bench_pair(c, "fig4-writer-priority", &MwmrWriterPriority::new(4));

    // The SWMR building blocks, via their own APIs.
    let mut g = c.benchmark_group("uncontended");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(600));
    let f1 = SwmrWriterPriority::new();
    g.bench_function("fig1-swmr/read", |b| {
        b.iter(|| {
            let t = f1.read_lock();
            f1.read_unlock(t);
        });
    });
    g.bench_function("fig1-swmr/write", |b| {
        b.iter(|| {
            let t = f1.write_lock();
            f1.write_unlock(t);
        });
    });
    let f2 = SwmrReaderPriority::new();
    let pid = Pid::from_index(0);
    g.bench_function("fig2-swmr/read", |b| {
        b.iter(|| {
            let t = f2.read_lock(pid);
            f2.read_unlock(pid, t);
        });
    });
    g.bench_function("fig2-swmr/write", |b| {
        b.iter(|| {
            let t = f2.write_lock(pid);
            f2.write_unlock(pid, t);
        });
    });
    g.finish();
}

fn baseline_locks(c: &mut Criterion) {
    bench_pair(c, "centralized-1971", &CentralizedRwLock::new(4));
    bench_pair(c, "ticket-rw", &TicketRwLock::new(4));
    bench_pair(c, "distributed-flag", &DistributedFlagRwLock::new(4));
    bench_pair(c, "tournament-tree-n4", &TournamentRwLock::new(4));
    bench_pair(c, "tournament-tree-n64", &TournamentRwLock::new(64));
    bench_pair(c, "std-rwlock", &StdRwLock::new(4));
    bench_pair(c, "parking-lot", &ParkingLotRwLock::new(4));
}

criterion_group!(benches, paper_locks, baseline_locks);
criterion_main!(benches);
