//! E11 (latency slice) — uncontended single-thread acquire/release cost of
//! every lock. This isolates the per-operation constant the RMR bound is
//! about, with no contention noise.
//!
//! Plain `harness = false` benchmark binary: per-op time is measured over a
//! large fixed iteration count after a warm-up batch.

use rmr_baselines::{
    CentralizedRwLock, DistributedFlagRwLock, StdRwLock, TicketRwLock, TournamentRwLock,
};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use rmr_core::swmr::{SwmrReaderPriority, SwmrWriterPriority};
use std::time::Instant;

const WARMUP: u32 = 2_000;
const ITERS: u32 = 50_000;

fn time_op(name: &str, mut op: impl FnMut()) {
    for _ in 0..WARMUP {
        op();
    }
    let t0 = Instant::now();
    for _ in 0..ITERS {
        op();
    }
    let per_op = t0.elapsed() / ITERS;
    println!("uncontended/{name}: {per_op:?}/op");
}

fn bench_pair<L: RawRwLock>(name: &str, lock: &L) {
    let pid = Pid::from_index(0);
    time_op(&format!("{name}/read"), || {
        let t = lock.read_lock(pid);
        lock.read_unlock(pid, t);
    });
    time_op(&format!("{name}/write"), || {
        let t = lock.write_lock(pid);
        lock.write_unlock(pid, t);
    });
}

fn main() {
    println!("# E11 (latency slice) — uncontended acquire/release ({ITERS} iters)\n");
    bench_pair("fig3-starvation-free", &MwmrStarvationFree::new(4));
    bench_pair("fig3-reader-priority", &MwmrReaderPriority::new(4));
    bench_pair("fig4-writer-priority", &MwmrWriterPriority::new(4));

    // The SWMR building blocks, via their own pid-free APIs.
    let f1 = SwmrWriterPriority::new();
    time_op("fig1-swmr/read", || {
        let t = f1.read_lock();
        f1.read_unlock(t);
    });
    time_op("fig1-swmr/write", || {
        let t = f1.write_lock();
        f1.write_unlock(t);
    });
    let f2 = SwmrReaderPriority::new();
    let pid = Pid::from_index(0);
    time_op("fig2-swmr/read", || {
        let t = f2.read_lock(pid);
        f2.read_unlock(pid, t);
    });
    time_op("fig2-swmr/write", || {
        let t = f2.write_lock(pid);
        f2.write_unlock(pid, t);
    });

    bench_pair("centralized-1971", &CentralizedRwLock::new(4));
    bench_pair("ticket-rw", &TicketRwLock::new(4));
    bench_pair("distributed-flag", &DistributedFlagRwLock::new(4));
    bench_pair("tournament-tree-n4", &TournamentRwLock::new(4));
    bench_pair("tournament-tree-n64", &TournamentRwLock::new(64));
    bench_pair("std-rwlock", &StdRwLock::new(4));
}
