//! Cross-validation of the `Counting` memory backend against `rmr-sim`'s
//! cost models, plus the zero-cost guard for `Native`.
//!
//! The `Counting` backend (rmr-mutex `mem` module) claims to replicate the
//! simulator's CC and DSM accounting on the real implementations. These
//! tests pin that claim where it is exactly checkable: on a deterministic
//! single-threaded schedule, the same operation sequence must produce
//! *identical* per-operation RMR verdicts from both accountants.

use rmr_core::swmr::SwmrWriterPriority;
use rmr_mutex::mem::{
    self, Backend, Counting, Native, Ordering, SeqCstNative, SharedBool, SharedWord,
};
use rmr_sim::cost::{AccessKind, CcModel, CostModel, DsmModel};
use rmr_sim::mem::VarId;
use rmr_sim::rng::SplitMix64;

/// One shared-memory operation of the generated schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    Load,
    Store,
    Swap,
    FetchAdd,
    FetchSub,
    Cas,
}

impl Op {
    fn from_rng(r: u64) -> Self {
        match r % 6 {
            0 => Op::Load,
            1 => Op::Store,
            2 => Op::Swap,
            3 => Op::FetchAdd,
            4 => Op::FetchSub,
            _ => Op::Cas,
        }
    }

    fn kind(self) -> AccessKind {
        match self {
            Op::Load => AccessKind::Read,
            _ => AccessKind::Update,
        }
    }

    /// A legal ordering for this operation, drawn from the seeded stream —
    /// reads get read orderings, writes get write orderings, RMWs get the
    /// full menu. The accounting claims to be ordering-blind (DESIGN.md
    /// §13); feeding every op a varying ordering is what pins that.
    fn ordering_from_rng(self, r: u64) -> Ordering {
        match self {
            Op::Load => [Ordering::Relaxed, Ordering::Acquire, Ordering::SeqCst][r as usize % 3],
            Op::Store => [Ordering::Relaxed, Ordering::Release, Ordering::SeqCst][r as usize % 3],
            _ => [
                Ordering::Relaxed,
                Ordering::Acquire,
                Ordering::Release,
                Ordering::AcqRel,
                Ordering::SeqCst,
            ][r as usize % 5],
        }
    }
}

/// Applies `op` to a Counting word under `order` and returns `(cc, dsm)`
/// charged for it.
fn charged(word: &<Counting as Backend>::Word, op: Op, order: Ordering) -> (u64, u64) {
    let before = mem::thread_tally();
    match op {
        Op::Load => {
            let _ = word.load(order);
        }
        Op::Store => word.store(7, order),
        Op::Swap => {
            let _ = word.swap(9, order);
        }
        Op::FetchAdd => {
            let _ = word.fetch_add(1, order);
        }
        Op::FetchSub => {
            let _ = word.fetch_sub(1, order);
        }
        Op::Cas => {
            // Mixed success/failure; a failed CAS must charge identically.
            // Failure ordering must not be Release/AcqRel (std contract).
            let _ = word.compare_exchange(9, 3, order, Ordering::Relaxed);
        }
    }
    let after = mem::thread_tally();
    (after.cc - before.cc, after.dsm - before.dsm)
}

/// The core cross-validation: 4 processes, 6 variables, 2000 pseudo-random
/// operations. Every operation's CC and DSM verdict from the Counting
/// backend must equal `CcModel` / `DsmModel::all_at(0)` fed the same
/// schedule.
#[test]
fn counting_matches_sim_cost_models_on_deterministic_schedule() {
    const PROCS: usize = 4;
    const VARS: usize = 6;
    const STEPS: usize = 2000;

    let words: Vec<<Counting as Backend>::Word> = (0..VARS).map(|_| SharedWord::new(0)).collect();
    let mut cc = CcModel::new(PROCS, VARS);
    let mut dsm = DsmModel::all_at(0, VARS);
    let mut rng = SplitMix64::new(0xC0FFEE);

    for step in 0..STEPS {
        let pid = (rng.next_u64() % PROCS as u64) as usize;
        let var = (rng.next_u64() % VARS as u64) as usize;
        let op = Op::from_rng(rng.next_u64());
        let order = op.ordering_from_rng(rng.next_u64());

        mem::set_thread_slot(pid);
        let (got_cc, got_dsm) = charged(&words[var], op, order);
        let want_cc = u64::from(cc.account(pid, VarId::from_index(var), op.kind()));
        let want_dsm = u64::from(dsm.account(pid, VarId::from_index(var), op.kind()));

        assert_eq!(
            got_cc, want_cc,
            "CC divergence at step {step}: pid {pid}, var {var}, {op:?} ({order:?})"
        );
        assert_eq!(
            got_dsm, want_dsm,
            "DSM divergence at step {step}: pid {pid}, var {var}, {op:?} ({order:?})"
        );
    }
}

/// The ordering-blindness property (DESIGN.md §13), pinned directly: the
/// *same* seeded operation schedule replayed once with every op `SeqCst`
/// and once with seeded pseudo-random per-op orderings must produce
/// bit-identical tallies. The relaxation sweep must never change what
/// E13/E17 count — only what the hardware is allowed to reorder.
#[test]
fn counting_tallies_are_ordering_independent() {
    const PROCS: usize = 4;
    const VARS: usize = 5;
    const STEPS: usize = 1500;
    const SEED: u64 = 0x0D15_EA5E;

    let run = |randomize_orderings: bool| -> (u64, u64, u64) {
        let words: Vec<<Counting as Backend>::Word> =
            (0..VARS).map(|_| SharedWord::new(0)).collect();
        let mut rng = SplitMix64::new(SEED);
        let mut totals = (0u64, 0u64, 0u64);
        for _ in 0..STEPS {
            let pid = (rng.next_u64() % PROCS as u64) as usize;
            let var = (rng.next_u64() % VARS as u64) as usize;
            let op = Op::from_rng(rng.next_u64());
            // Always consume the ordering draw so both replays see the
            // identical pid/var/op stream.
            let draw = rng.next_u64();
            let order =
                if randomize_orderings { op.ordering_from_rng(draw) } else { Ordering::SeqCst };
            mem::set_thread_slot(pid);
            let before = mem::thread_tally();
            let (cc, dsm) = charged(&words[var], op, order);
            let ops = mem::thread_tally().ops - before.ops;
            totals = (totals.0 + cc, totals.1 + dsm, totals.2 + ops);
        }
        totals
    };

    let seqcst = run(false);
    let mixed = run(true);
    assert_eq!(seqcst, mixed, "tallies depend on the ordering annotations");
}

/// Same cross-validation for the boolean variables (loads/stores/swaps/CAS
/// on flags are most of what the locks' gates and permits do).
#[test]
fn counting_bools_match_cc_model() {
    const PROCS: usize = 3;
    const VARS: usize = 4;

    let flags: Vec<<Counting as Backend>::Bool> =
        (0..VARS).map(|_| SharedBool::new(false)).collect();
    let mut cc = CcModel::new(PROCS, VARS);
    let mut rng = SplitMix64::new(42);

    for step in 0..1000 {
        let pid = (rng.next_u64() % PROCS as u64) as usize;
        let var = (rng.next_u64() % VARS as u64) as usize;
        let update = rng.next_u64().is_multiple_of(2);

        mem::set_thread_slot(pid);
        let before = mem::thread_tally();
        let kind = if update {
            match rng.next_u64() % 3 {
                0 => flags[var].store(true, Ordering::Release),
                1 => {
                    let _ = flags[var].swap(false, Ordering::AcqRel);
                }
                _ => {
                    let _ = flags[var].compare_exchange(
                        false,
                        true,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                }
            }
            AccessKind::Update
        } else {
            let _ = flags[var].load(Ordering::Acquire);
            AccessKind::Read
        };
        let got = mem::thread_tally().cc - before.cc;
        let want = u64::from(cc.account(pid, VarId::from_index(var), kind));
        assert_eq!(got, want, "divergence at step {step}: pid {pid}, var {var}");
    }
}

/// Zero-cost guard, part 1: the Native wrappers (and the SeqCst policy
/// twins) are layout-transparent over the std atomics they wrap.
#[test]
fn native_wrappers_are_layout_transparent() {
    use std::mem::{align_of, size_of};
    use std::sync::atomic::{AtomicBool, AtomicU64};
    assert_eq!(size_of::<<Native as Backend>::Bool>(), size_of::<AtomicBool>());
    assert_eq!(align_of::<<Native as Backend>::Bool>(), align_of::<AtomicBool>());
    assert_eq!(size_of::<<Native as Backend>::Word>(), size_of::<AtomicU64>());
    assert_eq!(align_of::<<Native as Backend>::Word>(), align_of::<AtomicU64>());
    assert_eq!(size_of::<<SeqCstNative as Backend>::Bool>(), size_of::<AtomicBool>());
    assert_eq!(align_of::<<SeqCstNative as Backend>::Bool>(), align_of::<AtomicBool>());
    assert_eq!(size_of::<<SeqCstNative as Backend>::Word>(), size_of::<AtomicU64>());
    assert_eq!(align_of::<<SeqCstNative as Backend>::Word>(), align_of::<AtomicU64>());
}

/// Zero-cost guard, part 1b: every ordering-taking method of the Native
/// vocabulary accepts every legal ordering and computes the right value —
/// the wrapper forwards the annotation, it must never reinterpret the
/// operation. (Misuse like a `Relaxed` fence panics in std; the sweep
/// never emits one, and `Backend::fence` documents the same contract.)
#[test]
fn native_methods_forward_every_legal_ordering() {
    let b = <Native as Backend>::Bool::new(false);
    for order in [Ordering::Relaxed, Ordering::Acquire, Ordering::SeqCst] {
        assert!(!b.load(order) || b.load(order));
    }
    for order in [Ordering::Relaxed, Ordering::Release, Ordering::SeqCst] {
        b.store(true, order);
    }
    for order in [
        Ordering::Relaxed,
        Ordering::Acquire,
        Ordering::Release,
        Ordering::AcqRel,
        Ordering::SeqCst,
    ] {
        assert!(b.swap(true, order));
        assert_eq!(b.compare_exchange(true, false, order, Ordering::Relaxed), Ok(true));
        assert!(!b.swap(true, order));
    }

    let w = <Native as Backend>::Word::new(0);
    for order in [
        Ordering::Relaxed,
        Ordering::Acquire,
        Ordering::Release,
        Ordering::AcqRel,
        Ordering::SeqCst,
    ] {
        let base = w.load(Ordering::Relaxed);
        assert_eq!(w.fetch_add(3, order), base);
        assert_eq!(w.fetch_sub(1, order), base + 3);
        assert_eq!(w.swap(base, order), base + 2);
        assert_eq!(w.compare_exchange(base, base + 10, order, Ordering::Relaxed), Ok(base));
        w.store(
            base,
            if order == Ordering::Acquire { Ordering::Relaxed } else { Ordering::SeqCst },
        );
        assert_eq!(w.load(Ordering::Acquire), base);
    }
    Native::fence(Ordering::SeqCst);
    Native::fence(Ordering::Release);
    Native::fence(Ordering::Acquire);

    // The policy backend runs the same sequence — annotations ignored,
    // semantics identical.
    let p = <SeqCstNative as Backend>::Word::new(0);
    assert_eq!(p.fetch_add(5, Ordering::Relaxed), 0);
    assert_eq!(p.swap(1, Ordering::Relaxed), 5);
    assert_eq!(p.compare_exchange(1, 2, Ordering::Relaxed, Ordering::Relaxed), Ok(1));
    SeqCstNative::fence(Ordering::Release);
}

/// Zero-cost guard, part 2: a Native-backed lock (the default type — the
/// exact pre-refactor public API) still runs the uncontended fast path.
#[test]
fn native_uncontended_smoke() {
    let lock = SwmrWriterPriority::new(); // default = Native backend
    for _ in 0..1000 {
        let r = lock.read_lock();
        lock.read_unlock(r);
    }
    let w = lock.write_lock();
    lock.write_unlock(w);
}

/// The property the paper's design is *about*, observable on the real
/// implementation: a solo reader's passage performs **zero** CC RMRs once
/// its variables are cached (every re-read is a local cache hit, every
/// update is by the sole holder).
#[test]
fn fig1_solo_reader_steady_state_is_cc_free() {
    mem::set_thread_slot(5);
    let lock = SwmrWriterPriority::new_in(Counting);
    // Warm-up: pay the cold misses once.
    for _ in 0..3 {
        let r = lock.read_lock();
        lock.read_unlock(r);
    }
    for i in 0..10 {
        mem::reset_thread_tally();
        let r = lock.read_lock();
        lock.read_unlock(r);
        let t = mem::thread_tally();
        assert!(t.ops > 0, "passage {i} performed no shared ops");
        assert_eq!(t.cc, 0, "passage {i} of a solo reader paid CC RMRs");
        assert!(t.dsm > 0, "slot 5 is never the DSM home, so DSM must charge");
    }
}

/// The writer side settles to a small constant too (not zero — the writer
/// toggles sides, so it touches both sides' variables), and stays put.
#[test]
fn fig1_solo_writer_steady_state_is_constant() {
    mem::set_thread_slot(9);
    let lock = SwmrWriterPriority::new_in(Counting);
    for _ in 0..4 {
        let w = lock.write_lock();
        lock.write_unlock(w);
    }
    let mut costs = Vec::new();
    for _ in 0..8 {
        mem::reset_thread_tally();
        let w = lock.write_lock();
        lock.write_unlock(w);
        costs.push(mem::thread_tally().cc);
    }
    assert!(costs.iter().all(|&c| c == costs[0]), "unstable steady state: {costs:?}");
    assert!(costs[0] <= 4, "solo writer passage should be near-free: {costs:?}");
}
