//! E13 — RMR measurement on the **real** lock implementations.
//!
//! `rmr-sim` measures the paper's complexity claims on hand re-encoded
//! line-level models (E6–E8). This module measures them on the *shipped*
//! code instead: every lock in `rmr-core`/`rmr-baselines` is generic over
//! the memory backend of `rmr_mutex::mem`, so instantiating it with
//! [`Counting`] runs the identical algorithm with every shared access
//! tallied under the CC cost model (and DSM, reported separately).
//!
//! Methodology: `writers + readers` real threads, each pinned to its own
//! accounting slot (= its lock pid). All threads start together behind a
//! barrier and perform `passages` acquire/release passages each; the
//! per-thread tally is reset before and read after every passage, so each
//! passage's remote-reference count — including all spin traffic — is
//! attributed exactly to it. The table reports the worst and mean passage.
//!
//! Each critical section is held for a *randomized* fraction of a
//! millisecond, scaled with the population (a sleep, so the holder cedes
//! the CPU). This matters doubly on small hosts (CI runs on one core):
//! the hold lets the other `n - 1` threads reach their entry protocols
//! and genuinely queue, and the randomization staggers exits across
//! scheduling rounds so a waiter's polls cannot be coalesced by a fair
//! scheduler — a ticket-RW writer really observes (and pays for) each of
//! the n reader exits that invalidate the grant word it spins on, exactly
//! as it would under true hardware parallelism, while the paper's locks
//! spin on single-writer flags and stay flat.
//!
//! Because threads interleave freely, the cached-copy bookkeeping is a
//! faithful concurrent sample rather than a deterministic replay (see
//! `rmr_mutex::mem`); the per-passage counts for the paper's locks are
//! nonetheless *structurally* bounded — each passage performs a constant
//! number of shared operations and each local spin is re-charged only when
//! its variable is genuinely invalidated — which is exactly the O(1) claim
//! under test.

use crate::tables::RmrRow;
use rmr_baselines::{
    CentralizedRwLock, CourtoisWriterPrefRwLock, DistributedFlagRwLock, TicketRwLock,
    TournamentRwLock,
};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use rmr_core::swmr::{SwmrReaderPriority, SwmrWriterPriority};
use rmr_mutex::mem::{self, Counting};
use rmr_sim::rng::SplitMix64;
use std::sync::{Arc, Barrier};

/// The real implementations the E13 sweep covers, named to match the
/// simulator sweep ([`crate::tables::SimAlgo`]) where both exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealAlgo {
    /// `rmr_core::swmr::SwmrWriterPriority` (Figure 1). Forces `writers = 1`.
    Fig1,
    /// `rmr_core::swmr::SwmrReaderPriority` (Figure 2). Forces `writers = 1`.
    Fig2,
    /// `rmr_core::mwmr::MwmrStarvationFree` (Figure 3 over Figure 1).
    Fig3Sf,
    /// `rmr_core::mwmr::MwmrReaderPriority` (Figure 3 over Figure 2).
    Fig3Rp,
    /// `rmr_core::mwmr::MwmrWriterPriority` (Figure 4).
    Fig4,
    /// `rmr_baselines::CentralizedRwLock` (Courtois et al. 1971, reader pref.).
    Centralized,
    /// `rmr_baselines::CourtoisWriterPrefRwLock` (Courtois et al. 1971, writer pref.).
    CourtoisWp,
    /// `rmr_baselines::TicketRwLock` (task-fair ticket RW).
    TicketRw,
    /// `rmr_baselines::DistributedFlagRwLock` (per-reader flags).
    DistributedFlag,
    /// `rmr_baselines::TournamentRwLock` (counting tree, Θ(log n) readers).
    Tournament,
}

impl RealAlgo {
    /// Stable display name (matching the simulator sweep where applicable).
    pub fn name(self) -> &'static str {
        match self {
            RealAlgo::Fig1 => "fig1-swmr-wp",
            RealAlgo::Fig2 => "fig2-swmr-rp",
            RealAlgo::Fig3Sf => "fig3-mwmr-sf",
            RealAlgo::Fig3Rp => "fig3-mwmr-rp",
            RealAlgo::Fig4 => "fig4-mwmr-wp",
            RealAlgo::Centralized => "centralized-1971",
            RealAlgo::CourtoisWp => "courtois-wp-1971",
            RealAlgo::TicketRw => "ticket-rw",
            RealAlgo::DistributedFlag => "distributed-flag",
            RealAlgo::Tournament => "tournament-tree",
        }
    }

    /// The paper's five locks.
    pub const PAPER: [RealAlgo; 5] =
        [RealAlgo::Fig1, RealAlgo::Fig2, RealAlgo::Fig3Sf, RealAlgo::Fig3Rp, RealAlgo::Fig4];

    /// The baselines.
    pub const BASELINES: [RealAlgo; 5] = [
        RealAlgo::Centralized,
        RealAlgo::CourtoisWp,
        RealAlgo::TicketRw,
        RealAlgo::DistributedFlag,
        RealAlgo::Tournament,
    ];

    /// Whether the algorithm admits only a single concurrent writer.
    pub fn single_writer(self) -> bool {
        matches!(self, RealAlgo::Fig1 | RealAlgo::Fig2)
    }
}

/// What one thread observed over its passages.
struct ThreadStats {
    role_writer: bool,
    max_cc: u64,
    sum_cc: u64,
    passages: u64,
}

fn run_threads<L: RawRwLock + 'static>(
    lock: L,
    writers: usize,
    readers: usize,
    passages: usize,
) -> Vec<ThreadStats> {
    let total = writers + readers;
    assert!(total <= mem::MAX_SLOTS, "population {total} exceeds the Counting slot limit");
    let lock = Arc::new(lock);
    let barrier = Arc::new(Barrier::new(total));
    let mut handles = Vec::with_capacity(total);
    for i in 0..total {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        let role_writer = i < writers;
        handles.push(std::thread::spawn(move || {
            mem::set_thread_slot(i);
            let pid = Pid::from_index(i);
            barrier.wait();
            // Hold the critical section for a randomized, population-
            // scaled duration so queues form and exits stagger (see
            // module docs). A sleep, not a spin: the holder must cede
            // the CPU to the pollers.
            let mut rng = SplitMix64::new(0xE13 ^ (i as u64).wrapping_mul(0x9e37_79b9));
            let spread_us = 100 * total as u64;
            let mut critical_section = || {
                let hold = 200 + rng.next_u64() % spread_us;
                std::thread::sleep(std::time::Duration::from_micros(hold));
            };
            let mut st = ThreadStats { role_writer, max_cc: 0, sum_cc: 0, passages: 0 };
            for _ in 0..passages {
                mem::reset_thread_tally();
                if role_writer {
                    let t = lock.write_lock(pid);
                    critical_section();
                    lock.write_unlock(pid, t);
                } else {
                    let t = lock.read_lock(pid);
                    critical_section();
                    lock.read_unlock(pid, t);
                }
                let tally = mem::thread_tally();
                st.max_cc = st.max_cc.max(tally.cc);
                st.sum_cc += tally.cc;
                st.passages += 1;
                // Let waiters drain before our next attempt so one fast
                // thread cannot monopolize the sweep.
                std::thread::yield_now();
            }
            st
        }));
    }
    handles.into_iter().map(|h| h.join().expect("measurement thread panicked")).collect()
}

/// Measures one algorithm/population point on the real implementation
/// under the CC [`Counting`] backend. `writers` is forced to 1 for the
/// single-writer algorithms.
pub fn real_rmr_row(algo: RealAlgo, writers: usize, readers: usize, passages: usize) -> RmrRow {
    let writers = if algo.single_writer() { 1 } else { writers };
    let n = writers + readers;
    let stats = match algo {
        RealAlgo::Fig1 => run_threads(SwmrWriterPriority::new_in(Counting), 1, readers, passages),
        RealAlgo::Fig2 => run_threads(SwmrReaderPriority::new_in(Counting), 1, readers, passages),
        RealAlgo::Fig3Sf => {
            run_threads(MwmrStarvationFree::new_in(n, Counting), writers, readers, passages)
        }
        RealAlgo::Fig3Rp => {
            run_threads(MwmrReaderPriority::new_in(n, Counting), writers, readers, passages)
        }
        RealAlgo::Fig4 => {
            run_threads(MwmrWriterPriority::new_in(n, Counting), writers, readers, passages)
        }
        RealAlgo::Centralized => {
            run_threads(CentralizedRwLock::new_in(n, Counting), writers, readers, passages)
        }
        RealAlgo::CourtoisWp => {
            run_threads(CourtoisWriterPrefRwLock::new_in(n, Counting), writers, readers, passages)
        }
        RealAlgo::TicketRw => {
            run_threads(TicketRwLock::new_in(n, Counting), writers, readers, passages)
        }
        RealAlgo::DistributedFlag => {
            run_threads(DistributedFlagRwLock::new_in(n, Counting), writers, readers, passages)
        }
        RealAlgo::Tournament => {
            run_threads(TournamentRwLock::new_in(n, Counting), writers, readers, passages)
        }
    };

    let mut max_rmr = 0u64;
    let mut max_reader = 0u64;
    let mut max_writer = 0u64;
    let mut sum = 0u64;
    let mut count = 0u64;
    for st in &stats {
        max_rmr = max_rmr.max(st.max_cc);
        if st.role_writer {
            max_writer = max_writer.max(st.max_cc);
        } else {
            max_reader = max_reader.max(st.max_cc);
        }
        sum += st.sum_cc;
        count += st.passages;
    }
    RmrRow {
        algo: algo.name().to_string(),
        model: "cc".into(),
        writers,
        readers,
        max_rmr,
        mean_rmr: sum as f64 / count.max(1) as f64,
        max_reader_rmr: max_reader,
        max_writer_rmr: max_writer,
        attempts: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_real_row_is_small_and_complete() {
        let row = real_rmr_row(RealAlgo::Fig1, 1, 3, 4);
        assert_eq!(row.writers, 1);
        assert_eq!(row.attempts, 16, "4 threads x 4 passages");
        assert!(row.max_rmr > 0, "uncounted passages: {row:?}");
        assert!(row.max_rmr <= 40, "fig1 passage should be O(1): {row:?}");
    }

    #[test]
    fn all_algos_measure_without_deadlock() {
        for algo in RealAlgo::PAPER.iter().chain(RealAlgo::BASELINES.iter()) {
            let row = real_rmr_row(*algo, 1, 2, 2);
            assert!(row.attempts > 0, "{row:?}");
        }
    }
}
