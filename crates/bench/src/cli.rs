//! Shared CLI parsing and table emission for the experiment binaries.
//!
//! Every `rmr-bench` binary used to re-implement `--json` parsing and its
//! own markdown/JSON printing; this module is the single copy. A binary
//! does:
//!
//! ```no_run
//! use rmr_bench::cli::{BenchArgs, Table};
//!
//! let args = BenchArgs::parse("my_table", "what this binary measures");
//! let mut t = Table::new(&[("algorithm", "algo"), ("max RMR", "max_rmr")]);
//! t.row(vec!["fig1-swmr-wp".into(), 4.to_string()]);
//! print!("{}", t.emit(args.json));
//! ```

use std::fmt::Write as _;

/// Arguments shared by every experiment binary.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchArgs {
    /// Emit machine-readable JSON instead of markdown.
    pub json: bool,
    /// Run a reduced sweep (small populations / iteration counts) — used
    /// by CI to smoke-run the binaries per PR.
    pub quick: bool,
}

impl BenchArgs {
    /// Parses `std::env::args()`, accepting `--json`, `--quick` and
    /// `--help`. Unknown arguments abort with a usage message (exit 2);
    /// `--help` prints it and exits 0.
    pub fn parse(bin: &str, about: &str) -> Self {
        let mut args = BenchArgs::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--json" => args.json = true,
                "--quick" => args.quick = true,
                "--help" | "-h" => {
                    println!("{}", usage(bin, about));
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument `{other}`\n\n{}", usage(bin, about));
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

fn usage(bin: &str, about: &str) -> String {
    format!(
        "{about}\n\nUsage: cargo run --release -p rmr-bench --bin {bin} [-- OPTIONS]\n\n\
         Options:\n  \
         --json   emit machine-readable JSON instead of markdown\n  \
         --quick  reduced sweep (CI smoke mode)\n  \
         --help   print this message"
    )
}

/// A simple two-format table: GitHub-flavored markdown for humans, an
/// array of JSON objects for tooling. Cells that parse as numbers are
/// emitted unquoted in JSON; everything else is escaped and quoted.
#[derive(Debug, Clone)]
pub struct Table {
    /// `(display header, json key)` per column.
    columns: Vec<(String, String)>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from `(display header, json key)` column pairs.
    pub fn new(columns: &[(&str, &str)]) -> Self {
        Self {
            columns: columns.iter().map(|(h, k)| (h.to_string(), k.to_string())).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must have exactly one cell per column.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width != column count");
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored markdown table (with trailing newline).
    pub fn markdown(&self) -> String {
        let mut out = String::from("|");
        for (h, _) in &self.columns {
            let _ = write!(out, " {h} |");
        }
        out.push('\n');
        out.push('|');
        out.push_str(&"---|".repeat(self.columns.len()));
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                let _ = write!(out, " {cell} |");
            }
            out.push('\n');
        }
        out
    }

    /// Renders as a JSON array of objects keyed by the columns' json keys
    /// (with trailing newline).
    pub fn json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for (j, ((_, key), cell)) in self.columns.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_string(key), json_value(cell));
            }
            out.push('}');
            out.push_str(if i + 1 == self.rows.len() { "\n" } else { ",\n" });
        }
        out.push_str("]\n");
        out
    }

    /// [`Table::json`] if `json`, else [`Table::markdown`].
    pub fn emit(&self, json: bool) -> String {
        if json {
            self.json()
        } else {
            self.markdown()
        }
    }
}

/// Escapes and quotes `s` as a JSON string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emits `cell` as a bare JSON number when it already is one (integer or
/// finite decimal), else as a quoted string.
fn json_value(cell: &str) -> String {
    // JSON numbers may not carry a leading `+`, leading zeros, or a bare
    // trailing dot; re-serialize only clean literals verbatim.
    let digits = cell.strip_prefix('-').unwrap_or(cell);
    let leading_zeros = digits.len() > 1 && digits.starts_with('0') && !digits.starts_with("0.");
    let numeric = !cell.is_empty()
        && cell.parse::<f64>().is_ok_and(f64::is_finite)
        && !cell.starts_with('+')
        && !cell.ends_with('.')
        && !leading_zeros
        && !cell.contains(['e', 'E', 'i', 'n', 'N']);
    if numeric {
        cell.to_string()
    } else {
        json_string(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(&[("algorithm", "algo"), ("max RMR", "max_rmr")]);
        t.row(vec!["fig1-swmr-wp".into(), "4".into()]);
        t.row(vec!["ticket-rw".into(), "97".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().markdown();
        assert_eq!(
            md,
            "| algorithm | max RMR |\n|---|---|\n| fig1-swmr-wp | 4 |\n| ticket-rw | 97 |\n"
        );
    }

    #[test]
    fn json_numbers_unquoted_strings_quoted() {
        let js = sample().json();
        assert!(js.contains("{\"algo\": \"fig1-swmr-wp\", \"max_rmr\": 4}"));
        assert!(js.contains("{\"algo\": \"ticket-rw\", \"max_rmr\": 97}"));
    }

    #[test]
    fn json_value_edge_cases() {
        assert_eq!(json_value("3.50"), "3.50");
        assert_eq!(json_value("-2"), "-2");
        assert_eq!(json_value("007"), "\"007\"");
        assert_eq!(json_value("-07"), "\"-07\"");
        assert_eq!(json_value("-0.5"), "-0.5");
        assert_eq!(json_value("1e9"), "\"1e9\"");
        assert_eq!(json_value("nan"), "\"nan\"");
        assert_eq!(json_value(""), "\"\"");
        assert_eq!(json_value("O(1) — flat"), "\"O(1) — flat\"");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn empty_table_is_valid_json() {
        let t = Table::new(&[("x", "x")]);
        assert!(t.is_empty());
        assert_eq!(t.json(), "[\n]\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(&[("x", "x")]);
        t.row(vec!["a".into(), "b".into()]);
    }
}
