//! Real-thread workload drivers for the throughput benches, the
//! priority-behavior experiment (E9, E11), the async-tier throughput
//! sweep (E16), and the snapshot-tier sweep (E17).

use rmr_async::exec::block_on;
use rmr_async::lock::AsyncRwLock;
use rmr_core::raw::{RawMultiWriter, RawParkedWaiters, RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_obs::Recorder;
use rmr_sim::rng::SplitMix64;
use rmr_swap::{RetirePolicy, Snapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A mixed read/write workload specification.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Number of worker threads.
    pub threads: usize,
    /// Probability that an operation is a read (0.0–1.0).
    pub read_ratio: f64,
    /// Operations per thread.
    pub ops_per_thread: usize,
}

/// Outcome of one workload execution.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// Total operations completed.
    pub ops: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl WorkloadResult {
    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs `workload` against `lock`, with each thread flipping a seeded coin
/// per operation to choose read vs. write. Panics if the protected
/// counter's final value disagrees with the number of writes (a lost
/// update — i.e. an exclusion bug).
pub fn run_mixed<L: RawRwLock + 'static>(
    lock: Arc<L>,
    workload: Workload,
    seed: u64,
) -> WorkloadResult {
    assert!(workload.threads <= lock.max_processes());
    let counter = Arc::new(AtomicU64::new(0));
    let writes_done = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..workload.threads {
        let lock = Arc::clone(&lock);
        let counter = Arc::clone(&counter);
        let writes_done = Arc::clone(&writes_done);
        handles.push(std::thread::spawn(move || {
            let pid = Pid::from_index(t);
            let mut rng = SplitMix64::new(seed ^ (t as u64) << 32);
            let mut local_writes = 0u64;
            for _ in 0..workload.ops_per_thread {
                if rng.gen_bool(workload.read_ratio) {
                    let tok = lock.read_lock(pid);
                    std::hint::black_box(counter.load(Ordering::Relaxed));
                    lock.read_unlock(pid, tok);
                } else {
                    let tok = lock.write_lock(pid);
                    counter.fetch_add(1, Ordering::Relaxed);
                    local_writes += 1;
                    lock.write_unlock(pid, tok);
                }
            }
            writes_done.fetch_add(local_writes, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    assert_eq!(
        counter.load(Ordering::SeqCst),
        writes_done.load(Ordering::SeqCst),
        "lost update under {workload:?}"
    );
    WorkloadResult { ops: (workload.threads * workload.ops_per_thread) as u64, elapsed }
}

/// Runs a read-mostly workload where **only thread 0 ever writes**: the
/// designated writer flips a seeded coin per operation (read with
/// probability `read_ratio`), every other thread reads unconditionally.
/// Single-writer-safe by construction, so the same driver measures the
/// SWMR locks (Figures 1–2) and the multi-writer ones — which is what the
/// Bravo read-mostly sweep (`bravo_table`) needs. With `read_ratio = 1.0`
/// nobody writes at all (the 100% mix). Panics on lost updates like
/// [`run_mixed`].
pub fn run_read_mostly<L: RawRwLock + 'static>(
    lock: Arc<L>,
    workload: Workload,
    seed: u64,
) -> WorkloadResult {
    assert!(workload.threads <= lock.max_processes());
    let counter = Arc::new(AtomicU64::new(0));
    let writes_done = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..workload.threads {
        let lock = Arc::clone(&lock);
        let counter = Arc::clone(&counter);
        let writes_done = Arc::clone(&writes_done);
        handles.push(std::thread::spawn(move || {
            let pid = Pid::from_index(t);
            let mut rng = SplitMix64::new(seed ^ (t as u64) << 32);
            let mut local_writes = 0u64;
            for _ in 0..workload.ops_per_thread {
                if t != 0 || rng.gen_bool(workload.read_ratio) {
                    let tok = lock.read_lock(pid);
                    std::hint::black_box(counter.load(Ordering::Relaxed));
                    lock.read_unlock(pid, tok);
                } else {
                    let tok = lock.write_lock(pid);
                    counter.fetch_add(1, Ordering::Relaxed);
                    local_writes += 1;
                    lock.write_unlock(pid, tok);
                }
            }
            writes_done.fetch_add(local_writes, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    assert_eq!(
        counter.load(Ordering::SeqCst),
        writes_done.load(Ordering::SeqCst),
        "lost update under {workload:?}"
    );
    WorkloadResult { ops: (workload.threads * workload.ops_per_thread) as u64, elapsed }
}

/// E17: the read-mostly workload over the epoch-swap snapshot tier.
/// `Snapshot` is not a lock (reads pin an immutable version, writes
/// copy-swap-retire), so it gets its own driver with the same shape as
/// [`run_read_mostly`]: **only thread 0 ever writes**, flipping the
/// seeded coin per operation; every other thread pins and dereferences
/// snapshots unconditionally. The payload is the counter itself, so the
/// lost-update check is the final snapshot's value. Panics on lost
/// updates like [`run_mixed`].
pub fn run_snapshot_read_mostly<L, P, R>(
    snap: Arc<Snapshot<u64, L, P, rmr_mutex::mem::Native, R>>,
    workload: Workload,
    seed: u64,
) -> WorkloadResult
where
    L: RawRwLock + 'static,
    P: RetirePolicy,
    R: Recorder + 'static,
{
    assert!(workload.threads <= snap.capacity());
    let writes_done = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..workload.threads {
        let snap = Arc::clone(&snap);
        let writes_done = Arc::clone(&writes_done);
        handles.push(std::thread::spawn(move || {
            let pid = Pid::from_index(t);
            let mut rng = SplitMix64::new(seed ^ (t as u64) << 32);
            let mut local_writes = 0u64;
            for _ in 0..workload.ops_per_thread {
                if t != 0 || rng.gen_bool(workload.read_ratio) {
                    let guard = snap.load_with(pid);
                    std::hint::black_box(*guard);
                } else {
                    snap.update_with(pid, |c| c + 1);
                    local_writes += 1;
                }
            }
            writes_done.fetch_add(local_writes, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let final_value = *snap.load_with(Pid::from_index(0));
    assert_eq!(final_value, writes_done.load(Ordering::SeqCst), "lost update under {workload:?}");
    WorkloadResult { ops: (workload.threads * workload.ops_per_thread) as u64, elapsed }
}

/// E16: the mixed workload through the async tier — one executor
/// ([`block_on`]) per thread, every operation a `read().await` /
/// `write().await` pair on the protected counter, so the suspension,
/// parking and wake-up machinery is on the measured path. Requires the
/// bounded read tier plus a writer doorway (`write().await` needs
/// [`RawParkedWaiters`]). Panics on lost updates like [`run_mixed`].
pub fn run_async_mixed<L, R>(
    lock: Arc<AsyncRwLock<u64, L, rmr_mutex::mem::Native, R>>,
    workload: Workload,
    seed: u64,
) -> WorkloadResult
where
    L: RawTryReadLock + RawParkedWaiters + 'static,
    R: Recorder + 'static,
{
    assert!(workload.threads <= lock.max_processes());
    let writes_done = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..workload.threads {
        let lock = Arc::clone(&lock);
        let writes_done = Arc::clone(&writes_done);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(seed ^ (t as u64) << 32);
            let mut local_writes = 0u64;
            block_on(async {
                for _ in 0..workload.ops_per_thread {
                    if rng.gen_bool(workload.read_ratio) {
                        std::hint::black_box(*lock.read().await);
                    } else {
                        *lock.write().await += 1;
                        local_writes += 1;
                    }
                }
            });
            writes_done.fetch_add(local_writes, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let total = block_on(async { *lock.read().await });
    assert_eq!(total, writes_done.load(Ordering::SeqCst), "lost update under {workload:?}");
    WorkloadResult { ops: (workload.threads * workload.ops_per_thread) as u64, elapsed }
}

/// E16: the read-mostly async workload for locks *without* a writer
/// doorway (`RawParkedWaiters` — the Fig. 3–5 multi-writer locks; Fig. 1
/// and the baselines take `write().await` and are measured in E20
/// instead): every thread awaits its reads; **only thread 0 ever
/// writes**, through the deprecated [`AsyncRwLock::write_blocking`] —
/// the designated-writer shape a service over these locks would actually
/// deploy. Panics on lost updates.
pub fn run_async_read_mostly<L, R>(
    lock: Arc<AsyncRwLock<u64, L, rmr_mutex::mem::Native, R>>,
    workload: Workload,
    seed: u64,
) -> WorkloadResult
where
    L: RawTryReadLock + RawMultiWriter + 'static,
    R: Recorder + 'static,
{
    assert!(workload.threads <= lock.max_processes());
    let writes_done = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..workload.threads {
        let lock = Arc::clone(&lock);
        let writes_done = Arc::clone(&writes_done);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(seed ^ (t as u64) << 32);
            let mut local_writes = 0u64;
            block_on(async {
                for _ in 0..workload.ops_per_thread {
                    if t != 0 || rng.gen_bool(workload.read_ratio) {
                        std::hint::black_box(*lock.read().await);
                    } else {
                        // The designated writer blocks; it is alone on
                        // this executor, so nothing else is starved.
                        // (Deprecated endpoint, kept deliberately: fig. 3
                        // has no doorway, so `write().await` cannot
                        // compile here.)
                        #[allow(deprecated)]
                        {
                            *lock.write_blocking() += 1;
                        }
                        local_writes += 1;
                    }
                }
            });
            writes_done.fetch_add(local_writes, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let total = block_on(async { *lock.read().await });
    assert_eq!(total, writes_done.load(Ordering::SeqCst), "lost update under {workload:?}");
    WorkloadResult { ops: (workload.threads * workload.ops_per_thread) as u64, elapsed }
}

/// E20: the writer's grant latency under sustained async read pressure —
/// the `async-fair` trajectory rows. `readers` threads run
/// `reads_per_reader` awaited reads each; one writer thread alternates
/// `reads_between_writes` awaited reads with a **timed** write passage,
/// `writes` of them. `tokened` selects the writer endpoint under
/// measurement:
///
/// * `true` — `write().await`: the doorway is tokened on the first miss
///   and the raw lock bounds how many late readers bypass it, so the
///   tail is the in-flight drain, not the read storm's duration.
/// * `false` — the untokened shape this redesign replaced: a bare
///   `try_write` poll loop with no queue presence, whose grant waits
///   for a gap in *overlapping* read sessions (unbounded under
///   pressure; here bounded by the readers running out of work).
///
/// Returns the per-write grant latencies in nanoseconds. Panics on lost
/// updates like the other drivers.
pub fn run_async_writer_latency<L, R>(
    lock: Arc<AsyncRwLock<u64, L, rmr_mutex::mem::Native, R>>,
    readers: usize,
    reads_per_reader: usize,
    writes: usize,
    reads_between_writes: usize,
    tokened: bool,
) -> Vec<u64>
where
    L: RawTryReadLock + RawTryRwLock + RawMultiWriter + RawParkedWaiters + 'static,
    R: Recorder + 'static,
{
    assert!(readers < lock.max_processes(), "readers + the writer need pids");
    let mut handles = Vec::new();
    for _ in 0..readers {
        let lock = Arc::clone(&lock);
        handles.push(std::thread::spawn(move || {
            block_on(async {
                for _ in 0..reads_per_reader {
                    std::hint::black_box(*lock.read().await);
                }
            });
        }));
    }
    let mut latencies = Vec::with_capacity(writes);
    for _ in 0..writes {
        block_on(async {
            for _ in 0..reads_between_writes {
                std::hint::black_box(*lock.read().await);
            }
        });
        let t0 = Instant::now();
        let mut guard = if tokened {
            block_on(lock.write())
        } else {
            loop {
                if let Some(guard) = lock.try_write() {
                    break guard;
                }
                std::thread::yield_now();
            }
        };
        latencies.push(t0.elapsed().as_nanos() as u64);
        *guard += 1;
    }
    for h in handles {
        h.join().unwrap();
    }
    let total = block_on(async { *lock.read().await });
    assert_eq!(total, writes as u64, "lost update in the writer-latency driver");
    latencies
}

/// E9 measurement: writer entry latency while `reader_threads` churn reads
/// continuously. Returns per-write-attempt latencies.
pub fn writer_latency_under_read_storm<L: RawRwLock + 'static>(
    lock: Arc<L>,
    reader_threads: usize,
    write_attempts: usize,
    storm: Duration,
) -> Vec<Duration> {
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for t in 0..reader_threads {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        handles_push(&mut readers, move || {
            let pid = Pid::from_index(1 + t);
            while !stop.load(Ordering::SeqCst) {
                let tok = lock.read_lock(pid);
                std::hint::spin_loop();
                lock.read_unlock(pid, tok);
            }
        });
    }

    let writer_pid = Pid::from_index(0);
    let mut latencies = Vec::with_capacity(write_attempts);
    let deadline = Instant::now() + storm;
    for _ in 0..write_attempts {
        if Instant::now() > deadline {
            break;
        }
        let t0 = Instant::now();
        let tok = lock.write_lock(writer_pid);
        latencies.push(t0.elapsed());
        lock.write_unlock(writer_pid, tok);
        std::thread::yield_now();
    }

    stop.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }
    latencies
}

fn handles_push(v: &mut Vec<std::thread::JoinHandle<()>>, f: impl FnOnce() + Send + 'static) {
    v.push(std::thread::spawn(f));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_core::mwmr::MwmrStarvationFree;

    #[test]
    fn mixed_workload_loses_no_updates() {
        let lock = Arc::new(MwmrStarvationFree::new(4));
        let res =
            run_mixed(lock, Workload { threads: 4, read_ratio: 0.7, ops_per_thread: 200 }, 42);
        assert_eq!(res.ops, 800);
        assert!(res.ops_per_sec() > 0.0);
    }

    #[test]
    fn read_mostly_single_writer_loses_no_updates() {
        // Safe on a single-writer lock: only thread 0 writes.
        let lock = Arc::new(rmr_core::swmr::SwmrWriterPriority::new());
        let res =
            run_read_mostly(lock, Workload { threads: 4, read_ratio: 0.9, ops_per_thread: 200 }, 7);
        assert_eq!(res.ops, 800);
    }

    #[test]
    fn snapshot_read_mostly_loses_no_updates() {
        use rmr_swap::{RetireBatched, RetireEager};
        for_policy(RetireEager);
        for_policy(RetireBatched { high_water: 4 });
        fn for_policy<P: RetirePolicy>(policy: P) {
            let snap = Arc::new(Snapshot::with_raw(0u64, MwmrStarvationFree::new(4), policy));
            let res = run_snapshot_read_mostly(
                snap,
                Workload { threads: 4, read_ratio: 0.9, ops_per_thread: 200 },
                7,
            );
            assert_eq!(res.ops, 800);
            assert!(res.ops_per_sec() > 0.0);
        }
    }

    #[test]
    fn async_mixed_workload_loses_no_updates() {
        let lock = Arc::new(AsyncRwLock::with_raw(0u64, rmr_baselines::TicketRwLock::new(4)));
        let res = run_async_mixed(
            lock,
            Workload { threads: 4, read_ratio: 0.7, ops_per_thread: 200 },
            42,
        );
        assert_eq!(res.ops, 800);
        assert!(res.ops_per_sec() > 0.0);
    }

    #[test]
    fn async_read_mostly_single_writer_loses_no_updates() {
        let lock = Arc::new(AsyncRwLock::with_raw(0u64, MwmrStarvationFree::new(4)));
        let res = run_async_read_mostly(
            lock,
            Workload { threads: 4, read_ratio: 0.9, ops_per_thread: 200 },
            7,
        );
        assert_eq!(res.ops, 800);
    }

    #[test]
    fn writer_latency_probe_completes() {
        let lock = Arc::new(rmr_core::mwmr::MwmrWriterPriority::new(4));
        let lat = writer_latency_under_read_storm(lock, 2, 5, Duration::from_secs(5));
        assert!(!lat.is_empty());
    }
}
