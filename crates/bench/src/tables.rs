//! Simulator sweeps behind the RMR tables (experiments E6–E8).

use crate::cli::Table;
use rmr_sim::algos::{Centralized, Fig1, Fig2, Fig3Rp, Fig3Sf, Fig4, TicketRw, Tournament};
use rmr_sim::cost::{CcModel, CostModel, DsmModel};
use rmr_sim::machine::Algorithm;
use rmr_sim::runner::{RandomSched, Runner};

/// The algorithms the RMR sweeps cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimAlgo {
    /// Figure 1 (SWMR writer priority). Forces `writers = 1`.
    Fig1,
    /// Figure 2 (SWMR reader priority). Forces `writers = 1`.
    Fig2,
    /// Figure 3 over Figure 1 (MWMR starvation free).
    Fig3Sf,
    /// Figure 3 over Figure 2 (MWMR reader priority).
    Fig3Rp,
    /// Figure 4 (MWMR writer priority).
    Fig4,
    /// Courtois et al. centralized baseline.
    Centralized,
    /// Task-fair ticket RW baseline.
    TicketRw,
    /// Counting-tree (Θ(log n)) baseline.
    Tournament,
}

impl SimAlgo {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SimAlgo::Fig1 => "fig1-swmr-wp",
            SimAlgo::Fig2 => "fig2-swmr-rp",
            SimAlgo::Fig3Sf => "fig3-mwmr-sf",
            SimAlgo::Fig3Rp => "fig3-mwmr-rp",
            SimAlgo::Fig4 => "fig4-mwmr-wp",
            SimAlgo::Centralized => "centralized-1971",
            SimAlgo::TicketRw => "ticket-rw",
            SimAlgo::Tournament => "tournament-tree",
        }
    }

    /// All paper algorithms.
    pub const PAPER: [SimAlgo; 5] =
        [SimAlgo::Fig1, SimAlgo::Fig2, SimAlgo::Fig3Sf, SimAlgo::Fig3Rp, SimAlgo::Fig4];

    /// All baselines.
    pub const BASELINES: [SimAlgo; 3] =
        [SimAlgo::Centralized, SimAlgo::TicketRw, SimAlgo::Tournament];

    /// Whether this algorithm supports only a single writer.
    pub fn single_writer(self) -> bool {
        matches!(self, SimAlgo::Fig1 | SimAlgo::Fig2)
    }
}

/// Which cost model a sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Cache-coherent write-invalidate (the model of Theorems 1–5).
    Cc,
    /// Distributed shared memory, all variables homed at process 0.
    Dsm,
}

/// One row of an RMR table.
#[derive(Debug, Clone)]
pub struct RmrRow {
    /// Algorithm name.
    pub algo: String,
    /// Cost model ("cc"/"dsm").
    pub model: String,
    /// Number of writer processes.
    pub writers: usize,
    /// Number of reader processes.
    pub readers: usize,
    /// Worst RMRs charged to any single completed attempt.
    pub max_rmr: u64,
    /// Mean RMRs per completed attempt.
    pub mean_rmr: f64,
    /// Worst RMRs over reader attempts only.
    pub max_reader_rmr: u64,
    /// Worst RMRs over writer attempts only.
    pub max_writer_rmr: u64,
    /// Completed attempts measured.
    pub attempts: usize,
}

fn measure<A: Algorithm>(
    make: impl Fn() -> A,
    model: Model,
    attempts_per_proc: u32,
    seeds: u64,
) -> (u64, f64, u64, u64, usize) {
    let mut max_rmr = 0u64;
    let mut max_reader = 0u64;
    let mut max_writer = 0u64;
    let mut sum = 0u64;
    let mut count = 0usize;
    for seed in 0..seeds {
        let alg = make();
        let procs = alg.processes();
        let vars = alg.layout().len();
        let cost: Box<dyn CostModel> = match model {
            Model::Cc => Box::new(CcModel::new(procs.min(64), vars)),
            Model::Dsm => Box::new(DsmModel::all_at(0, vars)),
        };
        let mut runner = Runner::new(alg, cost, attempts_per_proc);
        let mut sched = RandomSched::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(seed));
        runner.run(&mut sched, 20_000_000);
        assert!(
            runner.violations().is_empty(),
            "safety violation during measurement: {:?}",
            runner.violations()
        );
        assert!(runner.quiescent(), "measurement run did not quiesce (seed {seed})");
        for a in runner.finished_attempts() {
            max_rmr = max_rmr.max(a.rmrs);
            if a.role_writer {
                max_writer = max_writer.max(a.rmrs);
            } else {
                max_reader = max_reader.max(a.rmrs);
            }
            sum += a.rmrs;
            count += 1;
        }
    }
    (max_rmr, sum as f64 / count.max(1) as f64, max_reader, max_writer, count)
}

/// Runs the RMR sweep for one algorithm/population/model point.
pub fn rmr_row(
    algo: SimAlgo,
    writers: usize,
    readers: usize,
    model: Model,
    attempts_per_proc: u32,
    seeds: u64,
) -> RmrRow {
    let writers = if algo.single_writer() { 1 } else { writers };
    let (max_rmr, mean_rmr, max_reader_rmr, max_writer_rmr, attempts) = match algo {
        SimAlgo::Fig1 => measure(|| Fig1::new(readers), model, attempts_per_proc, seeds),
        SimAlgo::Fig2 => measure(|| Fig2::new(readers), model, attempts_per_proc, seeds),
        SimAlgo::Fig3Sf => {
            measure(|| Fig3Sf::new(writers, readers), model, attempts_per_proc, seeds)
        }
        SimAlgo::Fig3Rp => {
            measure(|| Fig3Rp::new(writers, readers), model, attempts_per_proc, seeds)
        }
        SimAlgo::Fig4 => measure(|| Fig4::new(writers, readers), model, attempts_per_proc, seeds),
        SimAlgo::Centralized => {
            measure(|| Centralized::new(writers, readers), model, attempts_per_proc, seeds)
        }
        SimAlgo::TicketRw => {
            measure(|| TicketRw::new(writers, readers), model, attempts_per_proc, seeds)
        }
        SimAlgo::Tournament => {
            measure(|| Tournament::new(writers, readers), model, attempts_per_proc, seeds)
        }
    };
    RmrRow {
        algo: algo.name().to_string(),
        model: match model {
            Model::Cc => "cc".into(),
            Model::Dsm => "dsm".into(),
        },
        writers,
        readers,
        max_rmr,
        mean_rmr,
        max_reader_rmr,
        max_writer_rmr,
        attempts,
    }
}

/// Builds the shared two-format [`Table`] for a set of RMR rows — one
/// emission path for the simulator sweeps (E6–E8) and the real-lock sweep
/// (E13).
pub fn rmr_table_of(rows: &[RmrRow]) -> Table {
    let mut t = Table::new(&[
        ("algorithm", "algo"),
        ("model", "model"),
        ("writers", "writers"),
        ("readers", "readers"),
        ("max RMR", "max_rmr"),
        ("mean RMR", "mean_rmr"),
        ("max reader RMR", "max_reader_rmr"),
        ("max writer RMR", "max_writer_rmr"),
        ("attempts", "attempts"),
    ]);
    for r in rows {
        t.row(vec![
            r.algo.clone(),
            r.model.clone(),
            r.writers.to_string(),
            r.readers.to_string(),
            r.max_rmr.to_string(),
            format!("{:.2}", r.mean_rmr),
            r.max_reader_rmr.to_string(),
            r.max_writer_rmr.to_string(),
            r.attempts.to_string(),
        ]);
    }
    t
}

/// Renders rows as a GitHub-flavored markdown table.
pub fn markdown_table(rows: &[RmrRow]) -> String {
    rmr_table_of(rows).markdown()
}

/// Renders rows as a JSON array (hand-rolled: the workspace carries no
/// serialization dependency).
pub fn json_table(rows: &[RmrRow]) -> String {
    rmr_table_of(rows).json()
}

/// Classifies the growth of max RMR between the smallest and largest
/// population of a sweep. One heuristic shared by E6/E7 (`rmr_table`) and
/// E13 (`real_rmr_table`), so the two tables can never disagree on what
/// counts as flat.
pub fn growth_shape(small_max: u64, large_max: u64) -> &'static str {
    if large_max <= small_max.saturating_mul(2).max(small_max + 4) {
        "O(1) — flat"
    } else if large_max <= small_max.saturating_mul(8) {
        "grows ~log n"
    } else {
        "grows ~n"
    }
}

/// Builds the compact flat-vs-growing summary table for a sweep: one row
/// per algorithm name, comparing max RMR at the smallest and largest
/// reader population present in `rows`.
///
/// # Panics
///
/// Panics if an algorithm has no row at either population.
pub fn shape_summary<'a>(
    rows: &[RmrRow],
    algos: impl IntoIterator<Item = &'a str>,
    small_n: usize,
    large_n: usize,
) -> Table {
    let mut summary = Table::new(&[
        ("algorithm", "algo"),
        (&format!("n={small_n} readers"), "max_rmr_small"),
        (&format!("n={large_n} readers"), "max_rmr_large"),
        ("shape", "shape"),
    ]);
    for name in algos {
        let at = |n: usize| {
            rows.iter()
                .find(|r| r.algo == name && r.readers == n)
                .unwrap_or_else(|| panic!("no row for {name} at {n} readers"))
                .max_rmr
        };
        let (small, large) = (at(small_n), at(large_n));
        summary.row(vec![
            name.into(),
            small.to_string(),
            large.to_string(),
            growth_shape(small, large).into(),
        ]);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_row_is_constant_and_small() {
        let row = rmr_row(SimAlgo::Fig1, 1, 4, Model::Cc, 2, 3);
        assert!(row.max_rmr <= 20, "{row:?}");
        assert!(row.attempts > 0);
        assert_eq!(row.writers, 1);
    }

    #[test]
    fn tournament_row_grows_with_population() {
        let small = rmr_row(SimAlgo::Tournament, 1, 3, Model::Cc, 2, 3);
        let large = rmr_row(SimAlgo::Tournament, 1, 31, Model::Cc, 2, 3);
        assert!(
            large.max_reader_rmr > small.max_reader_rmr,
            "expected log-n growth: {small:?} vs {large:?}"
        );
    }

    #[test]
    fn markdown_renders_all_rows() {
        let rows = vec![rmr_row(SimAlgo::Fig2, 1, 2, Model::Cc, 1, 1)];
        let md = markdown_table(&rows);
        assert!(md.contains("fig2-swmr-rp"));
        assert_eq!(md.lines().count(), 3);
    }
}
