//! E14 — checker coverage table: every shipped lock under deterministic
//! schedule exploration.
//!
//! For each lock (over the `Sched` backend) this runs a seeded PCT
//! battery, a random-walk battery and — for the core locks — a
//! preemption-bounded exhaustive DFS pass, and prints one row per
//! lock × mode with the schedules and scheduler steps explored. In
//! `--quick` mode (the CI `check --quick` job) the batteries are capped
//! so the whole table smoke-runs in seconds; any failing row prints its
//! replay line (seed + decision schedule) and the binary exits nonzero
//! so CI can upload the artifact.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin check_table -- [--quick] [--json]
//! ```

use rmr_async::lock::AsyncRwLock;
use rmr_bench::cli::{BenchArgs, Table};
use rmr_bravo::{Bravo, BravoConfig};
use rmr_check::async_exec::{
    async_cancel_trial, async_fair_trial, async_read_blocking_write_trial, async_rw_trial,
    async_write_cancel_trial,
};
use rmr_check::exhaustive;
use rmr_check::harness::{
    mutex_trial, randomized_batteries, randomized_batteries_in, rw_trial, try_rw_trial,
    CheckReport, Scenario, Trial,
};
use rmr_check::litmus::litmus_suite;
use rmr_check::obs::{guard_balance_trial, obs_recorder, park_wake_trial};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::swmr::{SwmrReaderPriority, SwmrWriterPriority};
use rmr_mutex::sched::MemoryModel;
use rmr_mutex::{AndersonLock, McsLock, Sched, TasLock, TicketLock, TtasLock};
use std::sync::Arc;

struct Budgets {
    randomized: u64,
    dfs_cap: u64,
}

fn run_modes(
    label: &str,
    mk: &dyn Fn() -> Trial,
    mk_small: Option<&dyn Fn() -> Trial>,
    budgets: &Budgets,
) -> Vec<CheckReport> {
    let mut reports = randomized_batteries(label, mk, 0xe14, budgets.randomized, 3, 30_000);
    if let Some(mk_small) = mk_small {
        reports.push(exhaustive(label, mk_small, 2, 30_000, budgets.dfs_cap));
    }
    reports
}

fn main() {
    let args = BenchArgs::parse(
        "check_table",
        "E14: deterministic schedule exploration coverage of the real locks",
    );
    let budgets = if args.quick {
        Budgets { randomized: 6, dfs_cap: 800 }
    } else {
        Budgets { randomized: 40, dfs_cap: 20_000 }
    };

    macro_rules! core_lock {
        ($label:expr, $make:expr) => {{
            let big: &dyn Fn() -> Trial = &|| {
                let lock = Arc::new($make);
                let q = Arc::clone(&lock);
                rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
            };
            let small: &dyn Fn() -> Trial = &|| {
                let lock = Arc::new($make);
                let q = Arc::clone(&lock);
                rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
            };
            run_modes($label, big, Some(small), &budgets)
        }};
    }

    let mut reports: Vec<CheckReport> = Vec::new();
    reports.extend(core_lock!("fig1-swmr-wp", SwmrWriterPriority::new_in(Sched)));
    reports.extend(core_lock!("fig2-swmr-rp", SwmrReaderPriority::new_in(Sched)));
    reports.extend(core_lock!("fig3-mwmr-sf", MwmrStarvationFree::new_in(3, Sched)));
    reports.extend(core_lock!("fig3-mwmr-rp", MwmrReaderPriority::new_in(3, Sched)));
    reports.extend(core_lock!("fig4-mwmr-wp", MwmrWriterPriority::new_in(3, Sched)));

    macro_rules! mutex {
        ($label:expr, $make:expr) => {{
            let big: &dyn Fn() -> Trial = &|| mutex_trial(Arc::new($make), 3, 2);
            let small: &dyn Fn() -> Trial = &|| mutex_trial(Arc::new($make), 2, 1);
            run_modes($label, big, Some(small), &budgets)
        }};
    }
    reports.extend(mutex!("anderson", AndersonLock::new_in(4, Sched)));
    reports.extend(mutex!("mcs", McsLock::new_in(Sched)));
    reports.extend(mutex!("ticket", TicketLock::new_in(Sched)));
    reports.extend(mutex!("tas", TasLock::new_in(Sched)));
    reports.extend(mutex!("ttas", TtasLock::new_in(Sched)));

    macro_rules! baseline {
        ($label:expr, $make:expr) => {{
            let big: &dyn Fn() -> Trial =
                &|| rw_trial(Arc::new($make), Scenario::new(2, 1, 2), || true);
            run_modes($label, big, None, &budgets)
        }};
    }
    reports.extend(baseline!("centralized", rmr_baselines::CentralizedRwLock::new_in(3, Sched)));
    reports.extend(baseline!(
        "courtois-wp",
        rmr_baselines::CourtoisWriterPrefRwLock::new_in(3, Sched)
    ));
    reports.extend(baseline!("ticket-rw", rmr_baselines::TicketRwLock::new_in(3, Sched)));
    reports.extend(baseline!("flags", rmr_baselines::DistributedFlagRwLock::new_in(3, Sched)));
    reports.extend(baseline!("tournament", rmr_baselines::TournamentRwLock::new_in(3, Sched)));
    {
        let big: &dyn Fn() -> Trial = &|| {
            try_rw_trial(
                Arc::new(rmr_baselines::TicketRwLock::new_in(3, Sched)),
                Scenario::new(2, 1, 2),
                || true,
            )
        };
        reports.extend(run_modes("ticket-rw-try", big, None, &budgets));
    }

    // The Bravo wrapper (rmr-bravo): wrapper state and inner lock both
    // over `Sched`, small tables so collisions occur and the revocation
    // scan stays cheap per schedule. Quiescence = table fully drained
    // (plus the inner lock's own notion where one exists).
    let bravo_cfg = BravoConfig { table_slots: 4, rebias_after: 2, initial_bias: true };
    {
        let big: &dyn Fn() -> Trial = &|| {
            let lock = Arc::new(Bravo::new_in(
                rmr_baselines::TicketRwLock::new_in(8, Sched),
                bravo_cfg,
                Sched,
            ));
            let q = Arc::clone(&lock);
            rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
        };
        let small: &dyn Fn() -> Trial = &|| {
            let lock = Arc::new(Bravo::new_in(
                rmr_baselines::TicketRwLock::new_in(8, Sched),
                BravoConfig { table_slots: 2, ..bravo_cfg },
                Sched,
            ));
            let q = Arc::clone(&lock);
            rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
        };
        reports.extend(run_modes("bravo-ticket-rw", big, Some(small), &budgets));
    }
    {
        let big: &dyn Fn() -> Trial = &|| {
            let lock =
                Arc::new(Bravo::new_in(MwmrStarvationFree::new_in(3, Sched), bravo_cfg, Sched));
            let q = Arc::clone(&lock);
            rw_trial(lock, Scenario::new(2, 1, 2), move || {
                q.is_quiescent() && q.inner().is_quiescent()
            })
        };
        reports.extend(run_modes("bravo-fig3-sf", big, None, &budgets));
    }
    {
        let big: &dyn Fn() -> Trial = &|| {
            let lock = Arc::new(Bravo::new_in(
                rmr_baselines::TicketRwLock::new_in(8, Sched),
                bravo_cfg,
                Sched,
            ));
            let q = Arc::clone(&lock);
            try_rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
        };
        reports.extend(run_modes("bravo-ticket-rw-try", big, None, &budgets));
    }

    // The async tier (rmr-async): futures over the Sched backend — waker
    // table, parked counters and the executors' parker flags all
    // scheduled, so parking races are explored at the same atomicity as
    // the sync locks. Quiescence = nothing parked, nothing held, no pid
    // leased (plus the raw lock's own notion where one exists).
    {
        let big: &dyn Fn() -> Trial = &|| {
            let lock = Arc::new(AsyncRwLock::with_raw_and_capacity_in(
                (),
                rmr_baselines::TicketRwLock::new_in(8, Sched),
                8,
                Sched,
            ));
            let q = Arc::clone(&lock);
            async_rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
        };
        let small: &dyn Fn() -> Trial = &|| {
            let lock = Arc::new(AsyncRwLock::with_raw_and_capacity_in(
                (),
                rmr_baselines::TicketRwLock::new_in(4, Sched),
                4,
                Sched,
            ));
            let q = Arc::clone(&lock);
            async_rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
        };
        reports.extend(run_modes("async-ticket-rw", big, Some(small), &budgets));
    }
    {
        let big: &dyn Fn() -> Trial = &|| {
            let lock =
                Arc::new(AsyncRwLock::with_raw_in((), MwmrStarvationFree::new_in(4, Sched), Sched));
            let q = Arc::clone(&lock);
            async_read_blocking_write_trial(lock, Scenario::new(2, 1, 2), move || {
                q.is_quiescent() && q.raw().is_quiescent()
            })
        };
        reports.extend(run_modes("async-fig3-sf", big, None, &budgets));
    }
    {
        let big: &dyn Fn() -> Trial = &|| {
            let lock = Arc::new(AsyncRwLock::with_raw_and_capacity_in(
                (),
                Bravo::new_in(rmr_baselines::TicketRwLock::new_in(8, Sched), bravo_cfg, Sched),
                8,
                Sched,
            ));
            let q = Arc::clone(&lock);
            async_rw_trial(lock, Scenario::new(2, 1, 2), move || {
                q.is_quiescent() && q.raw().is_quiescent()
            })
        };
        reports.extend(run_modes("async-bravo-ticket", big, None, &budgets));
    }
    {
        let big: &dyn Fn() -> Trial = &|| {
            async_cancel_trial(
                Arc::new(AsyncRwLock::with_raw_and_capacity_in(
                    (),
                    rmr_baselines::TicketRwLock::new_in(8, Sched),
                    8,
                    Sched,
                )),
                Scenario::new(2, 1, 2),
            )
        };
        reports.extend(run_modes("async-cancel", big, None, &budgets));
    }

    // The doorway tier (`RawParkedWaiters`): `write().await` on queued
    // doorways, held to the bounded-bypass oracle — once the writer's
    // first Pending tokened its doorway, at most the in-flight read set
    // may complete ahead of the grant — plus the writer-side cancel
    // trial (drop mid-drain must revoke the doorway and wake the
    // bystanders). `async-fair-fig1` is `write().await` model-checked on
    // a core paper lock, DFS included.
    {
        let big: &dyn Fn() -> Trial = &|| {
            let lock = Arc::new(AsyncRwLock::with_raw_and_capacity_in(
                (),
                rmr_baselines::TicketRwLock::new_in(8, Sched),
                8,
                Sched,
            ));
            let q = Arc::clone(&lock);
            async_fair_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
        };
        reports.extend(run_modes("async-fair-ticket", big, None, &budgets));
    }
    {
        let mk_fig1 = |capacity| {
            Arc::new(AsyncRwLock::with_raw_and_capacity_in(
                (),
                SwmrWriterPriority::new_in(Sched),
                capacity,
                Sched,
            ))
        };
        let big: &dyn Fn() -> Trial = &|| {
            let lock = mk_fig1(8);
            let q = Arc::clone(&lock);
            async_fair_trial(lock, Scenario::new(2, 1, 2), move || {
                q.is_quiescent() && q.raw().is_quiescent()
            })
        };
        let small: &dyn Fn() -> Trial = &|| {
            let lock = mk_fig1(4);
            let q = Arc::clone(&lock);
            async_fair_trial(lock, Scenario::new(1, 1, 1), move || {
                q.is_quiescent() && q.raw().is_quiescent()
            })
        };
        reports.extend(run_modes("async-fair-fig1", big, Some(small), &budgets));

        let big: &dyn Fn() -> Trial =
            &|| async_write_cancel_trial(mk_fig1(8), Scenario::new(2, 1, 2));
        let small: &dyn Fn() -> Trial =
            &|| async_write_cancel_trial(mk_fig1(4), Scenario::new(1, 1, 1));
        reports.extend(run_modes("async-write-cancel-fig1", big, Some(small), &budgets));
    }

    // The observability batteries (rmr-check::obs): instrumented locks
    // where the recorder's own numbers join the post-run oracle — the
    // counter ledger must balance exactly against the scenario, and the
    // drained deterministic trace must keep park/wake causality closed
    // (every park later granted or cancelled, ring lossless). Rows are
    // named `obs/*` so coverage is visible here like `/sb` and
    // `litmus/*`.
    {
        let big: &dyn Fn() -> Trial = &|| {
            guard_balance_trial(
                MwmrStarvationFree::new_in(3, Sched),
                Scenario::new(2, 1, 2),
                obs_recorder(4, 256),
            )
        };
        reports.extend(run_modes("obs/guard-balance", big, None, &budgets));
    }
    {
        let big: &dyn Fn() -> Trial = &|| {
            let lock = Arc::new(
                AsyncRwLock::with_raw_and_capacity_in(
                    (),
                    rmr_baselines::TicketRwLock::new_in(8, Sched),
                    8,
                    Sched,
                )
                .with_recorder(obs_recorder(8, 1024)),
            );
            park_wake_trial(lock, Scenario::new(2, 1, 2))
        };
        reports.extend(run_modes("obs/park-wake", big, None, &budgets));
    }

    // The weak-memory re-run: the same trials under the store-buffer
    // model, so the relaxed orderings the sweep left behind (DESIGN.md
    // §13) are exercised against real reorderings, not just against
    // sequential consistency. Mode column reads `…/sb`.
    macro_rules! weak_rw {
        ($label:expr, $make:expr) => {{
            let big: &dyn Fn() -> Trial = &|| {
                let lock = Arc::new($make);
                let q = Arc::clone(&lock);
                rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
            };
            randomized_batteries_in(
                $label,
                big,
                0xe14,
                budgets.randomized,
                3,
                40_000,
                MemoryModel::StoreBuffer,
            )
        }};
    }
    reports.extend(weak_rw!("fig1-swmr-wp", SwmrWriterPriority::new_in(Sched)));
    reports.extend(weak_rw!("fig2-swmr-rp", SwmrReaderPriority::new_in(Sched)));
    reports.extend(weak_rw!("fig3-mwmr-sf", MwmrStarvationFree::new_in(3, Sched)));
    reports.extend(weak_rw!("fig3-mwmr-rp", MwmrReaderPriority::new_in(3, Sched)));
    reports.extend(weak_rw!("fig4-mwmr-wp", MwmrWriterPriority::new_in(3, Sched)));
    reports.extend(weak_rw!(
        "bravo-ticket-rw",
        Bravo::new_in(rmr_baselines::TicketRwLock::new_in(8, Sched), bravo_cfg, Sched)
    ));
    {
        let big: &dyn Fn() -> Trial = &|| {
            rw_trial(
                Arc::new(rmr_baselines::DistributedFlagRwLock::new_in(3, Sched)),
                Scenario::new(2, 1, 2),
                || true,
            )
        };
        reports.extend(randomized_batteries_in(
            "flags",
            big,
            0xe14,
            budgets.randomized,
            3,
            40_000,
            MemoryModel::StoreBuffer,
        ));
    }
    {
        let big: &dyn Fn() -> Trial = &|| {
            let lock = Arc::new(AsyncRwLock::with_raw_and_capacity_in(
                (),
                rmr_baselines::TicketRwLock::new_in(8, Sched),
                8,
                Sched,
            ));
            let q = Arc::clone(&lock);
            async_rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
        };
        reports.extend(randomized_batteries_in(
            "async-ticket-rw",
            big,
            0xe14,
            budgets.randomized,
            3,
            40_000,
            MemoryModel::StoreBuffer,
        ));
    }

    // The litmus pins: exact full-tree statements about the memory model
    // itself. The relaxed outcomes the store-buffer mode must exhibit
    // (MP stale read, SB both-zero) and the ones it must forbid
    // (release-fronted flushes, SeqCst drains, IRIW disagreement) are
    // checked against their pinned expectations.
    let litmus = litmus_suite();

    let mut table = Table::new(&[
        ("lock", "lock"),
        ("mode", "mode"),
        ("schedules", "schedules"),
        ("steps", "steps"),
        ("result", "result"),
    ]);
    let mut failures = Vec::new();
    for r in &reports {
        table.row(vec![
            r.lock.clone(),
            format!("{}{}", r.mode, if r.truncated { " (capped)" } else { "" }),
            r.schedules.to_string(),
            r.steps.to_string(),
            if r.passed() { "ok".into() } else { "FAIL".into() },
        ]);
        if let Some(f) = &r.failure {
            failures.push(format!("{}: {f}", r.lock));
        }
    }
    for r in &litmus {
        table.row(vec![
            format!("litmus-{}", r.name),
            format!("litmus/{}", r.model),
            r.schedules.to_string(),
            r.steps.to_string(),
            if r.passed() { "ok".into() } else { "FAIL".into() },
        ]);
        if !r.passed() {
            failures.push(format!(
                "litmus-{}: expected observed={}, got observed={}",
                r.name, r.expect_observed, r.observed
            ));
        }
    }
    print!("{}", table.emit(args.json));

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
