//! E19 — what observability costs, measured and *proven*:
//!
//! 1. **Overhead**: uncontended read/write passage latency of
//!    representative tiers in three builds — bare, wrapped in
//!    [`Observed`] with the inert [`NoopRecorder`] (must be free: the
//!    hooks const-fold), and wrapped with a live [`StatsRecorder`]
//!    (must stay cheap: per-pid padded slots, `Relaxed` stores).
//! 2. **Zero-cost-when-off, by construction**: the same passages over
//!    the `Counting` backend — the Noop-instrumented lock must execute
//!    an op-for-op identical shared-memory footprint to the bare lock,
//!    and a `StatsRecorder`-instrumented Bravo fast read must still
//!    perform zero inner-lock operations and zero CC RMRs. The binary
//!    exits nonzero if either claim fails.
//! 3. **Latency distributions**: a contended mixed workload over an
//!    instrumented lock, reported as log-bucket p50/p99 acquire
//!    latencies with contended-passage counts — the rows
//!    `bench_summary` twins under `@obs`.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin obs_table [-- --quick --json --trace-out FILE]
//! ```
//!
//! `--trace-out FILE` additionally runs the latency workload with a
//! bounded event ring attached and writes the drained trace as Chrome
//! `trace_event` JSON (load in `chrome://tracing` or Perfetto).

use rmr_baselines::TicketRwLock;
use rmr_bench::cli::Table;
use rmr_bench::workloads::{run_mixed, Workload};
use rmr_bravo::{Bravo, BravoConfig};
use rmr_core::mwmr::MwmrStarvationFree;
use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use rmr_core::swmr::SwmrWriterPriority;
use rmr_core::Observed;
use rmr_mutex::mem::{self, Counting};
use rmr_obs::{Event, Metric, NoopRecorder, StatsRecorder};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    json: bool,
    quick: bool,
    trace_out: Option<String>,
}

/// Hand-rolled because of `--trace-out FILE`; everything else matches
/// [`rmr_bench::cli::BenchArgs`].
fn parse_args() -> Args {
    const ABOUT: &str = "E19: observability overhead, zero-cost-when-off proof, and acquire-latency distributions\n\n\
        Usage: cargo run --release -p rmr-bench --bin obs_table [-- OPTIONS]\n\n\
        Options:\n  \
        --json             emit machine-readable JSON instead of markdown\n  \
        --quick            reduced sweep (CI smoke mode)\n  \
        --trace-out FILE   write a Chrome trace_event JSON of the latency workload\n  \
        --help             print this message";
    let mut args = Args { json: false, quick: false, trace_out: None };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--quick" => args.quick = true,
            "--trace-out" => match argv.next() {
                Some(path) => args.trace_out = Some(path),
                None => {
                    eprintln!("--trace-out needs a file path\n\n{ABOUT}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("{ABOUT}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{ABOUT}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Best-of-reps nanoseconds per passage (same estimator as E18).
fn time_passage(iters: u32, reps: u32, mut passage: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 {
        passage();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            passage();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    best
}

/// `(read ns/op, write ns/op)` for one lock instance.
fn passages<L: RawRwLock>(lock: &L, iters: u32, reps: u32) -> (f64, f64) {
    let pid = Pid::from_index(0);
    let read = time_passage(iters, reps, || {
        let t = lock.read_lock(pid);
        lock.read_unlock(pid, t);
    });
    let write = time_passage(iters, reps, || {
        let t = lock.write_lock(pid);
        lock.write_unlock(pid, t);
    });
    (read, write)
}

/// The `Counting` tally of `n` read + `n` write passages on `lock`.
fn counted_footprint<L: RawRwLock>(lock: &L, n: u32) -> mem::Tally {
    let pid = Pid::from_index(0);
    mem::set_thread_slot(1);
    // Warm-up: compulsory first-touch misses are not part of the claim.
    let t = lock.read_lock(pid);
    lock.read_unlock(pid, t);
    let t = lock.write_lock(pid);
    lock.write_unlock(pid, t);
    mem::reset_thread_tally();
    for _ in 0..n {
        let t = lock.read_lock(pid);
        lock.read_unlock(pid, t);
        let t = lock.write_lock(pid);
        lock.write_unlock(pid, t);
    }
    mem::thread_tally()
}

fn main() {
    let args = parse_args();
    let (iters, reps) = if args.quick { (5_000u32, 3u32) } else { (200_000, 5) };
    let cap = 8;

    // -- section 1: overhead ------------------------------------------
    let mut overhead = Table::new(&[
        ("lock", "lock"),
        ("op", "op"),
        ("bare ns/op", "bare_ns_per_op"),
        ("+noop ns/op", "noop_ns_per_op"),
        ("+stats ns/op", "stats_ns_per_op"),
        ("noop/bare", "noop_ratio"),
        ("stats/bare", "stats_ratio"),
    ]);
    let mut push = |lock: &'static str, op, bare: f64, noop: f64, stats: f64| {
        overhead.row(vec![
            lock.into(),
            op,
            format!("{bare:.1}"),
            format!("{noop:.1}"),
            format!("{stats:.1}"),
            format!("{:.2}", noop / bare),
            format!("{:.2}", stats / bare),
        ]);
    };
    {
        let bare = passages(&SwmrWriterPriority::new(), iters, reps);
        let noop = passages(&Observed::new(SwmrWriterPriority::new(), NoopRecorder), iters, reps);
        let stats = passages(
            &Observed::new(SwmrWriterPriority::new(), Arc::new(StatsRecorder::new(cap))),
            iters,
            reps,
        );
        push("fig1-swmr-wp", "read".into(), bare.0, noop.0, stats.0);
        push("fig1-swmr-wp", "write".into(), bare.1, noop.1, stats.1);
    }
    {
        let bare = passages(&MwmrStarvationFree::new(cap), iters, reps);
        let noop =
            passages(&Observed::new(MwmrStarvationFree::new(cap), NoopRecorder), iters, reps);
        let stats = passages(
            &Observed::new(MwmrStarvationFree::new(cap), Arc::new(StatsRecorder::new(cap))),
            iters,
            reps,
        );
        push("fig3-mwmr-sf", "read".into(), bare.0, noop.0, stats.0);
        push("fig3-mwmr-sf", "write".into(), bare.1, noop.1, stats.1);
    }
    {
        let cfg = BravoConfig { table_slots: 64, rebias_after: 16, initial_bias: true };
        let mk = || Bravo::new_in(TicketRwLock::new(cap), cfg, rmr_mutex::mem::Native);
        let bare = passages(&mk(), iters, reps);
        let noop = passages(&Observed::new(mk(), NoopRecorder), iters, reps);
        let stats = passages(&Observed::new(mk(), Arc::new(StatsRecorder::new(cap))), iters, reps);
        push("bravo-ticket-rw", "read".into(), bare.0, noop.0, stats.0);
        push("bravo-ticket-rw", "write".into(), bare.1, noop.1, stats.1);
    }

    // -- section 2: the zero-cost proofs ------------------------------
    let n = if args.quick { 100 } else { 1_000 };
    let bare_tally = counted_footprint(&MwmrStarvationFree::new_in(cap, Counting), n);
    let noop_tally = counted_footprint(
        &Observed::new(MwmrStarvationFree::new_in(cap, Counting), NoopRecorder),
        n,
    );
    assert_eq!(
        bare_tally, noop_tally,
        "NoopRecorder instrumentation changed the shared-memory footprint"
    );

    // A live StatsRecorder on Bravo's fast path: still zero inner-lock
    // ops, still zero CC RMRs — the recorder writes only to the calling
    // pid's own padded std-atomic slot.
    let rec = Arc::new(StatsRecorder::new(cap));
    let bravo = Bravo::new(TicketRwLock::new_in(cap, Counting)).with_recorder(Arc::clone(&rec));
    let pid = Pid::from_index(0);
    mem::set_thread_slot(1);
    let t = bravo.read_lock(pid); // warm-up: publishes the bias
    bravo.read_unlock(pid, t);
    mem::reset_thread_tally();
    for _ in 0..n {
        let t = bravo.read_lock(pid);
        bravo.read_unlock(pid, t);
    }
    let fast_tally = mem::thread_tally();
    assert_eq!(
        fast_tally.ops, 0,
        "instrumented Bravo fast reads touched the inner lock: {fast_tally:?}"
    );
    assert_eq!(fast_tally.cc, 0, "instrumented Bravo fast reads cost CC RMRs: {fast_tally:?}");
    assert_eq!(rec.counter(Event::BravoFastRead), u64::from(n) + 1, "hooks missed fast reads");

    // -- section 3: latency distributions under contention ------------
    let workload = Workload {
        threads: 4,
        read_ratio: 0.9,
        ops_per_thread: if args.quick { 2_000 } else { 50_000 },
    };
    let rec = Arc::new(StatsRecorder::new(cap));
    let lock = Arc::new(Observed::new(MwmrStarvationFree::new(cap), Arc::clone(&rec)));
    run_mixed(Arc::clone(&lock), workload, 0xe19);

    let mut latency = Table::new(&[
        ("lock", "lock"),
        ("op", "op"),
        ("p50 ns", "p50_ns"),
        ("p99 ns", "p99_ns"),
        ("passages", "passages"),
        ("contended", "contended"),
    ]);
    for (op, metric, acq, cont) in [
        ("read", Metric::ReadAcquireNs, Event::ReadAcquire, Event::ReadContended),
        ("write", Metric::WriteAcquireNs, Event::WriteAcquire, Event::WriteContended),
    ] {
        latency.row(vec![
            "fig3-mwmr-sf".into(),
            op.into(),
            rec.quantile(metric, 0.50).to_string(),
            rec.quantile(metric, 0.99).to_string(),
            rec.counter(acq).to_string(),
            rec.counter(cont).to_string(),
        ]);
    }

    // -- optional: replayable event trace -----------------------------
    if let Some(path) = &args.trace_out {
        let rec = Arc::new(StatsRecorder::new(cap).with_ring(65_536));
        let lock = Arc::new(Observed::new(MwmrStarvationFree::new(cap), Arc::clone(&rec)));
        let traced = Workload { ops_per_thread: 2_000, ..workload };
        run_mixed(lock, traced, 0xe19);
        std::fs::write(path, rec.chrome_trace()).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote {} trace events to {path} ({} dropped by the bounded ring)",
            rec.drain_trace().len(),
            rec.ring().map(|r| r.dropped()).unwrap_or(0)
        );
    }

    if args.json {
        // Two sections, one JSON document (Table::json renders each array).
        print!(
            "{{\n\"overhead\": {}, \"latency\": {}}}\n",
            overhead.json().trim_end(),
            latency.json()
        );
    } else {
        println!("# E19 — observability: overhead, zero-cost proof, latency distributions\n");
        println!("## Uncontended overhead (bare vs +noop vs +stats)\n");
        print!("{}", overhead.emit(false));
        println!();
        println!(
            "Zero-cost proofs held: noop-instrumented footprint identical over `Counting` \
             ({} ops), instrumented Bravo fast read still 0 inner ops / 0 CC RMRs.\n",
            bare_tally.ops
        );
        println!("## Contended acquire latency (log-bucket quantiles)\n");
        print!("{}", latency.emit(false));
    }
}
