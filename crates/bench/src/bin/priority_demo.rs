//! E9 — priority semantics on real threads: writer entry latency under a
//! continuous read storm, for the three multi-writer policies.
//!
//! Expected shape: the writer-priority lock (Fig. 4) and the
//! starvation-free lock (Fig. 3 ∘ Fig. 1) bound writer latency; the
//! reader-priority lock (Fig. 3 ∘ Fig. 2) lets the storm delay writers
//! much longer (and with enough readers, forever — that is RP working).
//!
//! ```text
//! cargo run --release -p rmr-bench --bin priority_demo [-- --json --quick]
//! ```

use rmr_bench::cli::{BenchArgs, Table};
use rmr_bench::workloads::writer_latency_under_read_storm;
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::raw::RawRwLock;
use std::sync::Arc;
use std::time::Duration;

fn stats(lat: &[Duration]) -> (usize, Duration, Duration, Duration) {
    if lat.is_empty() {
        return (0, Duration::ZERO, Duration::ZERO, Duration::ZERO);
    }
    let mut sorted: Vec<_> = lat.to_vec();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    (
        sorted.len(),
        total / sorted.len() as u32,
        sorted[sorted.len() / 2],
        *sorted.last().expect("non-empty"),
    )
}

fn main() {
    let args = BenchArgs::parse(
        "priority_demo",
        "E9: writer entry latency under a continuous read storm (real threads)",
    );
    let readers = 3usize;
    let attempts = if args.quick { 40 } else { 200 };
    let budget = if args.quick { Duration::from_secs(2) } else { Duration::from_secs(5) };

    let mut table = Table::new(&[
        ("policy", "policy"),
        ("writes completed", "writes_completed"),
        ("mean", "mean"),
        ("p50", "p50"),
        ("max", "max"),
    ]);
    fn measure<L: RawRwLock + 'static>(
        table: &mut Table,
        name: &str,
        lock: Arc<L>,
        readers: usize,
        attempts: usize,
        budget: Duration,
    ) {
        let lat = writer_latency_under_read_storm(lock, readers, attempts, budget);
        let (n, mean, p50, max) = stats(&lat);
        table.row(vec![
            name.into(),
            n.to_string(),
            format!("{mean:?}"),
            format!("{p50:?}"),
            format!("{max:?}"),
        ]);
    }

    measure(
        &mut table,
        "writer-priority (Fig. 4)",
        Arc::new(MwmrWriterPriority::new(readers + 1)),
        readers,
        attempts,
        budget,
    );
    measure(
        &mut table,
        "starvation-free (Fig. 3 ∘ Fig. 1)",
        Arc::new(MwmrStarvationFree::new(readers + 1)),
        readers,
        attempts,
        budget,
    );
    measure(
        &mut table,
        "reader-priority (Fig. 3 ∘ Fig. 2)",
        Arc::new(MwmrReaderPriority::new(readers + 1)),
        readers,
        attempts,
        budget,
    );

    if args.json {
        print!("{}", table.json());
        return;
    }

    println!("# E9 — writer latency under a {readers}-thread read storm\n");
    println!("(single writer performing up to {attempts} write attempts within {budget:?})\n");
    print!("{}", table.markdown());
    println!(
        "\nReader-priority writers may complete far fewer attempts (or stall\n\
         until the storm ends) — that is RP1 by design, not a bug."
    );
}
