//! E9 — priority semantics on real threads: writer entry latency under a
//! continuous read storm, for the three multi-writer policies.
//!
//! Expected shape: the writer-priority lock (Fig. 4) and the
//! starvation-free lock (Fig. 3 ∘ Fig. 1) bound writer latency; the
//! reader-priority lock (Fig. 3 ∘ Fig. 2) lets the storm delay writers
//! much longer (and with enough readers, forever — that is RP working).
//!
//! ```text
//! cargo run --release -p rmr-bench --bin priority_demo
//! ```

use rmr_bench::workloads::writer_latency_under_read_storm;
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use std::sync::Arc;
use std::time::Duration;

fn stats(lat: &[Duration]) -> (usize, Duration, Duration, Duration) {
    if lat.is_empty() {
        return (0, Duration::ZERO, Duration::ZERO, Duration::ZERO);
    }
    let mut sorted: Vec<_> = lat.to_vec();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    (
        sorted.len(),
        total / sorted.len() as u32,
        sorted[sorted.len() / 2],
        *sorted.last().expect("non-empty"),
    )
}

fn main() {
    let readers = 3usize;
    let attempts = 200usize;
    let budget = Duration::from_secs(5);

    println!("# E9 — writer latency under a {readers}-thread read storm\n");
    println!("(single writer performing up to {attempts} write attempts within {budget:?})\n");
    println!("| policy | writes completed | mean | p50 | max |");
    println!("|---|---|---|---|---|");

    {
        let lock = Arc::new(MwmrWriterPriority::new(readers + 1));
        let lat = writer_latency_under_read_storm(lock, readers, attempts, budget);
        let (n, mean, p50, max) = stats(&lat);
        println!("| writer-priority (Fig. 4) | {n} | {mean:?} | {p50:?} | {max:?} |");
    }
    {
        let lock = Arc::new(MwmrStarvationFree::new(readers + 1));
        let lat = writer_latency_under_read_storm(lock, readers, attempts, budget);
        let (n, mean, p50, max) = stats(&lat);
        println!("| starvation-free (Fig. 3 ∘ Fig. 1) | {n} | {mean:?} | {p50:?} | {max:?} |");
    }
    {
        let lock = Arc::new(MwmrReaderPriority::new(readers + 1));
        let lat = writer_latency_under_read_storm(lock, readers, attempts, budget);
        let (n, mean, p50, max) = stats(&lat);
        println!("| reader-priority (Fig. 3 ∘ Fig. 2) | {n} | {mean:?} | {p50:?} | {max:?} |");
    }

    println!(
        "\nReader-priority writers may complete far fewer attempts (or stall\n\
         until the storm ends) — that is RP1 by design, not a bug."
    );
}
