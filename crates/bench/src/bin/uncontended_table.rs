//! E18 — what the per-site ordering relaxation buys: uncontended
//! read/write passage latency of the real locks under the relaxed
//! [`Native`] backend versus [`SeqCstNative`], the policy backend that
//! forces every operation to `SeqCst` (the pre-relaxation behavior of
//! the whole codebase).
//!
//! Same lock code, same monomorphized structure — the backend type
//! parameter is the only difference, so the ratio column isolates the
//! fence/ordering cost. On x86 the delta is mostly the `mfence`/locked
//! instructions SeqCst stores compile to; on weaker ISAs the relaxed
//! rows also shed acquire/release barriers the sweep proved unnecessary.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin uncontended_table [-- --quick --json]
//! ```

use rmr_baselines::{DistributedFlagRwLock, TicketRwLock};
use rmr_bench::cli::{BenchArgs, Table};
use rmr_bravo::{Bravo, BravoConfig};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use rmr_core::swmr::{SwmrReaderPriority, SwmrWriterPriority};
use rmr_mutex::mem::{Backend, Native, SeqCstNative};
use std::time::Instant;

/// Best-of-reps (minimum) nanoseconds per passage: an uncontended
/// passage is deterministic work, so the minimum is the cleanest
/// estimate of the instruction cost — every slower rep measured the
/// host, not the lock.
fn time_passage(iters: u32, reps: u32, mut passage: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 {
        passage(); // warm-up
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            passage();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    best
}

/// `(read ns/op, write ns/op)` for one lock instance.
fn passages<L: RawRwLock>(lock: &L, iters: u32, reps: u32) -> (f64, f64) {
    let pid = Pid::from_index(0);
    let read = time_passage(iters, reps, || {
        let t = lock.read_lock(pid);
        lock.read_unlock(pid, t);
    });
    let write = time_passage(iters, reps, || {
        let t = lock.write_lock(pid);
        lock.write_unlock(pid, t);
    });
    (read, write)
}

struct RowPair {
    lock: &'static str,
    op: &'static str,
    native_ns: f64,
    seqcst_ns: f64,
}

fn main() {
    let args = BenchArgs::parse(
        "uncontended_table",
        "E18: uncontended passage latency, relaxed Native vs the SeqCst-everywhere policy",
    );
    let (iters, reps) = if args.quick { (5_000u32, 3u32) } else { (200_000, 5) };

    let mut rows: Vec<RowPair> = Vec::new();
    let mut push = |lock: &'static str, native: (f64, f64), seqcst: (f64, f64)| {
        rows.push(RowPair { lock, op: "read", native_ns: native.0, seqcst_ns: seqcst.0 });
        rows.push(RowPair { lock, op: "write", native_ns: native.1, seqcst_ns: seqcst.1 });
    };

    // Each lock is constructed twice from the same source through the two
    // backends; `NAME` keeps us honest about which is which.
    assert_eq!(Native::NAME, "native");
    assert_eq!(SeqCstNative::NAME, "seqcst");

    push(
        "fig1-swmr-wp",
        passages(&SwmrWriterPriority::new_in(Native), iters, reps),
        passages(&SwmrWriterPriority::new_in(SeqCstNative), iters, reps),
    );
    push(
        "fig2-swmr-rp",
        passages(&SwmrReaderPriority::new_in(Native), iters, reps),
        passages(&SwmrReaderPriority::new_in(SeqCstNative), iters, reps),
    );
    push(
        "fig3-mwmr-sf",
        passages(&MwmrStarvationFree::new_in(4, Native), iters, reps),
        passages(&MwmrStarvationFree::new_in(4, SeqCstNative), iters, reps),
    );
    push(
        "fig3-mwmr-rp",
        passages(&MwmrReaderPriority::new_in(4, Native), iters, reps),
        passages(&MwmrReaderPriority::new_in(4, SeqCstNative), iters, reps),
    );
    push(
        "fig4-mwmr-wp",
        passages(&MwmrWriterPriority::new_in(4, Native), iters, reps),
        passages(&MwmrWriterPriority::new_in(4, SeqCstNative), iters, reps),
    );
    push(
        "ticket-rw",
        passages(&TicketRwLock::new_in(4, Native), iters, reps),
        passages(&TicketRwLock::new_in(4, SeqCstNative), iters, reps),
    );
    push(
        "distributed-flag",
        passages(&DistributedFlagRwLock::new_in(4, Native), iters, reps),
        passages(&DistributedFlagRwLock::new_in(4, SeqCstNative), iters, reps),
    );
    let cfg = BravoConfig { table_slots: 64, rebias_after: 16, initial_bias: true };
    push(
        "bravo-ticket-rw",
        passages(&Bravo::new_in(TicketRwLock::new_in(4, Native), cfg, Native), iters, reps),
        passages(
            &Bravo::new_in(TicketRwLock::new_in(4, SeqCstNative), cfg, SeqCstNative),
            iters,
            reps,
        ),
    );

    let mut table = Table::new(&[
        ("lock", "lock"),
        ("op", "op"),
        ("native ns/op", "native_ns_per_op"),
        ("seqcst ns/op", "seqcst_ns_per_op"),
        ("seqcst/native", "ratio"),
    ]);
    for r in &rows {
        table.row(vec![
            r.lock.into(),
            r.op.into(),
            format!("{:.1}", r.native_ns),
            format!("{:.1}", r.seqcst_ns),
            format!("{:.2}", r.seqcst_ns / r.native_ns),
        ]);
    }
    if !args.json {
        println!("# E18 — uncontended passage latency: relaxed vs SeqCst-everywhere\n");
    }
    print!("{}", table.emit(args.json));
}
