//! E1–E5, E10 — the property matrix: every property the paper claims for
//! every algorithm, verified by exhaustive exploration (small instances)
//! plus a randomized schedule battery, with the §3.3/§4.3 mutants run as
//! checker-sensitivity controls.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin property_matrix [-- --quick]
//! ```

use rmr_bench::cli::{BenchArgs, Table};
use rmr_sim::algos::mutants::{Fig1NoExitWait, Fig2Break, Fig2Mutant};
use rmr_sim::algos::{Fig1, Fig2, Fig3Rp, Fig3Sf, Fig4};
use rmr_sim::cost::FreeModel;
use rmr_sim::explore::{explore, StateCheck};
use rmr_sim::invariants::{fig1_invariants, fig2_invariants};
use rmr_sim::props;
use rmr_sim::runner::{RandomSched, Runner};
use rmr_sim::Algorithm;

fn verdict(r: Result<(), String>) -> &'static str {
    match r {
        Ok(()) => "PASS",
        Err(e) => {
            eprintln!("  FAIL detail: {e}");
            "FAIL"
        }
    }
}

fn battery<A: Algorithm>(
    make: impl Fn() -> A,
    seeds: u64,
    fcfs: bool,
    fife: bool,
    rp1: bool,
    wp1: bool,
) -> Vec<(&'static str, &'static str)> {
    let mut out = Vec::new();
    let mut p1 = Ok(());
    let mut p2 = Ok(());
    let mut live = Ok(());
    let mut fcfs_res = Ok(());
    let mut fife_res = Ok(());
    let mut rp1_res = Ok(());
    let mut wp1_res = Ok(());
    for seed in 0..seeds {
        let mut r = Runner::new(make(), FreeModel, 3);
        r.snapshot_cs_entries(fife);
        let mut sched = RandomSched::new(seed);
        r.run(&mut sched, 5_000_000);
        if let Some(v) = r.violations().first() {
            p1 = p1.and(Err(format!("seed {seed}: {}", v.message)));
        }
        live = live.and(props::check_all_complete(r.finished_attempts(), &r.inflight_attempts()));
        p2 = p2.and(props::check_bounded_exit(r.finished_attempts(), 12));
        if fcfs {
            fcfs_res = fcfs_res.and(props::check_fcfs_writers(r.finished_attempts()));
        }
        if fife {
            fife_res = fife_res.and(props::check_fife_readers(
                r.algorithm(),
                r.finished_attempts(),
                r.snapshots(),
                64,
            ));
        }
        if rp1 {
            rp1_res = rp1_res.and(props::check_reader_priority(r.finished_attempts()));
        }
        if wp1 {
            wp1_res = wp1_res.and(props::check_writer_priority(r.finished_attempts()));
        }
    }
    out.push(("P1 mutual exclusion (random)", verdict(p1)));
    out.push(("P2 bounded exit", verdict(p2)));
    out.push(("P6/P7 liveness (fair runs quiesce)", verdict(live)));
    if fcfs {
        out.push(("P3 FCFS writers", verdict(fcfs_res)));
    }
    if fife {
        out.push(("P4 FIFE readers", verdict(fife_res)));
    }
    if rp1 {
        out.push(("RP1 reader priority", verdict(rp1_res)));
    }
    if wp1 {
        out.push(("WP1 writer priority", verdict(wp1_res)));
    }
    out
}

fn print_block(title: &str, rows: &[(&str, &str)]) {
    println!("\n## {title}\n");
    let mut t = Table::new(&[("property", "property"), ("verdict", "verdict")]);
    for (p, v) in rows {
        t.row(vec![p.to_string(), v.to_string()]);
    }
    print!("{}", t.markdown());
}

fn main() {
    let args = BenchArgs::parse(
        "property_matrix",
        "E1-E5, E10: every claimed property, exhaustively + randomized (simulator)",
    );
    let seeds = if args.quick { 4 } else { 20 };
    let budget: usize = if args.quick { 8_000_000 } else { 40_000_000 };
    let mutant_budget: usize = if args.quick { 15_000_000 } else { 60_000_000 };
    println!("# Property matrix (E1–E5, E10)\n");
    println!("Exhaustive = every interleaving of the stated instance; random = {seeds} seeded schedules.");

    // ---- E1: Figure 1 ----
    {
        let alg = Fig1::new(2);
        let checks: [StateCheck<'_, Fig1>; 1] = [&fig1_invariants];
        let report = explore(&alg, &[2, 2, 2], budget, &checks);
        let mut rows = vec![(
            "P1 + Appendix A invariants + no deadlock (exhaustive, 1w+2r×2)",
            if report.clean() { "PASS" } else { "FAIL" },
        )];
        rows.extend(battery(|| Fig1::new(3), seeds, false, true, false, true));
        // Lemma 15 (Waiting Reader Enabled) via snapshots.
        let mut l15 = Ok(());
        for seed in 0..seeds {
            let mut r = Runner::new(Fig1::new(3), FreeModel, 3);
            r.snapshot_cs_entries(true);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, 5_000_000);
            l15 = l15.and(props::check_waiting_reader_enabled(
                r.algorithm(),
                r.finished_attempts(),
                r.snapshots(),
                64,
            ));
        }
        rows.push(("Lemma 15 waiting-reader-enabled", verdict(l15)));
        print_block("E1 — Figure 1 (SWMR, writer priority + starvation freedom, Theorem 1)", &rows);
        println!("\nexploration: {report}");
    }

    // ---- E2: Figure 2 ----
    {
        let alg = Fig2::new(2);
        let checks: [StateCheck<'_, Fig2>; 1] = [&fig2_invariants];
        let report = explore(&alg, &[2, 2, 2], budget, &checks);
        let mut rows = vec![(
            "P1 + Figure 5 invariants + no deadlock (exhaustive, 1w+2r×2)",
            if report.clean() { "PASS" } else { "FAIL" },
        )];
        rows.extend(battery(|| Fig2::new(3), seeds, false, true, true, false));
        // RP2 part 1 via snapshots.
        let mut rp2 = Ok(());
        for seed in 0..seeds {
            let mut r = Runner::new(Fig2::new(3), FreeModel, 3);
            r.snapshot_cs_entries(true);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, 5_000_000);
            rp2 = rp2.and(props::check_unstoppable_readers(r.algorithm(), r.snapshots(), 64));
        }
        rows.push(("RP2(1) unstoppable readers", verdict(rp2)));
        print_block("E2 — Figure 2 (SWMR, reader priority, Theorem 2)", &rows);
        println!("\nexploration: {report}");
    }

    // ---- E3: Figure 3 ∘ Figure 1 ----
    {
        let alg = Fig3Sf::new(2, 1);
        let report = explore(&alg, &[2, 2, 2], budget, &[]);
        let mut rows = vec![(
            "P1 + no deadlock (exhaustive, 2w+1r×2)",
            if report.clean() { "PASS" } else { "FAIL" },
        )];
        rows.extend(battery(|| Fig3Sf::new(2, 3), seeds, true, false, false, false));
        print_block("E3 — Figure 3 over Figure 1 (MWMR, starvation free, Theorem 3)", &rows);
        println!("\nexploration: {report}");
    }

    // ---- E4: Figure 3 ∘ Figure 2 ----
    {
        let alg = Fig3Rp::new(2, 1);
        let report = explore(&alg, &[2, 2, 2], budget, &[]);
        let mut rows = vec![(
            "P1 + no deadlock (exhaustive, 2w+1r×2)",
            if report.clean() { "PASS" } else { "FAIL" },
        )];
        rows.extend(battery(|| Fig3Rp::new(2, 3), seeds, true, false, true, false));
        print_block("E4 — Figure 3 over Figure 2 (MWMR, reader priority, Theorem 4)", &rows);
        println!("\nexploration: {report}");
    }

    // ---- E5: Figure 4 ----
    {
        let alg = Fig4::new(2, 1);
        let report = explore(&alg, &[2, 2, 2], budget, &[]);
        let mut rows = vec![(
            "P1 + no deadlock (exhaustive, 2w+1r×2)",
            if report.clean() { "PASS" } else { "FAIL" },
        )];
        rows.extend(battery(|| Fig4::new(2, 3), seeds, true, false, false, true));
        print_block("E5 — Figure 4 (MWMR, writer priority, Theorem 5)", &rows);
        println!("\nexploration: {report}");
    }

    // ---- Checker-sensitivity controls: the §3.3/§4.3 mutants ----
    {
        println!("\n## Controls — broken variants must FAIL (checker sensitivity)\n");
        let mut controls =
            Table::new(&[("mutant", "mutant"), ("expected", "expected"), ("observed", "observed")]);
        let r = explore(&Fig1NoExitWait::new(2), &[3, 2, 2], mutant_budget, &[]);
        controls.row(vec![
            "fig1 without exit wait (§3.3)".into(),
            "P1 violation".into(),
            if r.violations.is_empty() { "none (BAD)" } else { "P1 violation found" }.into(),
        ]);
        let r = explore(&Fig2Mutant::new(2, Fig2Break::NoFeatureA), &[2, 2, 2], mutant_budget, &[]);
        controls.row(vec![
            "fig2 without feature A (§4.3)".into(),
            "P1 violation".into(),
            if r.violations.is_empty() { "none (BAD)" } else { "P1 violation found" }.into(),
        ]);
        let r = explore(
            &Fig2Mutant::new(2, Fig2Break::NoFeatureB),
            &[3, 3, 3],
            if args.quick { 20_000_000 } else { 80_000_000 },
            &[],
        );
        controls.row(vec![
            "fig2 without feature B (§4.3)".into(),
            "P1 violation".into(),
            if r.violations.is_empty() { "none (BAD)" } else { "P1 violation found" }.into(),
        ]);
        print!("{}", controls.markdown());
    }
}
