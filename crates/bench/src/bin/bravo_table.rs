//! E15 — the Bravo read-mostly sweep: BRAVO-wrapped vs. bare locks, plus
//! the Counting-backend proof that the biased fast path never touches the
//! inner lock.
//!
//! Two sections:
//!
//! * **Throughput** (`rmr_bench::workloads::run_read_mostly`): 95/99/100%
//!   read mixes over fig1 (single-writer, writer priority), the ticket-RW
//!   baseline and `std::sync::RwLock`, each bare and wrapped in
//!   [`Bravo`]. Only thread 0 ever writes (that is what makes the same
//!   driver legal for the SWMR lock); `read_pct` is that thread's read
//!   share, the remaining threads read unconditionally.
//! * **Biased steady state** (the subsystem's acceptance criterion): the
//!   inner lock is instantiated over the `Counting` backend while the
//!   wrapper stays on `Native`, so the per-thread tally counts *only*
//!   inner-lock operations. Reader threads then hammer read passages in
//!   the biased steady state; the maximum tally over every passage of
//!   every thread must be **zero shared operations** (hence zero shared
//!   stores) on the inner lock. A nonzero count fails the binary.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin bravo_table -- [--quick] [--json]
//! ```
//!
//! With `--json` the two sections are emitted as one object:
//! `{"throughput": [...], "steady_state": [...]}`.

use rmr_baselines::{StdRwLock, TicketRwLock};
use rmr_bench::cli::{BenchArgs, Table};
use rmr_bench::workloads::{run_read_mostly, Workload};
use rmr_bravo::{Bravo, BravoConfig};
use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use rmr_core::swmr::SwmrWriterPriority;
use rmr_mutex::mem::{self, Counting, Native};
use std::sync::{Arc, Barrier};

const SEED: u64 = 0xB2A0;
const THREADS: usize = 4;

fn throughput_row<L: RawRwLock + 'static>(
    table: &mut Table,
    name: &str,
    wrapped: bool,
    make: impl Fn() -> L,
    read_pct: u32,
    ops_per_thread: usize,
    reps: u32,
) {
    let workload =
        Workload { threads: THREADS, read_ratio: f64::from(read_pct) / 100.0, ops_per_thread };
    // Warm-up rep (also an exclusion check: run_read_mostly panics on a
    // lost update).
    run_read_mostly(Arc::new(make()), workload, SEED);
    let mut ops = 0u64;
    let mut secs = 0f64;
    for _ in 0..reps {
        let res = run_read_mostly(Arc::new(make()), workload, SEED);
        ops += res.ops;
        secs += res.elapsed.as_secs_f64();
    }
    table.row(vec![
        name.to_string(),
        if wrapped { "bravo" } else { "bare" }.to_string(),
        read_pct.to_string(),
        ops.to_string(),
        format!("{:.1}", ops as f64 / secs),
    ]);
}

/// Picks a table size for which `readers` distinct pids occupy distinct
/// slots, so every measured passage is guaranteed the fast path.
fn injective_table_slots<L: RawRwLock>(
    make: impl Fn(BravoConfig) -> Bravo<L, Native>,
    readers: usize,
) -> usize {
    let mut slots = 64;
    loop {
        let probe = make(BravoConfig { table_slots: slots, ..BravoConfig::default() });
        let mut seen = std::collections::HashSet::new();
        if (0..readers).all(|i| seen.insert(probe.slot_index(Pid::from_index(i)))) {
            return slots;
        }
        slots *= 2;
        assert!(slots <= 1 << 16, "no injective table for {readers} pids");
    }
}

/// Runs `readers` threads over a Bravo wrapper whose inner lock counts
/// its shared operations; returns the worst per-passage inner-op count
/// observed in the biased steady state (after one warm-up passage each).
fn biased_steady_state_inner_ops<L: RawRwLock + Send + Sync + 'static>(
    make: impl Fn(BravoConfig) -> Bravo<L, Native>,
    readers: usize,
    passages: usize,
) -> u64 {
    let slots = injective_table_slots(&make, readers);
    let lock = Arc::new(make(BravoConfig { table_slots: slots, ..BravoConfig::default() }));
    let barrier = Arc::new(Barrier::new(readers));
    let mut handles = Vec::new();
    for i in 0..readers {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            mem::set_thread_slot(i);
            let pid = Pid::from_index(i);
            // Warm-up: the first passage publishes the slot's cache line;
            // it is already fast, but keep the measurement strictly
            // steady-state.
            let t = lock.read_lock(pid);
            assert!(t.is_fast(), "pid {i} fell off the fast path despite an injective table");
            lock.read_unlock(pid, t);
            barrier.wait();
            let mut worst = 0u64;
            for _ in 0..passages {
                mem::reset_thread_tally();
                let t = lock.read_lock(pid);
                lock.read_unlock(pid, t);
                worst = worst.max(mem::thread_tally().ops);
            }
            worst
        }));
    }
    handles.into_iter().map(|h| h.join().expect("steady-state thread panicked")).max().unwrap_or(0)
}

fn main() {
    let args = BenchArgs::parse(
        "bravo_table",
        "E15: Bravo read-mostly throughput + Counting proof of the zero-inner-op fast path",
    );
    let (ops_per_thread, reps, passages) =
        if args.quick { (400, 2, 300) } else { (4_000, 3, 5_000) };

    let mut throughput = Table::new(&[
        ("lock", "lock"),
        ("path", "path"),
        ("read %", "read_pct"),
        ("ops", "ops"),
        ("ops/s", "ops_per_sec"),
    ]);
    for read_pct in [95u32, 99, 100] {
        throughput_row(
            &mut throughput,
            "fig1-swmr-wp",
            false,
            SwmrWriterPriority::new,
            read_pct,
            ops_per_thread,
            reps,
        );
        throughput_row(
            &mut throughput,
            "fig1-swmr-wp",
            true,
            || Bravo::new(SwmrWriterPriority::new()),
            read_pct,
            ops_per_thread,
            reps,
        );
        throughput_row(
            &mut throughput,
            "ticket-rw",
            false,
            || TicketRwLock::new(THREADS),
            read_pct,
            ops_per_thread,
            reps,
        );
        throughput_row(
            &mut throughput,
            "ticket-rw",
            true,
            || Bravo::new(TicketRwLock::new(THREADS)),
            read_pct,
            ops_per_thread,
            reps,
        );
        throughput_row(
            &mut throughput,
            "std-rwlock",
            false,
            || StdRwLock::new(THREADS),
            read_pct,
            ops_per_thread,
            reps,
        );
        throughput_row(
            &mut throughput,
            "std-rwlock",
            true,
            || Bravo::new(StdRwLock::new(THREADS)),
            read_pct,
            ops_per_thread,
            reps,
        );
    }

    let mut steady = Table::new(&[
        ("inner lock", "inner"),
        ("readers", "readers"),
        ("passages/thread", "passages"),
        ("max inner ops/passage", "max_inner_ops"),
        ("result", "result"),
    ]);
    let mut violations = 0u64;
    {
        let worst = biased_steady_state_inner_ops(
            |cfg| Bravo::new_in(SwmrWriterPriority::new_in(Counting), cfg, Native),
            THREADS,
            passages,
        );
        violations += worst;
        steady.row(vec![
            "fig1-swmr-wp".into(),
            THREADS.to_string(),
            passages.to_string(),
            worst.to_string(),
            if worst == 0 { "ok (zero shared stores)".into() } else { "FAIL".into() },
        ]);
    }
    {
        let worst = biased_steady_state_inner_ops(
            |cfg| Bravo::new_in(TicketRwLock::new_in(THREADS, Counting), cfg, Native),
            THREADS,
            passages,
        );
        violations += worst;
        steady.row(vec![
            "ticket-rw".into(),
            THREADS.to_string(),
            passages.to_string(),
            worst.to_string(),
            if worst == 0 { "ok (zero shared stores)".into() } else { "FAIL".into() },
        ]);
    }

    if args.json {
        print!(
            "{{\n\"throughput\": {},\n\"steady_state\": {}\n}}\n",
            throughput.json().trim_end(),
            steady.json().trim_end()
        );
    } else {
        println!("Read-mostly throughput (thread 0 is the only writer; {THREADS} threads):\n");
        print!("{}", throughput.markdown());
        println!("\nBiased steady state — inner-lock operations per read passage (Counting):\n");
        print!("{}", steady.markdown());
    }

    if violations != 0 {
        eprintln!("biased fast path touched the inner lock ({violations} ops) — see table");
        std::process::exit(1);
    }
}
