//! The perf-trajectory gate: diffs a freshly regenerated `bench_summary`
//! blob against the committed `BENCH_<pr>.json` (BENCH_SCHEMA.md) and
//! fails on a missing row or a throughput regression beyond the
//! threshold — so a perf cliff surfaces in review, not in production.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin bench_diff -- \
//!     BENCH_5.json bench_summary.json [--max-regress 30] [--json]
//! ```
//!
//! Gate semantics:
//!
//! * **Schema** — both blobs must carry the same `schema` id. A `quick`
//!   flag mismatch is warned about (the amortization profiles differ —
//!   diff like against like) but does not fail the gate by itself.
//! * **Missing rows** — every `(lock, read_pct)` throughput row and every
//!   `(lock, op)` uncontended row of the committed blob must exist in the
//!   fresh one. Rows only the fresh blob has are fine (a new lock is not
//!   a schema bump) and are reported as `new`.
//! * **Throughput regression** — gated on the *host-normalized* ratio:
//!   the gate first computes the median of `fresh / committed` across all
//!   throughput rows (the host factor — a CI runner that is uniformly 2×
//!   slower than the machine that committed the trajectory shifts every
//!   row equally), then fails any row whose normalized throughput is more
//!   than `--max-regress` percent (default 30) below that factor. One
//!   lock falling off a cliff trips the gate; the whole fleet drifting
//!   together does not (by design — that is a host change, and the raw
//!   deltas stay visible in the table). Uncontended `ns_per_op` drift is
//!   *reported* but not gated: single-thread nanosecond latencies on a
//!   shared CI runner are too noisy to block on.
//! * **p99 latency regression** (schema v3) — the `latency` rows carry
//!   log-bucket p50/p99 acquire latencies from the instrumented `@obs`
//!   runs. The p99 column is gated with the same normalized >30% rule,
//!   direction flipped (lower is better), under its *own* host factor
//!   (nanoseconds scale inversely to ops/sec, so the throughput factor
//!   cannot be reused). The buckets are octaves, so a single-bucket tail
//!   jump (+100%) trips the gate by construction — a p99 that moved a
//!   whole bucket while the rest of the fleet held still is exactly the
//!   tail regression the section exists to catch. p50 drift is reported
//!   via the table but not gated.
//!
//! Treat a red gate on new hardware as a prompt to refresh the
//! trajectory, per BENCH_SCHEMA.md.

use rmr_bench::cli::Table;
use rmr_bench::jsonio::Json;
use std::process::ExitCode;

struct Args {
    committed: String,
    fresh: String,
    max_regress_pct: f64,
    json: bool,
}

fn usage() -> String {
    "perf-trajectory gate: diff a fresh bench_summary blob against the committed trajectory\n\n\
     Usage: cargo run --release -p rmr-bench --bin bench_diff -- \
     <committed.json> <fresh.json> [--max-regress <pct>] [--json]\n\n\
     Options:\n  \
     --max-regress <pct>  throughput drop (percent) that fails the gate (default 30)\n  \
     --json               emit the diff table as JSON instead of markdown\n  \
     --help               print this message"
        .into()
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut max_regress_pct = 30.0;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--max-regress" => {
                let value = args.next().unwrap_or_default();
                max_regress_pct = value.parse().unwrap_or_else(|_| {
                    eprintln!("--max-regress needs a number, got {value:?}\n\n{}", usage());
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                std::process::exit(2);
            }
        }
    }
    if positional.len() != 2 {
        eprintln!("expected exactly two files, got {}\n\n{}", positional.len(), usage());
        std::process::exit(2);
    }
    let fresh = positional.pop().expect("len checked");
    let committed = positional.pop().expect("len checked");
    Args { committed, fresh, max_regress_pct, json }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

/// One comparable row: section, identity key, and the compared metric.
struct Row {
    section: &'static str,
    lock: String,
    key: String,
    metric: f64,
}

/// Flattens a blob's `throughput` and `uncontended` arrays into keyed
/// rows; exits 2 on shape violations (a malformed blob is an
/// infrastructure failure, not a perf regression).
fn rows_of(blob: &Json, path: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    for (section, key_field, metric_field) in [
        ("throughput", "read_pct", "ops_per_sec"),
        ("uncontended", "op", "ns_per_op"),
        ("latency", "op", "p99_ns"),
    ] {
        let entries = match blob.get(section).and_then(Json::as_array) {
            Some(entries) => entries,
            // `latency` arrived with schema v3; tolerate its absence so
            // the binary can still diff a pair of pre-v3 blobs (the
            // schema equality check upstream keeps mixed pairs out).
            None if section == "latency" => continue,
            None => {
                eprintln!("{path}: missing `{section}` array");
                std::process::exit(2);
            }
        };
        for entry in entries {
            let lock = entry.get("lock").and_then(Json::as_str);
            let key = entry.get(key_field).map(|k| match k {
                Json::Num(n) => format!("{n}"),
                Json::Str(s) => s.clone(),
                other => format!("{other:?}"),
            });
            let metric = entry.get(metric_field).and_then(Json::as_f64);
            match (lock, key, metric) {
                (Some(lock), Some(key), Some(metric)) => {
                    rows.push(Row { section, lock: lock.into(), key, metric });
                }
                _ => {
                    eprintln!("{path}: malformed `{section}` entry: {entry:?}");
                    std::process::exit(2);
                }
            }
        }
    }
    rows
}

fn main() -> ExitCode {
    let args = parse_args();
    let committed = load(&args.committed);
    let fresh = load(&args.fresh);

    let committed_schema = committed.get("schema").and_then(Json::as_str).unwrap_or("<none>");
    let fresh_schema = fresh.get("schema").and_then(Json::as_str).unwrap_or("<none>");
    if committed_schema != fresh_schema {
        eprintln!(
            "schema mismatch: {} has {committed_schema:?}, {} has {fresh_schema:?} — \
             regenerate the trajectory (BENCH_SCHEMA.md)",
            args.committed, args.fresh
        );
        return ExitCode::from(1);
    }

    if committed.get("quick").and_then(Json::as_bool) != fresh.get("quick").and_then(Json::as_bool)
    {
        eprintln!(
            "bench-diff: WARNING — `quick` flags differ between {} and {}; iteration-count \
             amortization differs, diff like against like (BENCH_SCHEMA.md)",
            args.committed, args.fresh
        );
    }

    let committed_rows = rows_of(&committed, &args.committed);
    let fresh_rows = rows_of(&fresh, &args.fresh);
    let find = |section: &str, lock: &str, key: &str| {
        fresh_rows
            .iter()
            .find(|r| r.section == section && r.lock == lock && r.key == key)
            .map(|r| r.metric)
    };

    // The host factor: the median fresh/committed ratio within a
    // section. A uniformly slower (or faster) host moves every row by
    // this factor; the gate fires on rows that diverge substantially
    // from it. Latency (nanoseconds, scales inversely to ops/sec) gets
    // its own factor rather than reusing the throughput one.
    let factor_for = |section: &str| {
        let mut ratios: Vec<f64> = committed_rows
            .iter()
            .filter(|r| r.section == section)
            .filter_map(|r| Some(find(r.section, &r.lock, &r.key)? / r.metric))
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        if ratios.is_empty() {
            1.0
        } else {
            ratios[ratios.len() / 2]
        }
    };
    let host_factor = factor_for("throughput");
    let latency_factor = factor_for("latency");

    let mut table = Table::new(&[
        ("section", "section"),
        ("lock", "lock"),
        ("key", "key"),
        ("committed", "committed"),
        ("fresh", "fresh"),
        ("delta", "delta_pct"),
        ("normalized", "normalized_pct"),
        ("status", "status"),
    ]);
    let mut failures: Vec<String> = Vec::new();
    for row in &committed_rows {
        let (fresh_metric, delta_pct, norm_pct, status) =
            match find(row.section, &row.lock, &row.key) {
                None => {
                    failures.push(format!("{}/{}/{}: row missing", row.section, row.lock, row.key));
                    (String::new(), String::new(), String::new(), "MISSING")
                }
                Some(metric) => {
                    let factor =
                        if row.section == "latency" { latency_factor } else { host_factor };
                    let delta = (metric / row.metric - 1.0) * 100.0;
                    let normalized = (metric / (row.metric * factor) - 1.0) * 100.0;
                    // Throughput: higher is better, gate on normalized
                    // drops. Latency (p99): lower is better, gate on
                    // normalized rises. The uncontended rows are
                    // report-only (see module docs).
                    let gated = match row.section {
                        "throughput" => -normalized > args.max_regress_pct,
                        "latency" => normalized > args.max_regress_pct,
                        _ => false,
                    };
                    let status = if gated {
                        let unit = if row.section == "throughput" { "ops/s" } else { "ns p99" };
                        failures.push(format!(
                            "{}/{}/{}: {:.0} -> {:.0} {unit} ({normalized:+.1}% vs the host \
                             factor {factor:.2}, gate {:.0}%)",
                            row.section,
                            row.lock,
                            row.key,
                            row.metric,
                            metric,
                            args.max_regress_pct
                        ));
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    (
                        format!("{metric:.1}"),
                        format!("{delta:+.1}%"),
                        if row.section == "uncontended" {
                            String::new()
                        } else {
                            format!("{normalized:+.1}%")
                        },
                        status,
                    )
                }
            };
        table.row(vec![
            row.section.into(),
            row.lock.clone(),
            row.key.clone(),
            format!("{:.1}", row.metric),
            fresh_metric,
            delta_pct,
            norm_pct,
            status.into(),
        ]);
    }
    for row in &fresh_rows {
        let known = committed_rows
            .iter()
            .any(|c| c.section == row.section && c.lock == row.lock && c.key == row.key);
        if !known {
            table.row(vec![
                row.section.into(),
                row.lock.clone(),
                row.key.clone(),
                String::new(),
                format!("{:.1}", row.metric),
                String::new(),
                String::new(),
                "new".into(),
            ]);
        }
    }
    print!("{}", table.emit(args.json));

    if failures.is_empty() {
        eprintln!(
            "bench-diff: {} rows compared against {} (host factor {host_factor:.2}), none \
             beyond the {:.0}% gate",
            committed_rows.len(),
            args.committed,
            args.max_regress_pct
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench-diff FAILED: {f}");
        }
        ExitCode::from(1)
    }
}
