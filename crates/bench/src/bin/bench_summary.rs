//! Perf-trajectory snapshot: runs the mixed-throughput and uncontended
//! benches at fixed seeds and populations and emits one machine-readable
//! JSON blob, so successive PRs can diff `BENCH_*.json` runs and spot
//! drift. The schema is documented in `BENCH_SCHEMA.md` at the workspace
//! root; bump `schema` there and here together.
//!
//! Always emits JSON (that is its purpose); `--quick` shrinks the
//! iteration counts for CI smoke runs. Absolute numbers are
//! machine-dependent — diff runs from the same host only.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin bench_summary [-- --quick] > BENCH_host.json
//! ```

use rmr_async::AsyncRwLock;
use rmr_baselines::{
    CentralizedRwLock, DistributedFlagRwLock, StdRwLock, TicketRwLock, TournamentRwLock,
};
use rmr_bench::cli::{json_string, BenchArgs};
use rmr_bench::workloads::{
    run_async_mixed, run_async_writer_latency, run_mixed, run_snapshot_read_mostly, Workload,
};
use rmr_bravo::Bravo;
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use rmr_core::swmr::SwmrWriterPriority;
use rmr_core::Observed;
use rmr_mutex::mem::SeqCstNative;
use rmr_obs::{Metric, StatsRecorder};
use rmr_swap::{RetireEager, Snapshot};
use std::sync::Arc;
use std::time::Instant;

/// Stable schema identifier; see BENCH_SCHEMA.md. v2: `ops_per_sec` is
/// the **best rep** (max over the timed repetitions), not the pooled
/// rate — one descheduled rep on a noisy host no longer halves a row,
/// which is what makes the `bench_diff` trajectory gate stable enough to
/// block CI on. v3: `@obs` twin rows (the same tiers instrumented with a
/// live `StatsRecorder`, so the trajectory tracks what observability
/// costs — the `@seqcst` pattern applied to the rmr-obs tier) and the
/// `latency` array (log-bucket p50/p99 acquire latencies from the
/// instrumented contended runs; `bench_diff` gates the p99 column).
const SCHEMA: &str = "rmr-bench-summary/v3";
const SEED: u64 = 0xBEEF;
const THREADS: usize = 4;

struct ThroughputEntry {
    lock: &'static str,
    // f64 so the snapshot tier's 99.9 mix fits; integral percentages
    // Display as before ("50", not "50.0"), so committed rows keep their
    // keys.
    read_pct: f64,
    ops: u64,
    ops_per_sec: f64,
}

struct UncontendedEntry {
    lock: &'static str,
    op: &'static str,
    ns_per_op: f64,
}

struct LatencyEntry {
    lock: &'static str,
    op: &'static str,
    p50_ns: u64,
    p99_ns: u64,
}

/// The best-rep rule applied to tails: one quantile per *rep* (each rep
/// gets a fresh recorder), keeping the minimum across reps. A pooled
/// histogram lets a single descheduled rep own the p99 forever, and the
/// log buckets are octaves — one such rep flips a gated row by +100%.
/// The per-rep minimum is the same envelope `ops_per_sec` already uses:
/// the best the lock demonstrably achieves, which is the stable quantity
/// a trajectory can diff.
struct LatencyMin {
    p50: u64,
    p99: u64,
}

impl LatencyMin {
    fn new() -> Self {
        Self { p50: u64::MAX, p99: u64::MAX }
    }

    fn absorb(&mut self, rec: &StatsRecorder, metric: Metric) {
        if rec.samples(metric) == 0 {
            return; // e.g. the 100%-read snapshot mix never grace-scans
        }
        self.p50 = self.p50.min(rec.quantile(metric, 0.50));
        self.p99 = self.p99.min(rec.quantile(metric, 0.99));
    }

    fn push(self, out: &mut Vec<LatencyEntry>, lock: &'static str, op: &'static str) {
        assert!(self.p99 != u64::MAX, "{lock}/{op}: no rep recorded a latency sample");
        out.push(LatencyEntry { lock, op, p50_ns: self.p50, p99_ns: self.p99 });
    }
}

/// The schema-v2 aggregation rule, in one place: one warm-up run (which
/// also validates — the workload drivers panic on lost updates), then
/// `reps` timed runs keeping the **fastest** rate. A rep that lost its
/// timeslice measures the scheduler, not the lock, and would poison the
/// trajectory diff.
fn best_of_reps(reps: u32, run: impl Fn() -> rmr_bench::workloads::WorkloadResult) -> (u64, f64) {
    run(); // warm-up
    let mut ops = 0u64;
    let mut best = 0f64;
    for _ in 0..reps {
        let res = run();
        ops = res.ops;
        best = best.max(res.ops_per_sec());
    }
    (ops, best)
}

fn throughput<L: RawRwLock + 'static>(
    out: &mut Vec<ThroughputEntry>,
    name: &'static str,
    make: impl Fn() -> L,
    ops_per_thread: usize,
    reps: u32,
) {
    for read_pct in [50.0f64, 90.0, 99.0] {
        let workload = Workload { threads: THREADS, read_ratio: read_pct / 100.0, ops_per_thread };
        let (ops, best) = best_of_reps(reps, || run_mixed(Arc::new(make()), workload, SEED));
        out.push(ThroughputEntry { lock: name, read_pct, ops, ops_per_sec: best });
    }
}

fn uncontended<L: RawRwLock>(
    out: &mut Vec<UncontendedEntry>,
    name: &'static str,
    lock: &L,
    iters: u32,
) {
    let pid = Pid::from_index(0);
    let mut time_op = |op: &'static str, f: &mut dyn FnMut()| {
        for _ in 0..iters / 10 {
            f(); // warm-up
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / f64::from(iters);
        out.push(UncontendedEntry { lock: name, op, ns_per_op: ns });
    };
    time_op("read", &mut || {
        let t = lock.read_lock(pid);
        lock.read_unlock(pid, t);
    });
    time_op("write", &mut || {
        let t = lock.write_lock(pid);
        lock.write_unlock(pid, t);
    });
}

fn main() {
    let args = BenchArgs::parse(
        "bench_summary",
        "Perf-trajectory snapshot: throughput + uncontended latency as one JSON blob",
    );
    // Quick mode runs more, longer reps than it used to (300 ops × 3):
    // the committed trajectory is a --quick blob, and on a small CI host
    // a 4-thread rep measuring ~100µs of work is scheduler jitter, not
    // lock behavior — the best-of envelope only stabilizes once reps
    // outnumber the bad-timeslice draws. Both sides of the bench_diff
    // gate regenerate under the same profile, so this is not a schema
    // change.
    let (ops_per_thread, reps, iters) =
        if args.quick { (600, 8, 5_000) } else { (2_000, 3, 50_000) };

    let mut tp: Vec<ThroughputEntry> = Vec::new();
    throughput(
        &mut tp,
        "fig3-starvation-free",
        || MwmrStarvationFree::new(THREADS),
        ops_per_thread,
        reps,
    );
    throughput(
        &mut tp,
        "fig3-reader-priority",
        || MwmrReaderPriority::new(THREADS),
        ops_per_thread,
        reps,
    );
    throughput(
        &mut tp,
        "fig4-writer-priority",
        || MwmrWriterPriority::new(THREADS),
        ops_per_thread,
        reps,
    );
    throughput(
        &mut tp,
        "centralized-1971",
        || CentralizedRwLock::new(THREADS),
        ops_per_thread,
        reps,
    );
    throughput(&mut tp, "ticket-rw", || TicketRwLock::new(THREADS), ops_per_thread, reps);
    throughput(
        &mut tp,
        "distributed-flag",
        || DistributedFlagRwLock::new(THREADS),
        ops_per_thread,
        reps,
    );
    throughput(&mut tp, "tournament-tree", || TournamentRwLock::new(THREADS), ops_per_thread, reps);
    throughput(&mut tp, "std-rwlock", || StdRwLock::new(THREADS), ops_per_thread, reps);
    throughput(
        &mut tp,
        "bravo-ticket-rw",
        || Bravo::new(TicketRwLock::new(THREADS)),
        ops_per_thread,
        reps,
    );
    throughput(
        &mut tp,
        "bravo-fig3-sf",
        || Bravo::new(MwmrStarvationFree::new(THREADS)),
        ops_per_thread,
        reps,
    );
    // The async tier (rmr-async): the same mixed workload with every
    // operation a read()/write() await pair — parking and wake-ups on the
    // measured path, so a wake-path regression shows in the trajectory.
    for read_pct in [50.0f64, 90.0, 99.0] {
        let workload = Workload { threads: THREADS, read_ratio: read_pct / 100.0, ops_per_thread };
        let make = || Arc::new(AsyncRwLock::with_raw(0u64, TicketRwLock::new(THREADS)));
        let (ops, best) = best_of_reps(reps, || run_async_mixed(make(), workload, SEED));
        tp.push(ThroughputEntry { lock: "async-ticket-rw", read_pct, ops, ops_per_sec: best });
    }
    // The snapshot tier (rmr-swap): read-mostly only — `Snapshot` is not
    // a lock, so it gets its designated-writer driver; the mixes sit
    // where the tier is meant to live (99%+ reads; 100% = nobody ever
    // swaps).
    for read_pct in [99.0f64, 99.9, 100.0] {
        let workload = Workload { threads: THREADS, read_ratio: read_pct / 100.0, ops_per_thread };
        let make =
            || Arc::new(Snapshot::with_raw(0u64, MwmrStarvationFree::new(THREADS), RetireEager));
        let (ops, best) = best_of_reps(reps, || run_snapshot_read_mostly(make(), workload, SEED));
        tp.push(ThroughputEntry { lock: "swap-snapshot", read_pct, ops, ops_per_sec: best });
    }

    // The `@obs` twins (E19): the same tiers instrumented with a live
    // `StatsRecorder`, following the `@seqcst` twin-row pattern — the
    // gap between a row and its twin is what observability costs, and a
    // hook that quietly lands on a fast path shows up as the `@obs` gap
    // widening across PRs. Each timed rep gets a fresh recorder; the
    // per-rep histograms feed the best-rep latency envelope below.
    let mut lat: Vec<LatencyEntry> = Vec::new();
    let (mut bravo_read, mut bravo_write) = (LatencyMin::new(), LatencyMin::new());
    for read_pct in [50.0f64, 90.0, 99.0] {
        let workload = Workload { threads: THREADS, read_ratio: read_pct / 100.0, ops_per_thread };
        let run = |rec: &Arc<StatsRecorder>| {
            let lock = Observed::new(Bravo::new(TicketRwLock::new(THREADS)), Arc::clone(rec));
            run_mixed(Arc::new(lock), workload, SEED)
        };
        run(&Arc::new(StatsRecorder::new(THREADS))); // warm-up
        let (mut ops, mut best) = (0u64, 0f64);
        for _ in 0..reps {
            let rec = Arc::new(StatsRecorder::new(THREADS));
            let res = run(&rec);
            ops = res.ops;
            best = best.max(res.ops_per_sec());
            bravo_read.absorb(&rec, Metric::ReadAcquireNs);
            bravo_write.absorb(&rec, Metric::WriteAcquireNs);
        }
        tp.push(ThroughputEntry { lock: "bravo-ticket-rw@obs", read_pct, ops, ops_per_sec: best });
    }
    bravo_read.push(&mut lat, "bravo-ticket-rw@obs", "read");
    bravo_write.push(&mut lat, "bravo-ticket-rw@obs", "write");
    let (mut async_read, mut async_write) = (LatencyMin::new(), LatencyMin::new());
    for read_pct in [50.0f64, 90.0, 99.0] {
        let workload = Workload { threads: THREADS, read_ratio: read_pct / 100.0, ops_per_thread };
        let run = |rec: &Arc<StatsRecorder>| {
            let lock = AsyncRwLock::with_raw(0u64, TicketRwLock::new(THREADS))
                .with_recorder(Arc::clone(rec));
            run_async_mixed(Arc::new(lock), workload, SEED)
        };
        run(&Arc::new(StatsRecorder::new(THREADS))); // warm-up
        let (mut ops, mut best) = (0u64, 0f64);
        for _ in 0..reps {
            let rec = Arc::new(StatsRecorder::new(THREADS));
            let res = run(&rec);
            ops = res.ops;
            best = best.max(res.ops_per_sec());
            async_read.absorb(&rec, Metric::ReadAcquireNs);
            async_write.absorb(&rec, Metric::WriteAcquireNs);
        }
        tp.push(ThroughputEntry { lock: "async-ticket-rw@obs", read_pct, ops, ops_per_sec: best });
    }
    async_read.push(&mut lat, "async-ticket-rw@obs", "read");
    async_write.push(&mut lat, "async-ticket-rw@obs", "write");
    // The `async-fair` rows (E20): the writer's grant latency under
    // sustained read pressure, tokened (`write().await` holds a real
    // doorway in the raw queue) vs untokened (the bare try-poll shape
    // this redesign replaced). The tokened p99 is the gated row; the
    // untokened twin stays in the blob so the gap — what the waiter
    // token is worth at the tail — is diffable across PRs.
    for (op, tokened) in [("write-tokened", true), ("write-untokened", false)] {
        let readers = THREADS - 1;
        let (writes, between) = (8, ops_per_thread / 8);
        let run = || {
            let lock = Arc::new(AsyncRwLock::with_raw(0u64, TicketRwLock::new(THREADS)));
            run_async_writer_latency(lock, readers, ops_per_thread, writes, between, tokened)
        };
        run(); // warm-up
        let mut env = LatencyMin::new();
        for _ in 0..reps {
            let mut samples = run();
            samples.sort_unstable();
            let idx = |q: f64| ((samples.len() - 1) as f64 * q).round() as usize;
            env.p50 = env.p50.min(samples[idx(0.50)]);
            env.p99 = env.p99.min(samples[idx(0.99)]);
        }
        env.push(&mut lat, "async-fair-ticket", op);
    }
    // The snapshot tier has no acquire path; its tail-latency story is
    // the writer's grace scan, reported under the `grace-scan` op.
    let mut swap_scan = LatencyMin::new();
    for read_pct in [99.0f64, 99.9, 100.0] {
        let workload = Workload { threads: THREADS, read_ratio: read_pct / 100.0, ops_per_thread };
        let run = |rec: &Arc<StatsRecorder>| {
            let snap = Snapshot::with_raw(0u64, MwmrStarvationFree::new(THREADS), RetireEager)
                .with_recorder(Arc::clone(rec));
            run_snapshot_read_mostly(Arc::new(snap), workload, SEED)
        };
        run(&Arc::new(StatsRecorder::new(THREADS))); // warm-up
        let (mut ops, mut best) = (0u64, 0f64);
        for _ in 0..reps {
            let rec = Arc::new(StatsRecorder::new(THREADS));
            let res = run(&rec);
            ops = res.ops;
            best = best.max(res.ops_per_sec());
            swap_scan.absorb(&rec, Metric::GraceScanNs);
        }
        tp.push(ThroughputEntry { lock: "swap-snapshot@obs", read_pct, ops, ops_per_sec: best });
    }
    swap_scan.push(&mut lat, "swap-snapshot@obs", "grace-scan");

    let mut un: Vec<UncontendedEntry> = Vec::new();
    uncontended(&mut un, "fig3-starvation-free", &MwmrStarvationFree::new(4), iters);
    uncontended(&mut un, "fig3-reader-priority", &MwmrReaderPriority::new(4), iters);
    uncontended(&mut un, "fig4-writer-priority", &MwmrWriterPriority::new(4), iters);
    uncontended(&mut un, "centralized-1971", &CentralizedRwLock::new(4), iters);
    uncontended(&mut un, "ticket-rw", &TicketRwLock::new(4), iters);
    uncontended(&mut un, "distributed-flag", &DistributedFlagRwLock::new(4), iters);
    uncontended(&mut un, "tournament-tree-n4", &TournamentRwLock::new(4), iters);
    uncontended(&mut un, "tournament-tree-n64", &TournamentRwLock::new(64), iters);
    uncontended(&mut un, "std-rwlock", &StdRwLock::new(4), iters);
    uncontended(&mut un, "bravo-ticket-rw", &Bravo::new(TicketRwLock::new(4)), iters);
    uncontended(&mut un, "bravo-fig3-sf", &Bravo::new(MwmrStarvationFree::new(4)), iters);
    // The SeqCst-everywhere policy twins (E18): the same locks through
    // `SeqCstNative`, so the trajectory tracks what the per-site ordering
    // relaxation is worth — and a future sweep that quietly re-promotes
    // sites shows up as the `@seqcst` gap closing.
    uncontended(
        &mut un,
        "fig3-starvation-free@seqcst",
        &MwmrStarvationFree::new_in(4, SeqCstNative),
        iters,
    );
    uncontended(
        &mut un,
        "fig4-writer-priority@seqcst",
        &MwmrWriterPriority::new_in(4, SeqCstNative),
        iters,
    );
    uncontended(
        &mut un,
        "distributed-flag@seqcst",
        &DistributedFlagRwLock::new_in(4, SeqCstNative),
        iters,
    );
    // The `@obs` twins for the single-thread constants, where a stray
    // nanosecond is most visible. fig1 is single-writer, so the paper's
    // flagship lock lives here rather than in the multi-writer mixed
    // workload; its bare row lands alongside the twin so the pair is
    // diffable in one place. The twins run a *live* `StatsRecorder` —
    // the NoopRecorder build is bit-identical to the bare rows by
    // construction (obs_table proves it op-for-op over `Counting`), so a
    // noop twin would just re-measure the base row.
    uncontended(&mut un, "fig1-swmr-wp", &SwmrWriterPriority::new(), iters);
    uncontended(
        &mut un,
        "fig1-swmr-wp@obs",
        &Observed::new(SwmrWriterPriority::new(), Arc::new(StatsRecorder::new(4))),
        iters,
    );
    uncontended(
        &mut un,
        "bravo-ticket-rw@obs",
        &Observed::new(Bravo::new(TicketRwLock::new(4)), Arc::new(StatsRecorder::new(4))),
        iters,
    );

    // One blob, hand-rolled (the workspace carries no serialization dep).
    println!("{{");
    println!("  \"schema\": {},", json_string(SCHEMA));
    println!("  \"quick\": {},", args.quick);
    println!("  \"seed\": {SEED},");
    println!("  \"threads\": {THREADS},");
    println!("  \"throughput\": [");
    for (i, e) in tp.iter().enumerate() {
        println!(
            "    {{\"lock\": {}, \"read_pct\": {}, \"ops\": {}, \"ops_per_sec\": {:.1}}}{}",
            json_string(e.lock),
            e.read_pct,
            e.ops,
            e.ops_per_sec,
            if i + 1 == tp.len() { "" } else { "," }
        );
    }
    println!("  ],");
    println!("  \"uncontended\": [");
    for (i, e) in un.iter().enumerate() {
        println!(
            "    {{\"lock\": {}, \"op\": {}, \"ns_per_op\": {:.1}}}{}",
            json_string(e.lock),
            json_string(e.op),
            e.ns_per_op,
            if i + 1 == un.len() { "" } else { "," }
        );
    }
    println!("  ],");
    println!("  \"latency\": [");
    for (i, e) in lat.iter().enumerate() {
        println!(
            "    {{\"lock\": {}, \"op\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}",
            json_string(e.lock),
            json_string(e.op),
            e.p50_ns,
            e.p99_ns,
            if i + 1 == lat.len() { "" } else { "," }
        );
    }
    println!("  ]");
    println!("}}");
}
