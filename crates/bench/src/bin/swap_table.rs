//! E17 — the snapshot-tier read-mostly sweep: `rmr_swap::Snapshot` under
//! both retirement policies vs. the strongest lock-based read paths, plus
//! the Counting-backend proof that a steady-state snapshot read performs
//! **zero** cache-coherent RMRs.
//!
//! Two sections:
//!
//! * **Throughput** (`run_snapshot_read_mostly` /
//!   `rmr_bench::workloads::run_read_mostly`): 99/99.9/100% read mixes
//!   over `Snapshot` (eager and batched retirement), the Bravo-wrapped
//!   ticket lock (the best lock-based read fast path in the workspace)
//!   and `std::sync::RwLock`. Only thread 0 ever writes; `read_pct` is
//!   that thread's read share, the remaining threads read unconditionally.
//! * **Steady-state RMR proof** (the subsystem's acceptance criterion):
//!   the whole snapshot — epoch counter, payload pointer, registry epoch
//!   table and the serializing lock — is instantiated over the `Counting`
//!   backend, and reader threads hammer pin/deref/unpin passages with no
//!   writer active. Per thread, per passage, the cache-coherent RMR tally
//!   must be **zero**: the epoch and payload lines stay valid in cache
//!   once loaded (nobody writes them), and the reader's own epoch slot is
//!   cache-padded and written only by its owner. A nonzero count fails
//!   the binary — this is what distinguishes the tier from Bravo, whose
//!   readers still store to a shared visibility table.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin swap_table -- [--quick] [--json]
//! ```
//!
//! With `--json` the two sections are emitted as one object:
//! `{"throughput": [...], "steady_state": [...]}`.

use rmr_baselines::{StdRwLock, TicketRwLock};
use rmr_bench::cli::{BenchArgs, Table};
use rmr_bench::workloads::{run_read_mostly, run_snapshot_read_mostly, Workload};
use rmr_bravo::Bravo;
use rmr_core::mwmr::MwmrStarvationFree;
use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use rmr_mutex::mem::{self, Counting};
use rmr_swap::{RetireBatched, RetireEager, RetirePolicy, Snapshot};
use std::sync::{Arc, Barrier};

const SEED: u64 = 0x5AB1;
const THREADS: usize = 4;

fn snapshot_row<P: RetirePolicy + Copy>(
    table: &mut Table,
    name: &str,
    policy: P,
    read_pct: f64,
    ops_per_thread: usize,
    reps: u32,
) {
    let workload = Workload { threads: THREADS, read_ratio: read_pct / 100.0, ops_per_thread };
    let make = || Arc::new(Snapshot::with_raw(0u64, MwmrStarvationFree::new(THREADS), policy));
    // Warm-up rep (also the exclusion check: the driver panics on a lost
    // update).
    run_snapshot_read_mostly(make(), workload, SEED);
    let mut ops = 0u64;
    let mut secs = 0f64;
    for _ in 0..reps {
        let res = run_snapshot_read_mostly(make(), workload, SEED);
        ops += res.ops;
        secs += res.elapsed.as_secs_f64();
    }
    table.row(vec![
        name.to_string(),
        format!("{read_pct}"),
        ops.to_string(),
        format!("{:.1}", ops as f64 / secs),
    ]);
}

fn lock_row<L: RawRwLock + 'static>(
    table: &mut Table,
    name: &str,
    make: impl Fn() -> L,
    read_pct: f64,
    ops_per_thread: usize,
    reps: u32,
) {
    let workload = Workload { threads: THREADS, read_ratio: read_pct / 100.0, ops_per_thread };
    run_read_mostly(Arc::new(make()), workload, SEED);
    let mut ops = 0u64;
    let mut secs = 0f64;
    for _ in 0..reps {
        let res = run_read_mostly(Arc::new(make()), workload, SEED);
        ops += res.ops;
        secs += res.elapsed.as_secs_f64();
    }
    table.row(vec![
        name.to_string(),
        format!("{read_pct}"),
        ops.to_string(),
        format!("{:.1}", ops as f64 / secs),
    ]);
}

/// Runs `readers` threads of steady-state pin/deref/unpin passages over a
/// fully `Counting`-instrumented snapshot (no writer active) and returns
/// the worst per-passage cache-coherent RMR count observed after one
/// warm-up passage per thread.
fn steady_state_cc_rmrs<P: RetirePolicy>(policy: P, readers: usize, passages: usize) -> u64 {
    let snap = Arc::new(Snapshot::with_raw_in(
        0u64,
        MwmrStarvationFree::new_in(readers, Counting),
        policy,
        readers,
        Counting,
    ));
    let barrier = Arc::new(Barrier::new(readers));
    let mut handles = Vec::new();
    for i in 0..readers {
        let snap = Arc::clone(&snap);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            mem::set_thread_slot(i);
            let pid = Pid::from_index(i);
            // Warm-up: the first passage faults the epoch, payload and
            // own-slot lines into this thread's cache; steady state is
            // everything after.
            drop(snap.load_with(pid));
            barrier.wait();
            let mut worst = 0u64;
            for _ in 0..passages {
                mem::reset_thread_tally();
                let guard = snap.load_with(pid);
                std::hint::black_box(*guard);
                drop(guard);
                worst = worst.max(mem::thread_tally().cc);
            }
            worst
        }));
    }
    handles.into_iter().map(|h| h.join().expect("steady-state thread panicked")).max().unwrap_or(0)
}

fn main() {
    let args = BenchArgs::parse(
        "swap_table",
        "E17: snapshot-tier read-mostly throughput + Counting proof of zero-RMR steady-state reads",
    );
    let (ops_per_thread, reps, passages) =
        if args.quick { (400, 2, 300) } else { (4_000, 3, 5_000) };

    let mut throughput = Table::new(&[
        ("tier", "tier"),
        ("read %", "read_pct"),
        ("ops", "ops"),
        ("ops/s", "ops_per_sec"),
    ]);
    for read_pct in [99.0f64, 99.9, 100.0] {
        snapshot_row(&mut throughput, "swap-eager", RetireEager, read_pct, ops_per_thread, reps);
        snapshot_row(
            &mut throughput,
            "swap-batched",
            RetireBatched { high_water: 8 },
            read_pct,
            ops_per_thread,
            reps,
        );
        lock_row(
            &mut throughput,
            "bravo-ticket-rw",
            || Bravo::new(TicketRwLock::new(THREADS)),
            read_pct,
            ops_per_thread,
            reps,
        );
        lock_row(
            &mut throughput,
            "std-rwlock",
            || StdRwLock::new(THREADS),
            read_pct,
            ops_per_thread,
            reps,
        );
    }

    let mut steady = Table::new(&[
        ("policy", "policy"),
        ("readers", "readers"),
        ("passages/thread", "passages"),
        ("max CC RMRs/passage", "max_cc_rmrs"),
        ("result", "result"),
    ]);
    let mut violations = 0u64;
    {
        let worst = steady_state_cc_rmrs(RetireEager, THREADS, passages);
        violations += worst;
        steady.row(vec![
            "eager".into(),
            THREADS.to_string(),
            passages.to_string(),
            worst.to_string(),
            if worst == 0 { "ok (zero-RMR read)".into() } else { "FAIL".into() },
        ]);
    }
    {
        let worst = steady_state_cc_rmrs(RetireBatched { high_water: 8 }, THREADS, passages);
        violations += worst;
        steady.row(vec![
            "batched".into(),
            THREADS.to_string(),
            passages.to_string(),
            worst.to_string(),
            if worst == 0 { "ok (zero-RMR read)".into() } else { "FAIL".into() },
        ]);
    }

    if args.json {
        print!(
            "{{\n\"throughput\": {},\n\"steady_state\": {}\n}}\n",
            throughput.json().trim_end(),
            steady.json().trim_end()
        );
    } else {
        println!("Snapshot-tier read-mostly throughput (thread 0 is the only writer; {THREADS} threads):\n");
        print!("{}", throughput.markdown());
        println!("\nSteady-state read cost — cache-coherent RMRs per pin/deref/unpin passage (Counting):\n");
        print!("{}", steady.markdown());
    }

    if violations != 0 {
        eprintln!("steady-state snapshot read performed remote memory references ({violations} CC RMRs) — see table");
        std::process::exit(1);
    }
}
