//! E13 — the E6/E7 experiment matrix executed on the **real**
//! implementations: RMRs per passage under the CC cost model (`Counting`
//! backend) as the reader population grows, for the paper's five locks
//! (expected: flat) versus the baselines (expected: growing).
//!
//! This is the measurement `rmr-sim` cannot provide: the tallies come from
//! the shipped `rmr-core`/`rmr-baselines` code running on real threads,
//! not from the line-level re-encodings.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin real_rmr_table [-- --json --quick]
//! ```

use rmr_bench::cli::BenchArgs;
use rmr_bench::real::{real_rmr_row, RealAlgo};
use rmr_bench::tables::{rmr_table_of, shape_summary, RmrRow};

fn main() {
    let args = BenchArgs::parse(
        "real_rmr_table",
        "E13: RMRs per passage on the real lock implementations (CC Counting backend)",
    );
    let populations: &[usize] = if args.quick { &[1, 2, 4, 8] } else { &[1, 2, 4, 8, 16, 32, 48] };
    let passages = if args.quick { 2 } else { 8 };
    let writers = 2;

    let mut rows: Vec<RmrRow> = Vec::new();
    for algo in RealAlgo::PAPER.iter().chain(RealAlgo::BASELINES.iter()) {
        for &readers in populations {
            rows.push(real_rmr_row(*algo, writers, readers, passages));
        }
    }

    if args.json {
        print!("{}", rmr_table_of(&rows).json());
        return;
    }

    println!(
        "# E13 — RMRs per passage vs. population, real implementations (CC model, \
         {writers} writers, {passages} passages/thread)\n"
    );
    print!("{}", rmr_table_of(&rows).markdown());

    // Compact per-algorithm summary: max RMR per passage at the smallest
    // and largest population, so the flat-vs-growing contrast is obvious.
    let small_n = populations[0];
    let large_n = *populations.last().expect("non-empty sweep");
    println!("\n## Shape summary (max RMR per passage: {small_n} readers -> {large_n} readers)\n");
    let algos = RealAlgo::PAPER.iter().chain(RealAlgo::BASELINES.iter()).map(|a| a.name());
    print!("{}", shape_summary(&rows, algos, small_n, large_n).markdown());
    println!(
        "\nSpin traffic is charged to the waiting passage, so a growing max means\n\
         waiters genuinely pay more remote references as the population grows.\n\
         Concurrent tallies are a faithful sample, not a deterministic replay —\n\
         see rmr_mutex::mem and EXPERIMENTS.md E13."
    );
}
