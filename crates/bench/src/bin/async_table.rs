//! E16 — the async-tier throughput sweep: what waker-parking costs and
//! buys relative to spinning on the same locks.
//!
//! Three measurements:
//!
//! * **Mixed throughput** (50/90/99% reads, one executor per thread):
//!   bare ticket-rw (spinning) vs. `AsyncRwLock` over ticket-rw vs.
//!   `AsyncRwLock` over Bravo-wrapped ticket-rw, with the wake-ups each
//!   configuration delivered — the visible price of parking.
//! * **Read-mostly sweep** for a core lock (Fig. 3, which has no writer
//!   doorway — no `RawParkedWaiters`, so no `write().await`): every
//!   thread awaits reads, thread 0 writes through the deprecated
//!   `write_blocking` — the designated-writer service shape these locks
//!   still require. (Doorway-bearing locks measure the awaited writer in
//!   E20's `async-fair` rows instead.)
//! * **The acceptance proof**: over a `Counting` inner lock, a biased
//!   Bravo fast-path read passage through the async tier must perform
//!   **zero** operations on the inner lock — parking adds nothing to
//!   inner-lock traffic. The binary exits nonzero otherwise, and also if
//!   any lock fails to reach quiescence after its sweep.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin async_table -- [--quick] [--json]
//! ```

use rmr_async::exec::block_on;
use rmr_async::AsyncRwLock;
use rmr_baselines::TicketRwLock;
use rmr_bench::cli::{BenchArgs, Table};
use rmr_bench::workloads::{run_async_mixed, run_async_read_mostly, run_mixed, Workload};
use rmr_bravo::Bravo;
use rmr_core::mwmr::MwmrStarvationFree;
use rmr_mutex::mem::{self, Counting};
use std::sync::Arc;

const SEED: u64 = 0xE16;
const THREADS: usize = 4;

fn main() {
    let args = BenchArgs::parse(
        "async_table",
        "E16: async-tier throughput (waker parking vs. spinning) + zero-inner-op proof",
    );
    let (ops_per_thread, reps) = if args.quick { (300, 2) } else { (2_000, 3) };
    let mut failures: Vec<String> = Vec::new();

    let mut table = Table::new(&[
        ("lock", "lock"),
        ("mode", "mode"),
        ("read %", "read_pct"),
        ("ops", "ops"),
        ("ops/s", "ops_per_sec"),
        ("wakeups", "wakeups"),
    ]);

    for read_pct in [50u32, 90, 99] {
        let workload =
            Workload { threads: THREADS, read_ratio: f64::from(read_pct) / 100.0, ops_per_thread };

        // Spinning baseline on the same raw lock.
        let mut ops = 0u64;
        let mut secs = 0f64;
        run_mixed(Arc::new(TicketRwLock::new(THREADS)), workload, SEED); // warm-up
        for _ in 0..reps {
            let res = run_mixed(Arc::new(TicketRwLock::new(THREADS)), workload, SEED);
            ops += res.ops;
            secs += res.elapsed.as_secs_f64();
        }
        table.row(vec![
            "ticket-rw".into(),
            "spin".into(),
            read_pct.to_string(),
            ops.to_string(),
            format!("{:.1}", ops as f64 / secs),
            "-".into(),
        ]);

        // Async over the bare ticket lock.
        {
            let mut ops = 0u64;
            let mut secs = 0f64;
            let mut wakeups = 0u64;
            run_async_mixed(
                Arc::new(AsyncRwLock::with_raw(0u64, TicketRwLock::new(THREADS))),
                workload,
                SEED,
            );
            for _ in 0..reps {
                let lock = Arc::new(AsyncRwLock::with_raw(0u64, TicketRwLock::new(THREADS)));
                let res = run_async_mixed(Arc::clone(&lock), workload, SEED);
                ops += res.ops;
                secs += res.elapsed.as_secs_f64();
                wakeups += lock.wakeups();
                if !lock.is_quiescent() {
                    failures.push(format!("async-ticket-rw @ {read_pct}% reads: not quiescent"));
                }
            }
            table.row(vec![
                "async-ticket-rw".into(),
                "park".into(),
                read_pct.to_string(),
                ops.to_string(),
                format!("{:.1}", ops as f64 / secs),
                wakeups.to_string(),
            ]);
        }

        // Async over the Bravo-wrapped ticket lock.
        {
            let mut ops = 0u64;
            let mut secs = 0f64;
            let mut wakeups = 0u64;
            run_async_mixed(
                Arc::new(AsyncRwLock::with_raw_and_capacity(
                    0u64,
                    Bravo::new(TicketRwLock::new(THREADS)),
                    THREADS,
                )),
                workload,
                SEED,
            );
            for _ in 0..reps {
                let lock = Arc::new(AsyncRwLock::with_raw_and_capacity(
                    0u64,
                    Bravo::new(TicketRwLock::new(THREADS)),
                    THREADS,
                ));
                let res = run_async_mixed(Arc::clone(&lock), workload, SEED);
                ops += res.ops;
                secs += res.elapsed.as_secs_f64();
                wakeups += lock.wakeups();
                if !lock.is_quiescent() || !lock.raw().is_quiescent() {
                    failures.push(format!("async-bravo-ticket @ {read_pct}% reads: not quiescent"));
                }
            }
            table.row(vec![
                "async-bravo-ticket-rw".into(),
                "park".into(),
                read_pct.to_string(),
                ops.to_string(),
                format!("{:.1}", ops as f64 / secs),
                wakeups.to_string(),
            ]);
        }
    }

    // Read-mostly sweep over Fig. 3 (no try-write tier: designated
    // blocking writer, awaiting readers).
    for read_pct in [95u32, 99, 100] {
        let workload =
            Workload { threads: THREADS, read_ratio: f64::from(read_pct) / 100.0, ops_per_thread };
        let mut ops = 0u64;
        let mut secs = 0f64;
        let mut wakeups = 0u64;
        run_async_read_mostly(
            Arc::new(AsyncRwLock::with_raw(0u64, MwmrStarvationFree::new(THREADS))),
            workload,
            SEED,
        );
        for _ in 0..reps {
            let lock = Arc::new(AsyncRwLock::with_raw(0u64, MwmrStarvationFree::new(THREADS)));
            let res = run_async_read_mostly(Arc::clone(&lock), workload, SEED);
            ops += res.ops;
            secs += res.elapsed.as_secs_f64();
            wakeups += lock.wakeups();
            if !lock.is_quiescent() || !lock.raw().is_quiescent() {
                failures.push(format!("async-fig3-sf @ {read_pct}% reads: not quiescent"));
            }
        }
        table.row(vec![
            "async-fig3-sf".into(),
            "park+blocking-writer".into(),
            read_pct.to_string(),
            ops.to_string(),
            format!("{:.1}", ops as f64 / secs),
            wakeups.to_string(),
        ]);
    }

    print!("{}", table.emit(args.json));

    // The acceptance proof: async + Bravo fast path = zero inner-lock
    // operations per biased read passage (inner lock over Counting, all
    // wrapper/async state Native, so the tally isolates inner traffic).
    let lock: AsyncRwLock<u64, Bravo<TicketRwLock<Counting>>> =
        AsyncRwLock::with_raw_and_capacity(0, Bravo::new(TicketRwLock::new_in(4, Counting)), 4);
    mem::set_thread_slot(1);
    block_on(async {
        let _ = *lock.read().await; // warm-up
    });
    let passages = if args.quick { 100 } else { 10_000 };
    let mut max_inner_ops = 0u64;
    for _ in 0..passages {
        mem::reset_thread_tally();
        block_on(async {
            let _ = *lock.read().await;
        });
        max_inner_ops = max_inner_ops.max(mem::thread_tally().ops);
    }
    eprintln!("async biased read passages: {passages}, max inner ops/passage: {max_inner_ops}");
    if max_inner_ops != 0 {
        failures.push(format!(
            "async Bravo fast path touched the inner lock ({max_inner_ops} ops in a passage)"
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("async_table FAILED: {f}");
        }
        std::process::exit(1);
    }
}
