//! E12 — fairness profile: how the three policies divide a fixed budget of
//! machine steps between the reader and writer classes.
//!
//! Same population (2 writers + 6 readers), same fair random scheduler,
//! same step budget; the only variable is the policy. Attempts completed
//! per class plus Jain's fairness index over per-process completions make
//! the priority disciplines quantitative:
//!
//! * starvation-free: every process completes work (index near 1);
//! * reader-priority: writers complete markedly less under load;
//! * writer-priority: writers dominate; readers trail.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin fairness_table
//! ```

use rmr_sim::algos::{Fig3Rp, Fig3Sf, Fig4};
use rmr_sim::cost::FreeModel;
use rmr_sim::runner::{RandomSched, Runner};
use rmr_sim::Algorithm;

const WRITERS: usize = 2;
const READERS: usize = 6;
const STEPS: usize = 400_000;
const SEEDS: u64 = 5;

struct Row {
    name: &'static str,
    writer_attempts: u64,
    reader_attempts: u64,
    min_per_proc: u64,
    max_per_proc: u64,
    jain: f64,
}

fn jain_index(counts: &[u64]) -> f64 {
    let n = counts.len() as f64;
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (n * sum_sq)
}

fn measure<A: Algorithm>(name: &'static str, make: impl Fn() -> A) -> Row {
    let mut per_proc = vec![0u64; WRITERS + READERS];
    for seed in 0..SEEDS {
        let alg = make();
        // Unbounded attempts: the step budget is the resource being shared.
        let mut r = Runner::new(alg, FreeModel, u32::MAX);
        let mut sched = RandomSched::new(0xFA1 ^ seed);
        r.run(&mut sched, STEPS);
        assert!(r.violations().is_empty(), "{name}: {:?}", r.violations());
        for a in r.finished_attempts() {
            per_proc[a.pid] += 1;
        }
    }
    let writer_attempts: u64 = per_proc[..WRITERS].iter().sum();
    let reader_attempts: u64 = per_proc[WRITERS..].iter().sum();
    Row {
        name,
        writer_attempts,
        reader_attempts,
        min_per_proc: *per_proc.iter().min().expect("non-empty"),
        max_per_proc: *per_proc.iter().max().expect("non-empty"),
        jain: jain_index(&per_proc),
    }
}

fn main() {
    println!("# E12 — fairness profile ({WRITERS} writers + {READERS} readers, {STEPS} steps × {SEEDS} seeds)\n");
    println!("| policy | writer attempts | reader attempts | min/proc | max/proc | Jain index |");
    println!("|---|---|---|---|---|---|");
    for row in [
        measure("fig3-starvation-free", || Fig3Sf::new(WRITERS, READERS)),
        measure("fig3-reader-priority", || Fig3Rp::new(WRITERS, READERS)),
        measure("fig4-writer-priority", || Fig4::new(WRITERS, READERS)),
    ] {
        println!(
            "| {} | {} | {} | {} | {} | {:.3} |",
            row.name,
            row.writer_attempts,
            row.reader_attempts,
            row.min_per_proc,
            row.max_per_proc,
            row.jain
        );
    }
    println!("\nJain index 1.0 = perfectly equal per-process completions; lower =");
    println!("one class is deliberately favored (the priority disciplines at work).");
}
