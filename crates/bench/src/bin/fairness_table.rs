//! E12 — fairness profile: how the three policies divide a fixed budget of
//! machine steps between the reader and writer classes.
//!
//! Same population (2 writers + 6 readers), same fair random scheduler,
//! same step budget; the only variable is the policy. Attempts completed
//! per class plus Jain's fairness index over per-process completions make
//! the priority disciplines quantitative:
//!
//! * starvation-free: every process completes work (index near 1);
//! * reader-priority: writers complete markedly less under load;
//! * writer-priority: writers dominate; readers trail.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin fairness_table [-- --json --quick]
//! ```

use rmr_bench::cli::{BenchArgs, Table};
use rmr_sim::algos::{Fig3Rp, Fig3Sf, Fig4};
use rmr_sim::cost::FreeModel;
use rmr_sim::runner::{RandomSched, Runner};
use rmr_sim::Algorithm;

const WRITERS: usize = 2;
const READERS: usize = 6;

struct Row {
    name: &'static str,
    writer_attempts: u64,
    reader_attempts: u64,
    min_per_proc: u64,
    max_per_proc: u64,
    jain: f64,
}

fn jain_index(counts: &[u64]) -> f64 {
    let n = counts.len() as f64;
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (n * sum_sq)
}

fn measure<A: Algorithm>(
    name: &'static str,
    make: impl Fn() -> A,
    steps: usize,
    seeds: u64,
) -> Row {
    let mut per_proc = vec![0u64; WRITERS + READERS];
    for seed in 0..seeds {
        let alg = make();
        // Unbounded attempts: the step budget is the resource being shared.
        let mut r = Runner::new(alg, FreeModel, u32::MAX);
        let mut sched = RandomSched::new(0xFA1 ^ seed);
        r.run(&mut sched, steps);
        assert!(r.violations().is_empty(), "{name}: {:?}", r.violations());
        for a in r.finished_attempts() {
            per_proc[a.pid] += 1;
        }
    }
    let writer_attempts: u64 = per_proc[..WRITERS].iter().sum();
    let reader_attempts: u64 = per_proc[WRITERS..].iter().sum();
    Row {
        name,
        writer_attempts,
        reader_attempts,
        min_per_proc: *per_proc.iter().min().expect("non-empty"),
        max_per_proc: *per_proc.iter().max().expect("non-empty"),
        jain: jain_index(&per_proc),
    }
}

fn main() {
    let args = BenchArgs::parse(
        "fairness_table",
        "E12: per-class completions and Jain fairness index per policy (simulator)",
    );
    let steps = if args.quick { 60_000 } else { 400_000 };
    let seeds = if args.quick { 2 } else { 5 };

    let mut table = Table::new(&[
        ("policy", "policy"),
        ("writer attempts", "writer_attempts"),
        ("reader attempts", "reader_attempts"),
        ("min/proc", "min_per_proc"),
        ("max/proc", "max_per_proc"),
        ("Jain index", "jain"),
    ]);
    for row in [
        measure("fig3-starvation-free", || Fig3Sf::new(WRITERS, READERS), steps, seeds),
        measure("fig3-reader-priority", || Fig3Rp::new(WRITERS, READERS), steps, seeds),
        measure("fig4-writer-priority", || Fig4::new(WRITERS, READERS), steps, seeds),
    ] {
        table.row(vec![
            row.name.into(),
            row.writer_attempts.to_string(),
            row.reader_attempts.to_string(),
            row.min_per_proc.to_string(),
            row.max_per_proc.to_string(),
            format!("{:.3}", row.jain),
        ]);
    }

    if args.json {
        print!("{}", table.json());
        return;
    }

    println!(
        "# E12 — fairness profile ({WRITERS} writers + {READERS} readers, {steps} steps × {seeds} seeds)\n"
    );
    print!("{}", table.markdown());
    println!("\nJain index 1.0 = perfectly equal per-process completions; lower =");
    println!("one class is deliberately favored (the priority disciplines at work).");
}
