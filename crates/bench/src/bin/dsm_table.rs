//! E8 — the DSM contrast: under the distributed-shared-memory cost model
//! the same algorithms are **not** constant-RMR (readers poll gates that
//! live in another process's memory module), matching the
//! Danek–Hadzilacos lower-bound discussion in the paper's §1.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin dsm_table [-- --json --quick]
//! ```

use rmr_bench::cli::BenchArgs;
use rmr_bench::tables::{rmr_row, rmr_table_of, Model, RmrRow, SimAlgo};

fn main() {
    let args = BenchArgs::parse(
        "dsm_table",
        "E8: CC vs. DSM RMRs per attempt for Figures 1 and 2 (simulator)",
    );
    let populations: &[usize] = if args.quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    let mut rows: Vec<RmrRow> = Vec::new();

    for algo in [SimAlgo::Fig1, SimAlgo::Fig2] {
        for &readers in populations {
            // CC row for side-by-side comparison, then the DSM row.
            rows.push(rmr_row(algo, 1, readers, Model::Cc, 2, 3));
            rows.push(rmr_row(algo, 1, readers, Model::Dsm, 2, 3));
        }
    }

    if args.json {
        print!("{}", rmr_table_of(&rows).json());
        return;
    }

    println!("# E8 — CC vs. DSM RMRs per attempt (Figures 1 and 2)\n");
    println!(
        "Under DSM every poll of a remotely-homed gate costs an RMR, so the\n\
         per-attempt cost is schedule-dependent and grows with contention —\n\
         the paper's constant-RMR result is CC-only, as Theorem 1/2 state.\n"
    );
    print!("{}", rmr_table_of(&rows).markdown());
}
