//! E8 — the DSM contrast: under the distributed-shared-memory cost model
//! the same algorithms are **not** constant-RMR (readers poll gates that
//! live in another process's memory module), matching the
//! Danek–Hadzilacos lower-bound discussion in the paper's §1.
//!
//! ```text
//! cargo run --release -p rmr-bench --bin dsm_table [--json]
//! ```

use rmr_bench::tables::{json_table, markdown_table, rmr_row, Model, RmrRow, SimAlgo};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rows: Vec<RmrRow> = Vec::new();

    for algo in [SimAlgo::Fig1, SimAlgo::Fig2] {
        for readers in [1usize, 2, 4, 8, 16] {
            // CC row for side-by-side comparison, then the DSM row.
            rows.push(rmr_row(algo, 1, readers, Model::Cc, 2, 3));
            rows.push(rmr_row(algo, 1, readers, Model::Dsm, 2, 3));
        }
    }

    if json {
        println!("{}", json_table(&rows));
        return;
    }

    println!("# E8 — CC vs. DSM RMRs per attempt (Figures 1 and 2)\n");
    println!(
        "Under DSM every poll of a remotely-homed gate costs an RMR, so the\n\
         per-attempt cost is schedule-dependent and grows with contention —\n\
         the paper's constant-RMR result is CC-only, as Theorem 1/2 state.\n"
    );
    println!("{}", markdown_table(&rows));
}
