//! E6/E7 — the headline table: RMRs per attempt under the CC model as the
//! number of processes grows, for the paper's five algorithms (expected:
//! flat) versus the baselines (expected: growing).
//!
//! Regenerates the "RMR complexity" tables in EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p rmr-bench --bin rmr_table [--json]
//! ```

use rmr_bench::tables::{json_table, markdown_table, rmr_row, Model, RmrRow, SimAlgo};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let seeds = 5;
    let attempts = 3;
    let mut rows: Vec<RmrRow> = Vec::new();

    // E6: the paper's algorithms. Reader population sweep; 2 writers for
    // the MWMR variants (CC model caps at 64 processes total).
    for algo in SimAlgo::PAPER {
        for readers in [1usize, 2, 4, 8, 16, 32, 48] {
            rows.push(rmr_row(algo, 2, readers, Model::Cc, attempts, seeds));
        }
    }
    // E7: the baselines on the same sweep.
    for algo in SimAlgo::BASELINES {
        for readers in [1usize, 2, 4, 8, 16, 32, 48] {
            rows.push(rmr_row(algo, 2, readers, Model::Cc, attempts, seeds));
        }
    }

    if json {
        println!("{}", json_table(&rows));
        return;
    }

    println!("# E6/E7 — RMRs per attempt vs. population (CC model)\n");
    println!("{}", markdown_table(&rows));

    // Compact per-algorithm summary: max RMR across the sweep at smallest
    // and largest population, so the flat-vs-growing shape is obvious.
    println!("\n## Shape summary (max RMR per attempt: n small -> n large)\n");
    println!("| algorithm | n=1 readers | n=48 readers | shape |");
    println!("|---|---|---|---|");
    for algo in SimAlgo::PAPER.iter().chain(SimAlgo::BASELINES.iter()) {
        let small =
            rows.iter().find(|r| r.algo == algo.name() && r.readers == 1).expect("row exists");
        let large =
            rows.iter().find(|r| r.algo == algo.name() && r.readers == 48).expect("row exists");
        let shape = if large.max_rmr <= small.max_rmr.saturating_mul(2).max(small.max_rmr + 4) {
            "O(1) — flat"
        } else if large.max_rmr <= small.max_rmr.saturating_mul(8) {
            "grows ~log n"
        } else {
            "grows ~n"
        };
        println!("| {} | {} | {} | {} |", algo.name(), small.max_rmr, large.max_rmr, shape);
    }
}
