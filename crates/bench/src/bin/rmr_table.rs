//! E6/E7 — the headline table: RMRs per attempt under the CC model as the
//! number of processes grows, for the paper's five algorithms (expected:
//! flat) versus the baselines (expected: growing).
//!
//! Regenerates the "RMR complexity" tables in EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p rmr-bench --bin rmr_table [-- --json --quick]
//! ```

use rmr_bench::cli::BenchArgs;
use rmr_bench::tables::{rmr_row, rmr_table_of, shape_summary, Model, RmrRow, SimAlgo};

fn main() {
    let args = BenchArgs::parse(
        "rmr_table",
        "E6/E7: RMRs per attempt vs. population under the CC model (simulator)",
    );
    let populations: &[usize] = if args.quick { &[1, 2, 4, 8] } else { &[1, 2, 4, 8, 16, 32, 48] };
    let seeds = if args.quick { 2 } else { 5 };
    let attempts = if args.quick { 2 } else { 3 };
    let mut rows: Vec<RmrRow> = Vec::new();

    // E6: the paper's algorithms. Reader population sweep; 2 writers for
    // the MWMR variants (CC model caps at 64 processes total).
    for algo in SimAlgo::PAPER {
        for &readers in populations {
            rows.push(rmr_row(algo, 2, readers, Model::Cc, attempts, seeds));
        }
    }
    // E7: the baselines on the same sweep.
    for algo in SimAlgo::BASELINES {
        for &readers in populations {
            rows.push(rmr_row(algo, 2, readers, Model::Cc, attempts, seeds));
        }
    }

    if args.json {
        print!("{}", rmr_table_of(&rows).json());
        return;
    }

    println!("# E6/E7 — RMRs per attempt vs. population (CC model)\n");
    print!("{}", rmr_table_of(&rows).markdown());

    // Compact per-algorithm summary: max RMR across the sweep at smallest
    // and largest population, so the flat-vs-growing shape is obvious.
    let small_n = populations[0];
    let large_n = *populations.last().expect("non-empty sweep");
    println!("\n## Shape summary (max RMR per attempt: n small -> n large)\n");
    let algos = SimAlgo::PAPER.iter().chain(SimAlgo::BASELINES.iter()).map(|a| a.name());
    print!("{}", shape_summary(&rows, algos, small_n, large_n).markdown());
}
