//! A minimal JSON *reader* to pair with the workspace's hand-rolled JSON
//! emitters (`cli::Table::json`, `bench_summary`) — the offline-build
//! policy rules out a serde dependency, and the only consumer is the
//! `bench_diff` trajectory gate, which needs objects, arrays, strings,
//! numbers and booleans, nothing exotic.
//!
//! Numbers are parsed as `f64` (every number the emitters produce fits),
//! strings support the escapes the emitters write plus `\uXXXX`, and
//! input must be a single JSON value followed only by whitespace.
//!
//! # Example
//!
//! ```
//! use rmr_bench::jsonio::Json;
//!
//! let v = Json::parse(r#"{"schema": "x/v1", "rows": [{"n": 1.5}, {"n": 2}]}"#).unwrap();
//! assert_eq!(v.get("schema").unwrap().as_str(), Some("x/v1"));
//! let rows = v.get("rows").unwrap().as_array().unwrap();
//! assert_eq!(rows[1].get("n").unwrap().as_f64(), Some(2.0));
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by our writers;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so the
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { message: format!("invalid number `{text}`"), offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_table_emitter() {
        // The exact shape `cli::Table::json` produces.
        let mut t = crate::cli::Table::new(&[("lock", "lock"), ("ops/s", "ops_per_sec")]);
        t.row(vec!["ticket-rw".into(), "12345.6".into()]);
        t.row(vec!["a \"quoted\" name".into(), "-0.5".into()]);
        let parsed = Json::parse(&t.json()).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows[0].get("lock").unwrap().as_str(), Some("ticket-rw"));
        assert_eq!(rows[0].get("ops_per_sec").unwrap().as_f64(), Some(12345.6));
        assert_eq!(rows[1].get("lock").unwrap().as_str(), Some("a \"quoted\" name"));
        assert_eq!(rows[1].get("ops_per_sec").unwrap().as_f64(), Some(-0.5));
    }

    #[test]
    fn parses_the_bench_summary_shape() {
        let blob = r#"{
          "schema": "rmr-bench-summary/v1",
          "quick": true,
          "seed": 48879,
          "throughput": [
            {"lock": "ticket-rw", "read_pct": 99, "ops": 2400, "ops_per_sec": 1234567.8}
          ],
          "uncontended": []
        }"#;
        let v = Json::parse(blob).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("rmr-bench-summary/v1"));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("seed").unwrap().as_f64(), Some(48879.0));
        let tp = v.get("throughput").unwrap().as_array().unwrap();
        assert_eq!(tp.len(), 1);
        assert_eq!(tp[0].get("read_pct").unwrap().as_f64(), Some(99.0));
        assert!(v.get("uncontended").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""a\nb\t\"c\" A é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nb\t\"c\" A é"));
    }

    #[test]
    fn null_bool_and_nested_values() {
        let v = Json::parse(r#"{"a": null, "b": [true, false, {"c": []}]}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Null));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert!(b[2].get("c").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn scientific_notation_numbers() {
        let v = Json::parse("[1e3, -2.5E-2, 0.0]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1000.0));
        assert_eq!(a[1].as_f64(), Some(-0.025));
    }

    #[test]
    fn errors_carry_offsets() {
        for (text, needle) in [
            ("{", "expected `\"`"),
            ("[1,]", "expected a JSON value"),
            (r#"{"a" 1}"#, "expected `:`"),
            ("tru", "expected `true`"),
            ("1 2", "trailing characters"),
            (r#""unterminated"#, "unterminated string"),
            ("", "expected a JSON value"),
        ] {
            let err = Json::parse(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = Json::parse("[1]").unwrap();
        assert_eq!(v.get("k"), None);
        assert_eq!(v.as_str(), None);
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.as_array().unwrap()[0].as_array(), None);
    }
}
