//! Shared measurement harness for the experiment binaries and wall-clock
//! benches. See EXPERIMENTS.md at the workspace root for the experiment
//! index (E1–E16) and the recorded results.

#![warn(missing_docs)]

pub mod cli;
pub mod jsonio;
pub mod real;
pub mod tables;
pub mod workloads;
