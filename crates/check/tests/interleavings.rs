//! Interleavings the wall-clock stress tests cannot pin down.
//!
//! Three surfaces from PR 1 whose subtle cases live in rare schedules:
//!
//! * `try_read`/`try_write` abort paths racing writers — an aborting
//!   reader must retire through the exit section without corrupting any
//!   counter or permit, in *every* interleaving, not just the ones the OS
//!   happens to produce;
//! * `PidRegistry` lease churn — allocate/release cycles under exhaustive
//!   small-config exploration never double-issue a pid and never leak
//!   one;
//! * the typed `RwLock` front end — thread-leased pids, guard drops and
//!   thread-exit reclaim, scheduled end to end.

use rmr_check::exhaustive;
use rmr_check::harness::{
    randomized_batteries, try_read_trial, try_rw_trial, Scenario, TaskBody, Trial,
};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::registry::PidRegistry;
use rmr_core::swmr::{SwmrReaderPriority, SwmrWriterPriority};
use rmr_core::RwLock;
use rmr_mutex::{AndersonLock, Sched};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const BUDGET: u64 = 30_000;
const SCHEDULES: u64 = 10;
const DFS_CAP: u64 = 2_500;

fn assert_randomized(label: &str, mk: impl Fn() -> Trial) {
    for report in randomized_batteries(label, mk, 0x1337_0001, SCHEDULES, 3, BUDGET) {
        assert!(report.passed(), "{report}");
    }
}

// ---------------------------------------------------------------------
// try_read abort paths racing writers (all five core locks)
// ---------------------------------------------------------------------

#[test]
fn fig1_try_read_aborts_race_writers() {
    assert_randomized("fig1-try-read", || {
        let lock = Arc::new(SwmrWriterPriority::new_in(Sched));
        let q = Arc::clone(&lock);
        try_read_trial(lock, Scenario::new(2, 1, 3), move || q.is_quiescent())
    });
}

#[test]
fn fig1_try_read_aborts_exhaustive() {
    let report = exhaustive(
        "fig1-try-read",
        || {
            let lock = Arc::new(SwmrWriterPriority::new_in(Sched));
            let q = Arc::clone(&lock);
            try_read_trial(lock, Scenario::new(1, 1, 2), move || q.is_quiescent())
        },
        2,
        BUDGET,
        DFS_CAP,
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn fig2_try_read_aborts_race_writers() {
    assert_randomized("fig2-try-read", || {
        let lock = Arc::new(SwmrReaderPriority::new_in(Sched));
        let q = Arc::clone(&lock);
        try_read_trial(lock, Scenario::new(2, 1, 3), move || q.is_quiescent())
    });
}

#[test]
fn fig2_try_read_aborts_exhaustive() {
    let report = exhaustive(
        "fig2-try-read",
        || {
            let lock = Arc::new(SwmrReaderPriority::new_in(Sched));
            let q = Arc::clone(&lock);
            try_read_trial(lock, Scenario::new(1, 1, 2), move || q.is_quiescent())
        },
        2,
        BUDGET,
        DFS_CAP,
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn mwmr_try_read_aborts_race_writers() {
    assert_randomized("fig3-sf-try-read", || {
        let lock = Arc::new(MwmrStarvationFree::new_in(4, Sched));
        let q = Arc::clone(&lock);
        try_read_trial(lock, Scenario::new(2, 2, 2), move || q.is_quiescent())
    });
    assert_randomized("fig3-rp-try-read", || {
        let lock = Arc::new(MwmrReaderPriority::new_in(4, Sched));
        let q = Arc::clone(&lock);
        try_read_trial(lock, Scenario::new(2, 2, 2), move || q.is_quiescent())
    });
    assert_randomized("fig4-wp-try-read", || {
        let lock = Arc::new(MwmrWriterPriority::new_in(4, Sched));
        let q = Arc::clone(&lock);
        try_read_trial(lock, Scenario::new(2, 2, 2), move || q.is_quiescent())
    });
}

#[test]
fn baseline_try_write_aborts_race_readers() {
    assert_randomized("ticket-rw-try-write", || {
        let lock = Arc::new(rmr_baselines::TicketRwLock::new_in(4, Sched));
        try_rw_trial(lock, Scenario::new(2, 2, 2), || true)
    });
}

// ---------------------------------------------------------------------
// PidRegistry lease churn
// ---------------------------------------------------------------------

/// Builds a churn trial: `tasks` workers cycle allocate → (hold) →
/// release against a `capacity`-slot registry over [`Sched`]. The oracle
/// is a per-pid holder bit: a second holder of a live pid is the bug the
/// thread-lease machinery must never hit.
fn registry_churn_trial(capacity: usize, tasks: usize, cycles: u32) -> Trial {
    let reg = Arc::new(PidRegistry::new_in(capacity, Sched));
    let holders: Arc<Vec<AtomicBool>> =
        Arc::new((0..capacity).map(|_| AtomicBool::new(false)).collect());
    let settled = Arc::new(AtomicUsize::new(0));
    let mut bodies: Vec<TaskBody> = Vec::new();
    for _ in 0..tasks {
        let reg = Arc::clone(&reg);
        let holders = Arc::clone(&holders);
        let settled = Arc::clone(&settled);
        bodies.push(Box::new(move || {
            for _ in 0..cycles {
                match reg.allocate() {
                    Ok(pid) => {
                        let taken = holders[pid.index()].swap(true, Ordering::SeqCst);
                        assert!(!taken, "pid {pid} double-issued");
                        rmr_mutex::sched::yield_point();
                        holders[pid.index()].store(false, Ordering::SeqCst);
                        reg.release(pid);
                    }
                    Err(full) => {
                        // Legal under contention; capacity must be honest.
                        assert_eq!(full.capacity(), capacity);
                    }
                }
            }
            settled.fetch_add(1, Ordering::SeqCst);
        }));
    }
    let post_reg = Arc::clone(&reg);
    let post_settled = Arc::clone(&settled);
    Trial {
        tasks: bodies,
        post: Box::new(move || {
            if post_settled.load(Ordering::SeqCst) != tasks {
                return Err("a churn task did not finish".into());
            }
            let leaked = post_reg.allocated();
            if leaked != 0 {
                return Err(format!("{leaked} pid(s) leaked after churn"));
            }
            Ok(())
        }),
    }
}

#[test]
fn registry_churn_exhaustive_tiny() {
    // 2 workers × 1 slot: every interleaving of the allocate CAS scan and
    // the release store.
    let report = exhaustive("registry-2x1", || registry_churn_trial(1, 2, 2), 2, BUDGET, DFS_CAP);
    assert!(report.passed(), "{report}");
    // 2 workers × 2 slots: adds slot-skipping scans.
    let report = exhaustive("registry-2x2", || registry_churn_trial(2, 2, 2), 2, BUDGET, DFS_CAP);
    assert!(report.passed(), "{report}");
}

#[test]
fn registry_churn_randomized() {
    assert_randomized("registry-churn", || registry_churn_trial(2, 3, 3));
}

// ---------------------------------------------------------------------
// The typed front end: leases, guards, thread-exit reclaim
// ---------------------------------------------------------------------

/// Drives the typed `RwLock` (thread-leased pids, RAII guards) with the
/// raw lock scheduled underneath. Each task thread leases its pid on
/// first use and must give it back via the thread-exit reclaim path, so
/// the post-run check seeing `registered() == 0` *is* the reclaim test.
fn typed_front_end_trial(readers: usize, writers: usize, attempts: u32) -> Trial {
    let raw = MwmrStarvationFree::<AndersonLock<Sched>, Sched>::new_in(readers + writers, Sched);
    let lock = Arc::new(RwLock::with_raw_and_capacity(0u64, raw, readers + writers));
    let wrote = Arc::new(AtomicUsize::new(0));
    let mut bodies: Vec<TaskBody> = Vec::new();
    for _ in 0..readers {
        let lock = Arc::clone(&lock);
        bodies.push(Box::new(move || {
            for _ in 0..attempts {
                let g = lock.read();
                let v = *g;
                drop(g);
                let g2 = lock.read();
                assert!(*g2 >= v, "monotone counter ran backwards");
                drop(g2);
            }
        }));
    }
    for _ in 0..writers {
        let lock = Arc::clone(&lock);
        let wrote = Arc::clone(&wrote);
        bodies.push(Box::new(move || {
            for _ in 0..attempts {
                let mut g = lock.write();
                *g += 1;
                drop(g);
                wrote.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    let post_lock = Arc::clone(&lock);
    let post_wrote = Arc::clone(&wrote);
    let expected = writers * attempts as usize;
    Trial {
        tasks: bodies,
        post: Box::new(move || {
            // Lease accounting first: reading through the lock below
            // would lease a pid for *this* (controller) thread and mask
            // a reclaim bug.
            if post_lock.registered() != 0 {
                return Err(format!(
                    "{} pid lease(s) not reclaimed at thread exit",
                    post_lock.registered()
                ));
            }
            if !post_lock.raw().is_quiescent() {
                return Err("raw lock not quiescent after typed-front-end run".into());
            }
            let total = *post_lock.read();
            if total as usize != expected || post_wrote.load(Ordering::SeqCst) != expected {
                return Err(format!("counter {total} ≠ {expected} writer increments"));
            }
            Ok(())
        }),
    }
}

#[test]
fn typed_front_end_leases_reclaim_randomized() {
    assert_randomized("rwlock-front-end", || typed_front_end_trial(2, 1, 2));
}

#[test]
fn typed_front_end_leases_reclaim_exhaustive() {
    let report =
        exhaustive("rwlock-front-end", || typed_front_end_trial(1, 1, 1), 1, BUDGET, DFS_CAP);
    assert!(report.passed(), "{report}");
}
