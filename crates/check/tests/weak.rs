//! The full checker battery re-run under the weak memory model.
//!
//! The relaxation sweep (DESIGN.md §13) downgraded every `Backend` call
//! site it could justify; these tests are the other half of the
//! argument. Under [`MemoryModel::StoreBuffer`] every non-SeqCst store
//! parks in its task's buffer until the *strategy* decides to flush it —
//! so a site relaxed one notch too far is not a theoretical concern but
//! a schedulable interleaving, and the same oracles (exclusion, torn
//! reads, deadlock, quiescence, snapshot accounting) that police the
//! sequentially-consistent batteries police the reorderings too.
//!
//! Budgets are the SC batteries' with headroom: flush points add
//! decisions, and a buffered store's visibility is one extra step.

use rmr_async::lock::AsyncRwLock;
use rmr_bravo::{Bravo, BravoConfig};
use rmr_check::async_exec::async_rw_trial;
use rmr_check::exhaustive_in;
use rmr_check::harness::{
    mutex_trial, randomized_batteries_in, rw_trial, try_rw_trial, Scenario, TaskBody, Trial,
};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::registry::Pid;
use rmr_core::swmr::{SwmrReaderPriority, SwmrWriterPriority};
use rmr_mutex::sched::{yield_point, MemoryModel};
use rmr_mutex::{AndersonLock, McsLock, Sched, TasLock, TicketLock, TtasLock};
use rmr_swap::{RetireEager, Snapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const BUDGET: u64 = 40_000;
const PCT_SCHEDULES: u64 = 10;
const PCT_DEPTH: usize = 3;
const DFS_CAP: u64 = 4_000;

/// Runs the standard randomized batteries under the store-buffer model
/// and asserts they pass.
fn assert_weak(label: &str, mk: impl Fn() -> Trial) {
    let reports = randomized_batteries_in(
        label,
        mk,
        0x5b5e_ed01,
        PCT_SCHEDULES,
        PCT_DEPTH,
        BUDGET,
        MemoryModel::StoreBuffer,
    );
    for report in reports {
        assert!(report.passed(), "{report}");
        assert!(report.mode.ends_with("/sb"), "battery did not run in weak mode: {report}");
    }
}

// ---------------------------------------------------------------------
// The five core locks
// ---------------------------------------------------------------------

#[test]
fn fig1_swmr_writer_priority_weak() {
    assert_weak("fig1-swmr-wp", || {
        let lock = Arc::new(SwmrWriterPriority::new_in(Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn fig1_swmr_writer_priority_weak_exhaustive() {
    // The small config, every schedule *and* every flush order at
    // preemption bound 2 — the strongest statement the checker makes
    // about the Figure 1 ordering annotations.
    let report = exhaustive_in(
        "fig1-swmr-wp",
        || {
            let lock = Arc::new(SwmrWriterPriority::new_in(Sched));
            let q = Arc::clone(&lock);
            rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
        },
        2,
        BUDGET,
        DFS_CAP,
        MemoryModel::StoreBuffer,
    );
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "suspiciously small weak schedule tree: {report}");
}

#[test]
fn fig2_swmr_reader_priority_weak() {
    assert_weak("fig2-swmr-rp", || {
        let lock = Arc::new(SwmrReaderPriority::new_in(Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn fig3_mwmr_starvation_free_weak() {
    assert_weak("fig3-mwmr-sf", || {
        let lock = Arc::new(MwmrStarvationFree::new_in(3, Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn fig3_mwmr_reader_priority_weak() {
    assert_weak("fig3-mwmr-rp", || {
        let lock = Arc::new(MwmrReaderPriority::new_in(3, Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn fig4_mwmr_writer_priority_weak() {
    assert_weak("fig4-mwmr-wp", || {
        let lock = Arc::new(MwmrWriterPriority::new_in(3, Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

// ---------------------------------------------------------------------
// The mutex substrate
// ---------------------------------------------------------------------

#[test]
fn mutexes_weak() {
    assert_weak("anderson", || mutex_trial(Arc::new(AndersonLock::new_in(4, Sched)), 3, 2));
    assert_weak("mcs", || mutex_trial(Arc::new(McsLock::new_in(Sched)), 3, 2));
    assert_weak("ticket", || mutex_trial(Arc::new(TicketLock::new_in(Sched)), 3, 2));
    assert_weak("tas", || mutex_trial(Arc::new(TasLock::new_in(Sched)), 3, 2));
    assert_weak("ttas", || mutex_trial(Arc::new(TtasLock::new_in(Sched)), 3, 2));
}

// ---------------------------------------------------------------------
// Baselines — including the Dekker square the DemoteFlagRaise mutant
// attacks (site BL-FLAGS must survive the weak model un-demoted)
// ---------------------------------------------------------------------

#[test]
fn baseline_flags_weak() {
    assert_weak("flags", || {
        rw_trial(
            Arc::new(rmr_baselines::DistributedFlagRwLock::new_in(3, Sched)),
            Scenario::new(2, 1, 2),
            || true,
        )
    });
}

#[test]
fn baseline_ticket_rw_weak() {
    assert_weak("ticket-rw", || {
        rw_trial(
            Arc::new(rmr_baselines::TicketRwLock::new_in(3, Sched)),
            Scenario::new(2, 1, 2),
            || true,
        )
    });
    assert_weak("ticket-rw-try", || {
        try_rw_trial(
            Arc::new(rmr_baselines::TicketRwLock::new_in(3, Sched)),
            Scenario::new(2, 1, 2),
            || true,
        )
    });
}

// ---------------------------------------------------------------------
// The Bravo wrapper — sites BR-PUB/BR-RECHECK/BR-CLEAR/BR-SCAN
// ---------------------------------------------------------------------

#[test]
fn bravo_weak() {
    let cfg = BravoConfig { table_slots: 4, rebias_after: 2, initial_bias: true };
    assert_weak("bravo-ticket-rw", move || {
        let lock =
            Arc::new(Bravo::new_in(rmr_baselines::TicketRwLock::new_in(8, Sched), cfg, Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

// ---------------------------------------------------------------------
// The epoch-swap snapshot tier — sites SW-PUB/SW-LOAD/SW-SWAP/SW-BUMP
// ---------------------------------------------------------------------

struct Versioned {
    a: u64,
    b: u64,
    live: Arc<AtomicUsize>,
}

impl Versioned {
    fn new(a: u64, live: &Arc<AtomicUsize>) -> Self {
        live.fetch_add(1, Ordering::SeqCst);
        Versioned { a, b: a + 1, live: Arc::clone(live) }
    }
}

impl Drop for Versioned {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

#[test]
fn swap_weak() {
    assert_weak("swap-eager", || {
        let live = Arc::new(AtomicUsize::new(0));
        let (readers, writers, attempts) = (2usize, 1usize, 2u64);
        let n = readers + writers;
        let snap = Arc::new(Snapshot::with_raw_in(
            Versioned::new(0, &live),
            MwmrStarvationFree::new_in(n, Sched),
            RetireEager,
            n,
            Sched,
        ));
        let mut tasks: Vec<TaskBody> = Vec::new();
        for r in 0..readers {
            let snap = Arc::clone(&snap);
            tasks.push(Box::new(move || {
                let pid = Pid::from_index(r);
                for _ in 0..attempts {
                    let guard = snap.load_with(pid);
                    let a = guard.a;
                    yield_point();
                    assert_eq!(guard.b, a + 1, "torn snapshot under the weak model");
                    drop(guard);
                }
            }));
        }
        for w in 0..writers {
            let snap = Arc::clone(&snap);
            let live = Arc::clone(&live);
            tasks.push(Box::new(move || {
                let pid = Pid::from_index(readers + w);
                for _ in 0..attempts {
                    snap.update_with(pid, |current| Versioned::new(current.a + 1, &live));
                }
            }));
        }
        Trial {
            tasks,
            post: Box::new(move || {
                snap.reclaim();
                if !snap.is_quiescent() {
                    return Err("snapshot not quiescent after a weak-model run".into());
                }
                let alive = live.load(Ordering::SeqCst);
                if alive != 1 {
                    return Err(format!("{alive} payload instances live after reclaim"));
                }
                Ok(())
            }),
        }
    });
}

// ---------------------------------------------------------------------
// The async tier — sites AS-ANNOUNCE/AS-COUNT plus the waker slots
// ---------------------------------------------------------------------

#[test]
fn async_weak() {
    assert_weak("async-ticket-rw", || {
        let lock = Arc::new(AsyncRwLock::with_raw_and_capacity_in(
            (),
            rmr_baselines::TicketRwLock::new_in(8, Sched),
            8,
            Sched,
        ));
        let q = Arc::clone(&lock);
        async_rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}
