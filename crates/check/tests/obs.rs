//! The observability hooks under deterministic schedule exploration.
//!
//! These batteries make the recorder part of the oracle: under every
//! explored interleaving the counters must stay an exact ledger of the
//! protocol (acquires balance releases, passage totals match the
//! scenario), and the drained trace must tell a causally closed story
//! (every park followed by a same-pid grant or cancel, nothing dropped
//! by the bounded ring). A hook that double-counts, misattributes a
//! pid, or fires on the wrong side of a release shows up here as a
//! seeded, replayable failure.

use rmr_async::lock::AsyncRwLock;
use rmr_check::harness::{randomized_batteries, Scenario, Trial};
use rmr_check::obs::{guard_balance_trial, obs_recorder, park_wake_trial};
use rmr_core::mwmr::MwmrStarvationFree;
use rmr_mutex::Sched;
use std::sync::Arc;

const BUDGET: u64 = 30_000;
const PCT_SCHEDULES: u64 = 10;
const PCT_DEPTH: usize = 3;

fn assert_randomized(label: &str, mk: impl Fn() -> Trial) {
    for report in randomized_batteries(label, mk, 0x0b5_0001, PCT_SCHEDULES, PCT_DEPTH, BUDGET) {
        assert!(report.passed(), "{report}");
    }
}

#[test]
fn guard_balance_over_fig3_randomized() {
    // Sync passages through Observed<MwmrStarvationFree<Sched>>: the
    // recorder's acquire/release ledger must balance exactly under every
    // schedule, including ones that interleave the hook with the unlock.
    assert_randomized("obs/guard-balance", || {
        guard_balance_trial(
            MwmrStarvationFree::new_in(4, Sched),
            Scenario::new(2, 1, 2),
            obs_recorder(4, 256),
        )
    });
}

#[test]
fn park_wake_over_async_ticket_randomized() {
    // Instrumented async tier: every AsyncPark in the deterministic
    // trace is followed by a same-pid grant (the wake chain delivered)
    // — and the ring dropped nothing, so that claim covers the run.
    assert_randomized("obs/park-wake", || {
        let lock = Arc::new(
            AsyncRwLock::with_raw_and_capacity_in(
                (),
                rmr_baselines::TicketRwLock::new_in(8, Sched),
                8,
                Sched,
            )
            .with_recorder(obs_recorder(8, 1024)),
        );
        park_wake_trial(lock, Scenario::new(2, 1, 2))
    });
}
