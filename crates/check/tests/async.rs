//! The async tier under deterministic schedule exploration.
//!
//! Everything here drives the *shipped* `rmr_async::AsyncRwLock` code —
//! waker-slot table, parked counters, reader count, and the executor's
//! parker flags all over the `Sched` backend — so the parking protocol's
//! races are explored at the same per-operation atomicity as the sync
//! locks: a future's attempt/register/retry against a releaser's
//! unlock/scan, the wake-in-flight (`TAKING`) window against
//! cancellation, blocking writers waking suspended readers, and the
//! Bravo fast path staying exclusion-correct while futures park beside
//! its visible-readers slots. A lost wake-up shows up as a deterministic
//! deadlock report with a seeded replay line, never as a hung test.
//!
//! The `async_fair_*` / `async_write_*` tests are the doorway tier's
//! batteries: `write().await` model-checked on a core paper lock
//! (Figure 1), the bounded-bypass oracle holding tokened writers to the
//! in-flight read set, and the cancel/unlink race of dropping a write
//! future mid-drain. This file is what the CI `async-quick` and
//! `fair-quick` steps run (together with the `DropWakeup` /
//! `DropWaiterToken` mutant filters of the mutation battery).

use rmr_async::lock::AsyncRwLock;
use rmr_bravo::{Bravo, BravoConfig};
use rmr_check::async_exec::{
    async_cancel_trial, async_fair_trial, async_read_blocking_write_trial, async_rw_trial,
    async_write_cancel_trial,
};
use rmr_check::exhaustive;
use rmr_check::harness::{randomized_batteries, Scenario, Trial};
use rmr_core::mwmr::MwmrStarvationFree;
use rmr_core::swmr::SwmrWriterPriority;
use rmr_mutex::Sched;
use std::sync::Arc;

const BUDGET: u64 = 30_000;
const PCT_SCHEDULES: u64 = 10;
const PCT_DEPTH: usize = 3;
const DFS_CAP: u64 = 2_500;

fn assert_randomized(label: &str, mk: impl Fn() -> Trial) {
    for report in randomized_batteries(label, mk, 0xa51_0001, PCT_SCHEDULES, PCT_DEPTH, BUDGET) {
        assert!(report.passed(), "{report}");
    }
}

/// AsyncRwLock over the ticket baseline, everything on `Sched`.
fn async_ticket(
    capacity: usize,
) -> Arc<AsyncRwLock<(), rmr_baselines::TicketRwLock<Sched>, Sched>> {
    Arc::new(AsyncRwLock::with_raw_and_capacity_in(
        (),
        rmr_baselines::TicketRwLock::new_in(capacity, Sched),
        capacity,
        Sched,
    ))
}

#[test]
fn async_over_ticket_randomized() {
    assert_randomized("async-ticket-rw", || {
        let lock = async_ticket(8);
        let q = Arc::clone(&lock);
        async_rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn async_over_ticket_exhaustive() {
    let report = exhaustive(
        "async-ticket-rw",
        || {
            let lock = async_ticket(4);
            let q = Arc::clone(&lock);
            async_rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
        },
        2,
        BUDGET,
        DFS_CAP,
    );
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "suspiciously small schedule tree: {report}");
}

#[test]
fn async_readers_over_fig3_with_blocking_writers_randomized() {
    // The paper's Figure 3 lock has no revocable write attempt, so the
    // service shape is: suspended readers, blocking writers — and the
    // blocking writer's release must wake the parked read futures.
    assert_randomized("async-fig3-sf", || {
        let lock =
            Arc::new(AsyncRwLock::with_raw_in((), MwmrStarvationFree::new_in(4, Sched), Sched));
        let q = Arc::clone(&lock);
        async_read_blocking_write_trial(lock, Scenario::new(2, 1, 2), move || {
            q.is_quiescent() && q.raw().is_quiescent()
        })
    });
}

#[test]
fn async_over_bravo_randomized() {
    // Parking composed with the reader-biased fast path: fast-path read
    // futures publish in the Bravo table, write futures go through the
    // one-shot revocation, and both layers must drain.
    assert_randomized("async-bravo-ticket", || {
        let lock = Arc::new(AsyncRwLock::with_raw_and_capacity_in(
            (),
            Bravo::new_in(
                rmr_baselines::TicketRwLock::new_in(8, Sched),
                BravoConfig { table_slots: 4, rebias_after: 2, initial_bias: true },
                Sched,
            ),
            8,
            Sched,
        ));
        let q = Arc::clone(&lock);
        async_rw_trial(lock, Scenario::new(2, 1, 2), move || {
            q.is_quiescent() && q.raw().is_quiescent()
        })
    });
}

#[test]
fn async_cancellation_randomized() {
    // Readers poll once and drop wherever that leaves them (parked, mid
    // wake-in-flight, or holding the guard); writers churn. The post-run
    // quiescence check is the cancel-safety oracle: no pid, waker slot,
    // or reader count may stay pinned.
    assert_randomized("async-cancel", || {
        async_cancel_trial(async_ticket(8), Scenario::new(2, 1, 2))
    });
}

/// AsyncRwLock over the paper's Figure 1 writer-priority lock — the SWMR
/// core lock whose `write().await` the doorway redesign unlocked.
fn async_fig1(capacity: usize) -> Arc<AsyncRwLock<(), SwmrWriterPriority<Sched>, Sched>> {
    Arc::new(AsyncRwLock::with_raw_and_capacity_in(
        (),
        SwmrWriterPriority::new_in(Sched),
        capacity,
        Sched,
    ))
}

#[test]
fn async_write_over_fig1_randomized() {
    // `write().await` on a core paper lock: the claim word serializes the
    // async writers into the lock's single writer role, the doorway is a
    // real WP1 queue position, and exclusion/torn-read oracles police the
    // grant. Two writer tasks specifically contend on the claim word.
    assert_randomized("async-fig1-wp", || {
        let lock = async_fig1(8);
        let q = Arc::clone(&lock);
        async_rw_trial(lock, Scenario::new(2, 1, 2), move || {
            q.is_quiescent() && q.raw().is_quiescent()
        })
    });
    assert_randomized("async-fig1-wp-2w", || {
        let lock = async_fig1(8);
        let q = Arc::clone(&lock);
        async_rw_trial(lock, Scenario::new(1, 2, 1), move || {
            q.is_quiescent() && q.raw().is_quiescent()
        })
    });
}

#[test]
fn async_fair_over_ticket_randomized() {
    // The bounded-bypass oracle on the queued ticket doorway: once the
    // writer's first Pending tokened it, at most `readers` in-flight read
    // sessions may still complete ahead of the grant.
    assert_randomized("async-fair-ticket", || {
        let lock = async_ticket(8);
        let q = Arc::clone(&lock);
        async_fair_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn async_fair_over_fig1_randomized() {
    assert_randomized("async-fair-fig1", || {
        let lock = async_fig1(8);
        let q = Arc::clone(&lock);
        async_fair_trial(lock, Scenario::new(2, 1, 2), move || {
            q.is_quiescent() && q.raw().is_quiescent()
        })
    });
}

#[test]
fn async_fair_over_fig1_exhaustive() {
    // Bounded DFS over the small config: every interleaving of one
    // reader against the tokened writer respects the bypass bound.
    let report = exhaustive(
        "async-fair-fig1",
        || {
            let lock = async_fig1(4);
            let q = Arc::clone(&lock);
            async_fair_trial(lock, Scenario::new(1, 1, 1), move || {
                q.is_quiescent() && q.raw().is_quiescent()
            })
        },
        2,
        BUDGET,
        DFS_CAP,
    );
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "suspiciously small schedule tree: {report}");
}

#[test]
fn async_write_cancel_over_fig1_randomized() {
    // The cancel/unlink race on the deferred-zombie doorway: writers drop
    // mid-drain, the revocation must hand the passage to the helpers and
    // unthread the waiter node, and the table must drain to quiescence.
    assert_randomized("async-write-cancel-fig1", || {
        let lock = async_fig1(8);
        async_write_cancel_trial(lock, Scenario::new(2, 1, 2))
    });
}

#[test]
fn async_write_cancel_over_ticket_randomized() {
    // Same race against the ticket's abandoned-head skip protocol.
    assert_randomized("async-write-cancel-ticket", || {
        async_write_cancel_trial(async_ticket(8), Scenario::new(2, 1, 2))
    });
}

#[test]
fn async_write_cancel_over_fig1_exhaustive() {
    // DFS systematically reaches the publish-then-recheck windows of the
    // zombie cancel (and the drop-while-TAKING wake race) that randomized
    // walks can miss.
    let report = exhaustive(
        "async-write-cancel-fig1",
        || async_write_cancel_trial(async_fig1(4), Scenario::new(1, 1, 1)),
        2,
        BUDGET,
        DFS_CAP,
    );
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "suspiciously small schedule tree: {report}");
}

#[test]
fn async_cancellation_exhaustive() {
    // Bounded-exhaustive DFS over the small config systematically reaches
    // the drop-while-TAKING window (a wake in flight toward a future that
    // is being cancelled) that randomized walks can miss.
    let report = exhaustive(
        "async-cancel",
        || async_cancel_trial(async_ticket(4), Scenario::new(1, 1, 1)),
        2,
        BUDGET,
        DFS_CAP,
    );
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "suspiciously small schedule tree: {report}");
}
