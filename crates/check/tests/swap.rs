//! The epoch-swap snapshot tier under deterministic schedule exploration.
//!
//! Everything here drives the *shipped* `rmr_swap::Snapshot` code over the
//! `Sched` backend — the epoch counter, the payload pointer, the registry's
//! epoch table **and** the serializing writer lock all scheduled, so the
//! protocol's races are explored at the same atomicity as the core locks:
//! a reader's publish/load/re-check against a writer's swap/bump/grace
//! scan. The oracles are the tier's own safety contract:
//!
//! * **no torn or drifting snapshot** — a guard's payload carries an
//!   internal invariant (`b == a + 1`) and must not change under the
//!   guard, with explicit yield points between field reads so a
//!   prematurely freed payload would be observed;
//! * **no payload freed while an epoch pins it** — a live-instance
//!   counter on the payload type makes the post-run accounting exact:
//!   after a final reclaim, exactly the current payload is allocated;
//! * **quiescence** — no published epoch, nothing retired.
//!
//! Both retirement policies run the same trials: eager (writers wait out
//! pins inside the write session) and batched (pins age the retired
//! list). This file is what the CI `swap-quick` step runs.

use rmr_check::exhaustive;
use rmr_check::harness::{randomized_batteries, TaskBody, Trial};
use rmr_core::mwmr::MwmrStarvationFree;
use rmr_core::registry::Pid;
use rmr_mutex::sched::yield_point;
use rmr_mutex::Sched;
use rmr_swap::{RetireBatched, RetireEager, RetirePolicy, Snapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const BUDGET: u64 = 30_000;
const PCT_SCHEDULES: u64 = 10;
const PCT_DEPTH: usize = 3;
const DFS_CAP: u64 = 2_500;

fn assert_randomized(label: &str, mk: impl Fn() -> Trial) {
    for report in randomized_batteries(label, mk, 0x54a9_0001, PCT_SCHEDULES, PCT_DEPTH, BUDGET) {
        assert!(report.passed(), "{report}");
    }
}

/// The trial payload: an internal invariant for torn-read detection and a
/// live-instance counter for exact allocation accounting. The counter is
/// a plain std atomic on purpose — bookkeeping must not widen the
/// schedule space.
struct Versioned {
    a: u64,
    b: u64,
    live: Arc<AtomicUsize>,
}

impl Versioned {
    fn new(a: u64, live: &Arc<AtomicUsize>) -> Self {
        live.fetch_add(1, Ordering::SeqCst);
        Versioned { a, b: a + 1, live: Arc::clone(live) }
    }
}

impl Drop for Versioned {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Readers pin snapshots and check invariant + stability; writers install
/// successors through the scheduled starvation-free lock. The post-run
/// check is the full quiescence + accounting oracle.
fn snap_trial<P: RetirePolicy + Copy>(
    policy: P,
    readers: usize,
    writers: usize,
    attempts: u64,
) -> Trial {
    let live = Arc::new(AtomicUsize::new(0));
    let n = readers + writers;
    let snap = Arc::new(Snapshot::with_raw_in(
        Versioned::new(0, &live),
        MwmrStarvationFree::new_in(n, Sched),
        policy,
        n,
        Sched,
    ));
    let mut tasks: Vec<TaskBody> = Vec::new();
    for r in 0..readers {
        let snap = Arc::clone(&snap);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(r);
            let mut last = 0;
            for _ in 0..attempts {
                let guard = snap.load_with(pid);
                let a = guard.a;
                yield_point(); // give writers the whole guard window
                assert_eq!(guard.b, a + 1, "torn snapshot");
                yield_point();
                assert_eq!(guard.a, a, "snapshot drifted under its guard");
                assert!(a >= last, "snapshot went backwards");
                last = a;
                drop(guard);
            }
        }));
    }
    for w in 0..writers {
        let snap = Arc::clone(&snap);
        let live = Arc::clone(&live);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(readers + w);
            for _ in 0..attempts {
                snap.update_with(pid, |current| Versioned::new(current.a + 1, &live));
            }
        }));
    }
    let expected_swaps = writers as u64 * attempts;
    Trial {
        tasks,
        post: Box::new(move || {
            snap.reclaim();
            if !snap.is_quiescent() {
                return Err(format!(
                    "snapshot not quiescent: {} published, {} retired",
                    snap.published(),
                    snap.retired()
                ));
            }
            if snap.swaps() != expected_swaps {
                return Err(format!(
                    "lost update: {} swaps recorded, {expected_swaps} installed",
                    snap.swaps()
                ));
            }
            let alive = live.load(Ordering::SeqCst);
            if alive != 1 {
                return Err(format!(
                    "payload accounting: {alive} instances live after reclaim, expected \
                     exactly the current payload"
                ));
            }
            Ok(())
        }),
    }
}

#[test]
fn swap_eager_randomized() {
    assert_randomized("swap-eager", || snap_trial(RetireEager, 2, 1, 2));
}

#[test]
fn swap_batched_randomized() {
    // high_water 2 so the scan actually fires mid-trial, not only in the
    // post-run reclaim.
    assert_randomized("swap-batched", || snap_trial(RetireBatched { high_water: 2 }, 2, 1, 2));
}

#[test]
fn swap_multi_writer_randomized() {
    // Two writers serialized through the scheduled Figure 3 lock: retire
    // epochs must stay unique and ordered across write sessions.
    assert_randomized("swap-multi-writer", || snap_trial(RetireBatched { high_water: 2 }, 1, 2, 2));
}

#[test]
fn swap_eager_exhaustive() {
    let report = exhaustive("swap-eager", || snap_trial(RetireEager, 1, 1, 1), 2, BUDGET, DFS_CAP);
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "suspiciously small schedule tree: {report}");
}

#[test]
fn swap_batched_exhaustive() {
    let report = exhaustive(
        "swap-batched",
        || snap_trial(RetireBatched { high_water: 1 }, 1, 1, 1),
        2,
        BUDGET,
        DFS_CAP,
    );
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "suspiciously small schedule tree: {report}");
}
