//! The mutation battery: every seeded bug must be caught, every control
//! must pass, and every reported failure must replay deterministically.
//!
//! This is the checker proving it has teeth (the acceptance bar of the
//! `rmr-check` subsystem): a deliberately broken variant of the real lock
//! code — one dropped store, one wrong CAS expected value — must fall to
//! a bounded schedule budget, and the *identical* budget must pass the
//! faithful copy, so a red battery always means a real bug, never a
//! flaky harness.

use rmr_check::async_exec::block_on_sched;
use rmr_check::harness::{
    mutex_trial, randomized_batteries, randomized_batteries_in, run_trial, run_trial_in, rw_trial,
    RwOracle, Scenario, TaskBody, Trial,
};
use rmr_check::mutants::{
    MutantAnderson, MutantAsyncRw, MutantBravo, MutantFig1, MutantFlags, MutantSwap,
    MutantTokenlessTicket, MutantTtas, Mutation,
};
use rmr_check::{exhaustive, exhaustive_in};
use rmr_core::registry::Pid;
use rmr_mutex::sched::{MemoryModel, Replay, RunError};
use rmr_mutex::Sched;
use std::sync::Arc;

const BUDGET: u64 = 30_000;
/// Randomized schedules per stage before escalating to the next.
const MUTANT_SCHEDULES: u64 = 40;
/// DFS schedule cap for the final exhaustive stage.
const MUTANT_DFS_CAP: u64 = 5_000;
/// Schedules each control copy must survive.
const CONTROL_SCHEDULES: u64 = 15;

fn fig1_trial(mutation: Mutation, scenario: Scenario) -> Trial {
    let lock = Arc::new(MutantFig1::new_in(mutation, Sched));
    let q = Arc::clone(&lock);
    // Quiescence is only required of the control copy: a mutant that
    // merely corrupts its idle state without breaking a run-time property
    // would still be caught here, but none of the seeded ones need it.
    rw_trial(lock, scenario, move || mutation != Mutation::None || q.is_quiescent())
}

fn ttas_trial(mutation: Mutation) -> Trial {
    mutex_trial(Arc::new(MutantTtas::new_in(mutation, Sched)), 3, 2)
}

fn anderson_trial(mutation: Mutation) -> Trial {
    mutex_trial(Arc::new(MutantAnderson::new_in(mutation, 2, Sched)), 2, 3)
}

/// Async readers and writers (deterministic executors, one per task)
/// over the mutant's explicit acquire/release protocol. The write
/// release is the mutation point: [`Mutation::DropWakeup`] never wakes,
/// so a reader that parked behind the writer spins its parker forever —
/// a deadlock (or budget) report, exactly like the Figure 1 lost-permit
/// mutant.
fn async_trial(mutation: Mutation, scenario: Scenario) -> Trial {
    let lock = Arc::new(MutantAsyncRw::new_in(mutation, scenario.tasks(), Sched));
    let oracle = Arc::new(RwOracle::new());
    let mut tasks: Vec<TaskBody> = Vec::new();
    for r in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(r);
            block_on_sched(async {
                for _ in 0..scenario.attempts {
                    lock.read_acquire(pid).await;
                    oracle.reader_cs();
                    lock.read_release(pid);
                }
            });
        }));
    }
    for w in 0..scenario.writers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(scenario.readers + w);
            block_on_sched(async {
                for _ in 0..scenario.attempts {
                    lock.write_acquire(pid).await;
                    oracle.writer_cs();
                    lock.write_release(pid);
                }
            });
        }));
    }
    let q = Arc::clone(&lock);
    Trial {
        tasks,
        post: Box::new(move || {
            oracle.settle(&scenario)?;
            if mutation == Mutation::None && !q.is_quiescent() {
                return Err("async mutant control is not quiescent after a clean run".into());
            }
            Ok(())
        }),
    }
}

/// Readers pin epoch-stamped snapshots; one writer task models the
/// lock-serialized install stream (swap, epoch bump, grace scan, free).
/// The scan is the mutation point: [`Mutation::PrematureRetire`] skips
/// slot 0, so the reader publishing there can observe a freed payload —
/// the freed-flag oracle panics inside the read session.
fn swap_mutant_trial(
    mutation: Mutation,
    readers: usize,
    reader_attempts: u64,
    writer_passages: u64,
) -> Trial {
    let arena = writer_passages as usize + 2;
    let model = Arc::new(MutantSwap::new_in(mutation, readers, arena, Sched));
    let mut tasks: Vec<TaskBody> = Vec::new();
    for r in 0..readers {
        let model = Arc::clone(&model);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(r);
            for _ in 0..reader_attempts {
                model.reader_passage(pid);
            }
        }));
    }
    {
        let model = Arc::clone(&model);
        tasks.push(Box::new(move || {
            for _ in 0..writer_passages {
                model.writer_passage();
            }
        }));
    }
    let q = Arc::clone(&model);
    Trial {
        tasks,
        post: Box::new(move || {
            if mutation == Mutation::None && !q.is_quiescent() {
                return Err("swap mutant control is not quiescent after a clean run".into());
            }
            Ok(())
        }),
    }
}

fn flags_trial(mutation: Mutation, scenario: Scenario) -> Trial {
    let lock = Arc::new(MutantFlags::new_in(mutation, scenario.tasks(), Sched));
    let q = Arc::clone(&lock);
    rw_trial(lock, scenario, move || mutation != Mutation::None || q.is_quiescent())
}

fn bravo_trial(mutation: Mutation, scenario: Scenario) -> Trial {
    // 2 table slots, re-bias after 2 slow reads: revocation, collision and
    // re-bias all reachable within small scenarios.
    let lock = Arc::new(MutantBravo::new_in(mutation, 2, 2, Sched));
    let q = Arc::clone(&lock);
    rw_trial(lock, scenario, move || mutation != Mutation::None || q.is_quiescent())
}

/// Escalating hunt: PCT, then uniform random walks, then bounded DFS on
/// the (smaller) `mk_small` config. Asserts the mutant is caught, checks
/// the failure class, and replays the recorded schedule to verify
/// determinism. Returns which stage fired, for curiosity in test output.
fn assert_caught(
    label: &str,
    mk: impl Fn() -> Trial,
    mk_small: impl Fn() -> Trial,
    expected_any: &[&str],
) {
    let randomized = randomized_batteries(label, &mk, 0x0b5e_55ed, MUTANT_SCHEDULES, 3, BUDGET)
        .into_iter()
        .find_map(|report| report.failure);
    let (failure, replay_big) = if let Some(f) = randomized {
        (f, true)
    } else if let Some(f) = exhaustive(label, &mk_small, 2, BUDGET, MUTANT_DFS_CAP).failure {
        (f, false)
    } else {
        panic!("{label}: mutant survived PCT, random and bounded-DFS exploration");
    };
    assert!(
        expected_any.iter().any(|s| failure.reason.contains(s)),
        "{label}: unexpected failure class: {failure}"
    );

    // Determinism: replaying the recorded decisions reproduces the exact
    // failure — same decisions, same kind, same message for panics.
    let fresh = if replay_big { mk() } else { mk_small() };
    let mut strategy = Replay::new(failure.schedule.clone());
    let replayed = run_trial(fresh, &mut strategy, BUDGET);
    let err = replayed.result.expect_err("replay of a failing schedule came back clean");
    assert_eq!(replayed.schedule, failure.schedule, "{label}: replay took different decisions");
    match err {
        RunError::Panic { message, .. } => {
            assert!(
                expected_any.iter().any(|s| message.contains(s)),
                "{label}: replayed into a different failure: {message}"
            );
        }
        RunError::Deadlock { .. } => {
            assert!(
                failure.reason.starts_with("deadlock"),
                "{label}: replay deadlocked but original was: {}",
                failure.reason
            );
        }
        RunError::Budget { .. } => {
            assert!(
                failure.reason.contains("budget"),
                "{label}: replay exhausted budget but original was: {}",
                failure.reason
            );
        }
    }
}

/// The control copy must pass both battery styles at the mutants' budgets.
fn assert_control_passes(label: &str, mk: impl Fn() -> Trial) {
    for report in randomized_batteries(label, mk, 0x0c0a_7401, CONTROL_SCHEDULES, 3, BUDGET) {
        assert!(report.passed(), "{report}");
    }
}

/// [`assert_caught`] under [`MemoryModel::StoreBuffer`]: the escalating
/// hunt (PCT, random walks, bounded DFS with flush decisions in the
/// tree) plus a weak-model replay of the recorded schedule. This is what
/// the `Demote*` ordering mutants answer to — they are *invisible* under
/// sequential consistency by construction (see
/// `sc_cannot_see_the_ordering_mutants`), so catching them here is the
/// proof that the weak mode guards the relaxation sweep.
fn assert_caught_weak(
    label: &str,
    mk: impl Fn() -> Trial,
    mk_small: impl Fn() -> Trial,
    expected_any: &[&str],
) {
    let model = MemoryModel::StoreBuffer;
    let randomized =
        randomized_batteries_in(label, &mk, 0x0b5e_55ed, MUTANT_SCHEDULES, 3, BUDGET, model)
            .into_iter()
            .find_map(|report| report.failure);
    let (failure, replay_big) = if let Some(f) = randomized {
        (f, true)
    } else if let Some(f) =
        exhaustive_in(label, &mk_small, 2, BUDGET, MUTANT_DFS_CAP, model).failure
    {
        (f, false)
    } else {
        panic!("{label}: ordering mutant survived weak-model PCT, random and DFS exploration");
    };
    assert!(
        expected_any.iter().any(|s| failure.reason.contains(s)),
        "{label}: unexpected failure class: {failure}"
    );

    // Determinism holds under the weak model too: flush decisions are
    // recorded decisions, so the replay reproduces the exact failure.
    let fresh = if replay_big { mk() } else { mk_small() };
    let mut strategy = Replay::new(failure.schedule.clone());
    let replayed = run_trial_in(fresh, &mut strategy, BUDGET, model);
    let err = replayed.result.expect_err("replay of a failing weak schedule came back clean");
    assert_eq!(replayed.schedule, failure.schedule, "{label}: replay took different decisions");
    if let RunError::Panic { message, .. } = err {
        assert!(
            expected_any.iter().any(|s| message.contains(s)),
            "{label}: replayed into a different failure: {message}"
        );
    }
}

/// The control copy must also pass the *weak-model* batteries at the
/// same budgets: a catch only counts if the un-mutated twin survives the
/// identical exploration.
fn assert_control_passes_weak(label: &str, mk: impl Fn() -> Trial) {
    let reports = randomized_batteries_in(
        label,
        mk,
        0x0c0a_7401,
        CONTROL_SCHEDULES,
        3,
        BUDGET,
        MemoryModel::StoreBuffer,
    );
    for report in reports {
        assert!(report.passed(), "{report}");
    }
}

#[test]
fn fig1_control_passes_the_mutant_budgets() {
    assert_control_passes("fig1-control", || fig1_trial(Mutation::None, Scenario::new(2, 1, 2)));
}

#[test]
fn fig1_skip_gate_close_is_caught() {
    // The stale open gate needs the writer's second attempt, hence 2+
    // writer passages (also in the small DFS config).
    assert_caught(
        "fig1-skip-gate-close",
        || fig1_trial(Mutation::SkipGateClose, Scenario::new(2, 1, 3)),
        || fig1_trial(Mutation::SkipGateClose, Scenario::new(1, 1, 2)),
        &["P1 violated", "torn read", "deadlock", "not quiescent"],
    );
}

#[test]
fn fig1_skip_side_flip_is_caught() {
    assert_caught(
        "fig1-skip-side-flip",
        || fig1_trial(Mutation::SkipSideFlip, Scenario::new(2, 1, 3)),
        || fig1_trial(Mutation::SkipSideFlip, Scenario::new(1, 1, 2)),
        &["P1 violated", "torn read", "deadlock", "not quiescent"],
    );
}

#[test]
fn fig1_skip_reader_permit_is_caught() {
    // The lost wakeup parks the writer forever: a deadlock (or, if the
    // budget trips first mid-confirmation, a budget report).
    assert_caught(
        "fig1-skip-reader-permit",
        || fig1_trial(Mutation::SkipReaderPermit, Scenario::new(2, 1, 2)),
        || fig1_trial(Mutation::SkipReaderPermit, Scenario::new(1, 1, 2)),
        &["deadlock", "budget"],
    );
}

#[test]
fn ttas_control_passes_the_mutant_budgets() {
    assert_control_passes("ttas-control", || ttas_trial(Mutation::None));
}

#[test]
fn ttas_wrong_cas_expected_is_caught() {
    assert_caught(
        "ttas-wrong-cas",
        || ttas_trial(Mutation::WrongCasExpected),
        || mutex_trial(Arc::new(MutantTtas::new_in(Mutation::WrongCasExpected, Sched)), 2, 2),
        &["mutual exclusion violated", "torn pair"],
    );
}

#[test]
fn anderson_control_passes_the_mutant_budgets() {
    assert_control_passes("anderson-control", || anderson_trial(Mutation::None));
}

#[test]
fn bravo_control_passes_the_mutant_budgets() {
    assert_control_passes("bravo-control", || bravo_trial(Mutation::None, Scenario::new(2, 1, 2)));
}

#[test]
fn bravo_skip_revocation_scan_is_caught() {
    // The writer enters over a still-published fast reader: an exclusion
    // violation or a torn read, depending on who the oracle trips first.
    assert_caught(
        "bravo-skip-revocation-scan",
        || bravo_trial(Mutation::SkipRevocationScan, Scenario::new(2, 1, 2)),
        || bravo_trial(Mutation::SkipRevocationScan, Scenario::new(1, 1, 1)),
        &["P1 violated", "torn read"],
    );
}

#[test]
fn swap_control_passes_the_mutant_budgets() {
    assert_control_passes("swap-control", || swap_mutant_trial(Mutation::None, 2, 2, 2));
}

#[test]
fn swap_premature_retire_is_caught() {
    // The reader in slot 0 pins a payload; the mutant writer's grace scan
    // starts at slot 1, frees it anyway, and the reader's freed-flag
    // oracle trips inside the read session. One reader keeps the mutant
    // scan a no-op, so the whole race is the single-window interleaving
    // "publish/load → full writer passage → dereference".
    assert_caught(
        "swap-premature-retire",
        || swap_mutant_trial(Mutation::PrematureRetire, 2, 2, 2),
        || swap_mutant_trial(Mutation::PrematureRetire, 1, 1, 2),
        &["freed payload observed"],
    );
}

#[test]
fn async_control_passes_the_mutant_budgets() {
    assert_control_passes("async-control", || async_trial(Mutation::None, Scenario::new(2, 1, 2)));
}

/// The fairness trial over the doorway mutant: the production
/// `AsyncRwLock` drives the wrapper's (possibly tokenless) doorway, and
/// the bounded-bypass oracle must distinguish the faithful forward from
/// the dropped token.
fn async_fair_mutant_trial(mutation: Mutation, scenario: Scenario) -> Trial {
    let capacity = scenario.tasks().max(4);
    let lock = Arc::new(rmr_async::lock::AsyncRwLock::with_raw_and_capacity_in(
        (),
        MutantTokenlessTicket::new_in(mutation, capacity, Sched),
        capacity,
        Sched,
    ));
    let q = Arc::clone(&lock);
    rmr_check::async_exec::async_fair_trial(lock, scenario, move || {
        mutation != Mutation::None || q.is_quiescent()
    })
}

#[test]
fn async_fair_control_passes_the_mutant_budgets() {
    assert_control_passes("async-fair-control", || {
        async_fair_mutant_trial(Mutation::None, Scenario::new(2, 1, 2))
    });
}

#[test]
fn async_drop_waiter_token_is_caught() {
    // With the token dropped, the readers' remaining passages all clear
    // the "parked" writer's bare try-polling: any schedule that parks the
    // writer early sees more than `readers` bypasses at the grant. 3
    // reader attempts guarantee the overshoot is reachable (up to 6
    // bypasses against a bound of 2).
    assert_caught(
        "async-drop-waiter-token",
        || async_fair_mutant_trial(Mutation::DropWaiterToken, Scenario::new(2, 1, 3)),
        || async_fair_mutant_trial(Mutation::DropWaiterToken, Scenario::new(1, 1, 3)),
        &["bounded bypass violated"],
    );
}

#[test]
fn async_drop_wakeup_is_caught() {
    // A reader must park behind the writer before the writer's (skipped)
    // release wake — 2 writer passages give every strategy that window.
    assert_caught(
        "async-drop-wakeup",
        || async_trial(Mutation::DropWakeup, Scenario::new(2, 1, 2)),
        || async_trial(Mutation::DropWakeup, Scenario::new(1, 1, 2)),
        &["deadlock", "budget"],
    );
}

#[test]
fn anderson_skip_slot_close_is_caught() {
    assert_caught(
        "anderson-skip-slot-close",
        || anderson_trial(Mutation::SkipSlotClose),
        || anderson_trial(Mutation::SkipSlotClose),
        &["mutual exclusion violated", "torn pair"],
    );
}

// ---------------------------------------------------------------------
// The ordering mutants (`Demote*`): each demotes exactly one SeqCst
// store to Release at a site DESIGN.md §13 proves must stay SeqCst.
// Under sequential consistency the demotion changes nothing — the SC
// batteries must pass it. Under the store buffer the demoted store can
// sit buffered across the protocol's Dekker window, and the batteries
// must catch it. Together the pair shows the weak mode (not luck, not
// the oracles alone) is what polices the relaxation sweep.
// ---------------------------------------------------------------------

#[test]
fn flags_control_passes_the_weak_budgets() {
    assert_control_passes("flags-control", || flags_trial(Mutation::None, Scenario::new(2, 1, 2)));
    assert_control_passes_weak("flags-control", || {
        flags_trial(Mutation::None, Scenario::new(2, 1, 2))
    });
}

#[test]
fn bravo_and_swap_controls_pass_the_weak_budgets() {
    assert_control_passes_weak("bravo-control", || {
        bravo_trial(Mutation::None, Scenario::new(2, 1, 2))
    });
    assert_control_passes_weak("swap-control", || swap_mutant_trial(Mutation::None, 2, 2, 2));
}

#[test]
fn sc_cannot_see_the_ordering_mutants() {
    // The demotions are no-ops under sequential consistency: every store
    // is applied immediately whatever its ordering, so the SC batteries
    // (the mutants' own budgets) must come back green. This is the
    // "invisible half" of the Demote* proof — a mutant the SC batteries
    // caught would be a protocol bug, not an ordering bug.
    assert_control_passes("flags-demote-sc", || {
        flags_trial(Mutation::DemoteFlagRaise, Scenario::new(2, 1, 2))
    });
    assert_control_passes("bravo-demote-sc", || {
        bravo_trial(Mutation::DemoteBiasClear, Scenario::new(2, 1, 2))
    });
    assert_control_passes("swap-demote-sc", || {
        swap_mutant_trial(Mutation::DemotePublishEpoch, 2, 2, 2)
    });
}

#[test]
fn flags_demote_flag_raise_is_caught_under_the_weak_model() {
    // Site BL-FLAGS: the reader's flag raise is one half of a Dekker
    // square. Buffered, the raise is invisible to the writer's scan while
    // the reader's SeqCst `writer_present` check (a buffer drain + native
    // load) still sees no writer: both sides enter.
    assert_caught_weak(
        "flags-demote-flag-raise",
        || flags_trial(Mutation::DemoteFlagRaise, Scenario::new(2, 1, 2)),
        || flags_trial(Mutation::DemoteFlagRaise, Scenario::new(1, 1, 1)),
        &["P1 violated", "torn read"],
    );
}

#[test]
fn bravo_demote_bias_clear_is_caught_under_the_weak_model() {
    // Site BR-CLEAR: the revoking writer's bias clear sits buffered, so a
    // fast reader's SeqCst re-check still sees the bias up after the
    // writer's (already passed) revocation scan: reader and writer
    // overlap in the critical section.
    assert_caught_weak(
        "bravo-demote-bias-clear",
        || bravo_trial(Mutation::DemoteBiasClear, Scenario::new(2, 1, 2)),
        || bravo_trial(Mutation::DemoteBiasClear, Scenario::new(1, 1, 1)),
        &["P1 violated", "torn read"],
    );
}

#[test]
fn swap_demote_publish_epoch_is_caught_under_the_weak_model() {
    // Site SW-PUB: the reader's epoch publication sits buffered, so the
    // writer's grace scan reads slot 0 and frees the payload the reader
    // is still dereferencing — the freed-flag oracle trips inside the
    // read session.
    assert_caught_weak(
        "swap-demote-publish-epoch",
        || swap_mutant_trial(Mutation::DemotePublishEpoch, 2, 2, 2),
        || swap_mutant_trial(Mutation::DemotePublishEpoch, 1, 1, 2),
        &["freed payload observed"],
    );
}
