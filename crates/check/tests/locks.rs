//! Every shipped lock, driven through deterministic schedule exploration.
//!
//! This is the correctness half of experiment E14: the five core locks,
//! the four mutexes and the baselines each survive a seeded PCT battery,
//! a uniform random-walk battery, and (core locks) a bounded-exhaustive
//! DFS pass — with exclusion, torn-read, deadlock and quiescence oracles
//! armed throughout. `RMR_TEST_SEED` reseeds every battery; failures
//! print the seed and decision schedule needed to replay them.

use rmr_check::exhaustive;
use rmr_check::harness::{
    mutex_trial, randomized_batteries, rw_trial, try_rw_trial, Scenario, Trial,
};
use rmr_core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmr_core::swmr::{SwmrReaderPriority, SwmrWriterPriority};
use rmr_mutex::{AndersonLock, McsLock, RawMutex, Sched, TasLock, TicketLock, TtasLock};
use std::sync::Arc;

const BUDGET: u64 = 30_000;
const PCT_SCHEDULES: u64 = 10;
const PCT_DEPTH: usize = 3;
const DFS_CAP: u64 = 2_500;

/// Runs the standard randomized batteries over a trial builder and
/// asserts they pass.
fn assert_randomized(label: &str, mk: impl Fn() -> Trial) {
    for report in randomized_batteries(label, mk, 0x5eed_0001, PCT_SCHEDULES, PCT_DEPTH, BUDGET) {
        assert!(report.passed(), "{report}");
    }
}

/// Adds a bounded-exhaustive DFS pass (small config, preemption bound 2).
fn assert_exhaustive(label: &str, mk: impl Fn() -> Trial) {
    let report = exhaustive(label, mk, 2, BUDGET, DFS_CAP);
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "{label}: suspiciously small schedule tree: {report}");
}

// ---------------------------------------------------------------------
// The five core locks
// ---------------------------------------------------------------------

#[test]
fn fig1_swmr_writer_priority_randomized() {
    assert_randomized("fig1-swmr-wp", || {
        let lock = Arc::new(SwmrWriterPriority::new_in(Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn fig1_swmr_writer_priority_exhaustive() {
    assert_exhaustive("fig1-swmr-wp", || {
        let lock = Arc::new(SwmrWriterPriority::new_in(Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
    });
}

#[test]
fn fig2_swmr_reader_priority_randomized() {
    assert_randomized("fig2-swmr-rp", || {
        let lock = Arc::new(SwmrReaderPriority::new_in(Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn fig2_swmr_reader_priority_exhaustive() {
    assert_exhaustive("fig2-swmr-rp", || {
        let lock = Arc::new(SwmrReaderPriority::new_in(Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
    });
}

#[test]
fn fig3_mwmr_starvation_free_randomized() {
    assert_randomized("fig3-mwmr-sf", || {
        let lock = Arc::new(MwmrStarvationFree::new_in(4, Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 2, 2), move || q.is_quiescent())
    });
}

#[test]
fn fig3_mwmr_starvation_free_exhaustive() {
    assert_exhaustive("fig3-mwmr-sf", || {
        let lock = Arc::new(MwmrStarvationFree::new_in(2, Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
    });
}

#[test]
fn fig3_mwmr_reader_priority_randomized() {
    assert_randomized("fig3-mwmr-rp", || {
        let lock = Arc::new(MwmrReaderPriority::new_in(4, Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 2, 2), move || q.is_quiescent())
    });
}

#[test]
fn fig4_mwmr_writer_priority_randomized() {
    assert_randomized("fig4-mwmr-wp", || {
        let lock = Arc::new(MwmrWriterPriority::new_in(4, Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 2, 2), move || q.is_quiescent())
    });
}

#[test]
fn fig4_mwmr_writer_priority_exhaustive() {
    assert_exhaustive("fig4-mwmr-wp", || {
        let lock = Arc::new(MwmrWriterPriority::new_in(2, Sched));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
    });
}

// ---------------------------------------------------------------------
// The mutex substrate
// ---------------------------------------------------------------------

fn mutex_randomized<M: RawMutex + 'static>(label: &str, mk: impl Fn() -> M) {
    assert_randomized(label, || mutex_trial(Arc::new(mk()), 3, 2));
}

#[test]
fn anderson_lock_randomized() {
    mutex_randomized("anderson", || AndersonLock::new_in(4, Sched));
}

#[test]
fn anderson_lock_exhaustive() {
    assert_exhaustive("anderson", || mutex_trial(Arc::new(AndersonLock::new_in(2, Sched)), 2, 1));
}

#[test]
fn mcs_lock_randomized() {
    mutex_randomized("mcs", || McsLock::new_in(Sched));
}

#[test]
fn ticket_lock_randomized() {
    mutex_randomized("ticket", || TicketLock::new_in(Sched));
}

#[test]
fn ticket_lock_exhaustive() {
    assert_exhaustive("ticket", || mutex_trial(Arc::new(TicketLock::new_in(Sched)), 2, 1));
}

#[test]
fn tas_lock_randomized() {
    mutex_randomized("tas", || TasLock::new_in(Sched));
}

#[test]
fn ttas_lock_randomized() {
    mutex_randomized("ttas", || TtasLock::new_in(Sched));
}

// ---------------------------------------------------------------------
// The baselines (full try tier where available)
// ---------------------------------------------------------------------

#[test]
fn centralized_baseline_randomized() {
    assert_randomized("centralized", || {
        let lock = Arc::new(rmr_baselines::CentralizedRwLock::new_in(4, Sched));
        rw_trial(lock, Scenario::new(2, 1, 2), || true)
    });
}

#[test]
fn courtois_wp_baseline_randomized() {
    assert_randomized("courtois-wp", || {
        let lock = Arc::new(rmr_baselines::CourtoisWriterPrefRwLock::new_in(4, Sched));
        rw_trial(lock, Scenario::new(2, 1, 2), || true)
    });
}

#[test]
fn ticket_rw_baseline_randomized() {
    assert_randomized("ticket-rw", || {
        let lock = Arc::new(rmr_baselines::TicketRwLock::new_in(4, Sched));
        rw_trial(lock, Scenario::new(2, 1, 2), || true)
    });
}

#[test]
fn flags_baseline_randomized() {
    assert_randomized("flags", || {
        let lock = Arc::new(rmr_baselines::DistributedFlagRwLock::new_in(4, Sched));
        rw_trial(lock, Scenario::new(2, 1, 2), || true)
    });
}

#[test]
fn tournament_baseline_randomized() {
    assert_randomized("tournament", || {
        let lock = Arc::new(rmr_baselines::TournamentRwLock::new_in(4, Sched));
        rw_trial(lock, Scenario::new(2, 1, 2), || true)
    });
}

#[test]
fn baselines_try_tier_randomized() {
    assert_randomized("centralized-try", || {
        let lock = Arc::new(rmr_baselines::CentralizedRwLock::new_in(4, Sched));
        try_rw_trial(lock, Scenario::new(2, 1, 2), || true)
    });
    assert_randomized("ticket-rw-try", || {
        let lock = Arc::new(rmr_baselines::TicketRwLock::new_in(4, Sched));
        try_rw_trial(lock, Scenario::new(2, 1, 2), || true)
    });
    assert_randomized("flags-try", || {
        let lock = Arc::new(rmr_baselines::DistributedFlagRwLock::new_in(4, Sched));
        try_rw_trial(lock, Scenario::new(2, 1, 2), || true)
    });
}
