//! The litmus suite pinned end to end (see `rmr_check::litmus`).
//!
//! Every test in the suite explores its full schedule tree, so these are
//! exact statements about the model, not sampled ones: the relaxed
//! outcomes the store-buffer mode must exhibit are exhibited, and the
//! ones it must forbid (release-fronted flushes, SeqCst drains,
//! multi-copy atomicity) never appear.

use rmr_check::litmus::litmus_suite;

#[test]
fn litmus_suite_matches_the_pinned_outcomes() {
    let reports = litmus_suite();
    assert_eq!(reports.len(), 6, "suite shape changed — update the pins deliberately");
    for report in &reports {
        assert!(report.passed(), "{report}");
        // A litmus run that explored a single schedule would prove
        // nothing; every program here has real interleavings.
        assert!(report.schedules > 1, "{}: degenerate exploration", report.name);
    }
    // The headline pair: the weak model shows the SB reordering the
    // Demote* mutants reintroduce, and only the weak model shows it.
    let by_name = |n: &str| reports.iter().find(|r| r.name == n).expect("missing litmus test");
    assert!(by_name("sb-relaxed").observed);
    assert!(!by_name("sb-seqcst").observed);
    assert!(by_name("mp-relaxed").observed);
    assert!(!by_name("mp-relaxed-sc").observed);
    assert!(!by_name("iriw").observed);
}
