//! The Bravo wrapper under deterministic schedule exploration.
//!
//! Everything here drives the *shipped* `rmr_bravo::Bravo` code over the
//! `Sched` backend — wrapper state (bias word, visible-readers table,
//! re-bias counter) **and** inner lock both scheduled, so the protocol's
//! races are explored at the same atomicity as the core locks: a reader's
//! publish/re-check against a writer's clear/scan, collisions falling back
//! to the slow path, the counter re-bias firing between revocations, and
//! the one-shot bounded revocation of the try-write tier. Tables are kept
//! tiny (1–4 slots) so the writer's revocation scan stays cheap per
//! schedule and collisions actually occur. This file is what the CI
//! `bravo-quick` step runs.

use rmr_bravo::{Bravo, BravoConfig};
use rmr_check::exhaustive;
use rmr_check::harness::{
    randomized_batteries, rw_trial, try_read_trial, try_rw_trial, RwOracle, Scenario, TaskBody,
    Trial,
};
use rmr_core::mwmr::MwmrStarvationFree;
use rmr_core::raw::{RawRwLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_mutex::Sched;
use std::sync::Arc;

const BUDGET: u64 = 30_000;
const PCT_SCHEDULES: u64 = 10;
const PCT_DEPTH: usize = 3;
const DFS_CAP: u64 = 2_500;

fn assert_randomized(label: &str, mk: impl Fn() -> Trial) {
    for report in randomized_batteries(label, mk, 0xb2a_0001, PCT_SCHEDULES, PCT_DEPTH, BUDGET) {
        assert!(report.passed(), "{report}");
    }
}

/// Bravo over the ticket baseline, both over `Sched`; default-ish policy
/// with a table larger than the pid population (fast paths dominate).
fn bravo_ticket(
    table_slots: usize,
    rebias_after: u32,
) -> Arc<Bravo<rmr_baselines::TicketRwLock<Sched>, Sched>> {
    Arc::new(Bravo::new_in(
        rmr_baselines::TicketRwLock::new_in(8, Sched),
        BravoConfig { table_slots, rebias_after, initial_bias: true },
        Sched,
    ))
}

#[test]
fn bravo_over_ticket_randomized() {
    assert_randomized("bravo-ticket-rw", || {
        let lock = bravo_ticket(4, 2);
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn bravo_over_ticket_exhaustive() {
    let report = exhaustive(
        "bravo-ticket-rw",
        || {
            let lock = bravo_ticket(2, 2);
            let q = Arc::clone(&lock);
            rw_trial(lock, Scenario::new(1, 1, 1), move || q.is_quiescent())
        },
        2,
        BUDGET,
        DFS_CAP,
    );
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "suspiciously small schedule tree: {report}");
}

#[test]
fn bravo_single_slot_collisions_randomized() {
    // A 1-slot table makes every concurrent second reader collide, so the
    // slow path, the re-bias counter and the fast path all run in one
    // scenario.
    assert_randomized("bravo-collide", || {
        let lock = bravo_ticket(1, 1);
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn bravo_over_core_lock_randomized() {
    // Wrapping one of the paper's own locks: quiescence must hold on both
    // layers (table drained AND the Figure 3 state at rest).
    assert_randomized("bravo-fig3-sf", || {
        let lock = Arc::new(Bravo::new_in(
            MwmrStarvationFree::new_in(3, Sched),
            BravoConfig { table_slots: 4, rebias_after: 2, initial_bias: true },
            Sched,
        ));
        let q = Arc::clone(&lock);
        rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent() && q.inner().is_quiescent())
    });
}

#[test]
fn bravo_try_read_tier_randomized() {
    // Readers through `try_read_lock`: fast-path attempts race the
    // writer's revocation; aborts must account cleanly.
    assert_randomized("bravo-try-read", || {
        let lock = bravo_ticket(4, 2);
        let q = Arc::clone(&lock);
        try_read_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

#[test]
fn bravo_try_write_tier_randomized() {
    // Writers through the one-shot bounded revocation (`try_write_lock`):
    // a published fast reader must fail the attempt, never block it.
    assert_randomized("bravo-try-rw", || {
        let lock = bravo_ticket(4, 2);
        let q = Arc::clone(&lock);
        try_rw_trial(lock, Scenario::new(2, 1, 2), move || q.is_quiescent())
    });
}

/// One blocking (fast-path) reader, one try-writer, one blocking writer —
/// the composition none of the uniform trials generate. This is the
/// scenario that caught the bias/table desynchronization: a *failed*
/// `try_write_lock` clears the bias to scan, and if it left it cleared
/// with the reader still published, the blocking writer's revocation
/// would skip its scan and walk into the read session (P1).
fn mixed_writer_tiers_trial(table_slots: usize, attempts: u32) -> Trial {
    let lock = bravo_ticket(table_slots, 2);
    let oracle = Arc::new(RwOracle::new());
    let scenario = Scenario::new(1, 2, attempts).with_try_writers();
    let mut tasks: Vec<TaskBody> = Vec::new();
    {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(0);
            for _ in 0..scenario.attempts {
                let t = lock.read_lock(pid);
                oracle.reader_cs();
                lock.read_unlock(pid, t);
            }
        }));
    }
    {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(1);
            for _ in 0..scenario.attempts {
                match lock.try_write_lock(pid) {
                    Some(t) => {
                        oracle.writer_cs();
                        lock.write_unlock(pid, t);
                    }
                    None => oracle.write_abort(),
                }
            }
        }));
    }
    {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(2);
            for _ in 0..scenario.attempts {
                let () = lock.write_lock(pid);
                oracle.writer_cs();
                lock.write_unlock(pid, ());
            }
        }));
    }
    let q = Arc::clone(&lock);
    Trial {
        tasks,
        post: Box::new(move || {
            oracle.settle(&scenario)?;
            if !q.is_quiescent() {
                return Err("visible-readers table did not drain".into());
            }
            Ok(())
        }),
    }
}

#[test]
fn bravo_mixed_writer_tiers_randomized() {
    assert_randomized("bravo-mixed-writers", || mixed_writer_tiers_trial(4, 2));
}

#[test]
fn bravo_mixed_writer_tiers_exhaustive() {
    // Bounded-exhaustive DFS over the small config: this systematically
    // reaches the failed-try-then-blocking-write window that randomized
    // walks can miss (verified to catch the historical desync bug).
    let report =
        exhaustive("bravo-mixed-writers", || mixed_writer_tiers_trial(2, 1), 2, BUDGET, DFS_CAP);
    assert!(report.passed(), "{report}");
    assert!(report.schedules > 10, "suspiciously small schedule tree: {report}");
}
