//! Deterministic schedule exploration of the *shipped* lock
//! implementations.
//!
//! `rmr-sim` model-checks line-level *re-encodings* of the paper's
//! algorithms; the stress tests exercise the real Rust locks but at the
//! mercy of the OS scheduler. This crate closes that gap: it drives the
//! real implementations — the five core locks of `rmr-core`, the four
//! mutexes of `rmr-mutex`, the `rmr-baselines` comparators, and
//! `PidRegistry` — through the [`Sched`](rmr_mutex::sched) memory backend,
//! whose cooperative scheduler makes every interleaving a deterministic,
//! replayable function of a strategy and a seed.
//!
//! Three exploration modes:
//!
//! * **Randomized walks** ([`strategies::RandomWalk`]) — uniform schedule
//!   sampling, seeded with the workspace's `SplitMix64`.
//! * **PCT** ([`strategies::Pct`]) — the probabilistic concurrency testing
//!   scheduler of Burckhardt et al.: random task priorities plus `d − 1`
//!   random priority-change points, which finds depth-`d` ordering bugs
//!   with provable probability instead of hoping a uniform walk stumbles
//!   on them.
//! * **Bounded exhaustive DFS** ([`dfs`]) — every schedule of a small
//!   configuration, modulo a preemption bound (the CHESS insight:
//!   real-world concurrency bugs almost always need only 1–2 preemptions),
//!   with stall-driven context switches free of charge.
//!
//! The oracles ([`harness`]) panic inside the schedule the moment a
//! property breaks: reader-writer exclusion (the shared predicate
//! [`rmr_sim::predicates::rw_exclusion`]), plain mutual exclusion for the
//! mutex substrate, torn cross-variable reads, post-run quiescence
//! (`is_quiescent` / counters back to zero), and — from the scheduler
//! itself — deadlock and budget exhaustion. Every failure prints a
//! one-line replay recipe; [`harness::replay`] reruns it exactly.
//!
//! The same machinery checks the **async tier**: [`async_exec`] runs
//! `rmr-async` futures under the scheduler (each task a deterministic
//! executor whose idle wait is a `Sched` spin), so parking races are
//! explored per shared-memory operation and a lost wake-up is a
//! replayable deadlock report, not a hung test.
//!
//! The deliberately broken locks in [`mutants`] prove the checker has
//! teeth: each seeded bug (dropped gate store, wrong CAS expected value,
//! skipped side flip, dropped wake-up, …) must be caught within a
//! bounded schedule budget.
//!
//! # Example
//!
//! ```
//! use rmr_check::harness::{pct_battery, rw_trial, Scenario};
//! use rmr_core::swmr::SwmrWriterPriority;
//! use rmr_mutex::Sched;
//! use std::sync::Arc;
//!
//! let scenario = Scenario::new(2, 1, 1); // 2 readers, 1 writer, 1 attempt
//! let report = pct_battery(
//!     "fig1-swmr-wp",
//!     || {
//!         let lock = Arc::new(SwmrWriterPriority::new_in(Sched));
//!         let quiesce = Arc::clone(&lock);
//!         rw_trial(lock, scenario, move || quiesce.is_quiescent())
//!     },
//!     0xf1,  // base seed
//!     8,     // schedules
//!     3,     // PCT depth
//!     20_000,
//! );
//! assert!(report.failure.is_none(), "{report}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod async_exec;
pub mod dfs;
pub mod harness;
pub mod litmus;
pub mod mutants;
pub mod obs;
pub mod strategies;

pub use async_exec::{block_on_sched, SchedParker};
pub use dfs::{exhaustive, exhaustive_in, DfsStrategy};
pub use harness::{
    pct_battery, random_battery, randomized_batteries, randomized_batteries_in, replay, replay_in,
    rw_trial, CheckFailure, CheckReport, Scenario, Trial,
};
pub use litmus::{litmus_suite, LitmusReport};
pub use strategies::{Pct, RandomWalk};

/// Base seed for the randomized suites: the value of the `RMR_TEST_SEED`
/// environment variable (decimal, or hex with an `0x` prefix) if set,
/// otherwise `default`.
///
/// Every failure report prints the concrete seed that produced it, so
/// `RMR_TEST_SEED=<that seed> cargo test <failing test>` replays the exact
/// schedule.
///
/// # Example
///
/// ```
/// let seed = rmr_check::env_seed(0xdead_beef);
/// assert!(seed == 0xdead_beef || std::env::var("RMR_TEST_SEED").is_ok());
/// ```
pub fn env_seed(default: u64) -> u64 {
    match std::env::var("RMR_TEST_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = raw
                .strip_prefix("0x")
                .or_else(|| raw.strip_prefix("0X"))
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| raw.parse());
            match parsed {
                Ok(seed) => seed,
                Err(_) => panic!("RMR_TEST_SEED must be a u64 (decimal or 0x-hex), got {raw:?}"),
            }
        }
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_seed_falls_back_to_default() {
        // The test environment does not set RMR_TEST_SEED (and if a user
        // does, the override is exactly the documented behavior).
        if std::env::var("RMR_TEST_SEED").is_err() {
            assert_eq!(super::env_seed(42), 42);
        }
    }
}
