//! Litmus tests pinning the weak memory model's semantics.
//!
//! The store-buffer mode ([`MemoryModel::StoreBuffer`]) is only evidence
//! if its *own* behavior is pinned: a model that silently forbade the
//! reorderings it claims to explore would pass every battery vacuously.
//! Each test here is a classic litmus shape — message passing (MP), store
//! buffering (SB, the Dekker square), and independent reads of
//! independent writes (IRIW) — run to **schedule exhaustion** under the
//! DFS explorer, with the distinguished relaxed outcome pinned one way:
//!
//! * `mp-relaxed` — data and flag both published with `Relaxed` stores:
//!   the flag may flush before the data (the model reorders independent
//!   relaxed stores), so the stale outcome `flag = 1, data = 0` **must**
//!   be observed.
//! * `mp-release` — same program, flag published with `Release`: a
//!   release store flushes only from the buffer front, so the data store
//!   flushes first and the stale outcome **must not** appear.
//! * `sb-relaxed` — the Dekker square with `Release` stores: both stores
//!   park in their writers' buffers past the cross reads, so the
//!   both-read-zero outcome **must** be observed. This is the exact shape
//!   the `Demote*` mutants reintroduce into the locks.
//! * `sb-seqcst` — the Dekker square as the locks actually write it
//!   (SeqCst stores drain the buffer): both-read-zero **must not**
//!   appear.
//! * `mp-relaxed-sc` — the `mp-relaxed` program under
//!   [`MemoryModel::SeqCst`]: the stale outcome **must not** appear,
//!   pinning that the weak mode (not the scheduler) is what unlocks it.
//! * `iriw` — two readers disagreeing on the order of two independent
//!   SeqCst writes **must not** appear: buffered stores land in a single
//!   shared memory, so the model is multi-copy atomic (TSO-like). This is
//!   a documented *limitation* — the model checks store→load reordering,
//!   the only relaxation the per-site policy in DESIGN.md §13 leans on,
//!   and cannot witness non-MCA behaviors (ARM/POWER IRIW).
//!
//! A pinned-allowed outcome that stops appearing, or a pinned-forbidden
//! outcome that appears, fails the suite — guarding both the model's
//! soundness and its strength against regressions.

use crate::dfs::{next_prefix, DfsStrategy};
use rmr_mutex::mem::{Backend, Ordering, SharedWord};
use rmr_mutex::sched::{run_tasks_in, MemoryModel};
use rmr_mutex::Sched;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::Arc;

type Word = <Sched as Backend>::Word;

/// Step budget per schedule — litmus programs are a handful of
/// operations, so this only trips if the model livelocks.
const BUDGET: u64 = 2_000;

/// DFS preemption bound. The programs are 4–6 operations per task with
/// no spins, so this is effectively unbounded — every schedule (and
/// every flush order) is explored.
const PREEMPTIONS: u32 = 16;

/// Result of one litmus test: whether the distinguished outcome was
/// observed across the exhaustively explored schedules, and whether it
/// was supposed to be.
#[derive(Debug, Clone)]
pub struct LitmusReport {
    /// Test name, e.g. `mp-relaxed`.
    pub name: &'static str,
    /// Model label: `sb` (store buffer) or `sc`.
    pub model: &'static str,
    /// Schedules explored (the full tree — never truncated).
    pub schedules: u64,
    /// Scheduler steps across all schedules.
    pub steps: u64,
    /// The distinguished relaxed outcome was observed in some schedule.
    pub observed: bool,
    /// The pin: whether the outcome must be observable.
    pub expect_observed: bool,
}

impl LitmusReport {
    /// True when observation matched the pin.
    pub fn passed(&self) -> bool {
        self.observed == self.expect_observed
    }
}

impl fmt::Display for LitmusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} schedules, {} steps — outcome {}, pinned {} — {}",
            self.name,
            self.model,
            self.schedules,
            self.steps,
            if self.observed { "seen" } else { "unseen" },
            if self.expect_observed { "allowed" } else { "forbidden" },
            if self.passed() { "ok" } else { "FAIL" }
        )
    }
}

/// One litmus program: fresh shared state plus task bodies that record
/// their reads into plain (un-scheduled) result cells.
struct Program {
    tasks: Vec<Box<dyn FnOnce() + Send>>,
    results: Arc<Vec<AtomicU64>>,
}

/// Explores every schedule of `mk`'s program under `model` and reports
/// whether any schedule's recorded results satisfy `distinguished`.
///
/// # Panics
///
/// Panics if a schedule fails to run cleanly (litmus programs have no
/// spins and cannot deadlock) or the DFS tree is unexpectedly huge —
/// either means the model itself regressed.
fn explore(
    name: &'static str,
    mk: impl Fn() -> Program,
    model: MemoryModel,
    expect_observed: bool,
    distinguished: impl Fn(&[u64]) -> bool,
) -> LitmusReport {
    const MAX_SCHEDULES: u64 = 100_000;
    let mut prefix: Vec<u32> = Vec::new();
    let mut schedules = 0;
    let mut steps = 0;
    let mut observed = false;
    loop {
        let program = mk();
        let mut strategy = DfsStrategy::new(prefix.clone(), PREEMPTIONS);
        let outcome = run_tasks_in(program.tasks, &mut strategy, BUDGET, model);
        schedules += 1;
        steps += outcome.steps;
        if let Err(err) = outcome.result {
            panic!("litmus {name}: schedule failed to complete: {err}");
        }
        let results: Vec<u64> =
            program.results.iter().map(|r| r.load(StdOrdering::SeqCst)).collect();
        observed = observed || distinguished(&results);
        match next_prefix(&strategy.choices) {
            Some(next) => prefix = next,
            None => break,
        }
        assert!(schedules < MAX_SCHEDULES, "litmus {name}: schedule tree blew past the cap");
    }
    let model = match model {
        MemoryModel::SeqCst => "sc",
        MemoryModel::StoreBuffer => "sb",
    };
    LitmusReport { name, model, schedules, steps, observed, expect_observed }
}

/// Message passing: T0 writes data then raises a flag; T1 reads the flag
/// then the data. `results = [flag_seen, data_seen]`; the stale outcome
/// is `flag_seen = 1, data_seen = 0`.
fn mp_program(data_order: Ordering, flag_order: Ordering) -> Program {
    let data = Arc::new(Word::new(0));
    let flag = Arc::new(Word::new(0));
    let results: Arc<Vec<AtomicU64>> = Arc::new((0..2).map(|_| AtomicU64::new(0)).collect());
    let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    {
        let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
        tasks.push(Box::new(move || {
            data.store(1, data_order);
            flag.store(1, flag_order);
        }));
    }
    {
        let results = Arc::clone(&results);
        tasks.push(Box::new(move || {
            let f = flag.load(Ordering::Acquire);
            let d = data.load(Ordering::Acquire);
            results[0].store(f, StdOrdering::SeqCst);
            results[1].store(d, StdOrdering::SeqCst);
        }));
    }
    Program { tasks, results }
}

fn mp_stale(results: &[u64]) -> bool {
    results[0] == 1 && results[1] == 0
}

/// Store buffering (the Dekker square): each task stores its own
/// variable then loads the other's. `results = [r0, r1]`; the relaxed
/// outcome is both reading 0.
fn sb_program(store_order: Ordering) -> Program {
    let x = Arc::new(Word::new(0));
    let y = Arc::new(Word::new(0));
    let results: Arc<Vec<AtomicU64>> = Arc::new((0..2).map(|_| AtomicU64::new(0)).collect());
    let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    {
        let (x, y) = (Arc::clone(&x), Arc::clone(&y));
        let results = Arc::clone(&results);
        tasks.push(Box::new(move || {
            x.store(1, store_order);
            results[0].store(y.load(Ordering::Acquire), StdOrdering::SeqCst);
        }));
    }
    {
        let results = Arc::clone(&results);
        tasks.push(Box::new(move || {
            y.store(1, store_order);
            results[1].store(x.load(Ordering::Acquire), StdOrdering::SeqCst);
        }));
    }
    Program { tasks, results }
}

fn sb_both_zero(results: &[u64]) -> bool {
    results[0] == 0 && results[1] == 0
}

/// IRIW: two writers store independent variables; two readers each read
/// both in opposite orders. `results = [r1, r2, r3, r4]`; the non-MCA
/// outcome is the readers disagreeing on the write order
/// (`1, 0, 1, 0`).
fn iriw_program() -> Program {
    let x = Arc::new(Word::new(0));
    let y = Arc::new(Word::new(0));
    let results: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
    let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    {
        let x = Arc::clone(&x);
        tasks.push(Box::new(move || x.store(1, Ordering::SeqCst)));
    }
    {
        let y = Arc::clone(&y);
        tasks.push(Box::new(move || y.store(1, Ordering::SeqCst)));
    }
    {
        let (x, y) = (Arc::clone(&x), Arc::clone(&y));
        let results = Arc::clone(&results);
        tasks.push(Box::new(move || {
            results[0].store(x.load(Ordering::SeqCst), StdOrdering::SeqCst);
            results[1].store(y.load(Ordering::SeqCst), StdOrdering::SeqCst);
        }));
    }
    {
        let results = Arc::clone(&results);
        tasks.push(Box::new(move || {
            results[2].store(y.load(Ordering::SeqCst), StdOrdering::SeqCst);
            results[3].store(x.load(Ordering::SeqCst), StdOrdering::SeqCst);
        }));
    }
    Program { tasks, results }
}

fn iriw_disagree(results: &[u64]) -> bool {
    results[0] == 1 && results[1] == 0 && results[2] == 1 && results[3] == 0
}

/// Runs the full litmus suite (module docs) and returns one report per
/// test. Every report must pass; `check_table` prints them as the
/// `litmus` row group and the `litmus` integration test asserts them.
pub fn litmus_suite() -> Vec<LitmusReport> {
    vec![
        explore(
            "mp-relaxed",
            || mp_program(Ordering::Relaxed, Ordering::Relaxed),
            MemoryModel::StoreBuffer,
            true,
            mp_stale,
        ),
        explore(
            "mp-release",
            || mp_program(Ordering::Relaxed, Ordering::Release),
            MemoryModel::StoreBuffer,
            false,
            mp_stale,
        ),
        explore(
            "mp-relaxed-sc",
            || mp_program(Ordering::Relaxed, Ordering::Relaxed),
            MemoryModel::SeqCst,
            false,
            mp_stale,
        ),
        explore(
            "sb-relaxed",
            || sb_program(Ordering::Release),
            MemoryModel::StoreBuffer,
            true,
            sb_both_zero,
        ),
        explore(
            "sb-seqcst",
            || sb_program(Ordering::SeqCst),
            MemoryModel::StoreBuffer,
            false,
            sb_both_zero,
        ),
        explore("iriw", iriw_program, MemoryModel::StoreBuffer, false, iriw_disagree),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mp_relaxed_reorders_and_release_restores_order() {
        let stale_relaxed = explore(
            "mp-relaxed",
            || mp_program(Ordering::Relaxed, Ordering::Relaxed),
            MemoryModel::StoreBuffer,
            true,
            mp_stale,
        );
        assert!(stale_relaxed.passed(), "{stale_relaxed}");
        let stale_release = explore(
            "mp-release",
            || mp_program(Ordering::Relaxed, Ordering::Release),
            MemoryModel::StoreBuffer,
            false,
            mp_stale,
        );
        assert!(stale_release.passed(), "{stale_release}");
    }

    #[test]
    fn sb_square_needs_seqcst() {
        let relaxed = explore(
            "sb-relaxed",
            || sb_program(Ordering::Release),
            MemoryModel::StoreBuffer,
            true,
            sb_both_zero,
        );
        assert!(relaxed.passed(), "{relaxed}");
        let seqcst = explore(
            "sb-seqcst",
            || sb_program(Ordering::SeqCst),
            MemoryModel::StoreBuffer,
            false,
            sb_both_zero,
        );
        assert!(seqcst.passed(), "{seqcst}");
    }
}
