//! Observability batteries: model-checking the recorder hooks
//! themselves.
//!
//! The `rmr-obs` tier promises two things its unit tests cannot fully
//! establish: the hooks fire *consistently with the protocol* under
//! every interleaving (no passage is double-counted, dropped, or
//! misattributed when the schedule is adversarial), and a recorded
//! trace tells a causally sensible story. These trials run instrumented
//! locks — a [`StatsRecorder`] over the deterministic [`TickClock`], so
//! trace timestamps are a pure function of the schedule — under the
//! same `Sched` explorer as the lock batteries, and make the recorder's
//! own numbers part of the post-run oracle:
//!
//! * **guard balance** (`obs/guard-balance`): over an [`Observed`]-
//!   wrapped raw lock driven by sync passages, every acquisition the
//!   recorder saw has exactly one matching release, and the totals
//!   equal the scenario's passage count — the counters are exact, not
//!   merely monotone.
//! * **park/wake** (`obs/park-wake`): over an instrumented
//!   [`AsyncRwLock`], every `AsyncPark` in the drained trace is
//!   followed by a same-pid grant (`ReadAcquire`/`WriteAcquire`) or an
//!   `AsyncCancel` — no parked future vanishes — and the bounded ring
//!   dropped nothing, so that claim is about the whole run.

use crate::harness::{RwOracle, Scenario, TaskBody, Trial};
use rmr_async::lock::AsyncRwLock;
use rmr_core::observed::Observed;
use rmr_core::raw::{RawMultiWriter, RawParkedWaiters, RawRwLock, RawTryReadLock};
use rmr_core::registry::PidRegistry;
use rmr_mutex::Sched;
use rmr_obs::{Event, StatsRecorder, TickClock, TraceEvent};
use std::sync::Arc;

/// The recorder every obs battery uses: deterministic virtual time, a
/// bounded trace ring sized generously enough that a clean small-
/// configuration run must not drop events.
pub type ObsRecorder = Arc<StatsRecorder<TickClock>>;

/// A fresh [`ObsRecorder`] for `capacity` pids with a `ring`-entry
/// trace.
pub fn obs_recorder(capacity: usize, ring: usize) -> ObsRecorder {
    Arc::new(StatsRecorder::with_clock(capacity, TickClock::new()).with_ring(ring))
}

/// Builds the `obs/guard-balance` trial: `scenario` sync passages
/// through an [`Observed`]-wrapped `raw` lock, with the recorder's
/// ledger audited post-run — acquire/release counts must balance *and*
/// equal the passage totals exactly.
pub fn guard_balance_trial<L>(raw: L, scenario: Scenario, rec: ObsRecorder) -> Trial
where
    L: RawRwLock + RawMultiWriter + 'static,
{
    assert!(!scenario.try_readers && !scenario.try_writers, "blocking passages only");
    let lock = Arc::new(Observed::new(raw, Arc::clone(&rec)));
    let registry = Arc::new(PidRegistry::new(lock.max_processes()));
    let oracle = Arc::new(RwOracle::new());
    let mut tasks: Vec<TaskBody> = Vec::new();
    for _ in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let registry = Arc::clone(&registry);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = registry.allocate().expect("registry sized to the scenario");
            for _ in 0..scenario.attempts {
                let token = lock.read_lock(pid);
                oracle.reader_cs();
                lock.read_unlock(pid, token);
            }
            registry.release(pid);
        }));
    }
    for _ in 0..scenario.writers {
        let lock = Arc::clone(&lock);
        let registry = Arc::clone(&registry);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = registry.allocate().expect("registry sized to the scenario");
            for _ in 0..scenario.attempts {
                let token = lock.write_lock(pid);
                oracle.writer_cs();
                lock.write_unlock(pid, token);
            }
            registry.release(pid);
        }));
    }
    let expected_reads = (scenario.readers as u64) * u64::from(scenario.attempts);
    let expected_writes = (scenario.writers as u64) * u64::from(scenario.attempts);
    let post = Box::new(move || {
        oracle.settle(&scenario)?;
        balance(&rec, Event::ReadAcquire, Event::ReadRelease, expected_reads)?;
        balance(&rec, Event::WriteAcquire, Event::WriteRelease, expected_writes)?;
        ring_lossless(&rec)
    });
    Trial { tasks, post }
}

/// Builds the `obs/park-wake` trial: `scenario` async passages through
/// an instrumented [`AsyncRwLock`], with the drained trace audited
/// post-run — every park is eventually granted (same-pid acquire) or
/// cancelled, and the ring dropped nothing.
pub fn park_wake_trial<L>(
    lock: Arc<AsyncRwLock<(), L, Sched, ObsRecorder>>,
    scenario: Scenario,
) -> Trial
where
    L: RawTryReadLock + RawParkedWaiters + 'static,
{
    let rec = Arc::clone(lock.recorder());
    let quiesce = Arc::clone(&lock);
    let inner = crate::async_exec::async_rw_trial(lock, scenario, move || quiesce.is_quiescent());
    let Trial { tasks, post } = inner;
    let post = Box::new(move || {
        post()?;
        ring_lossless(&rec)?;
        park_wake_causality(&rec.drain_trace())
    });
    Trial { tasks, post }
}

fn balance(rec: &ObsRecorder, acq: Event, rel: Event, expected: u64) -> Result<(), String> {
    let a = rec.counter(acq);
    let r = rec.counter(rel);
    if a != r || a != expected {
        return Err(format!(
            "guard ledger off: {acq:?}={a} {rel:?}={r}, scenario performed {expected}"
        ));
    }
    Ok(())
}

fn ring_lossless(rec: &ObsRecorder) -> Result<(), String> {
    let dropped = rec.ring().map(|r| r.dropped()).unwrap_or(0);
    if dropped > 0 {
        return Err(format!("trace ring dropped {dropped} events; size the ring to the run"));
    }
    Ok(())
}

/// The park/wake causality oracle: in trace order, a pid that parked
/// must later be granted or cancel before the run ends.
fn park_wake_causality(trace: &[TraceEvent]) -> Result<(), String> {
    let mut outstanding: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for (i, ev) in trace.iter().enumerate() {
        match ev.as_event() {
            Some(Event::AsyncPark) => {
                outstanding.insert(ev.pid, i);
            }
            Some(Event::ReadAcquire | Event::WriteAcquire | Event::AsyncCancel) => {
                outstanding.remove(&ev.pid);
            }
            _ => {}
        }
    }
    if let Some((pid, at)) = outstanding.into_iter().next() {
        return Err(format!(
            "pid {pid} parked at trace index {at} and was never granted or cancelled \
             ({} trace events total)",
            trace.len()
        ));
    }
    Ok(())
}
