//! The checking harness: scenarios, oracles, batteries and replay.
//!
//! A [`Trial`] is one complete, freshly-built run: the lock under test
//! (over the [`Sched`] backend), the task bodies that drive it, the shared
//! oracle that panics the moment a safety property breaks, and a post-run
//! closure that verifies the lock unwound to quiescence. Batteries build a
//! fresh trial per schedule (state must never leak between schedules) and
//! stop at the first failure, which carries everything needed to replay
//! it: the seed, the strategy, and the recorded decision sequence.
//!
//! The safety predicates themselves ([`rw_exclusion`], `mutex_exclusion`)
//! are shared verbatim with `rmr-sim`'s exhaustive explorer
//! ([`rmr_sim::predicates`]) — the two checkers enforce the same P1.

use crate::strategies::{Pct, RandomWalk};
use rmr_core::raw::{RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_mutex::mem::{Backend, Ordering as MemOrdering, SharedWord};
use rmr_mutex::sched::{run_tasks_in, MemoryModel, Replay, RunOutcome, Strategy};
use rmr_mutex::{RawMutex, Sched};
use rmr_sim::predicates::{mutex_exclusion, rw_exclusion, Occupancy};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

type SchedWord = <Sched as Backend>::Word;

/// A task body, as consumed by [`rmr_mutex::sched::run_tasks`].
pub type TaskBody = Box<dyn FnOnce() + Send>;

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// Shape of one checked workload: how many reader and writer tasks, and
/// how many lock passages each performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Number of reader tasks.
    pub readers: usize,
    /// Number of writer tasks.
    pub writers: usize,
    /// Passages (acquire/release pairs) per task.
    pub attempts: u32,
    /// Readers use `try_read_lock` (abort paths count as passages).
    pub try_readers: bool,
    /// Writers use `try_write_lock` where the lock supports it.
    pub try_writers: bool,
}

impl Scenario {
    /// A blocking scenario: `readers` + `writers` tasks, `attempts`
    /// passages each.
    pub fn new(readers: usize, writers: usize, attempts: u32) -> Self {
        Self { readers, writers, attempts, try_readers: false, try_writers: false }
    }

    /// Same shape, readers using the non-blocking tier.
    pub fn with_try_readers(mut self) -> Self {
        self.try_readers = true;
        self
    }

    /// Same shape, writers using the non-blocking tier.
    pub fn with_try_writers(mut self) -> Self {
        self.try_writers = true;
        self
    }

    /// Total task count.
    pub fn tasks(&self) -> usize {
        self.readers + self.writers
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}r{}{}w{}×{}",
            self.readers,
            if self.try_readers { "(try)" } else { "" },
            self.writers,
            if self.try_writers { "(try)" } else { "" },
            self.attempts
        )
    }
}

// ---------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------

/// Shared observer for reader-writer runs.
///
/// Occupancy counters are plain atomics (updated inside the holder's
/// scheduled turn, so they add no schedule points); the `x`/`y` data cells
/// are [`Sched`] words, so the writer's two-store protocol and the
/// reader's two-load check are themselves interruptible — a lock that
/// admits a reader mid-write produces a torn read even if the occupancy
/// race itself is missed.
#[derive(Debug)]
pub struct RwOracle {
    readers_in: AtomicUsize,
    writers_in: AtomicUsize,
    x: SchedWord,
    y: SchedWord,
    seq: AtomicU64,
    reads: AtomicUsize,
    writes: AtomicUsize,
    read_aborts: AtomicUsize,
    write_aborts: AtomicUsize,
}

impl Default for RwOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl RwOracle {
    /// Fresh oracle (build one per trial, before the tasks).
    pub fn new() -> Self {
        Self {
            readers_in: AtomicUsize::new(0),
            writers_in: AtomicUsize::new(0),
            x: SchedWord::new(0),
            y: SchedWord::new(0),
            seq: AtomicU64::new(0),
            reads: AtomicUsize::new(0),
            writes: AtomicUsize::new(0),
            read_aborts: AtomicUsize::new(0),
            write_aborts: AtomicUsize::new(0),
        }
    }

    /// A reader's critical section. Panics (failing the schedule) on an
    /// exclusion violation or a torn read.
    pub fn reader_cs(&self) {
        let readers = self.readers_in.fetch_add(1, Ordering::SeqCst) + 1;
        let writers = self.writers_in.load(Ordering::SeqCst);
        if let Err(msg) = rw_exclusion(Occupancy { writers, readers }) {
            panic!("{msg}");
        }
        // Oracle instrumentation, not protocol under test: SeqCst keeps the
        // data cells out of the ordering argument, so a torn pair always
        // means the *lock* let a writer in — even under the weak model.
        let a = self.x.load(MemOrdering::SeqCst);
        let b = self.y.load(MemOrdering::SeqCst);
        if a != b {
            panic!("torn read: x = {a} but y = {b} (a writer ran inside a read session)");
        }
        self.reads.fetch_add(1, Ordering::SeqCst);
        self.readers_in.fetch_sub(1, Ordering::SeqCst);
    }

    /// A writer's critical section: bumps the version and writes it to
    /// both cells, with a schedule point between the stores.
    pub fn writer_cs(&self) {
        let writers = self.writers_in.fetch_add(1, Ordering::SeqCst) + 1;
        let readers = self.readers_in.load(Ordering::SeqCst);
        if let Err(msg) = rw_exclusion(Occupancy { writers, readers }) {
            panic!("{msg}");
        }
        let k = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        self.x.store(k, MemOrdering::SeqCst);
        self.y.store(k, MemOrdering::SeqCst);
        self.writes.fetch_add(1, Ordering::SeqCst);
        self.writers_in.fetch_sub(1, Ordering::SeqCst);
    }

    /// Records a failed non-blocking read attempt.
    pub fn read_abort(&self) {
        self.read_aborts.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a failed non-blocking write attempt.
    pub fn write_abort(&self) {
        self.write_aborts.fetch_add(1, Ordering::SeqCst);
    }

    /// `(reads, writes, aborted read tries, aborted write tries)`
    /// completed so far.
    pub fn totals(&self) -> (usize, usize, usize, usize) {
        (
            self.reads.load(Ordering::SeqCst),
            self.writes.load(Ordering::SeqCst),
            self.read_aborts.load(Ordering::SeqCst),
            self.write_aborts.load(Ordering::SeqCst),
        )
    }

    /// Post-run accounting: every passage finished (entered or aborted,
    /// per the scenario's tiers) and nobody is left inside the critical
    /// section.
    pub fn settle(&self, scenario: &Scenario) -> Result<(), String> {
        let (reads, writes, read_aborts, write_aborts) = self.totals();
        let expect_r = scenario.readers * scenario.attempts as usize;
        let expect_w = scenario.writers * scenario.attempts as usize;
        if self.readers_in.load(Ordering::SeqCst) != 0
            || self.writers_in.load(Ordering::SeqCst) != 0
        {
            return Err("a task is still marked inside the CS after the run".into());
        }
        if reads + read_aborts != expect_r {
            return Err(format!(
                "{reads} reads + {read_aborts} read aborts ≠ {expect_r} reader passages"
            ));
        }
        if writes + write_aborts != expect_w {
            return Err(format!(
                "{writes} writes + {write_aborts} write aborts ≠ {expect_w} writer passages"
            ));
        }
        if !scenario.try_readers && read_aborts != 0 {
            return Err(format!("{read_aborts} read aborts in a blocking-reader scenario"));
        }
        if !scenario.try_writers && write_aborts != 0 {
            return Err(format!("{write_aborts} write aborts in a blocking-writer scenario"));
        }
        Ok(())
    }
}

/// Shared observer for mutex runs: holder count plus the same torn-pair
/// data cells.
#[derive(Debug)]
pub struct MutexOracle {
    holders: AtomicUsize,
    x: SchedWord,
    y: SchedWord,
    seq: AtomicU64,
    passages: AtomicUsize,
}

impl Default for MutexOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl MutexOracle {
    /// Fresh oracle (build one per trial).
    pub fn new() -> Self {
        Self {
            holders: AtomicUsize::new(0),
            x: SchedWord::new(0),
            y: SchedWord::new(0),
            seq: AtomicU64::new(0),
            passages: AtomicUsize::new(0),
        }
    }

    /// A holder's critical section. Panics on a second holder or a torn
    /// pair.
    pub fn cs(&self) {
        let holders = self.holders.fetch_add(1, Ordering::SeqCst) + 1;
        if let Err(msg) = mutex_exclusion(holders) {
            panic!("{msg}");
        }
        let k = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        // SeqCst for the same reason as `RwOracle::reader_cs`: the cells
        // are the oracle's, not the lock's.
        self.x.store(k, MemOrdering::SeqCst);
        let seen = self.y.load(MemOrdering::SeqCst);
        if seen != k - 1 {
            panic!("torn pair: y = {seen}, expected {} (another holder interleaved)", k - 1);
        }
        self.y.store(k, MemOrdering::SeqCst);
        self.passages.fetch_add(1, Ordering::SeqCst);
        self.holders.fetch_sub(1, Ordering::SeqCst);
    }

    /// Post-run accounting.
    pub fn settle(&self, expected_passages: usize) -> Result<(), String> {
        if self.holders.load(Ordering::SeqCst) != 0 {
            return Err("a holder is still marked inside the CS after the run".into());
        }
        let done = self.passages.load(Ordering::SeqCst);
        if done != expected_passages {
            return Err(format!("{done} passages ≠ {expected_passages} expected"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Trials
// ---------------------------------------------------------------------

/// One freshly-built run: tasks plus a post-run verdict.
pub struct Trial {
    /// The task bodies to schedule.
    pub tasks: Vec<TaskBody>,
    /// Evaluated only after a clean run: quiescence / accounting checks.
    pub post: Box<dyn FnOnce() -> Result<(), String>>,
}

impl fmt::Debug for Trial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trial").field("tasks", &self.tasks.len()).finish()
    }
}

/// Builds a [`Trial`] for a blocking reader-writer scenario over any raw
/// lock. `quiescent` is the lock-specific at-rest check (`||
/// lock.is_quiescent()` for the core locks, `|| true` where no such
/// notion exists).
pub fn rw_trial<L>(
    lock: Arc<L>,
    scenario: Scenario,
    quiescent: impl Fn() -> bool + 'static,
) -> Trial
where
    L: RawRwLock + 'static,
{
    assert!(!scenario.try_readers && !scenario.try_writers, "use try_read_trial/try_rw_trial");
    let oracle = Arc::new(RwOracle::new());
    let mut tasks: Vec<TaskBody> = Vec::new();
    for r in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(r);
            for _ in 0..scenario.attempts {
                let t = lock.read_lock(pid);
                oracle.reader_cs();
                lock.read_unlock(pid, t);
            }
        }));
    }
    for w in 0..scenario.writers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(scenario.readers + w);
            for _ in 0..scenario.attempts {
                let t = lock.write_lock(pid);
                oracle.writer_cs();
                lock.write_unlock(pid, t);
            }
        }));
    }
    Trial { tasks, post: settle_post(oracle, scenario, quiescent) }
}

/// Like [`rw_trial`], but readers go through the non-blocking tier
/// (`try_read_lock`), exercising the abort paths racing the writers.
pub fn try_read_trial<L>(
    lock: Arc<L>,
    scenario: Scenario,
    quiescent: impl Fn() -> bool + 'static,
) -> Trial
where
    L: RawTryReadLock + 'static,
{
    let oracle = Arc::new(RwOracle::new());
    let mut tasks: Vec<TaskBody> = Vec::new();
    for r in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(r);
            for _ in 0..scenario.attempts {
                match lock.try_read_lock(pid) {
                    Some(t) => {
                        oracle.reader_cs();
                        lock.read_unlock(pid, t);
                    }
                    None => oracle.read_abort(),
                }
            }
        }));
    }
    for w in 0..scenario.writers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(scenario.readers + w);
            for _ in 0..scenario.attempts {
                let t = lock.write_lock(pid);
                oracle.writer_cs();
                lock.write_unlock(pid, t);
            }
        }));
    }
    let scenario = Scenario { try_readers: true, ..scenario };
    Trial { tasks, post: settle_post(oracle, scenario, quiescent) }
}

/// Full non-blocking tier: readers *and* writers through `try_*`,
/// for the baselines that implement [`RawTryRwLock`].
pub fn try_rw_trial<L>(
    lock: Arc<L>,
    scenario: Scenario,
    quiescent: impl Fn() -> bool + 'static,
) -> Trial
where
    L: RawTryRwLock + 'static,
{
    let oracle = Arc::new(RwOracle::new());
    let mut tasks: Vec<TaskBody> = Vec::new();
    for r in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(r);
            for _ in 0..scenario.attempts {
                match lock.try_read_lock(pid) {
                    Some(t) => {
                        oracle.reader_cs();
                        lock.read_unlock(pid, t);
                    }
                    None => oracle.read_abort(),
                }
            }
        }));
    }
    for w in 0..scenario.writers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let pid = Pid::from_index(scenario.readers + w);
            for _ in 0..scenario.attempts {
                match lock.try_write_lock(pid) {
                    Some(t) => {
                        oracle.writer_cs();
                        lock.write_unlock(pid, t);
                    }
                    None => oracle.write_abort(),
                }
            }
        }));
    }
    let scenario = Scenario { try_readers: true, try_writers: true, ..scenario };
    Trial { tasks, post: settle_post(oracle, scenario, quiescent) }
}

/// Builds a [`Trial`] for a mutex: `tasks` holders, `attempts` passages
/// each.
pub fn mutex_trial<M>(lock: Arc<M>, tasks: usize, attempts: u32) -> Trial
where
    M: RawMutex + 'static,
{
    let oracle = Arc::new(MutexOracle::new());
    let bodies: Vec<TaskBody> = (0..tasks)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let oracle = Arc::clone(&oracle);
            Box::new(move || {
                for _ in 0..attempts {
                    let t = lock.lock();
                    oracle.cs();
                    lock.unlock(t);
                }
            }) as TaskBody
        })
        .collect();
    let expected = tasks * attempts as usize;
    Trial { tasks: bodies, post: Box::new(move || oracle.settle(expected)) }
}

fn settle_post(
    oracle: Arc<RwOracle>,
    scenario: Scenario,
    quiescent: impl Fn() -> bool + 'static,
) -> Box<dyn FnOnce() -> Result<(), String>> {
    Box::new(move || {
        oracle.settle(&scenario)?;
        if !quiescent() {
            return Err("lock is not quiescent after a clean run".into());
        }
        Ok(())
    })
}

// ---------------------------------------------------------------------
// Batteries and reports
// ---------------------------------------------------------------------

/// A failure found by a battery, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// What broke (oracle panic, deadlock, budget, post-run check).
    pub reason: String,
    /// Strategy description, e.g. `pct(d=3)`.
    pub strategy: String,
    /// The seed that produced the failing schedule, if seeded.
    pub seed: Option<u64>,
    /// The recorded decision sequence — [`replay`] reruns it exactly.
    pub schedule: Vec<u16>,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CHECK FAILED [{}", self.strategy)?;
        if let Some(seed) = self.seed {
            write!(f, " seed={seed:#x}")?;
        }
        write!(f, "]: {}", self.reason)?;
        if let Some(seed) = self.seed {
            write!(f, " — replay: rerun this check with RMR_TEST_SEED={seed}")?;
        }
        write!(f, " — schedule {:?}", self.schedule)
    }
}

/// Result of one battery over one lock.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Lock label.
    pub lock: String,
    /// Exploration mode label.
    pub mode: String,
    /// Schedules executed.
    pub schedules: u64,
    /// Total scheduler steps across all schedules.
    pub steps: u64,
    /// First failure, if any (batteries stop at the first).
    pub failure: Option<CheckFailure>,
    /// True if an exhaustive mode hit its schedule cap before exhausting
    /// the space.
    pub truncated: bool,
}

impl CheckReport {
    /// True when every schedule ran clean (a truncated-but-clean
    /// exhaustive pass still counts as passed — the bound is the spec).
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} schedules, {} steps — {}{}",
            self.lock,
            self.mode,
            self.schedules,
            self.steps,
            match &self.failure {
                None => "ok".to_string(),
                Some(fail) => fail.to_string(),
            },
            if self.truncated { " (truncated)" } else { "" }
        )
    }
}

/// Sentinel task id for failures raised by the harness itself (post-run
/// checks) rather than by a scheduled task.
const HARNESS_TASK: usize = usize::MAX;

/// Renders a run error for reports, folding the harness sentinel away.
pub fn reason_of(err: &rmr_mutex::sched::RunError) -> String {
    match err {
        rmr_mutex::sched::RunError::Panic { task, message } if *task == HARNESS_TASK => {
            message.clone()
        }
        other => other.to_string(),
    }
}

/// Runs one trial under one strategy — [`MemoryModel::SeqCst`]; see
/// [`run_trial_in`] for the weak mode — and folds the post-run check into
/// the outcome.
pub fn run_trial(trial: Trial, strategy: &mut dyn Strategy, budget: u64) -> RunOutcome {
    run_trial_in(trial, strategy, budget, MemoryModel::SeqCst)
}

/// Runs one trial under one strategy and memory model and folds the
/// post-run check into the outcome.
pub fn run_trial_in(
    trial: Trial,
    strategy: &mut dyn Strategy,
    budget: u64,
    model: MemoryModel,
) -> RunOutcome {
    let Trial { tasks, post } = trial;
    let mut outcome = run_tasks_in(tasks, strategy, budget, model);
    if outcome.result.is_ok() {
        if let Err(msg) = post() {
            outcome.result = Err(rmr_mutex::sched::RunError::Panic {
                task: HARNESS_TASK,
                message: format!("post-run check failed: {msg}"),
            });
        }
    }
    outcome
}

/// The seeds a battery actually runs: `base + 0..count` — or, when
/// `RMR_TEST_SEED` is set, exactly that one seed, verbatim. The override
/// deliberately bypasses every base/label derivation the callers apply:
/// it is what makes the seed printed by a [`CheckFailure`] replay as a
/// single line.
fn battery_seeds(base: u64, count: u64) -> Vec<u64> {
    if std::env::var("RMR_TEST_SEED").is_ok() {
        vec![crate::env_seed(0)]
    } else {
        (0..count).map(|i| base.wrapping_add(i)).collect()
    }
}

/// Suffix a battery's mode label carries when it runs under the weak
/// model, so a report (and a replay line) always names the model that
/// produced it.
fn mode_label(base: String, model: MemoryModel) -> String {
    match model {
        MemoryModel::SeqCst => base,
        MemoryModel::StoreBuffer => format!("{base}/sb"),
    }
}

// One argument per knob a battery varies; bundling them into a struct
// would just rename the call sites.
#[allow(clippy::too_many_arguments)]
fn seeded_battery(
    lock: &str,
    mode: String,
    mk: impl Fn() -> Trial,
    mk_strategy: impl Fn(u64) -> Box<dyn Strategy>,
    base_seed: u64,
    count: u64,
    budget: u64,
    model: MemoryModel,
) -> CheckReport {
    let mut steps = 0;
    let mut schedules = 0;
    for seed in battery_seeds(base_seed, count) {
        let mut strategy = mk_strategy(seed);
        let outcome = run_trial_in(mk(), strategy.as_mut(), budget, model);
        steps += outcome.steps;
        schedules += 1;
        if let Err(err) = outcome.result {
            let strategy = mode.clone();
            return CheckReport {
                lock: lock.into(),
                mode,
                schedules,
                steps,
                failure: Some(CheckFailure {
                    reason: reason_of(&err),
                    strategy,
                    seed: Some(seed),
                    schedule: outcome.schedule,
                }),
                truncated: false,
            };
        }
    }
    CheckReport { lock: lock.into(), mode, schedules, steps, failure: None, truncated: false }
}

/// Runs `count` PCT schedules (depth `depth`), seeds `base_seed..` (or
/// exactly the `RMR_TEST_SEED` override), stopping at the first failure.
/// `mk` must build a *fresh* trial per schedule.
pub fn pct_battery(
    lock: &str,
    mk: impl Fn() -> Trial,
    base_seed: u64,
    count: u64,
    depth: usize,
    budget: u64,
) -> CheckReport {
    pct_battery_in(lock, mk, base_seed, count, depth, budget, MemoryModel::SeqCst)
}

/// [`pct_battery`] under an explicit [`MemoryModel`]. Under
/// [`MemoryModel::StoreBuffer`] the strategy also decides flush points,
/// so the same seed scheme explores weak-memory interleavings; the mode
/// label gains a `/sb` suffix.
pub fn pct_battery_in(
    lock: &str,
    mk: impl Fn() -> Trial,
    base_seed: u64,
    count: u64,
    depth: usize,
    budget: u64,
    model: MemoryModel,
) -> CheckReport {
    seeded_battery(
        lock,
        mode_label(format!("pct(d={depth})"), model),
        mk,
        |seed| Box::new(Pct::new(seed, depth, 256)),
        base_seed,
        count,
        budget,
        model,
    )
}

/// Runs `count` uniform random walks, seeds `base_seed..`, stopping at the
/// first failure.
pub fn random_battery(
    lock: &str,
    mk: impl Fn() -> Trial,
    base_seed: u64,
    count: u64,
    budget: u64,
) -> CheckReport {
    random_battery_in(lock, mk, base_seed, count, budget, MemoryModel::SeqCst)
}

/// [`random_battery`] under an explicit [`MemoryModel`].
pub fn random_battery_in(
    lock: &str,
    mk: impl Fn() -> Trial,
    base_seed: u64,
    count: u64,
    budget: u64,
    model: MemoryModel,
) -> CheckReport {
    seeded_battery(
        lock,
        mode_label("random".into(), model),
        mk,
        |seed| Box::new(RandomWalk::new(seed)),
        base_seed,
        count,
        budget,
        model,
    )
}

/// The standard randomized pair for one lock — a PCT battery and a
/// uniform random-walk battery — with the per-mode seed bases derived
/// from `base` and the label in exactly one place, so every caller
/// (tests, `check_table`) agrees on the scheme and the `RMR_TEST_SEED`
/// override (see `battery_seeds`) replays a printed seed under both
/// modes.
pub fn randomized_batteries(
    lock: &str,
    mk: impl Fn() -> Trial,
    base: u64,
    count: u64,
    depth: usize,
    budget: u64,
) -> Vec<CheckReport> {
    randomized_batteries_in(lock, mk, base, count, depth, budget, MemoryModel::SeqCst)
}

/// [`randomized_batteries`] under an explicit [`MemoryModel`] — the
/// entry point the weak-memory batteries and the `Demote*` ordering
/// mutants use.
pub fn randomized_batteries_in(
    lock: &str,
    mk: impl Fn() -> Trial,
    base: u64,
    count: u64,
    depth: usize,
    budget: u64,
    model: MemoryModel,
) -> Vec<CheckReport> {
    // FNV-1a over the label so distinct locks sharing a base get distinct
    // seed sequences (label *length* would collide: the five core-lock
    // labels are all 12 characters).
    let mut base = base ^ 0xcbf2_9ce4_8422_2325;
    for &b in lock.as_bytes() {
        base = (base ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    vec![
        pct_battery_in(lock, &mk, base, count, depth, budget, model),
        random_battery_in(lock, &mk, base ^ 0xa5a5, count, budget, model),
    ]
}

/// Replays a recorded decision sequence against a fresh trial — the
/// deterministic reproduction of a [`CheckFailure`]. Replay under the
/// model the failure was found under: flush points are recorded
/// decisions too, so a weak-mode schedule only replays in weak mode.
pub fn replay(trial: Trial, schedule: Vec<u16>, budget: u64) -> RunOutcome {
    run_trial(trial, &mut Replay::new(schedule), budget)
}

/// [`replay`] under an explicit [`MemoryModel`].
pub fn replay_in(trial: Trial, schedule: Vec<u16>, budget: u64, model: MemoryModel) -> RunOutcome {
    run_trial_in(trial, &mut Replay::new(schedule), budget, model)
}
