//! Bounded exhaustive schedule exploration over the real lock code.
//!
//! `rmr-sim`'s explorer enumerates *states* (it owns the model's locals
//! and can hash configurations); real code keeps its locals on OS-thread
//! stacks, so the analogue is stateless *schedule* enumeration: run the
//! trial from scratch once per schedule, choosing at every decision point
//! which task moves, and backtrack over the recorded choice tree (the
//! CHESS approach). Two reductions keep the tree tractable:
//!
//! * **Preemption bounding** — switching away from a task that could have
//!   continued costs one unit of a small budget; forced switches (the
//!   previous task finished or stalled on a spin) are free. Almost all
//!   real concurrency bugs need very few preemptions.
//! * **Stall exclusion** — the scheduler never offers a task that is
//!   provably re-reading an unchanged variable, so spin-wait self-loops
//!   (which the state-based explorer prunes via its dedup set) never
//!   enter the tree at all.
//!
//! Determinism makes this sound: with the schedule fixed, a rerun of the
//! trial makes identical choices, so the choice tree explored is exactly
//! the tree of distinct executions at the chosen bound.

use crate::harness::{run_trial_in, CheckFailure, CheckReport, Trial};
use rmr_mutex::sched::{MemoryModel, PickView, Strategy};

/// One recorded decision: which option index was taken, out of how many.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// Index taken into the ordered option list.
    pub taken: u32,
    /// Number of options that were available.
    pub options: u32,
}

/// The in-run half of the explorer: follows a choice prefix, defaults to
/// "keep running the same task" beyond it, and records the full decision
/// trace for backtracking.
#[derive(Debug, Clone)]
pub struct DfsStrategy {
    prefix: Vec<u32>,
    /// The decisions this execution actually made.
    pub choices: Vec<Choice>,
    preemption_bound: u32,
    preemptions: u32,
    last: Option<usize>,
}

impl DfsStrategy {
    /// Builds the strategy for one execution: follow `prefix`, then take
    /// option 0 everywhere, spending at most `preemption_bound`
    /// preemptions.
    pub fn new(prefix: Vec<u32>, preemption_bound: u32) -> Self {
        Self { prefix, choices: Vec::new(), preemption_bound, preemptions: 0, last: None }
    }

    /// Ordered options at this decision point: continue the previous task
    /// first (free), then — while preemption budget remains — the other
    /// runnable tasks in id order.
    fn options(&self, view: &PickView<'_>) -> Vec<usize> {
        if let Some(last) = self.last {
            if view.runnable.contains(&last) {
                let mut opts = vec![last];
                if self.preemptions < self.preemption_bound {
                    opts.extend(view.runnable.iter().copied().filter(|&t| t != last));
                }
                return opts;
            }
        }
        view.runnable.to_vec()
    }
}

impl Strategy for DfsStrategy {
    fn pick(&mut self, view: &PickView<'_>) -> usize {
        let options = self.options(view);
        let idx = self.prefix.get(self.choices.len()).copied().unwrap_or(0) as usize;
        assert!(
            idx < options.len(),
            "DFS replay diverged: prefix wants option {idx} of {} at decision {}",
            options.len(),
            self.choices.len()
        );
        let pick = options[idx];
        if self.last.is_some_and(|l| l != pick && view.runnable.contains(&l)) {
            self.preemptions += 1;
        }
        self.choices.push(Choice { taken: idx as u32, options: options.len() as u32 });
        self.last = Some(pick);
        pick
    }
}

/// Computes the next DFS prefix from a finished execution's trace:
/// backtrack to the deepest decision with an untaken option and take the
/// next one. Returns `None` when the tree is exhausted.
pub fn next_prefix(choices: &[Choice]) -> Option<Vec<u32>> {
    for depth in (0..choices.len()).rev() {
        let c = choices[depth];
        if c.taken + 1 < c.options {
            let mut prefix: Vec<u32> = choices[..depth].iter().map(|c| c.taken).collect();
            prefix.push(c.taken + 1);
            return Some(prefix);
        }
    }
    None
}

/// Exhaustively explores every schedule of `mk`'s trial at the given
/// preemption bound, stopping at the first failure, the end of the tree,
/// or `max_schedules` (reported as truncated).
///
/// `mk` must build a *fresh, identical* trial each call — exploration is
/// stateless re-execution, and a trial that varied between calls would
/// tear the choice tree.
pub fn exhaustive(
    lock: &str,
    mk: impl Fn() -> Trial,
    preemption_bound: u32,
    budget: u64,
    max_schedules: u64,
) -> CheckReport {
    exhaustive_in(lock, mk, preemption_bound, budget, max_schedules, MemoryModel::SeqCst)
}

/// [`exhaustive`] under an explicit [`MemoryModel`]. Under
/// [`MemoryModel::StoreBuffer`] the choice tree includes the flush
/// decisions (each pending buffered store is one more option at its
/// decision points), so the bounded exploration covers weak-memory
/// reorderings too. Flushing a buffer while another task could continue
/// counts as a preemption like any other task switch.
pub fn exhaustive_in(
    lock: &str,
    mk: impl Fn() -> Trial,
    preemption_bound: u32,
    budget: u64,
    max_schedules: u64,
    model: MemoryModel,
) -> CheckReport {
    let mode = match model {
        MemoryModel::SeqCst => format!("dfs(p={preemption_bound})"),
        MemoryModel::StoreBuffer => format!("dfs(p={preemption_bound})/sb"),
    };
    let mut prefix: Vec<u32> = Vec::new();
    let mut schedules = 0;
    let mut steps = 0;
    let mut truncated = false;
    let failure = loop {
        let mut strategy = DfsStrategy::new(prefix.clone(), preemption_bound);
        let outcome = run_trial_in(mk(), &mut strategy, budget, model);
        schedules += 1;
        steps += outcome.steps;
        if let Err(err) = outcome.result {
            break Some(CheckFailure {
                reason: crate::harness::reason_of(&err),
                strategy: format!("{mode} prefix={prefix:?}"),
                seed: None,
                schedule: outcome.schedule,
            });
        }
        match next_prefix(&strategy.choices) {
            Some(next) => prefix = next,
            None => break None,
        }
        if schedules >= max_schedules {
            truncated = true;
            break None;
        }
    };
    CheckReport { lock: lock.into(), mode, schedules, steps, failure, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_prefix_backtracks_deepest_first() {
        let choices = [
            Choice { taken: 0, options: 2 },
            Choice { taken: 1, options: 2 },
            Choice { taken: 0, options: 3 },
        ];
        assert_eq!(next_prefix(&choices), Some(vec![0, 1, 1]));
        let deep_exhausted = [Choice { taken: 0, options: 2 }, Choice { taken: 2, options: 3 }];
        assert_eq!(next_prefix(&deep_exhausted), Some(vec![1]));
        let done = [Choice { taken: 1, options: 2 }];
        assert_eq!(next_prefix(&done), None);
    }

    #[test]
    fn singleton_tree_terminates() {
        let all_single = [Choice { taken: 0, options: 1 }, Choice { taken: 0, options: 1 }];
        assert_eq!(next_prefix(&all_single), None);
    }
}
