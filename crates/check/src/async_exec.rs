//! The deterministic async executor: `rmr-async` futures under the
//! [`Sched`] scheduler.
//!
//! DESIGN.md §9's argument — one yield point per `Backend` operation
//! explores the complete interleaving space — carries over to the async
//! tier unchanged, because `rmr-async` put *all* of its cross-task state
//! (waker-slot words, parked counters, the reader count) on the backend
//! vocabulary and made the executor's wait a pluggable [`Parker`].
//! [`SchedParker`] closes the loop:
//! its `park` is a spin on a `Sched`-backed flag, so an idle executor is
//! an ordinary stalled spinner to the controller — descheduled until some
//! other task's wake-up flips the flag (visible progress), and reported
//! as a **deadlock, with a replayable decision sequence**, if no task
//! ever will. A lost wake-up, the async tier's characteristic bug, is
//! therefore not a hang but a seeded, single-line-replayable failure —
//! which the `DropWakeup` mutant battery demonstrates by omission.
//!
//! Each scheduled task runs one future to completion through
//! [`block_on_sched`]; the controller interleaves the tasks at every
//! shared-memory operation *inside* the polls, exactly as it does for the
//! sync locks. The trial builders here mirror [`crate::harness`]'s: same
//! [`RwOracle`], same [`Scenario`] accounting, same quiescence hooks —
//! plus the cancellation trial, which drops pending futures mid-protocol
//! and lets the post-run checks prove nothing stays pinned.

use crate::harness::{RwOracle, Scenario, TaskBody, Trial};
use rmr_async::exec::{block_on_with, parker_waker};
use rmr_async::lock::AsyncRwLock;
use rmr_async::park::Parker;
use rmr_core::raw::{RawMultiWriter, RawParkedWaiters, RawTryReadLock};
use rmr_mutex::mem::{Backend, Ordering as MemOrdering, SharedBool};
use rmr_mutex::{spin_until, Sched};
use rmr_obs::Recorder;
use std::fmt;
use std::future::Future;
use std::sync::Arc;
use std::task::{Context, Poll};

type SchedBool = <Sched as Backend>::Bool;

/// A [`Parker`] whose wait is a spin on a [`Sched`]-backed flag: parking
/// becomes futile-op stalling (the controller deschedules the task), the
/// wake-up's flag store is visible progress (the controller revives it),
/// and a wait nobody will end is a deadlock report.
pub struct SchedParker {
    token: SchedBool,
}

impl SchedParker {
    /// A fresh parker (one per executor; build it inside the task so its
    /// flag joins the schedule's variable set deterministically).
    pub fn new() -> Self {
        Self { token: SchedBool::new(false) }
    }
}

impl Default for SchedParker {
    fn default() -> Self {
        Self::new()
    }
}

impl Parker for SchedParker {
    fn park(&self) {
        // swap, not load: consuming the token keeps the unpark-before-park
        // case correct, and a false→false swap is exactly the futile
        // operation the stall detector keys on. Acquire pairs with the
        // unpark's Release so the parked task sees whatever the waker
        // published before waking it.
        spin_until(|| self.token.swap(false, MemOrdering::Acquire));
    }

    fn unpark(&self) {
        self.token.store(true, MemOrdering::Release);
    }
}

impl fmt::Debug for SchedParker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedParker").finish_non_exhaustive()
    }
}

/// Runs `future` to completion on the calling [`Sched`] task, waiting
/// through a fresh [`SchedParker`]. The deterministic `block_on`.
pub fn block_on_sched<F: Future>(future: F) -> F::Output {
    block_on_with(future, Arc::new(SchedParker::new()))
}

/// Builds a [`Trial`] driving `AsyncRwLock` readers *and* writers through
/// the async tier (`read().await` / `write().await`) under the
/// deterministic executor. `quiescent` is the lock-specific at-rest check
/// (pass `move || lock.is_quiescent()` plus any inner-lock notion).
pub fn async_rw_trial<L, R>(
    lock: Arc<AsyncRwLock<(), L, Sched, R>>,
    scenario: Scenario,
    quiescent: impl Fn() -> bool + 'static,
) -> Trial
where
    L: RawTryReadLock + RawParkedWaiters + 'static,
    R: Recorder + 'static,
{
    assert!(!scenario.try_readers && !scenario.try_writers, "use async_cancel_trial");
    let oracle = Arc::new(RwOracle::new());
    let mut tasks: Vec<TaskBody> = Vec::new();
    for _ in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            block_on_sched(async {
                for _ in 0..scenario.attempts {
                    let guard = lock.read().await;
                    oracle.reader_cs();
                    drop(guard);
                }
            });
        }));
    }
    for _ in 0..scenario.writers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            block_on_sched(async {
                for _ in 0..scenario.attempts {
                    let guard = lock.write().await;
                    oracle.writer_cs();
                    drop(guard);
                }
            });
        }));
    }
    Trial { tasks, post: async_settle_post(oracle, scenario, quiescent) }
}

/// Like [`async_rw_trial`], but writers use the deprecated
/// [`AsyncRwLock::write_blocking`] — still the writer endpoint for raw
/// locks without a `RawParkedWaiters` doorway (the Fig. 3–5 multi-writer
/// locks). Readers still suspend; the blocking writers' release paths
/// must wake them.
pub fn async_read_blocking_write_trial<L, R>(
    lock: Arc<AsyncRwLock<(), L, Sched, R>>,
    scenario: Scenario,
    quiescent: impl Fn() -> bool + 'static,
) -> Trial
where
    L: RawTryReadLock + RawMultiWriter + 'static,
    R: Recorder + 'static,
{
    assert!(!scenario.try_readers && !scenario.try_writers, "use async_cancel_trial");
    let oracle = Arc::new(RwOracle::new());
    let mut tasks: Vec<TaskBody> = Vec::new();
    for _ in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            block_on_sched(async {
                for _ in 0..scenario.attempts {
                    let guard = lock.read().await;
                    oracle.reader_cs();
                    drop(guard);
                }
            });
        }));
    }
    for _ in 0..scenario.writers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            for _ in 0..scenario.attempts {
                // Deprecated on purpose: fig. 3 has no doorway, and an
                // OS-parking `block_on(write())` would deadlock the Sched
                // scheduler — the raw-queue spin is the right wait here.
                #[allow(deprecated)]
                let guard = lock.write_blocking();
                oracle.writer_cs();
                drop(guard);
            }
        }));
    }
    Trial { tasks, post: async_settle_post(oracle, scenario, quiescent) }
}

/// The cancellation trial: readers poll a `read()` future **once** and
/// drop it wherever that leaves them — mid-doorway, parked, or holding
/// the guard — while writers run full `write().await` passages to create
/// the contention windows. Accounting treats a dropped pending future as
/// an aborted read attempt; the post-run quiescence check is the
/// cancel-safety oracle (no pid, waker slot, or reader count stays
/// pinned).
pub fn async_cancel_trial<L, R>(
    lock: Arc<AsyncRwLock<(), L, Sched, R>>,
    scenario: Scenario,
) -> Trial
where
    L: RawTryReadLock + RawParkedWaiters + 'static,
    R: Recorder + 'static,
{
    let oracle = Arc::new(RwOracle::new());
    let mut tasks: Vec<TaskBody> = Vec::new();
    for _ in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let waker = parker_waker(Arc::new(SchedParker::new()));
            let mut cx = Context::from_waker(&waker);
            for _ in 0..scenario.attempts {
                let mut future = std::pin::pin!(lock.read());
                match future.as_mut().poll(&mut cx) {
                    Poll::Ready(guard) => {
                        oracle.reader_cs();
                        drop(guard);
                    }
                    // The drop under test: `future` falls here while its
                    // waker is parked and its pid is leased.
                    Poll::Pending => oracle.read_abort(),
                }
            }
        }));
    }
    for _ in 0..scenario.writers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            block_on_sched(async {
                for _ in 0..scenario.attempts {
                    let guard = lock.write().await;
                    oracle.writer_cs();
                    drop(guard);
                }
            });
        }));
    }
    let scenario = Scenario { try_readers: true, ..scenario };
    let quiesce = Arc::clone(&lock);
    Trial { tasks, post: async_settle_post(oracle, scenario, move || quiesce.is_quiescent()) }
}

/// The **bounded-bypass** fairness trial: one writer manually polls
/// `write()` — recording the oracle's completed-read count at its first
/// `Poll::Pending`, the moment its doorway is tokened and counted like a
/// queued process — while readers churn through `read().await`. At the
/// grant the writer asserts that no more than `scenario.readers` reads
/// completed past the tokened doorway: a queued doorway (`L::QUEUED`)
/// fails every reader attempt arriving after `start_write`, so only the
/// read sessions already admitted (at most one per reader task) may
/// still finish ahead of the writer. A doorway that *claims* the queue
/// position but drops the token (the seeded `DropWaiterToken` mutant)
/// lets readers stream past and trips the oracle.
///
/// # Panics
///
/// Panics unless `scenario.writers == 1` (the bound is per-waiter) and
/// `L::QUEUED` (an advisory doorway honestly promises no bound — the
/// trial would be vacuous, not lenient).
pub fn async_fair_trial<L, R>(
    lock: Arc<AsyncRwLock<(), L, Sched, R>>,
    scenario: Scenario,
    quiescent: impl Fn() -> bool + 'static,
) -> Trial
where
    L: RawTryReadLock + RawParkedWaiters + 'static,
    R: Recorder + 'static,
{
    assert!(!scenario.try_readers && !scenario.try_writers, "use async_write_cancel_trial");
    assert_eq!(scenario.writers, 1, "the bounded-bypass oracle tracks a single tokened waiter");
    assert!(L::QUEUED, "the bounded-bypass oracle needs a queued doorway");
    let oracle = Arc::new(RwOracle::new());
    let bound = scenario.readers;
    let mut tasks: Vec<TaskBody> = Vec::new();
    for _ in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            block_on_sched(async {
                for _ in 0..scenario.attempts {
                    let guard = lock.read().await;
                    oracle.reader_cs();
                    drop(guard);
                }
            });
        }));
    }
    {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let parker = Arc::new(SchedParker::new());
            let waker = parker_waker(Arc::clone(&parker));
            let mut cx = Context::from_waker(&waker);
            for _ in 0..scenario.attempts {
                let mut future = std::pin::pin!(lock.write());
                // Completed reads at the first Pending — a lower bound on
                // the count at `start_write`, so the bypass tally below
                // never over-counts (no false positives on the control).
                let mut tokened_at = None;
                let guard = loop {
                    match future.as_mut().poll(&mut cx) {
                        Poll::Ready(guard) => break guard,
                        Poll::Pending => {
                            if tokened_at.is_none() {
                                tokened_at = Some(oracle.totals().0);
                            }
                            parker.park();
                        }
                    }
                };
                if let Some(reads_at_token) = tokened_at {
                    let bypassed = oracle.totals().0 - reads_at_token;
                    assert!(
                        bypassed <= bound,
                        "bounded bypass violated: {bypassed} reads completed past the \
                         tokened writer (bound {bound})"
                    );
                }
                oracle.writer_cs();
                drop(guard);
            }
        }));
    }
    Trial { tasks, post: async_settle_post(oracle, scenario, quiescent) }
}

/// The writer-side cancellation trial: writers poll a `write()` future
/// **once** and drop it wherever that leaves them — claim word held,
/// doorway tokened mid-drain, or holding the guard — while readers run
/// full `read().await` passages to create the drain windows. This is the
/// schedule exploration of the cancel/unlink race: the drop must revoke
/// the doorway (fig. 1's deferred-zombie protocol, the ticket's
/// abandoned-head skip), free the claim word, unthread the intrusive
/// waiter node, and wake the bystanders — or the post-run quiescence
/// check reports what stayed pinned.
pub fn async_write_cancel_trial<L, R>(
    lock: Arc<AsyncRwLock<(), L, Sched, R>>,
    scenario: Scenario,
) -> Trial
where
    L: RawTryReadLock + RawParkedWaiters + 'static,
    R: Recorder + 'static,
{
    let oracle = Arc::new(RwOracle::new());
    let mut tasks: Vec<TaskBody> = Vec::new();
    for _ in 0..scenario.readers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            block_on_sched(async {
                for _ in 0..scenario.attempts {
                    let guard = lock.read().await;
                    oracle.reader_cs();
                    drop(guard);
                }
            });
        }));
    }
    for _ in 0..scenario.writers {
        let lock = Arc::clone(&lock);
        let oracle = Arc::clone(&oracle);
        tasks.push(Box::new(move || {
            let waker = parker_waker(Arc::new(SchedParker::new()));
            let mut cx = Context::from_waker(&waker);
            for _ in 0..scenario.attempts {
                let mut future = std::pin::pin!(lock.write());
                match future.as_mut().poll(&mut cx) {
                    Poll::Ready(guard) => {
                        oracle.writer_cs();
                        drop(guard);
                    }
                    // The drop under test: `future` falls here holding the
                    // claim word and (usually) a tokened doorway.
                    Poll::Pending => oracle.write_abort(),
                }
            }
        }));
    }
    let scenario = Scenario { try_writers: true, ..scenario };
    let quiesce = Arc::clone(&lock);
    Trial { tasks, post: async_settle_post(oracle, scenario, move || quiesce.is_quiescent()) }
}

fn async_settle_post(
    oracle: Arc<RwOracle>,
    scenario: Scenario,
    quiescent: impl Fn() -> bool + 'static,
) -> Box<dyn FnOnce() -> Result<(), String>> {
    Box::new(move || {
        oracle.settle(&scenario)?;
        if !quiescent() {
            return Err("async lock is not quiescent after a clean run".into());
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_mutex::sched::{run_tasks, RoundRobin};

    #[test]
    fn sched_parker_runs_natively_off_tasks() {
        // Off scheduler tasks the Sched backend executes natively, so the
        // parker is an ordinary spin-flag — unpark-then-park returns.
        let p = SchedParker::new();
        p.unpark();
        p.park();
    }

    #[test]
    fn block_on_sched_drives_a_future_under_the_scheduler() {
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(|| {
            assert_eq!(block_on_sched(async { 6 * 7 }), 42);
        })];
        let out = run_tasks(tasks, &mut RoundRobin::default(), 1_000);
        assert!(out.result.is_ok(), "{:?}", out.result);
    }
}
