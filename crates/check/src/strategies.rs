//! Seeded scheduling strategies for the deterministic scheduler.
//!
//! The mechanism (turn granting, stall detection, deadlock confirmation)
//! lives in [`rmr_mutex::sched`]; this module supplies the seeded
//! *policies* — built on the workspace's own `SplitMix64` so a `(strategy,
//! seed)` pair names one execution exactly. The unseeded
//! [`RoundRobin`](rmr_mutex::sched::RoundRobin) and
//! [`Replay`](rmr_mutex::sched::Replay) policies ship with the mechanism.

use rmr_mutex::sched::{PickView, Strategy};
use rmr_sim::rng::SplitMix64;

/// Uniform random walk over runnable tasks.
///
/// The bread-and-butter sampler: cheap, unbiased, and — because stalled
/// spinners are excluded from the runnable set — every granted step is
/// productive. Good at shallow races, weak at bugs that need a specific
/// task to be starved for a long window (that is what [`Pct`] is for).
#[derive(Debug, Clone)]
pub struct RandomWalk {
    rng: SplitMix64,
}

impl RandomWalk {
    /// Creates a walk from a seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: SplitMix64::new(seed) }
    }
}

impl Strategy for RandomWalk {
    fn pick(&mut self, view: &PickView<'_>) -> usize {
        view.runnable[self.rng.gen_index(view.runnable.len())]
    }
}

/// Probabilistic concurrency testing (Burckhardt, Kothari, Musuvathi &
/// Nagarakatte, ASPLOS 2010), adapted to spin-based code.
///
/// Each task gets a random priority; the highest-priority runnable task
/// always runs; at `depth − 1` pre-drawn decision points the running task
/// is demoted below everyone else. A bug that needs `d` ordering events is
/// found with probability ≥ 1/(n·k^(d−1)) per run — far better odds than a
/// uniform walk for the rare-interleaving bugs reader-writer fast paths
/// hide. Spin loops, which classic PCT handles with yields, are handled
/// here by the scheduler's stall detection: a spinning high-priority task
/// leaves the runnable set instead of monopolizing the schedule.
#[derive(Debug, Clone)]
pub struct Pct {
    rng: SplitMix64,
    depth: usize,
    horizon: u64,
    priorities: Vec<u64>,
    change_points: Vec<u64>,
    /// Next demotion priority; counts down so each demoted task lands
    /// strictly below every earlier demotion.
    next_low: u64,
    /// Salt for the pseudo-priorities of decision ids beyond the task
    /// range — the weak memory model's store-buffer flush points, which
    /// the scheduler exposes as virtual runnable ids ≥ `n_tasks`.
    salt: u64,
}

impl Pct {
    /// Creates a PCT scheduler: `depth` is the bug depth targeted (`d ≥
    /// 1`; `d − 1` priority-change points are drawn), `horizon` the
    /// anticipated schedule length the change points are spread over.
    pub fn new(seed: u64, depth: usize, horizon: u64) -> Self {
        assert!(depth >= 1, "PCT depth must be at least 1");
        assert!(horizon >= 1, "PCT horizon must be at least 1");
        Self {
            rng: SplitMix64::new(seed),
            depth,
            horizon,
            priorities: Vec::new(),
            change_points: Vec::new(),
            next_low: u64::MAX / 2,
            salt: 0,
        }
    }

    fn init(&mut self, n_tasks: usize) {
        // Distinct random priorities above the demotion band: draw ranks
        // by repeatedly extracting a random remaining task.
        let mut order: Vec<usize> = (0..n_tasks).collect();
        self.priorities = vec![0; n_tasks];
        let mut rank = u64::MAX;
        while !order.is_empty() {
            let i = self.rng.gen_index(order.len());
            self.priorities[order.swap_remove(i)] = rank;
            rank -= 1;
        }
        self.change_points = (1..self.depth).map(|_| self.rng.next_u64() % self.horizon).collect();
        self.salt = self.rng.next_u64();
    }

    /// Priority of a runnable id: real tasks carry their drawn (possibly
    /// demoted) priority; virtual flush ids get a stable seeded
    /// pseudo-priority, so weak-mode flushes interleave with task steps
    /// under the same max-priority rule instead of panicking.
    fn priority(&self, id: usize) -> u64 {
        self.priorities
            .get(id)
            .copied()
            .unwrap_or_else(|| self.salt ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

impl Strategy for Pct {
    fn pick(&mut self, view: &PickView<'_>) -> usize {
        if self.priorities.is_empty() {
            self.init(view.n_tasks);
        }
        let pick = *view
            .runnable
            .iter()
            .max_by_key(|&&t| self.priority(t))
            .expect("runnable is never empty");
        if self.change_points.contains(&view.decision) {
            // Demote real tasks only; a flush id has no priority slot (and
            // demoting one would starve the store buffer it drains).
            if let Some(p) = self.priorities.get_mut(pick) {
                *p = self.next_low;
                self.next_low -= 1;
            }
        }
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        decision: u64,
        runnable: &'a [usize],
        unfinished: &'a [usize],
        n: usize,
    ) -> PickView<'a> {
        PickView { decision, runnable, unfinished, n_tasks: n, last: None }
    }

    #[test]
    fn random_walk_is_reproducible_and_in_bounds() {
        let runnable = [0usize, 2, 3];
        let all = [0usize, 1, 2, 3];
        let picks = |seed| {
            let mut s = RandomWalk::new(seed);
            (0..32).map(|i| s.pick(&view(i, &runnable, &all, 4))).collect::<Vec<_>>()
        };
        let a = picks(7);
        assert_eq!(a, picks(7));
        assert!(a.iter().all(|t| runnable.contains(t)));
        assert_ne!(a, picks(8));
    }

    #[test]
    fn pct_runs_highest_priority_until_demoted() {
        let runnable = [0usize, 1, 2];
        let mut pct = Pct::new(3, 2, 10);
        let first = pct.pick(&view(0, &runnable, &runnable, 3));
        // Until its change point fires, the same top-priority task runs.
        let mut leader_changed_at = None;
        for d in 1..10 {
            let t = pct.pick(&view(d, &runnable, &runnable, 3));
            if t != first {
                leader_changed_at = Some(d);
                break;
            }
        }
        // Depth 2 ⇒ exactly one change point in [0, 10); once it fires the
        // leader must change (all priorities are distinct).
        if let Some(d) = leader_changed_at {
            assert!(d < 10);
        }
    }

    #[test]
    fn pct_respects_runnable_subsets() {
        let mut pct = Pct::new(11, 3, 50);
        let all = [0usize, 1, 2, 3];
        for d in 0..50 {
            let runnable = [all[(d as usize) % 4]];
            let t = pct.pick(&view(d, &runnable, &all, 4));
            assert_eq!(t, runnable[0], "must pick from runnable even when leader is stalled");
        }
    }
}
