//! Deliberately broken lock variants — the checker's teeth.
//!
//! A checker that has never caught a bug is indistinguishable from one
//! that cannot. Following `rmr-sim/tests/mutants.rs` (which seeds
//! transcription errors into the line-level models), this module seeds
//! real-code bugs into faithful copies of the shipped implementations:
//! each [`Mutation`] is a one-line change of the kind a refactor could
//! plausibly introduce, and the test battery asserts that every one is
//! caught within a bounded schedule budget while the unmutated copies
//! pass the same budgets.
//!
//! The copies live here, not in the production crates — shipping broken
//! locks behind a flag would be a footgun — and are kept line-for-line
//! parallel to their originals (`swmr/writer_priority.rs`, `tas.rs`,
//! `anderson.rs`, `rmr-baselines/src/flags.rs`, `rmr-bravo/src/lib.rs`,
//! `rmr-swap/src/lib.rs`) so a diff against the real code shows exactly
//! the seeded bug and nothing else. That includes per-access memory
//! orderings: every copy carries its original's orderings verbatim, so
//! the *ordering itself* can be a mutation point.
//!
//! The `Demote*` mutations are exactly that: each weakens one store the
//! per-site policy (DESIGN.md §13) proves must be SeqCst, from SeqCst to
//! Release. Under [`rmr_mutex::sched::MemoryModel::SeqCst`] the demotion is
//! invisible — the control batteries pass either way — but under
//! [`rmr_mutex::sched::MemoryModel::StoreBuffer`] the demoted store parks in the
//! mutating task's store buffer past the store→load (Dekker) edge it was
//! guarding, and the battery catches the violation. They are the
//! evidence that the weak mode actually distinguishes the orderings the
//! relaxation sweep left strong.

use rmr_core::packed::{Packed, PackedFaa};
use rmr_core::raw::{RawParkedWaiters, RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_core::{AtomicSide, Side};
use rmr_mutex::mem::{Backend, Ordering, SharedBool, SharedWord};
use rmr_mutex::{spin_until, RawMutex, Sched, TtasLock};
use std::fmt;

/// Which seeded bug a mutant lock carries. `None` is the control: the
/// faithful copy, which must pass every battery the mutants fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Faithful copy — no bug.
    None,
    /// Figure 1 writer skips line 8 (`Gate[prevD] ← false`): the previous
    /// side's gate stays open, so from the writer's second attempt on,
    /// readers bind to an open gate while the writer owns the CS.
    SkipGateClose,
    /// Figure 1 writer skips line 3 (`D ← currD`, the [`AtomicSide`]
    /// flip): readers keep registering on the stale side the writer is
    /// draining.
    SkipSideFlip,
    /// Figure 1 reader skips line 28 (`Permit[d] ← true`): the last
    /// reader out never wakes a writer parked on `C[d]` — deadlock.
    SkipReaderPermit,
    /// TTAS lock CASes with the *observed* value as the expected value
    /// (`CAS(flag, flag_read, true)` instead of `CAS(flag, false,
    /// true)`): when the flag is already `true` the CAS succeeds and a
    /// second holder walks in.
    WrongCasExpected,
    /// Anderson unlock skips closing its own slot: both slots end up
    /// open and two later tickets enter together.
    SkipSlotClose,
    /// Bravo writer flips the bias word off but skips the visible-readers
    /// slot scan: a published fast reader is still inside its read session
    /// when the writer enters the critical section.
    SkipRevocationScan,
    /// Async write-release skips the wake-up scan: futures parked behind
    /// the writer (their retry-after-register found it still holding) are
    /// never re-polled — the parking tier's characteristic lost-wakeup
    /// bug, surfacing as a deterministic deadlock report.
    DropWakeup,
    /// Epoch-swap writer's grace-period scan skips slot 0: a payload is
    /// freed while the reader in that slot still pins it with a published
    /// epoch — the snapshot tier's characteristic use-after-free, caught
    /// by the freed-flag oracle instead of actual UB.
    PrematureRetire,
    /// Flags-baseline reader demotes its flag raise (site BL-FLAGS) from
    /// SeqCst to Release. The raise parks in the reader's store buffer:
    /// the reader checks `writer_present`, sees false, and enters while a
    /// writer that raised `writer_present` scans flags that all read
    /// false — both sides of the Dekker square miss each other and both
    /// enter. Invisible under SC; caught under `MemoryModel::StoreBuffer`.
    DemoteFlagRaise,
    /// Bravo writer demotes the bias clear (site BR-CLEAR) from SeqCst to
    /// Release. The clear parks in the writer's store buffer while the
    /// revocation scan runs against it; a fast reader that published its
    /// slot *after* the scan passed it re-checks the bias, still observes
    /// the stale `true`, and keeps its fast read session while the writer
    /// is in the critical section. Invisible under SC; caught under
    /// `MemoryModel::StoreBuffer`.
    DemoteBiasClear,
    /// Epoch-swap reader demotes the epoch publish (site SW-PUB) from
    /// SeqCst to Release. The publish parks in the reader's store buffer
    /// past the payload load it must precede: a concurrent writer's
    /// grace scan sees the slot still empty, frees the payload the reader
    /// pinned, and the freed-flag oracle fires. Invisible under SC;
    /// caught under `MemoryModel::StoreBuffer`.
    DemotePublishEpoch,
    /// The doorway wrapper claims `QUEUED = true` but `start_write` never
    /// draws the ticket: `poll_write` degrades to a bare `try_write_lock`
    /// with no queue presence, so readers stream past the "tokened"
    /// writer without bound — the bug `async_fair_trial`'s bounded-bypass
    /// oracle exists to catch (a refactor that keeps the doorway shape
    /// but loses the token is exactly one dropped call).
    DropWaiterToken,
}

// ---------------------------------------------------------------------
// Figure 1 copy (SwmrWriterPriority) with seeded writer/reader bugs
// ---------------------------------------------------------------------

/// Proof of a held mutant read lock.
#[derive(Debug)]
pub struct MutantReadToken {
    d: Side,
}

/// Proof of a held mutant write lock.
#[derive(Debug)]
pub struct MutantWriteToken {
    curr: Side,
}

/// A line-for-line copy of [`rmr_core::swmr::SwmrWriterPriority`]
/// carrying one of the Figure 1 [`Mutation`]s ([`Mutation::None`] for the
/// control copy). Always instantiated over [`Sched`] by the battery.
pub struct MutantFig1<B: Backend = Sched> {
    mutation: Mutation,
    d: AtomicSide<B>,
    gates: [B::Bool; 2],
    permits: [B::Bool; 2],
    counts: [PackedFaa<B>; 2],
    exit_count: PackedFaa<B>,
    exit_permit: B::Bool,
}

impl<B: Backend> MutantFig1<B> {
    /// Creates the lock in the paper's initial configuration, carrying
    /// `mutation`.
    ///
    /// # Panics
    ///
    /// Panics if `mutation` is not a Figure 1 mutation.
    pub fn new_in(mutation: Mutation, _backend: B) -> Self {
        assert!(
            matches!(
                mutation,
                Mutation::None
                    | Mutation::SkipGateClose
                    | Mutation::SkipSideFlip
                    | Mutation::SkipReaderPermit
            ),
            "{mutation:?} is not a Figure 1 mutation"
        );
        Self {
            mutation,
            d: AtomicSide::new_in(Side::Zero, B::default()),
            gates: [B::Bool::new(true), B::Bool::new(false)],
            permits: [B::Bool::new(false), B::Bool::new(false)],
            counts: [PackedFaa::new_in(B::default()), PackedFaa::new_in(B::default())],
            exit_count: PackedFaa::new_in(B::default()),
            exit_permit: B::Bool::new(false),
        }
    }

    fn writer_enter(&self) -> MutantWriteToken {
        let prev = self.d.load(Ordering::Relaxed); // line 2
        let curr = !prev;
        if self.mutation != Mutation::SkipSideFlip {
            self.d.store(curr, Ordering::Relaxed); // line 3 — MUTATION POINT
        }
        let p = prev.index();
        self.permits[p].store(false, Ordering::Relaxed); // line 4
        let old = self.counts[p].add_writer(Ordering::SeqCst); // line 5
        if old != Packed::ZERO {
            spin_until(|| self.permits[p].load(Ordering::Acquire)); // line 6
        }
        self.counts[p].sub_writer(Ordering::SeqCst); // line 7
        if self.mutation != Mutation::SkipGateClose {
            self.gates[p].store(false, Ordering::Release); // line 8 — MUTATION POINT
        }
        self.exit_permit.store(false, Ordering::Relaxed); // line 9
        let old = self.exit_count.add_writer(Ordering::SeqCst); // line 10
        if old != Packed::ZERO {
            spin_until(|| self.exit_permit.load(Ordering::Acquire)); // line 11
        }
        self.exit_count.sub_writer(Ordering::SeqCst); // line 12
        MutantWriteToken { curr } // line 13: CS
    }

    fn writer_exit(&self, token: MutantWriteToken) {
        self.gates[token.curr.index()].store(true, Ordering::Release); // line 14
    }

    fn reader_doorway(&self) -> Side {
        let mut d = self.d.load(Ordering::Relaxed); // line 16
        self.counts[d.index()].add_reader(Ordering::SeqCst); // line 17
        let d2 = self.d.load(Ordering::Relaxed); // line 18
        if d != d2 {
            // line 19
            self.counts[d2.index()].add_reader(Ordering::SeqCst); // line 20
            d = self.d.load(Ordering::Relaxed); // line 21
            let other = !d;
            let old = self.counts[other.index()].sub_reader(Ordering::SeqCst); // line 22
            if old == Packed::ONE_ONE {
                self.permits[other.index()].store(true, Ordering::Release); // line 23
            }
        }
        d
    }

    fn reader_enter(&self) -> MutantReadToken {
        let d = self.reader_doorway();
        spin_until(|| self.gates[d.index()].load(Ordering::Acquire)); // line 24
        MutantReadToken { d } // line 25: CS
    }

    fn reader_exit(&self, token: MutantReadToken) {
        let d = token.d.index();
        self.exit_count.add_reader(Ordering::SeqCst); // line 26
        let old = self.counts[d].sub_reader(Ordering::SeqCst); // line 27
        if old == Packed::ONE_ONE && self.mutation != Mutation::SkipReaderPermit {
            self.permits[d].store(true, Ordering::Release); // line 28 — MUTATION POINT
        }
        let old = self.exit_count.sub_reader(Ordering::SeqCst); // line 29
        if old == Packed::ONE_ONE {
            self.exit_permit.store(true, Ordering::Release); // line 30
        }
    }

    /// Mirror of the real lock's quiescence entry point (the control copy
    /// must satisfy it after clean runs).
    pub fn is_quiescent(&self) -> bool {
        let d = self.d.load(Ordering::Relaxed);
        self.counts[0].load(Ordering::Relaxed) == Packed::ZERO
            && self.counts[1].load(Ordering::Relaxed) == Packed::ZERO
            && self.exit_count.load(Ordering::Relaxed) == Packed::ZERO
            && self.gates[d.index()].load(Ordering::Relaxed)
            && !self.gates[(!d).index()].load(Ordering::Relaxed)
    }
}

impl<B: Backend> fmt::Debug for MutantFig1<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutantFig1").field("mutation", &self.mutation).finish()
    }
}

impl<B: Backend> RawRwLock for MutantFig1<B> {
    type ReadToken = MutantReadToken;
    type WriteToken = MutantWriteToken;

    fn read_lock(&self, _pid: Pid) -> MutantReadToken {
        self.reader_enter()
    }

    fn read_unlock(&self, _pid: Pid, token: MutantReadToken) {
        self.reader_exit(token);
    }

    fn write_lock(&self, _pid: Pid) -> MutantWriteToken {
        self.writer_enter()
    }

    fn write_unlock(&self, _pid: Pid, token: MutantWriteToken) {
        self.writer_exit(token);
    }

    fn max_processes(&self) -> usize {
        usize::MAX
    }
}

impl<B: Backend> RawTryReadLock for MutantFig1<B> {
    fn try_read_lock(&self, _pid: Pid) -> Option<MutantReadToken> {
        let d = self.reader_doorway();
        if self.gates[d.index()].load(Ordering::Acquire) {
            Some(MutantReadToken { d })
        } else {
            self.reader_exit(MutantReadToken { d });
            None
        }
    }
}

// ---------------------------------------------------------------------
// TTAS copy with the wrong-CAS-expected bug
// ---------------------------------------------------------------------

/// A copy of [`rmr_mutex::TtasLock`] where [`Mutation::WrongCasExpected`]
/// replaces the acquire CAS's expected value with the value just read.
pub struct MutantTtas<B: Backend = Sched> {
    mutation: Mutation,
    flag: B::Bool,
}

impl<B: Backend> MutantTtas<B> {
    /// Creates an unlocked mutant.
    ///
    /// # Panics
    ///
    /// Panics if `mutation` is not `None`/`WrongCasExpected`.
    pub fn new_in(mutation: Mutation, _backend: B) -> Self {
        assert!(
            matches!(mutation, Mutation::None | Mutation::WrongCasExpected),
            "{mutation:?} is not a TTAS mutation"
        );
        Self { mutation, flag: B::Bool::new(false) }
    }
}

impl<B: Backend> fmt::Debug for MutantTtas<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutantTtas").field("mutation", &self.mutation).finish()
    }
}

impl<B: Backend> RawMutex for MutantTtas<B> {
    type Token = ();

    fn lock(&self) {
        loop {
            let seen = self.flag.load(Ordering::Relaxed); // test
            if self.mutation == Mutation::WrongCasExpected {
                // MUTATION: expected = the value just read. When `seen`
                // is already true this succeeds vacuously and admits a
                // second holder.
                if self
                    .flag
                    .compare_exchange(seen, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
            } else if !seen
                && self
                    .flag
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return; // test&set
            }
        }
    }

    fn unlock(&self, _token: ()) {
        self.flag.store(false, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Anderson copy with the open-slot bug
// ---------------------------------------------------------------------

/// A copy of [`rmr_mutex::AndersonLock`] where [`Mutation::SkipSlotClose`]
/// drops the unlock's "close my own slot" store.
pub struct MutantAnderson<B: Backend = Sched> {
    mutation: Mutation,
    slots: Box<[B::Bool]>,
    next_ticket: B::Word,
    mask: u64,
}

impl<B: Backend> MutantAnderson<B> {
    /// Creates the mutant with `capacity` slots (rounded up to a power of
    /// two, minimum 2).
    ///
    /// # Panics
    ///
    /// Panics if `mutation` is not `None`/`SkipSlotClose` or `capacity`
    /// is 0.
    pub fn new_in(mutation: Mutation, capacity: usize, _backend: B) -> Self {
        assert!(
            matches!(mutation, Mutation::None | Mutation::SkipSlotClose),
            "{mutation:?} is not an Anderson mutation"
        );
        assert!(capacity > 0, "capacity must be positive");
        let capacity = capacity.next_power_of_two().max(2);
        Self {
            mutation,
            slots: (0..capacity).map(|i| B::Bool::new(i == 0)).collect(),
            next_ticket: B::Word::new(0),
            mask: capacity as u64 - 1,
        }
    }

    fn slot(&self, ticket: u64) -> &B::Bool {
        &self.slots[(ticket & self.mask) as usize]
    }
}

impl<B: Backend> fmt::Debug for MutantAnderson<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutantAnderson").field("mutation", &self.mutation).finish()
    }
}

impl<B: Backend> RawMutex for MutantAnderson<B> {
    type Token = u64;

    fn lock(&self) -> u64 {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        spin_until(|| self.slot(ticket).load(Ordering::Acquire));
        ticket
    }

    fn unlock(&self, ticket: u64) {
        if self.mutation != Mutation::SkipSlotClose {
            self.slot(ticket).store(false, Ordering::Relaxed); // MUTATION POINT
        }
        self.slot(ticket.wrapping_add(1)).store(true, Ordering::Release);
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.mask as usize + 1)
    }
}

// ---------------------------------------------------------------------
// Bravo wrapper copy with the skipped revocation scan
// ---------------------------------------------------------------------

/// Proof of a held mutant Bravo read session (mirror of
/// `rmr_bravo::BravoReadToken` over the ticket inner lock).
#[derive(Debug)]
pub enum MutantBravoReadToken {
    /// Fast path: a published visible-readers slot.
    Fast {
        /// The published slot index.
        slot: usize,
    },
    /// Slow path: the inner ticket lock's (unit) token.
    Slow,
}

/// A line-for-line copy of `rmr_bravo::Bravo` over a
/// [`rmr_baselines::TicketRwLock`] inner lock, carrying
/// [`Mutation::SkipRevocationScan`] or [`Mutation::DemoteBiasClear`] (or
/// [`Mutation::None`] for the control copy). Always instantiated over
/// [`Sched`] by the battery.
pub struct MutantBravo<B: Backend = Sched> {
    mutation: Mutation,
    inner: rmr_baselines::TicketRwLock<B>,
    rbias: B::Bool,
    slow_reads: B::Word,
    slots: Box<[B::Word]>,
    rebias_after: u64,
}

impl<B: Backend> MutantBravo<B> {
    /// Creates the mutant around a fresh ticket lock: `table_slots`
    /// visible-readers slots (rounded up to a power of two), re-bias
    /// after `rebias_after` slow reads, initially biased.
    ///
    /// # Panics
    ///
    /// Panics if `mutation` is not `None`/`SkipRevocationScan`/
    /// `DemoteBiasClear`.
    pub fn new_in(mutation: Mutation, table_slots: usize, rebias_after: u32, _backend: B) -> Self {
        assert!(
            matches!(
                mutation,
                Mutation::None | Mutation::SkipRevocationScan | Mutation::DemoteBiasClear
            ),
            "{mutation:?} is not a Bravo mutation"
        );
        let slots = table_slots.max(1).next_power_of_two();
        Self {
            mutation,
            inner: rmr_baselines::TicketRwLock::new_in(usize::MAX, B::default()),
            rbias: B::Bool::new(true),
            slow_reads: B::Word::new(0),
            slots: (0..slots).map(|_| B::Word::new(0)).collect(),
            rebias_after: u64::from(rebias_after),
        }
    }

    fn slot_index(&self, pid: Pid) -> usize {
        ((pid.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) as usize
            & (self.slots.len() - 1)
    }

    fn try_fast_read(&self, pid: Pid) -> Option<usize> {
        if !self.rbias.load(Ordering::Relaxed) {
            return None;
        }
        let slot = self.slot_index(pid);
        if self.slots[slot]
            .compare_exchange(0, pid.index() as u64 + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        if self.rbias.load(Ordering::SeqCst) {
            return Some(slot);
        }
        self.slots[slot].store(0, Ordering::Relaxed);
        None
    }

    fn note_slow_read(&self) {
        if self.rebias_after == 0 {
            return;
        }
        let n = self.slow_reads.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.rebias_after) {
            self.rbias.store(true, Ordering::Relaxed);
        }
    }

    fn revoke(&self) {
        if !self.rbias.load(Ordering::Relaxed) {
            return;
        }
        // Site BR-CLEAR: the original is SeqCst so the clear cannot pass
        // the slot scan below (the fast readers' publish/re-check is the
        // other half of the square).
        let order = if self.mutation == Mutation::DemoteBiasClear {
            Ordering::Release // MUTATION POINT: the clear parks in the buffer
        } else {
            Ordering::SeqCst
        };
        self.rbias.store(false, order);
        if self.mutation != Mutation::SkipRevocationScan {
            for slot in self.slots.iter() {
                // MUTATION POINT: the mutant enters without this wait.
                spin_until(|| slot.load(Ordering::SeqCst) == 0);
            }
        }
    }

    /// Mirror of the real wrapper's quiescence entry point.
    pub fn is_quiescent(&self) -> bool {
        self.slots.iter().all(|s| s.load(Ordering::Relaxed) == 0)
    }
}

impl<B: Backend> fmt::Debug for MutantBravo<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutantBravo").field("mutation", &self.mutation).finish()
    }
}

impl<B: Backend> RawRwLock for MutantBravo<B> {
    type ReadToken = MutantBravoReadToken;
    type WriteToken = ();

    fn read_lock(&self, pid: Pid) -> MutantBravoReadToken {
        if let Some(slot) = self.try_fast_read(pid) {
            return MutantBravoReadToken::Fast { slot };
        }
        let () = self.inner.read_lock(pid);
        self.note_slow_read();
        MutantBravoReadToken::Slow
    }

    fn read_unlock(&self, pid: Pid, token: MutantBravoReadToken) {
        match token {
            MutantBravoReadToken::Fast { slot } => self.slots[slot].store(0, Ordering::Release),
            MutantBravoReadToken::Slow => self.inner.read_unlock(pid, ()),
        }
    }

    fn write_lock(&self, pid: Pid) {
        let () = self.inner.write_lock(pid);
        self.revoke();
    }

    fn write_unlock(&self, pid: Pid, (): ()) {
        self.inner.write_unlock(pid, ());
    }

    fn max_processes(&self) -> usize {
        usize::MAX
    }
}

// ---------------------------------------------------------------------
// Async parking-protocol copy with the dropped write-release wake-up
// ---------------------------------------------------------------------

/// A line-for-line copy of `rmr-async`'s acquisition/release protocol
/// (the `AsyncRead`/`AsyncWrite` poll bodies and the guard drops) over a
/// [`rmr_baselines::TicketRwLock`] inner lock, carrying
/// [`Mutation::DropWakeup`] (or [`Mutation::None`] for the control).
/// The waker table is the *production* `rmr_async::WakerTable` — the
/// seeded bug lives in the release path that is supposed to drive it.
/// Acquire/release are explicit (no RAII guards) so the mutation point is
/// a plain skipped call. Always instantiated over [`Sched`] by the
/// battery.
pub struct MutantAsyncRw<B: Backend = Sched> {
    mutation: Mutation,
    inner: rmr_baselines::TicketRwLock<B>,
    table: rmr_async::park::WakerTable<B>,
    readers: B::Word,
}

impl<B: Backend> MutantAsyncRw<B> {
    /// Creates the mutant with `capacity` waker slots (task pids must be
    /// in `0..capacity`).
    ///
    /// # Panics
    ///
    /// Panics if `mutation` is not `None`/`DropWakeup`.
    pub fn new_in(mutation: Mutation, capacity: usize, _backend: B) -> Self {
        assert!(
            matches!(mutation, Mutation::None | Mutation::DropWakeup),
            "{mutation:?} is not an async mutation"
        );
        Self {
            mutation,
            inner: rmr_baselines::TicketRwLock::new_in(capacity, B::default()),
            table: rmr_async::park::WakerTable::new(capacity),
            readers: B::Word::new(0),
        }
    }

    /// The async read acquisition: bounded attempt, park, retry — the
    /// same poll body as `rmr_async::lock::AsyncRead`.
    pub fn read_acquire(&self, pid: Pid) -> impl std::future::Future<Output = ()> + '_ {
        use rmr_async::park::WaitKind;
        std::future::poll_fn(move |cx| {
            if self.inner.try_read_lock(pid).is_some() {
                self.finish_read(pid);
                return std::task::Poll::Ready(());
            }
            self.table.register(pid.index(), WaitKind::Reader, cx.waker());
            if self.inner.try_read_lock(pid).is_some() {
                self.finish_read(pid);
                return std::task::Poll::Ready(());
            }
            std::task::Poll::Pending
        })
    }

    /// Mirror of `AsyncRwLock::finish_read`: count the session and
    /// re-poll readers parked behind this entry's transient window.
    fn finish_read(&self, pid: Pid) {
        self.table.deregister(pid.index());
        // Site AS-COUNT's counterpart: the 1 → 0 edge of this counter gates
        // the read-release wake_all scan, so it is SeqCst like the original.
        self.readers.fetch_add(1, Ordering::SeqCst);
        if self.table.parked_readers() > 0 {
            self.table.wake_readers();
        }
    }

    /// Read release: the last reader out wakes everything parked.
    pub fn read_release(&self, pid: Pid) {
        self.inner.read_unlock(pid, ());
        if self.readers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.table.wake_all();
        }
    }

    /// The async write acquisition (same protocol, writer wait kind).
    pub fn write_acquire(&self, pid: Pid) -> impl std::future::Future<Output = ()> + '_ {
        use rmr_async::park::WaitKind;
        use rmr_core::raw::RawTryRwLock;
        std::future::poll_fn(move |cx| {
            if self.inner.try_write_lock(pid).is_some() {
                self.table.deregister(pid.index());
                return std::task::Poll::Ready(());
            }
            self.table.register(pid.index(), WaitKind::Writer, cx.waker());
            if self.inner.try_write_lock(pid).is_some() {
                self.table.deregister(pid.index());
                return std::task::Poll::Ready(());
            }
            std::task::Poll::Pending
        })
    }

    /// Write release: must wake everything parked behind the writer.
    pub fn write_release(&self, pid: Pid) {
        self.inner.write_unlock(pid, ());
        if self.mutation != Mutation::DropWakeup {
            self.table.wake_all(); // MUTATION POINT: the mutant never wakes
        }
    }

    /// Mirror of the real wrapper's quiescence entry point.
    pub fn is_quiescent(&self) -> bool {
        self.table.parked_readers() == 0
            && self.table.parked_writers() == 0
            && self.readers.load(Ordering::Relaxed) == 0
    }
}

impl<B: Backend> fmt::Debug for MutantAsyncRw<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutantAsyncRw").field("mutation", &self.mutation).finish()
    }
}

// ---------------------------------------------------------------------
// Doorway wrapper with the dropped waiter token
// ---------------------------------------------------------------------

/// A capability-preserving wrapper over the production
/// [`rmr_baselines::TicketRwLock`] whose [`RawParkedWaiters`] impl is a
/// line-for-line copy of the inner forwarding — except that
/// [`Mutation::DropWaiterToken`] skips the `start_write` forward, so the
/// "doorway" holds no ticket and `poll_write` is a bare
/// `try_write_lock`. The wrapper still advertises `QUEUED = true`: it
/// *claims* the parked writer is counted like a queued process while
/// readers in fact stream past it unboundedly, which is precisely the
/// contract breach `rmr_check::async_exec::async_fair_trial`'s
/// bounded-bypass oracle polices. [`Mutation::None`] is the faithful
/// forwarder and must pass the identical battery.
pub struct MutantTokenlessTicket<B: Backend = Sched> {
    mutation: Mutation,
    inner: rmr_baselines::TicketRwLock<B>,
}

/// The mutant's doorway: the real ticket when faithful, nothing when the
/// token was dropped.
#[derive(Debug)]
pub enum MutantDoorway<B: Backend> {
    /// Faithful forward of the inner lock's drawn ticket.
    Queued(<rmr_baselines::TicketRwLock<B> as RawParkedWaiters>::WriteDoorway),
    /// MUTATION POINT: the "queue position" that was never drawn.
    Tokenless,
}

impl<B: Backend> MutantTokenlessTicket<B> {
    /// Creates the wrapper over a fresh inner ticket lock for `capacity`
    /// processes.
    ///
    /// # Panics
    ///
    /// Panics if `mutation` is not `None`/`DropWaiterToken`.
    pub fn new_in(mutation: Mutation, capacity: usize, _backend: B) -> Self {
        assert!(
            matches!(mutation, Mutation::None | Mutation::DropWaiterToken),
            "{mutation:?} is not a doorway mutation"
        );
        Self { mutation, inner: rmr_baselines::TicketRwLock::new_in(capacity, B::default()) }
    }
}

impl<B: Backend> RawRwLock for MutantTokenlessTicket<B> {
    type ReadToken = ();
    type WriteToken = ();

    fn read_lock(&self, pid: Pid) {
        self.inner.read_lock(pid)
    }

    fn read_unlock(&self, pid: Pid, (): ()) {
        self.inner.read_unlock(pid, ())
    }

    fn write_lock(&self, pid: Pid) {
        self.inner.write_lock(pid)
    }

    fn write_unlock(&self, pid: Pid, (): ()) {
        self.inner.write_unlock(pid, ())
    }

    fn max_processes(&self) -> usize {
        self.inner.max_processes()
    }
}

impl<B: Backend> RawTryReadLock for MutantTokenlessTicket<B> {
    fn try_read_lock(&self, pid: Pid) -> Option<()> {
        self.inner.try_read_lock(pid)
    }
}

// SAFETY: both variants grant through the inner ticket lock's own
// admission checks (`poll_write` / `try_write_lock`), so exclusion is the
// inner lock's. The mutant's lie is about *fairness* (QUEUED without a
// queue position), never about exclusion — the fairness oracle, not the
// exclusion oracle, must be what catches it.
unsafe impl<B: Backend> RawParkedWaiters for MutantTokenlessTicket<B> {
    const QUEUED: bool = true;

    type WriteDoorway = MutantDoorway<B>;

    fn start_write(&self, pid: Pid) -> MutantDoorway<B> {
        if self.mutation == Mutation::DropWaiterToken {
            MutantDoorway::Tokenless // MUTATION POINT: no ticket drawn
        } else {
            MutantDoorway::Queued(self.inner.start_write(pid))
        }
    }

    fn poll_write(&self, pid: Pid, doorway: MutantDoorway<B>) -> Result<(), MutantDoorway<B>> {
        match doorway {
            MutantDoorway::Queued(d) => {
                self.inner.poll_write(pid, d).map_err(MutantDoorway::Queued)
            }
            MutantDoorway::Tokenless => {
                self.inner.try_write_lock(pid).ok_or(MutantDoorway::Tokenless)
            }
        }
    }

    fn cancel_write(&self, pid: Pid, doorway: MutantDoorway<B>) {
        if let MutantDoorway::Queued(d) = doorway {
            self.inner.cancel_write(pid, d);
        }
    }
}

impl<B: Backend> fmt::Debug for MutantTokenlessTicket<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutantTokenlessTicket").field("mutation", &self.mutation).finish()
    }
}

// ---------------------------------------------------------------------
// Epoch-swap snapshot copy with the skipped grace-scan slot
// ---------------------------------------------------------------------

/// A model of `rmr-swap`'s epoch-swap protocol over a bounded arena,
/// carrying [`Mutation::PrematureRetire`] (the writer's grace-period scan
/// skips slot 0), [`Mutation::DemotePublishEpoch`] (the reader's epoch
/// publish weakens from SeqCst to Release), or [`Mutation::None`] for
/// the control copy.
///
/// Payloads are arena *indices* with a freed flag instead of heap
/// pointers, so the seeded reclamation bug surfaces as a caught oracle
/// panic ("freed payload observed …") rather than actual use-after-free
/// UB the checker could not observe deterministically. Single-writer by
/// construction: the real tier serializes writers through a raw lock, so
/// one writer task models the serialized install stream and the mutation
/// point — the grace scan — is exercised without dragging a lock copy in.
/// Always instantiated over [`Sched`] by the battery.
pub struct MutantSwap<B: Backend = Sched> {
    mutation: Mutation,
    /// The global epoch `G` (starts at 1; 0 is the empty-slot sentinel).
    epoch: B::Word,
    /// Arena index of the current payload.
    payload: B::Word,
    /// The reader epoch table (the registry's epoch slots, sans padding).
    slots: Box<[B::Word]>,
    /// Freed flag per arena cell — the reclamation oracle.
    freed: Box<[B::Bool]>,
    /// Bump allocator over the arena (cell 0 is the initial payload).
    next_cell: B::Word,
}

impl<B: Backend> MutantSwap<B> {
    /// Creates the model with `slots` reader slots and an arena of
    /// `arena_cells` payload cells (must cover one install per writer
    /// passage plus the initial payload).
    ///
    /// # Panics
    ///
    /// Panics if `mutation` is not `None`/`PrematureRetire`/
    /// `DemotePublishEpoch`.
    pub fn new_in(mutation: Mutation, slots: usize, arena_cells: usize, _backend: B) -> Self {
        assert!(
            matches!(
                mutation,
                Mutation::None | Mutation::PrematureRetire | Mutation::DemotePublishEpoch
            ),
            "{mutation:?} is not a Swap mutation"
        );
        assert!(slots > 0 && arena_cells > 0);
        Self {
            mutation,
            epoch: B::Word::new(1),
            payload: B::Word::new(0),
            slots: (0..slots).map(|_| B::Word::new(0)).collect(),
            freed: (0..arena_cells).map(|_| B::Bool::new(false)).collect(),
            next_cell: B::Word::new(0),
        }
    }

    /// One reader pin passage (the `Snapshot::load` body) plus the
    /// oracle: the pinned payload must not be freed while this slot's
    /// epoch pins it.
    ///
    /// # Panics
    ///
    /// Panics — the caught-bug signal — if the pinned payload's freed
    /// flag is set.
    pub fn reader_passage(&self, pid: Pid) {
        let slot = &self.slots[pid.index()];
        let e = self.epoch.load(Ordering::Relaxed);
        // Site SW-PUB: publish, then load — the linchpin order. The
        // original is SeqCst so the publish cannot pass the payload load.
        let order = if self.mutation == Mutation::DemotePublishEpoch {
            Ordering::Release // MUTATION POINT: the publish parks in the buffer
        } else {
            Ordering::SeqCst
        };
        slot.store(e, order);
        let mut p = self.payload.load(Ordering::SeqCst); // site SW-LOAD
        let e2 = self.epoch.load(Ordering::SeqCst);
        if e2 != e {
            slot.store(e2, order); // republish under the same policy
            p = self.payload.load(Ordering::SeqCst);
        }
        // CS: dereference the snapshot. In the real tier this is the
        // guard's `Deref`; here the freed flag stands in for the heap.
        // SeqCst so the oracle itself stays out of the ordering argument.
        assert!(
            !self.freed[p as usize].load(Ordering::SeqCst),
            "freed payload observed while an epoch pins it (cell {p})"
        );
        slot.store(0, Ordering::Release); // guard drop clears the pin
    }

    /// One writer install passage (the `Snapshot::store` body under its
    /// serialized write session): swap the payload, bump the epoch,
    /// grace-scan the reader table, free the retiree.
    ///
    /// # Panics
    ///
    /// Panics if the arena is exhausted or a cell is freed twice.
    pub fn writer_passage(&self) {
        let idx = self.next_cell.fetch_add(1, Ordering::Relaxed) + 1;
        assert!((idx as usize) < self.freed.len(), "arena exhausted; size it to the trial");
        let old = self.payload.swap(idx, Ordering::SeqCst); // site SW-SWAP
        let r = self.epoch.fetch_add(1, Ordering::SeqCst) + 1; // site SW-BUMP
        let start = usize::from(self.mutation == Mutation::PrematureRetire);
        for slot in start..self.slots.len() {
            // MUTATION POINT: the mutant starts at slot 1, never waiting
            // out a pin published in slot 0.
            spin_until(|| {
                let e = self.slots[slot].load(Ordering::SeqCst); // site SW-SCAN
                e == 0 || e >= r
            });
        }
        let was = self.freed[old as usize].swap(true, Ordering::SeqCst);
        assert!(!was, "payload cell {old} freed twice");
    }

    /// Mirror of the real tier's quiescence entry point: no published
    /// epoch, and the current payload is live.
    pub fn is_quiescent(&self) -> bool {
        self.slots.iter().all(|s| s.load(Ordering::Relaxed) == 0)
            && !self.freed[self.payload.load(Ordering::Relaxed) as usize].load(Ordering::Relaxed)
    }
}

impl<B: Backend> fmt::Debug for MutantSwap<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutantSwap").field("mutation", &self.mutation).finish()
    }
}

// ---------------------------------------------------------------------
// Distributed-flags baseline copy with the demoted flag raise
// ---------------------------------------------------------------------

/// A line-for-line copy of [`rmr_baselines::DistributedFlagRwLock`]
/// carrying [`Mutation::DemoteFlagRaise`] (or [`Mutation::None`] for the
/// control copy). The lock's exclusion rests on a textbook Dekker square
/// (site BL-FLAGS): reader raises its flag then reads `writer_present`;
/// writer raises `writer_present` then scans the flags. The mutation
/// weakens the reader's raise from SeqCst to Release — a change with no
/// observable effect under sequential consistency, which is exactly why
/// the battery must run it under [`rmr_mutex::sched::MemoryModel::StoreBuffer`]
/// to catch it. Always instantiated over [`Sched`] by the battery.
pub struct MutantFlags<B: Backend = Sched> {
    mutation: Mutation,
    reader_flags: Box<[B::Bool]>,
    writer_mutex: TtasLock<B>,
    writer_present: B::Bool,
}

impl<B: Backend> MutantFlags<B> {
    /// Creates the mutant with `max_processes` reader slots.
    ///
    /// # Panics
    ///
    /// Panics if `mutation` is not `None`/`DemoteFlagRaise` or
    /// `max_processes` is 0.
    pub fn new_in(mutation: Mutation, max_processes: usize, _backend: B) -> Self {
        assert!(
            matches!(mutation, Mutation::None | Mutation::DemoteFlagRaise),
            "{mutation:?} is not a flags mutation"
        );
        assert!(max_processes > 0, "max_processes must be positive");
        Self {
            mutation,
            reader_flags: (0..max_processes).map(|_| B::Bool::new(false)).collect(),
            writer_mutex: TtasLock::new_in(B::default()),
            writer_present: B::Bool::new(false),
        }
    }

    fn raise_order(&self) -> Ordering {
        // Site BL-FLAGS: the original raise is SeqCst so it cannot pass the
        // writer_present check that follows it.
        if self.mutation == Mutation::DemoteFlagRaise {
            Ordering::Release // MUTATION POINT: the raise parks in the buffer
        } else {
            Ordering::SeqCst
        }
    }

    /// Mirror of the real baseline's quiescence condition: every flag down
    /// and no writer present.
    pub fn is_quiescent(&self) -> bool {
        self.reader_flags.iter().all(|f| !f.load(Ordering::Relaxed))
            && !self.writer_present.load(Ordering::Relaxed)
    }
}

impl<B: Backend> fmt::Debug for MutantFlags<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutantFlags").field("mutation", &self.mutation).finish()
    }
}

impl<B: Backend> RawRwLock for MutantFlags<B> {
    type ReadToken = ();
    type WriteToken = ();

    fn read_lock(&self, pid: Pid) {
        let flag = &self.reader_flags[pid.index()];
        loop {
            flag.store(true, self.raise_order());
            if !self.writer_present.load(Ordering::SeqCst) {
                return;
            }
            flag.store(false, Ordering::Relaxed);
            spin_until(|| !self.writer_present.load(Ordering::Acquire));
        }
    }

    fn read_unlock(&self, pid: Pid, (): ()) {
        self.reader_flags[pid.index()].store(false, Ordering::Release);
    }

    fn write_lock(&self, _pid: Pid) {
        self.writer_mutex.lock();
        self.writer_present.store(true, Ordering::SeqCst);
        for flag in self.reader_flags.iter() {
            spin_until(|| !flag.load(Ordering::Acquire));
        }
    }

    fn write_unlock(&self, _pid: Pid, (): ()) {
        self.writer_present.store(false, Ordering::Release);
        self.writer_mutex.unlock(());
    }

    fn max_processes(&self) -> usize {
        self.reader_flags.len()
    }
}

impl<B: Backend> RawTryReadLock for MutantFlags<B> {
    fn try_read_lock(&self, pid: Pid) -> Option<()> {
        let flag = &self.reader_flags[pid.index()];
        flag.store(true, self.raise_order());
        if !self.writer_present.load(Ordering::SeqCst) {
            Some(())
        } else {
            flag.store(false, Ordering::Relaxed);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controls_behave_like_the_originals_single_threaded() {
        let lock = MutantFig1::new_in(Mutation::None, Sched);
        let r = lock.read_lock(Pid::from_index(0));
        lock.read_unlock(Pid::from_index(0), r);
        let w = lock.write_lock(Pid::from_index(1));
        lock.write_unlock(Pid::from_index(1), w);
        assert!(lock.is_quiescent());

        let ttas = MutantTtas::new_in(Mutation::None, Sched);
        ttas.lock();
        ttas.unlock(());

        let anderson = MutantAnderson::new_in(Mutation::None, 2, Sched);
        for _ in 0..4 {
            let t = anderson.lock();
            anderson.unlock(t);
        }

        let bravo = MutantBravo::new_in(Mutation::None, 2, 2, Sched);
        let r = bravo.read_lock(Pid::from_index(0));
        assert!(matches!(r, MutantBravoReadToken::Fast { .. }));
        bravo.read_unlock(Pid::from_index(0), r);
        bravo.write_lock(Pid::from_index(1));
        bravo.write_unlock(Pid::from_index(1), ());
        assert!(bravo.is_quiescent());

        let asynk = MutantAsyncRw::new_in(Mutation::None, 2, Sched);
        crate::async_exec::block_on_sched(async {
            asynk.read_acquire(Pid::from_index(0)).await;
            asynk.read_release(Pid::from_index(0));
            asynk.write_acquire(Pid::from_index(1)).await;
            asynk.write_release(Pid::from_index(1));
        });
        assert!(asynk.is_quiescent());

        let swap = MutantSwap::new_in(Mutation::None, 2, 4, Sched);
        swap.reader_passage(Pid::from_index(0));
        swap.writer_passage();
        swap.reader_passage(Pid::from_index(1));
        swap.writer_passage();
        assert!(swap.is_quiescent());

        let flags = MutantFlags::new_in(Mutation::None, 2, Sched);
        flags.read_lock(Pid::from_index(0));
        flags.read_unlock(Pid::from_index(0), ());
        flags.write_lock(Pid::from_index(1));
        flags.write_unlock(Pid::from_index(1), ());
        assert!(flags.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "not an async mutation")]
    fn async_rejects_foreign_mutations() {
        let _ = MutantAsyncRw::new_in(Mutation::SkipGateClose, 2, Sched);
    }

    #[test]
    #[should_panic(expected = "not a Figure 1 mutation")]
    fn fig1_rejects_foreign_mutations() {
        let _ = MutantFig1::new_in(Mutation::WrongCasExpected, Sched);
    }

    #[test]
    #[should_panic(expected = "not a TTAS mutation")]
    fn ttas_rejects_foreign_mutations() {
        let _ = MutantTtas::new_in(Mutation::SkipGateClose, Sched);
    }

    #[test]
    #[should_panic(expected = "not a Bravo mutation")]
    fn bravo_rejects_foreign_mutations() {
        let _ = MutantBravo::new_in(Mutation::SkipGateClose, 2, 2, Sched);
    }

    #[test]
    #[should_panic(expected = "not a Swap mutation")]
    fn swap_rejects_foreign_mutations() {
        let _ = MutantSwap::new_in(Mutation::SkipGateClose, 2, 4, Sched);
    }

    #[test]
    #[should_panic(expected = "not a flags mutation")]
    fn flags_rejects_foreign_mutations() {
        let _ = MutantFlags::new_in(Mutation::SkipGateClose, 2, Sched);
    }
}
