//! Time as a capability, so recorded traces are replayable.
//!
//! Hook sites never call `Instant::now` directly — they ask their
//! [`Recorder`](crate::Recorder), which asks its [`Clock`]. Under the
//! `Native` memory backend that is [`MonoClock`] (real monotonic
//! nanoseconds); under the deterministic `Sched` backend the checker
//! substitutes [`TickClock`], whose "time" is a process-wide virtual
//! tick counter — every scheduled replay of the same seed yields the
//! same timestamps, so `rmr-check` batteries can assert on recorded
//! event sequences exactly.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone time source in unspecified units (nanoseconds for
/// [`MonoClock`], virtual ticks for [`TickClock`]).
pub trait Clock: Send + Sync {
    /// Current time. Must be monotone non-decreasing per thread; cheap
    /// enough for lock acquire paths.
    fn now(&self) -> u64;
}

/// Real monotonic time: nanoseconds since the clock was created.
pub struct MonoClock {
    origin: Instant,
}

impl Default for MonoClock {
    fn default() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Clock for MonoClock {
    #[inline]
    fn now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl fmt::Debug for MonoClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonoClock").finish_non_exhaustive()
    }
}

/// Deterministic virtual time: each `now()` is a fresh tick from a
/// process-local counter.
///
/// Under the `Sched` backend the cooperative scheduler serializes all
/// task steps, so tick order is a pure function of the schedule — the
/// same seed replays the same trace timestamps. The counter is a plain
/// `std` atomic (like all recorder state) precisely so it does not
/// itself become a scheduling point.
#[derive(Debug, Default)]
pub struct TickClock {
    ticks: AtomicU64,
}

impl TickClock {
    /// A fresh clock starting at tick 1 (0 is reserved as "never").
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for TickClock {
    #[inline]
    fn now(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_clock_is_monotone() {
        let c = MonoClock::default();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn tick_clock_is_strictly_increasing_and_never_zero() {
        let c = TickClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a >= 1);
        assert_eq!(b, a + 1);
    }
}
