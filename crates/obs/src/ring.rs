//! Bounded lock-free event ring and its Chrome `trace_event` rendering.
//!
//! A Vyukov-style MPMC ring of fixed-size [`TraceEvent`] records: every
//! slot carries a sequence number, so producers claim slots with one CAS
//! on the enqueue cursor and never wait on consumers. When the ring is
//! full, the *incoming* event is dropped and tallied ([`EventRing::dropped`])
//! rather than blocking or overwriting — a recorder push must never
//! stall a lock's acquire path, and silently losing the count would make
//! the trace lie about coverage.
//!
//! [`chrome_trace`] renders a drained trace as the Chrome `trace_event`
//! JSON object format (instant events, one "thread" per pid), loadable
//! in `chrome://tracing` or Perfetto for flamegraph-style inspection.

use crate::{Event, Metric};
use std::cell::UnsafeCell;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One recorded occurrence: an [`Event`] count or a [`Metric`] sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Recorder-clock timestamp (nanoseconds or virtual ticks).
    pub ts: u64,
    /// The recording pid.
    pub pid: u32,
    /// Kind code: `Event` discriminant, or `METRIC_BASE + Metric`
    /// discriminant.
    pub code: u16,
    /// `n` for events, the sample for metrics.
    pub value: u64,
}

/// Kind codes at or above this encode a [`Metric`].
const METRIC_BASE: u16 = 128;

impl TraceEvent {
    /// A counted-event record.
    pub fn event(ts: u64, pid: usize, event: Event, n: u64) -> Self {
        Self { ts, pid: pid as u32, code: event as u16, value: n }
    }

    /// A metric-sample record.
    pub fn metric(ts: u64, pid: usize, metric: Metric, value: u64) -> Self {
        Self { ts, pid: pid as u32, code: METRIC_BASE + metric as u16, value }
    }

    /// The recorded [`Event`], if this is an event record.
    pub fn as_event(&self) -> Option<Event> {
        Event::ALL.get(self.code as usize).copied()
    }

    /// The recorded [`Metric`], if this is a metric record.
    pub fn as_metric(&self) -> Option<Metric> {
        Metric::ALL.get(self.code.checked_sub(METRIC_BASE)? as usize).copied()
    }

    /// Stable label of whatever this records.
    pub fn name(&self) -> &'static str {
        self.as_event()
            .map(Event::name)
            .or_else(|| self.as_metric().map(Metric::name))
            .unwrap_or("unknown")
    }
}

struct RingSlot {
    /// Vyukov sequence: `pos` when free for the producer claiming `pos`,
    /// `pos + 1` once its record is published.
    seq: AtomicUsize,
    cell: UnsafeCell<TraceEvent>,
}

/// Bounded lock-free MPMC event ring (capacity rounded up to a power of
/// two, minimum 2). Push never blocks: a full ring drops the incoming
/// event and counts the drop.
pub struct EventRing {
    slots: Box<[RingSlot]>,
    mask: usize,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots are handed out exclusively by the seq protocol — a
// producer writes a cell only between claiming `seq == pos` and
// publishing `seq = pos + 1`; a consumer reads only after observing the
// published seq. The UnsafeCell is never aliased mutably.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    /// A ring holding at least `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| RingSlot {
                seq: AtomicUsize::new(i),
                cell: UnsafeCell::new(TraceEvent { ts: 0, pid: 0, code: 0, value: 0 }),
            })
            .collect();
        Self {
            slots,
            mask: cap - 1,
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends `ev`; returns `false` (and tallies the drop) if the ring
    /// is full. Lock-free, never blocks.
    pub fn push(&self, ev: TraceEvent) -> bool {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    match self.enqueue.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS granted this producer slot
                            // `pos` exclusively until the Release below.
                            unsafe { *slot.cell.get() = ev };
                            slot.seq.store(pos + 1, Ordering::Release);
                            return true;
                        }
                        Err(now) => pos = now,
                    }
                }
                d if d < 0 => {
                    // Slot still holds an unconsumed record one lap back:
                    // the ring is full. Drop-newest.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                _ => pos = self.enqueue.load(Ordering::Relaxed),
            }
        }
    }

    /// Removes and returns the oldest event, if any.
    pub fn pop(&self) -> Option<TraceEvent> {
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - (pos + 1) as isize {
                0 => {
                    match self.dequeue.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS granted this consumer slot
                            // `pos` exclusively until the Release below.
                            let ev = unsafe { *slot.cell.get() };
                            slot.seq.store(pos + self.mask + 1, Ordering::Release);
                            return Some(ev);
                        }
                        Err(now) => pos = now,
                    }
                }
                d if d < 0 => return None,
                _ => pos = self.dequeue.load(Ordering::Relaxed),
            }
        }
    }

    /// Drains everything currently enqueued, in enqueue order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

impl fmt::Debug for EventRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

/// Renders a drained trace as Chrome `trace_event` JSON (object format):
/// one instant event per record, `tid` = recording pid, timestamps in
/// microseconds (the clock's ns/1000 — virtual ticks simply read as µs).
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}.{:03},\"pid\":1,\
             \"tid\":{},\"args\":{{\"value\":{}}}}}",
            ev.name(),
            ev.ts / 1000,
            ev.ts % 1000,
            ev.pid,
            ev.value
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_drain() {
        let ring = EventRing::new(8);
        for i in 0..5u64 {
            assert!(ring.push(TraceEvent::event(i, 0, Event::ReadAcquire, 1)));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 5);
        assert!(drained.windows(2).all(|w| w[0].ts < w[1].ts));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let ring = EventRing::new(2); // capacity exactly 2
        assert!(ring.push(TraceEvent::event(0, 0, Event::ReadAcquire, 1)));
        assert!(ring.push(TraceEvent::event(1, 0, Event::ReadAcquire, 1)));
        assert!(!ring.push(TraceEvent::event(2, 0, Event::ReadAcquire, 1)));
        assert_eq!(ring.dropped(), 1);
        // Draining frees the slots again.
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.push(TraceEvent::event(3, 0, Event::ReadAcquire, 1)));
    }

    #[test]
    fn concurrent_pushes_lose_nothing_until_full() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(1024));
        let mut threads = Vec::new();
        for t in 0..4 {
            let ring = Arc::clone(&ring);
            threads.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    ring.push(TraceEvent::event(i, t, Event::SnapLoad, 1));
                }
            }));
        }
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.drain().len(), 800);
    }

    #[test]
    fn event_and_metric_codes_round_trip() {
        for e in Event::ALL {
            let ev = TraceEvent::event(0, 0, e, 1);
            assert_eq!(ev.as_event(), Some(e));
            assert_eq!(ev.as_metric(), None);
        }
        for m in Metric::ALL {
            let ev = TraceEvent::metric(0, 0, m, 1);
            assert_eq!(ev.as_metric(), Some(m));
            assert_eq!(ev.as_event(), None, "metric codes must not alias events");
        }
    }

    #[test]
    fn chrome_trace_microsecond_formatting() {
        let json = chrome_trace(&[TraceEvent::event(1_234_567, 3, Event::BravoRevoke, 1)]);
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"tid\":3"));
    }
}
