//! Hand-rolled log-bucketed (HDR-style) histogram with lock-free merge.
//!
//! 65 buckets indexed by bit width: value `0` lands in bucket 0, any
//! other `v` in bucket `64 − v.leading_zeros()`, so bucket `i ≥ 1`
//! covers `2^(i−1) ..= 2^i − 1`. That is ±50% relative error — plenty
//! for latency tails, where the question is "microseconds or
//! milliseconds?", not "1.2µs or 1.3µs" — and it makes every operation
//! a single `Relaxed` fetch-add on one counter: recording is wait-free
//! and local, which is what lets the lock tiers call it from inside
//! their O(1)-RMR passage argument.
//!
//! Quantiles are **exactly merge-order invariant**: a quantile is a pure
//! function of the per-bucket totals, and addition commutes — the
//! property the seeded proptests in `tests/hist_props.rs` pin down.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per possible bit width.
pub const BUCKETS: usize = 65;

/// Bucket index of `value` (its bit width; 0 for 0).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Upper bound of bucket `i` — the value a quantile in that bucket
/// reports (conservative for latencies: never under-reports).
pub fn bucket_high(i: usize) -> u64 {
    assert!(i < BUCKETS, "bucket {i} out of range");
    if i == 0 {
        0
    } else if i == 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrent log-bucketed histogram. All operations are lock-free;
/// `record` is wait-free (one `Relaxed` fetch-add).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds this histogram's counts into `dst`, lock-free: per bucket,
    /// one `Relaxed` load here and one fetch-add there. Samples recorded
    /// concurrently with the merge may or may not be included, but no
    /// sample already in either histogram is ever lost — the concurrent
    /// merge stress test asserts exactly this conservation.
    pub fn merge_into(&self, dst: &Histogram) {
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n != 0 {
                dst.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Raw count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0.0–1.0), reported as the upper bound of the
    /// bucket containing that rank; 0 on an empty histogram.
    ///
    /// Rank rule: the smallest bucket whose cumulative count reaches
    /// `ceil(q · count)` (at least 1), i.e. the bucket holding the
    /// `⌈q·n⌉`-th smallest sample — matching a sorted-vector reference
    /// oracle bucket-for-bucket, which the proptests check.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_high(i);
            }
        }
        bucket_high(BUCKETS - 1)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_high(0), 0);
        assert_eq!(bucket_high(1), 1);
        assert_eq!(bucket_high(2), 3);
        assert_eq!(bucket_high(64), u64::MAX);
    }

    #[test]
    fn value_is_within_its_bucket_bounds() {
        for v in [0u64, 1, 2, 5, 63, 64, 1000, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_high(b));
            if b > 0 {
                assert!(v > bucket_high(b - 1));
            }
        }
    }

    #[test]
    fn quantile_of_single_sample() {
        let h = Histogram::new();
        h.record(100); // bucket 7: 64..=127
        assert_eq!(h.quantile(0.0), 127);
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(1.0), 127);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(10);
        b.record(100_000);
        a.merge_into(&b);
        assert_eq!(b.count(), 3);
        assert_eq!(b.bucket(bucket_of(10)), 2);
    }
}
