//! Zero-cost-when-off observability for the whole lock stack.
//!
//! The paper's claim is a *cost* claim (O(1) RMRs per passage), and the
//! `Counting` backend proves it offline — but nothing in the stack could
//! tell you what a *live* lock is doing: contention rates, passage
//! latency tails, Bravo revocation frequency, swap retire-queue depth,
//! async park/wake latency. This crate is that instrumentation layer,
//! built so that **not using it costs nothing**:
//!
//! * [`Recorder`] — the hook trait every tier is generic over, with an
//!   associated `const ENABLED: bool`. Every hook site in the lock crates
//!   is guarded by `if R::ENABLED { … }`, so with the default
//!   [`NoopRecorder`] (`ENABLED = false`) the branch and everything
//!   behind it const-folds away and the instrumented code monomorphizes
//!   to exactly the uninstrumented code. The acceptance tests prove this
//!   on the `Counting` backend: a `NoopRecorder`-instrumented passage
//!   tallies the same shared-memory operations, op for op, as the bare
//!   lock (`obs_table` in `rmr-bench` exits nonzero if not).
//! * [`StatsRecorder`] — the real recorder: cache-padded per-pid slots
//!   of event counters ([`Event`]) and log-bucketed HDR-style latency
//!   histograms ([`Metric`], [`hist::Histogram`]), plus an optional
//!   bounded lock-free event ring ([`ring::EventRing`]) that replays as
//!   Chrome `trace_event` JSON. A recorder write is a handful of
//!   `Relaxed` operations on this pid's own cache-padded slot —
//!   **deliberately plain `std` atomics, not memory-backend-typed**, so
//!   instrumentation never pollutes `Counting` RMR tallies and never
//!   perturbs `Sched` schedules. That locality argument is also why the
//!   hooks preserve the paper's properties: a steady-state Bravo fast
//!   read with a `StatsRecorder` attached still performs zero inner-lock
//!   operations and zero CC RMRs (the recorder slot is this pid's own
//!   line; re-reads and writes of it are local in the CC model).
//! * [`Clock`] — time as a capability: real monotonic nanoseconds under
//!   `Native` ([`MonoClock`]), deterministic virtual time under `Sched`
//!   ([`TickClock`]), so recorded traces are replayable and the
//!   `rmr-check` batteries can assert on event *sequences* (e.g. "every
//!   park is followed by a grant or a cancel"), not just end states.
//!
//! # Example
//!
//! ```
//! use rmr_obs::{Event, Metric, Recorder, StatsRecorder};
//!
//! let rec = StatsRecorder::new(4);
//! rec.count(0, Event::ReadAcquire);
//! rec.record(0, Metric::ReadAcquireNs, 120);
//! rec.record(1, Metric::ReadAcquireNs, 90_000);
//! assert_eq!(rec.counter(Event::ReadAcquire), 1);
//! assert!(rec.quantile(Metric::ReadAcquireNs, 0.99) >= 90_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod hist;
pub mod ring;

pub use clock::{Clock, MonoClock, TickClock};
pub use hist::Histogram;
pub use ring::{EventRing, TraceEvent};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

macro_rules! event_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident => $label:literal,)* }) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum $name {
            $($(#[$vmeta])* $variant,)*
        }

        impl $name {
            /// Number of variants.
            pub const COUNT: usize = [$($name::$variant),*].len();
            /// Every variant, in declaration (= discriminant) order.
            pub const ALL: [$name; Self::COUNT] = [$($name::$variant),*];

            /// Stable snake-case label (used in tables and traces).
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)*
                }
            }
        }
    };
}

event_enum! {
    /// A counted occurrence. Which tier emits which event is documented
    /// per variant; the `User*` events are for applications that reuse
    /// the recorder for their own tallies (the workspace examples do).
    Event {
        /// Guard tier: a blocking read acquisition completed.
        ReadAcquire => "read_acquire",
        /// Guard tier: a read guard was released.
        ReadRelease => "read_release",
        /// Guard tier: a blocking write acquisition completed.
        WriteAcquire => "write_acquire",
        /// Guard tier: a write guard was released.
        WriteRelease => "write_release",
        /// Guard tier: a read acquisition spun at least once.
        ReadContended => "read_contended",
        /// Guard tier: a write acquisition spun at least once.
        WriteContended => "write_contended",
        /// Try tier: a bounded read attempt succeeded.
        TryReadOk => "try_read_ok",
        /// Try tier: a bounded read attempt was denied (contention signal).
        TryReadFail => "try_read_fail",
        /// Try tier: a bounded write attempt succeeded.
        TryWriteOk => "try_write_ok",
        /// Try tier: a bounded write attempt was denied.
        TryWriteFail => "try_write_fail",
        /// Spin tier: futile spin iterations burned while acquiring.
        SpinSteps => "spin_steps",
        /// Bravo: a read took the biased zero-inner-op fast path.
        BravoFastRead => "bravo_fast_read",
        /// Bravo: a read fell through to the inner lock.
        BravoSlowRead => "bravo_slow_read",
        /// Bravo: a writer revoked the read bias.
        BravoRevoke => "bravo_revoke",
        /// Bravo: the slow-read policy re-enabled the bias.
        BravoRebias => "bravo_rebias",
        /// Swap: a wait-free snapshot load.
        SnapLoad => "snap_load",
        /// Swap: a new payload version was installed.
        SnapInstall => "snap_install",
        /// Async: a future parked its waker (returned `Pending`).
        AsyncPark => "async_park",
        /// Async: wake-ups delivered by a release path.
        AsyncWake => "async_wake",
        /// Async: a pending acquisition future was dropped (cancelled).
        AsyncCancel => "async_cancel",
        /// Application-level: a cache/table hit (examples).
        UserHit => "user_hit",
        /// Application-level: a cache/table miss (examples).
        UserMiss => "user_miss",
        /// Application-level: a write/put operation (examples).
        UserPut => "user_put",
    }
}

event_enum! {
    /// A histogrammed value. `*Ns` metrics are durations in [`Clock`]
    /// units (nanoseconds under [`MonoClock`], virtual ticks under
    /// [`TickClock`]); `RetireDepth` is a plain magnitude.
    Metric {
        /// Guard tier: blocking read acquisition latency.
        ReadAcquireNs => "read_acquire_ns",
        /// Guard tier: blocking write acquisition latency.
        WriteAcquireNs => "write_acquire_ns",
        /// Swap: duration of the eager grace scan after an install.
        GraceScanNs => "grace_scan_ns",
        /// Async: latency from the waking release to the granted poll.
        WakeToGrantNs => "wake_to_grant_ns",
        /// Swap: retired-version queue depth observed at install time.
        RetireDepth => "retire_depth",
    }
}

/// The instrumentation hook every tier is generic over.
///
/// Implementations must be cheap and must never block: hook sites sit on
/// lock acquire/release paths (some inside the paper's O(1)-RMR passage
/// argument). [`StatsRecorder`] keeps every write local to the calling
/// pid's cache-padded slot for exactly that reason.
///
/// `ENABLED` is the zero-cost switch: hook sites compile to
/// `if R::ENABLED { … }`, which the no-op recorder const-folds away.
pub trait Recorder: Send + Sync {
    /// Whether this recorder observes anything at all. Hook sites guard
    /// every recording (including `now()` calls) with this constant.
    const ENABLED: bool;

    /// Current time in the recorder's clock units.
    fn now(&self) -> u64;

    /// Adds `n` occurrences of `event` for `pid`.
    fn add(&self, pid: usize, event: Event, n: u64);

    /// Records one sample of `metric` for `pid`.
    fn record(&self, pid: usize, metric: Metric, value: u64);

    /// Counts one occurrence of `event` for `pid`.
    fn count(&self, pid: usize, event: Event) {
        self.add(pid, event, 1);
    }
}

/// The default recorder: observes nothing, compiles to nothing.
///
/// `ENABLED = false` turns every `if R::ENABLED { … }` hook site into
/// dead code, so a `NoopRecorder`-instrumented lock monomorphizes to the
/// exact uninstrumented code path — proven op-for-op on the `Counting`
/// backend by the acceptance tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn now(&self) -> u64 {
        0
    }

    #[inline(always)]
    fn add(&self, _pid: usize, _event: Event, _n: u64) {}

    #[inline(always)]
    fn record(&self, _pid: usize, _metric: Metric, _value: u64) {}
}

impl<R: Recorder> Recorder for &R {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn now(&self) -> u64 {
        (**self).now()
    }

    #[inline]
    fn add(&self, pid: usize, event: Event, n: u64) {
        (**self).add(pid, event, n);
    }

    #[inline]
    fn record(&self, pid: usize, metric: Metric, value: u64) {
        (**self).record(pid, metric, value);
    }
}

impl<R: Recorder> Recorder for Arc<R> {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn now(&self) -> u64 {
        (**self).now()
    }

    #[inline]
    fn add(&self, pid: usize, event: Event, n: u64) {
        (**self).add(pid, event, n);
    }

    #[inline]
    fn record(&self, pid: usize, metric: Metric, value: u64) {
        (**self).record(pid, metric, value);
    }
}

/// One pid's slot: event counters plus one histogram per metric, padded
/// to its own cache lines so recording never shares a line with another
/// pid (the zero-CC-RMR argument for instrumented steady-state reads).
#[repr(align(128))]
struct Slot {
    counters: [AtomicU64; Event::COUNT],
    hists: [Histogram; Metric::COUNT],
}

impl Slot {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

/// The real recorder: per-pid cache-padded counters and histograms, an
/// optional event-trace ring, and a pluggable [`Clock`].
///
/// All internal state is plain `std::sync::atomic` with `Relaxed`
/// orderings — never memory-backend-typed — so attaching a recorder
/// changes no `Counting` tally and no `Sched` schedule. Readers merge
/// per-pid histograms lock-free ([`Histogram::merge_into`]); concurrent
/// recording during a merge may be attributed to either side but is
/// never lost.
pub struct StatsRecorder<C: Clock = MonoClock> {
    clock: C,
    slots: Box<[Slot]>,
    ring: Option<EventRing>,
}

impl StatsRecorder<MonoClock> {
    /// A recorder for pids `0..capacity` over real monotonic time, with
    /// no event ring.
    pub fn new(capacity: usize) -> Self {
        Self::with_clock(capacity, MonoClock::default())
    }
}

impl<C: Clock> StatsRecorder<C> {
    /// A recorder for pids `0..capacity` over an explicit clock
    /// ([`TickClock`] makes traces deterministic under `Sched`).
    pub fn with_clock(capacity: usize, clock: C) -> Self {
        let slots = (0..capacity.max(1)).map(|_| Slot::new()).collect();
        Self { clock, slots, ring: None }
    }

    /// Attaches a bounded event-trace ring of (at least) `capacity`
    /// entries; every subsequent `add`/`record` also pushes a
    /// [`TraceEvent`]. When the ring is full the newest event is dropped
    /// and tallied ([`EventRing::dropped`]) — recording never blocks.
    pub fn with_ring(mut self, capacity: usize) -> Self {
        self.ring = Some(EventRing::new(capacity));
        self
    }

    fn slot(&self, pid: usize) -> &Slot {
        // Out-of-range pids fold onto a slot rather than panic: the
        // recorder is diagnostics, and a transient over-capacity pid
        // (nested guards) must not take the lock down.
        &self.slots[pid % self.slots.len()]
    }

    /// Total count of `event` across all pids.
    pub fn counter(&self, event: Event) -> u64 {
        self.slots.iter().map(|s| s.counters[event as usize].load(Ordering::Relaxed)).sum()
    }

    /// Count of `event` recorded by `pid` alone.
    pub fn counter_for(&self, pid: usize, event: Event) -> u64 {
        self.slot(pid).counters[event as usize].load(Ordering::Relaxed)
    }

    /// Merges every pid's histogram of `metric` into one (lock-free; see
    /// [`Histogram::merge_into`]).
    pub fn histogram(&self, metric: Metric) -> Histogram {
        let merged = Histogram::new();
        for slot in self.slots.iter() {
            slot.hists[metric as usize].merge_into(&merged);
        }
        merged
    }

    /// The `q`-quantile (0.0–1.0) of `metric` across all pids, as the
    /// upper bound of the log bucket holding that rank (0 if empty).
    pub fn quantile(&self, metric: Metric, q: f64) -> u64 {
        self.histogram(metric).quantile(q)
    }

    /// Total samples of `metric` across all pids.
    pub fn samples(&self, metric: Metric) -> u64 {
        self.histogram(metric).count()
    }

    /// The attached event ring, if any.
    pub fn ring(&self) -> Option<&EventRing> {
        self.ring.as_ref()
    }

    /// Drains the event ring into a chronological trace (empty if no
    /// ring is attached).
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        self.ring.as_ref().map(EventRing::drain).unwrap_or_default()
    }

    /// Drains the ring and renders it as Chrome `trace_event` JSON
    /// (load in `chrome://tracing` or Perfetto).
    pub fn chrome_trace(&self) -> String {
        ring::chrome_trace(&self.drain_trace())
    }
}

impl<C: Clock> Recorder for StatsRecorder<C> {
    const ENABLED: bool = true;

    #[inline]
    fn now(&self) -> u64 {
        self.clock.now()
    }

    #[inline]
    fn add(&self, pid: usize, event: Event, n: u64) {
        self.slot(pid).counters[event as usize].fetch_add(n, Ordering::Relaxed);
        if let Some(ring) = &self.ring {
            ring.push(TraceEvent::event(self.clock.now(), pid, event, n));
        }
    }

    #[inline]
    fn record(&self, pid: usize, metric: Metric, value: u64) {
        self.slot(pid).hists[metric as usize].record(value);
        if let Some(ring) = &self.ring {
            ring.push(TraceEvent::metric(self.clock.now(), pid, metric, value));
        }
    }
}

impl<C: Clock> fmt::Debug for StatsRecorder<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StatsRecorder")
            .field("capacity", &self.slots.len())
            .field("ring", &self.ring.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_inert() {
        const { assert!(!NoopRecorder::ENABLED) };
        let r = NoopRecorder;
        r.count(0, Event::ReadAcquire);
        r.record(0, Metric::ReadAcquireNs, 5);
        assert_eq!(r.now(), 0);
    }

    #[test]
    fn counters_tally_per_pid_and_total() {
        let rec = StatsRecorder::new(4);
        rec.count(0, Event::ReadAcquire);
        rec.count(1, Event::ReadAcquire);
        rec.add(1, Event::SpinSteps, 7);
        assert_eq!(rec.counter(Event::ReadAcquire), 2);
        assert_eq!(rec.counter_for(0, Event::ReadAcquire), 1);
        assert_eq!(rec.counter_for(1, Event::SpinSteps), 7);
        assert_eq!(rec.counter(Event::WriteAcquire), 0);
    }

    #[test]
    fn out_of_range_pid_folds_instead_of_panicking() {
        let rec = StatsRecorder::new(2);
        rec.count(7, Event::ReadAcquire); // slot 7 % 2 == 1
        assert_eq!(rec.counter_for(1, Event::ReadAcquire), 1);
    }

    #[test]
    fn quantiles_merge_across_pids() {
        let rec = StatsRecorder::new(4);
        for pid in 0..4 {
            for v in [10u64, 20, 4000] {
                rec.record(pid, Metric::WriteAcquireNs, v);
            }
        }
        assert_eq!(rec.samples(Metric::WriteAcquireNs), 12);
        // p50 lands in the bucket of 20 (16..=31), p99 in that of 4000.
        assert_eq!(rec.quantile(Metric::WriteAcquireNs, 0.5), 31);
        assert_eq!(rec.quantile(Metric::WriteAcquireNs, 0.99), 4095);
    }

    #[test]
    fn ring_records_and_replays_in_order() {
        let rec = StatsRecorder::with_clock(2, TickClock::new()).with_ring(16);
        rec.count(0, Event::AsyncPark);
        rec.count(1, Event::AsyncWake);
        rec.record(0, Metric::WakeToGrantNs, 3);
        let trace = rec.drain_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].name(), "async_park");
        assert_eq!(trace[1].name(), "async_wake");
        assert_eq!(trace[2].name(), "wake_to_grant_ns");
        assert!(trace[0].ts < trace[1].ts && trace[1].ts < trace[2].ts);
        assert_eq!(rec.drain_trace().len(), 0, "drain empties the ring");
    }

    #[test]
    fn chrome_trace_is_json_shaped() {
        let rec = StatsRecorder::new(1).with_ring(8);
        rec.count(0, Event::ReadAcquire);
        let json = rec.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"read_acquire\""));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn recorder_forwards_through_refs_and_arcs() {
        fn generic<R: Recorder>(r: &R) {
            assert!(R::ENABLED);
            r.count(0, Event::UserHit);
        }
        let rec = Arc::new(StatsRecorder::new(2));
        generic(&rec);
        generic(&&*rec);
        assert_eq!(rec.counter(Event::UserHit), 2);
    }
}
