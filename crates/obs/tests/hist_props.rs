//! Seeded property tests for the log-bucketed histogram: recorded
//! quantiles must agree with a sorted-reference oracle bucket-for-bucket
//! and must be exactly invariant under merge order; concurrent merges
//! must lose no samples.
//!
//! `RMR_TEST_SEED` (decimal or 0x-hex) overrides the base seed, matching
//! the workspace's other randomized suites; every failure message prints
//! the concrete seed that produced it.

use rmr_obs::hist::{bucket_high, bucket_of, Histogram};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The workspace's SplitMix64 (re-rolled here: rmr-obs is deliberately
/// dependency-free, test targets included).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn base_seed() -> u64 {
    match std::env::var("RMR_TEST_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            raw.strip_prefix("0x")
                .or_else(|| raw.strip_prefix("0X"))
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| raw.parse())
                .unwrap_or_else(|_| panic!("RMR_TEST_SEED must be a u64, got {raw:?}"))
        }
        Err(_) => 0x0b5_cafe,
    }
}

/// Draws a value whose magnitude spans the full bucket range (uniform
/// bit width, then uniform within the width), so tails are exercised.
fn skewed_value(rng: &mut SplitMix64) -> u64 {
    let width = rng.next_u64() % 64;
    rng.next_u64() >> width
}

/// The oracle: the `⌈q·n⌉`-th smallest sample of the sorted reference,
/// reported at the same log-bucket granularity the histogram uses.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    bucket_high(bucket_of(sorted[rank - 1]))
}

#[test]
fn quantiles_match_sorted_reference_oracle() {
    let base = base_seed();
    for case in 0..50u64 {
        let seed = base ^ (case.wrapping_mul(0x9e37_79b9));
        let mut rng = SplitMix64(seed);
        let n = 1 + (rng.next_u64() % 2000) as usize;
        let hist = Histogram::new();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let v = skewed_value(&mut rng);
            hist.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        assert_eq!(hist.count(), n as u64, "seed {seed:#x}: sample count");
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                hist.quantile(q),
                reference_quantile(&samples, q),
                "seed {seed:#x}: q={q} disagrees with the sorted reference (n={n})"
            );
        }
    }
}

#[test]
fn quantiles_are_invariant_under_merge_order() {
    let base = base_seed() ^ 0x4d45_5247; // "MERG"
    for case in 0..30u64 {
        let seed = base ^ (case.wrapping_mul(0x517c_c1b7_2722_0a95));
        let mut rng = SplitMix64(seed);
        // Partition one sample stream into k shard histograms.
        let k = 2 + (rng.next_u64() % 6) as usize;
        let n = 1 + (rng.next_u64() % 1500) as usize;
        let shards: Vec<Histogram> = (0..k).map(|_| Histogram::new()).collect();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let v = skewed_value(&mut rng);
            shards[(rng.next_u64() % k as u64) as usize].record(v);
            samples.push(v);
        }
        samples.sort_unstable();

        // Merge in declaration order and in a seeded shuffle order; both
        // must agree with each other and with the oracle, exactly.
        let forward = Histogram::new();
        for s in &shards {
            s.merge_into(&forward);
        }
        let mut order: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            order.swap(i, (rng.next_u64() % (i as u64 + 1)) as usize);
        }
        let shuffled = Histogram::new();
        for &i in &order {
            shards[i].merge_into(&shuffled);
        }

        assert_eq!(forward.count(), n as u64, "seed {seed:#x}");
        assert_eq!(shuffled.count(), n as u64, "seed {seed:#x}");
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let expect = reference_quantile(&samples, q);
            assert_eq!(forward.quantile(q), expect, "seed {seed:#x}: q={q} (forward merge)");
            assert_eq!(
                shuffled.quantile(q),
                expect,
                "seed {seed:#x}: q={q} (merge order {order:?})"
            );
        }
    }
}

#[test]
fn concurrent_merges_lose_no_samples() {
    // Writers hammer per-thread histograms while a reader repeatedly
    // merges them; after the dust settles, a final merge must account
    // for every recorded sample (conservation — merge never loses).
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;
    let base = base_seed() ^ 0x57_5245_5353; // "WRESS"
    let shards: Arc<Vec<Histogram>> = Arc::new((0..WRITERS).map(|_| Histogram::new()).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let shards = Arc::clone(&shards);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut merges = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let scratch = Histogram::new();
                for s in shards.iter() {
                    s.merge_into(&scratch);
                }
                // Mid-run snapshots must never over-count.
                assert!(scratch.count() <= WRITERS as u64 * PER_WRITER);
                merges += 1;
            }
            merges
        })
    };

    let mut writers = Vec::new();
    for t in 0..WRITERS {
        let shards = Arc::clone(&shards);
        let seed = base ^ (t as u64) << 32;
        writers.push(std::thread::spawn(move || {
            let mut rng = SplitMix64(seed);
            for _ in 0..PER_WRITER {
                shards[t].record(skewed_value(&mut rng));
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let merges = reader.join().unwrap();
    assert!(merges > 0, "the merging reader never ran");

    let total = Histogram::new();
    for s in shards.iter() {
        s.merge_into(&total);
    }
    assert_eq!(
        total.count(),
        WRITERS as u64 * PER_WRITER,
        "samples lost under concurrent record/merge (seed base {base:#x})"
    );
}
