//! Native-backend behavior of `AsyncRwLock`: parking, wake-on-release,
//! cancel-safety, the Bravo zero-inner-op composition, and the blocking
//! writer endpoint. (Schedule-exhaustive coverage of the same protocol
//! lives in `rmr-check`'s async battery.)

use rmr_async::exec::block_on;
use rmr_async::AsyncRwLock;
use rmr_baselines::TicketRwLock;
use rmr_bravo::Bravo;
use rmr_core::mwmr::MwmrStarvationFree;
use rmr_mutex::mem::{self, Counting};
use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;

fn ticket_lock(value: u64) -> AsyncRwLock<u64, TicketRwLock> {
    AsyncRwLock::with_raw(value, TicketRwLock::new(8))
}

/// Polls `future` exactly once with a throwaway waker.
fn poll_once<F: Future>(future: Pin<&mut F>) -> Poll<F::Output> {
    let waker = rmr_async::exec::parker_waker(Arc::new(rmr_async::ThreadParker::current()));
    future.poll(&mut Context::from_waker(&waker))
}
use std::pin::Pin;

#[test]
fn uncontended_read_write_round_trip() {
    let lock = ticket_lock(0);
    block_on(async {
        *lock.write().await += 5;
        assert_eq!(*lock.read().await, 5);
    });
    assert!(lock.is_quiescent());
    assert_eq!(lock.wakeups(), 0, "uncontended passages must not scan or wake");
}

#[test]
fn concurrent_mixed_traffic_loses_no_updates() {
    let lock = Arc::new(ticket_lock(0));
    let mut threads = Vec::new();
    for _ in 0..4 {
        let lock = Arc::clone(&lock);
        threads.push(std::thread::spawn(move || {
            block_on(async {
                for i in 0..200u64 {
                    if i % 4 == 0 {
                        *lock.write().await += 1;
                    } else {
                        let _ = *lock.read().await;
                    }
                }
            })
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    block_on(async { assert_eq!(*lock.read().await, 200) });
    assert!(lock.is_quiescent());
}

#[test]
fn writer_exit_wakes_parked_reader() {
    let lock = Arc::new(ticket_lock(7));
    let wg = block_on(lock.write());
    let reader_done = Arc::new(AtomicBool::new(false));

    let l2 = Arc::clone(&lock);
    let done2 = Arc::clone(&reader_done);
    let reader = std::thread::spawn(move || {
        block_on(async {
            let g = l2.read().await;
            assert_eq!(*g, 7);
            done2.store(true, Ordering::SeqCst);
        })
    });

    // The reader must park, not spin: wait for the registration to land.
    let mut waited = 0;
    while lock.parked_readers() == 0 && waited < 2_000 {
        std::thread::sleep(Duration::from_millis(1));
        waited += 1;
    }
    assert_eq!(lock.parked_readers(), 1, "reader did not park behind the writer");
    assert!(!reader_done.load(Ordering::SeqCst));

    drop(wg); // wakes the parked reader
    reader.join().unwrap();
    assert!(reader_done.load(Ordering::SeqCst));
    assert!(lock.wakeups() >= 1, "the release path must have delivered the wake-up");
    assert!(lock.is_quiescent());
}

#[test]
fn last_reader_exit_wakes_parked_writer() {
    let lock = Arc::new(ticket_lock(0));
    let r1 = block_on(lock.read());
    let r2 = block_on(lock.read());

    let l2 = Arc::clone(&lock);
    let writer = std::thread::spawn(move || {
        block_on(async {
            *l2.write().await += 1;
        })
    });
    let mut waited = 0;
    while lock.parked_writers() == 0 && waited < 2_000 {
        std::thread::sleep(Duration::from_millis(1));
        waited += 1;
    }
    assert_eq!(lock.parked_writers(), 1, "writer did not park behind the readers");

    drop(r1); // not the last reader: no wake needed
    drop(r2); // last reader out: wakes the writer
    writer.join().unwrap();
    assert!(lock.is_quiescent());
    block_on(async { assert_eq!(*lock.read().await, 1) });
}

#[test]
fn dropped_pending_future_unwinds_completely() {
    let lock = ticket_lock(0);
    let wg = block_on(lock.write());
    {
        let mut fut = pin!(lock.read());
        assert!(poll_once(fut.as_mut()).is_pending());
        assert_eq!(lock.parked_readers(), 1);
        assert_eq!(lock.registered(), 2, "writer guard + pending reader");
        // `fut` dropped here, mid-acquisition.
    }
    assert_eq!(lock.parked_readers(), 0, "cancelled future left its waker slot pinned");
    assert_eq!(lock.registered(), 1, "cancelled future left its pid pinned");
    drop(wg);
    assert!(lock.is_quiescent());
}

#[test]
fn dropped_unpolled_future_is_free() {
    let lock = ticket_lock(0);
    drop(lock.read());
    drop(lock.write());
    assert!(lock.is_quiescent());
}

#[test]
fn try_tier_is_bounded() {
    let lock = ticket_lock(3);
    let g = lock.try_read().expect("uncontended try_read");
    assert_eq!(*g, 3);
    drop(g);
    let w = lock.try_write().expect("uncontended try_write");
    drop(w);
    let r = block_on(lock.read());
    assert!(lock.try_write().is_none(), "try_write must fail under a read session, not wait");
    drop(r);
    assert!(lock.is_quiescent());
}

#[test]
#[allow(deprecated)]
fn write_blocking_serves_locks_without_a_try_tier() {
    // Fig. 3 has no doorway (`RawParkedWaiters`), so `write().await` does
    // not compile on it — the deprecated `write_blocking` remains the
    // writer endpoint there, and its release must wake parked async
    // readers.
    let lock = Arc::new(AsyncRwLock::with_raw(0u64, MwmrStarvationFree::new(8)));
    let wg = lock.write_blocking();
    let l2 = Arc::clone(&lock);
    let reader = std::thread::spawn(move || block_on(async { *l2.read().await }));
    let mut waited = 0;
    while lock.parked_readers() == 0 && waited < 2_000 {
        std::thread::sleep(Duration::from_millis(1));
        waited += 1;
    }
    assert_eq!(lock.parked_readers(), 1);
    drop(wg);
    assert_eq!(reader.join().unwrap(), 0);
    assert!(lock.is_quiescent());
}

#[test]
fn bravo_fast_path_readers_stay_zero_inner_op() {
    // Inner lock over `Counting`, everything else `Native`: the thread
    // tally then counts only inner-lock operations, and a biased async
    // read passage must score zero — parking adds nothing to the inner
    // lock's traffic.
    let lock: AsyncRwLock<u64, Bravo<TicketRwLock<Counting>>> =
        AsyncRwLock::with_raw_and_capacity(0, Bravo::new(TicketRwLock::new_in(8, Counting)), 8);
    mem::set_thread_slot(1);
    block_on(async {
        let _ = *lock.read().await; // warm-up
    });
    mem::reset_thread_tally();
    block_on(async {
        for _ in 0..50 {
            let _ = *lock.read().await;
        }
    });
    let tally = mem::thread_tally();
    assert_eq!(tally.ops, 0, "biased async read passages touched the inner lock: {tally:?}");
    assert!(lock.is_quiescent());
}

#[test]
fn bravo_wrapped_async_write_revokes_and_recovers() {
    let lock =
        Arc::new(AsyncRwLock::with_raw_and_capacity(0u64, Bravo::new(TicketRwLock::new(8)), 8));
    let mut threads = Vec::new();
    for _ in 0..4 {
        let lock = Arc::clone(&lock);
        threads.push(std::thread::spawn(move || {
            block_on(async {
                for i in 0..100u64 {
                    if i % 10 == 0 {
                        *lock.write().await += 1;
                    } else {
                        let _ = *lock.read().await;
                    }
                }
            })
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    block_on(async { assert_eq!(*lock.read().await, 40) });
    assert!(lock.is_quiescent());
    assert!(lock.raw().is_quiescent(), "visible-readers table must drain");
}

#[test]
#[should_panic(expected = "polled after completion")]
fn polling_a_completed_future_panics() {
    let lock = ticket_lock(0);
    let mut fut = pin!(lock.read());
    let Poll::Ready(guard) = poll_once(fut.as_mut()) else {
        panic!("uncontended read must be ready");
    };
    drop(guard);
    let _ = poll_once(fut.as_mut());
}

#[test]
#[should_panic(expected = "cannot lease a pid")]
fn capacity_exhaustion_panics_with_guidance() {
    let lock = AsyncRwLock::with_raw_and_capacity(0u8, TicketRwLock::new(8), 1);
    let _g = block_on(lock.read());
    let _ = block_on(lock.read()); // second concurrent acquisition: no pid left
}

#[test]
fn guards_are_send() {
    // The async guards own their pid outright, so they may cross threads
    // (unlike the sync guards, whose pids are thread-leased). Compile-time
    // probe: these calls only resolve if the types are Send.
    fn assert_send<T: Send>(_: &T) {}
    let lock = ticket_lock(0);
    let g = block_on(lock.read());
    assert_send(&g);
    drop(g);
    let g = block_on(lock.write());
    assert_send(&g);
}

#[test]
fn recorder_sees_parks_wakes_grants_and_cancels() {
    use rmr_obs::{Event, Metric, StatsRecorder};
    let rec = Arc::new(StatsRecorder::new(8));
    let lock =
        Arc::new(AsyncRwLock::with_raw(0u64, TicketRwLock::new(8)).with_recorder(Arc::clone(&rec)));

    // Uncontended passages: acquire/release counts and latency samples,
    // no parks, no wakes.
    block_on(async {
        *lock.write().await += 1;
        assert_eq!(*lock.read().await, 1);
    });
    assert_eq!(rec.counter(Event::WriteAcquire), 1);
    assert_eq!(rec.counter(Event::WriteRelease), 1);
    assert_eq!(rec.counter(Event::ReadAcquire), 1);
    assert_eq!(rec.counter(Event::ReadRelease), 1);
    assert_eq!(rec.samples(Metric::WriteAcquireNs), 1);
    assert_eq!(rec.counter(Event::AsyncPark), 0);
    assert_eq!(rec.counter(Event::AsyncWake), 0);

    // A reader parked behind a held writer: park, then wake + grant with
    // a wake-to-grant latency sample.
    let wg = block_on(lock.write());
    let l2 = Arc::clone(&lock);
    let reader = std::thread::spawn(move || block_on(async { *l2.read().await }));
    let mut waited = 0;
    while lock.parked_readers() == 0 && waited < 2_000 {
        std::thread::sleep(Duration::from_millis(1));
        waited += 1;
    }
    assert_eq!(lock.parked_readers(), 1);
    assert!(rec.counter(Event::AsyncPark) >= 1, "the parked reader must be counted");
    drop(wg);
    assert_eq!(reader.join().unwrap(), 1);
    assert!(rec.counter(Event::AsyncWake) >= 1, "the write release woke the reader");
    assert_eq!(rec.samples(Metric::WakeToGrantNs), 1, "one parked grant, one latency sample");

    // A cancelled pending future is an AsyncCancel, not an acquire.
    let wg = block_on(lock.write());
    {
        let mut fut = pin!(lock.read());
        assert!(poll_once(fut.as_mut()).is_pending());
    }
    drop(wg);
    assert_eq!(rec.counter(Event::AsyncCancel), 1);
    assert!(lock.is_quiescent());
}

#[test]
fn debug_formats() {
    let lock = ticket_lock(9);
    assert!(format!("{lock:?}").contains("AsyncRwLock"));
    let fut = lock.read();
    assert!(format!("{fut:?}").contains("AsyncRead"));
    drop(fut);
    block_on(async {
        let g = lock.read().await;
        assert_eq!(format!("{g:?}"), "AsyncReadGuard(9)");
        drop(g);
        let g = lock.write().await;
        assert_eq!(format!("{g:?}"), "AsyncWriteGuard(9)");
    });
}
