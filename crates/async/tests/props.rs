//! Seeded randomized properties for the doorway/token lifecycle and the
//! intrusive waiter list.
//!
//! Two families, both driven by a splitmix-style generator so every trial
//! is replayable: the *token lifecycle* properties pin the
//! `RawParkedWaiters` contract at the `AsyncRwLock` boundary (a cancelled
//! `write()` future — dropped at a random poll depth — must revoke its
//! doorway so completely that readers and a successor writer proceed as
//! if it never existed, while a *leaked* guard must keep its pid and its
//! raw-lock hold pinned forever), and the *intrusive list* properties
//! stress `WakerTable`'s FIFO against a `VecDeque` reference model.
//!
//! `RMR_TEST_SEED` (decimal or 0x-hex) overrides the base seed, matching
//! the workspace's other randomized suites; every assertion carries the
//! trial seed so a failure replays exactly.

use rmr_async::exec::block_on;
use rmr_async::park::{WaitKind, WakerTable};
use rmr_async::AsyncRwLock;
use rmr_baselines::TicketRwLock;
use rmr_core::raw::{RawParkedWaiters, RawTryReadLock};
use rmr_core::swmr::SwmrWriterPriority;
use rmr_mutex::mem::Native;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

fn base_seed() -> u64 {
    match std::env::var("RMR_TEST_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            raw.strip_prefix("0x")
                .or_else(|| raw.strip_prefix("0X"))
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| raw.parse())
                .unwrap_or_else(|_| panic!("RMR_TEST_SEED must be a u64, got {raw:?}"))
        }
        Err(_) => 0x0d00_d0a7,
    }
}

/// splitmix64: tiny, dependency-free, and full-period — the same
/// generator family the checker's schedule sampler uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Polls `future` exactly once with a throwaway waker.
fn poll_once<F: Future>(future: std::pin::Pin<&mut F>) -> Poll<F::Output> {
    let waker = rmr_async::exec::parker_waker(Arc::new(rmr_async::ThreadParker::current()));
    future.poll(&mut Context::from_waker(&waker))
}

/// The token-lifecycle property over one lock: under `readers` held read
/// guards, a `write()` future polled `polls` times parks (drawing its
/// doorway token); dropping it must revoke the token so that (a) no
/// writer stays announced, (b) only the guards' pids stay leased, (c) a
/// reader admitted *after* the cancel is not blocked by a ghost doorway,
/// and (d) a successor `write().await` completes.
fn cancelled_write_revokes_its_token<L>(lock: &AsyncRwLock<u64, L>, readers: usize, polls: usize)
where
    L: RawTryReadLock + RawParkedWaiters,
{
    let guards: Vec<_> = (0..readers).map(|_| block_on(lock.read())).collect();
    {
        let mut fut = pin!(lock.write());
        for _ in 0..polls {
            assert!(
                poll_once(fut.as_mut()).is_pending(),
                "write must park under {readers} read guards"
            );
        }
        assert_eq!(lock.parked_writers(), 1, "the polled writer must be announced");
        // `fut` dropped here: the doorway is cancelled mid-token.
    }
    assert_eq!(lock.parked_writers(), 0, "cancelled write left its announce behind");
    assert_eq!(lock.registered(), readers, "cancelled write left its pid leased");
    // While the admitted readers are still inside, the cancelled token is
    // a *zombie*: deferred, still holding its queue position (that is the
    // fairness contract — cancel must not reorder the queue). Readers
    // arriving now queue behind it exactly as behind a live writer.
    drop(guards);
    // Once the in-flight sessions exit, the exit paths' zombie checks
    // (TK-ZCHECK / F1's helping scan) retire the abandoned token without
    // any live writer adopting it. A bounded number of reader attempts —
    // each may perform the helping — must then get through; an attempt
    // that *never* succeeds is a leaked token.
    let mut cleared = false;
    for _ in 0..4 {
        if let Some(late) = lock.try_read() {
            drop(late);
            cleared = true;
            break;
        }
    }
    assert!(cleared, "cancelled doorway still blocks readers after the session drained");
    assert!(lock.is_quiescent(), "cancel must drain to quiescence");
    block_on(async {
        *lock.write().await += 1;
    });
    assert!(lock.is_quiescent());
}

#[test]
fn cancelled_write_futures_never_leak_a_token() {
    let seed = base_seed();
    for trial in 0..64u64 {
        let mut rng = Rng(seed ^ (trial.wrapping_mul(0x9e37_79b9)));
        let readers = 1 + rng.below(3) as usize;
        let polls = 1 + rng.below(4) as usize;
        // Ticket: the doorway token is a drawn ticket (conditional try
        // tier). Fig. 1: the doorway is the paper's registered writer
        // (zombie-cancel protocol). Both must revoke cleanly.
        let ticket = AsyncRwLock::with_raw(0u64, TicketRwLock::new(8));
        cancelled_write_revokes_its_token(&ticket, readers, polls);
        let fig1 = AsyncRwLock::with_raw_and_capacity(0u64, SwmrWriterPriority::<Native>::new(), 8);
        cancelled_write_revokes_its_token(&fig1, readers, polls);
    }
}

#[test]
fn leaked_guards_still_pin_their_pids() {
    let seed = base_seed();
    for trial in 0..32u64 {
        let mut rng = Rng(seed ^ (trial.wrapping_mul(0x517c_c1b7)));
        let leaked = 1 + rng.below(3) as usize;
        let lock = AsyncRwLock::with_raw(0u64, TicketRwLock::new(8));
        for _ in 0..leaked {
            std::mem::forget(block_on(lock.read()));
        }
        assert_eq!(
            lock.registered(),
            leaked,
            "a forgotten guard must keep its pid leased (seed {seed:#x}, trial {trial})"
        );
        assert!(!lock.is_quiescent(), "leaked guards must keep the lock non-quiescent");
        assert!(
            lock.try_write().is_none(),
            "a forgotten read guard must keep the raw lock held (seed {seed:#x}, trial {trial})"
        );
        // Readers can still share the session; their pids recycle.
        let before = lock.registered();
        drop(lock.try_read().expect("read-sharing must survive leaked read guards"));
        assert_eq!(lock.registered(), before);
    }
}

/// One reference-model step: the table and a `VecDeque` of
/// `(pid, kind)` entries must agree on FIFO order after every operation.
struct Model {
    fifo: VecDeque<(usize, WaitKind)>,
}

impl Model {
    fn order(&self) -> Vec<usize> {
        self.fifo.iter().map(|&(pid, _)| pid).collect()
    }

    fn contains(&self, pid: usize) -> Option<WaitKind> {
        self.fifo.iter().find(|&&(p, _)| p == pid).map(|&(_, k)| k)
    }

    fn remove(&mut self, pid: usize) {
        self.fifo.retain(|&(p, _)| p != pid);
    }

    fn drain(&mut self, readers: bool, writers: bool) -> usize {
        let before = self.fifo.len();
        self.fifo.retain(|&(_, k)| match k {
            WaitKind::Reader => !readers,
            WaitKind::Writer => !writers,
        });
        before - self.fifo.len()
    }
}

struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

#[test]
fn intrusive_list_matches_the_reference_model() {
    const CAPACITY: usize = 16;
    const OPS: usize = 400;
    let seed = base_seed();
    for trial in 0..16u64 {
        let mut rng = Rng(seed ^ (trial.wrapping_mul(0xff51_afd7)));
        let table: WakerTable<Native> = WakerTable::new(CAPACITY);
        let mut model = Model { fifo: VecDeque::new() };
        let waker = Waker::from(Arc::new(NoopWake));
        for op in 0..OPS {
            let ctx = format!("seed {seed:#x}, trial {trial}, op {op}");
            match rng.below(10) {
                // Register (or refresh) dominates: it is the only op that
                // grows the list, and refreshes must keep their position.
                0..=5 => {
                    let pid = rng.below(CAPACITY as u64) as usize;
                    // A pid already parked keeps its kind (the single-
                    // owner contract forbids switching sides mid-park).
                    let kind = model.contains(pid).unwrap_or(if rng.below(2) == 0 {
                        WaitKind::Reader
                    } else {
                        WaitKind::Writer
                    });
                    let was_parked = model.contains(pid).is_some();
                    table.register(pid, kind, &waker);
                    if !was_parked {
                        model.fifo.push_back((pid, kind));
                    }
                }
                6..=7 => {
                    let pid = rng.below(CAPACITY as u64) as usize;
                    table.deregister(pid);
                    model.remove(pid);
                }
                8 => {
                    let woken = table.wake_writers();
                    assert_eq!(woken, model.drain(false, true), "wake_writers count ({ctx})");
                }
                _ => {
                    let woken = if rng.below(2) == 0 {
                        let woken = table.wake_readers();
                        assert_eq!(woken, model.drain(true, false), "wake_readers count ({ctx})");
                        woken
                    } else {
                        let woken = table.wake_all();
                        assert_eq!(woken, model.drain(true, true), "wake_all count ({ctx})");
                        woken
                    };
                    let _ = woken;
                }
            }
            assert_eq!(table.parked_fifo(), model.order(), "FIFO order diverged ({ctx})");
            let readers = model.fifo.iter().filter(|&&(_, k)| k == WaitKind::Reader).count();
            let writers = model.fifo.len() - readers;
            assert_eq!(
                (table.parked_readers(), table.parked_writers()),
                (readers, writers),
                "parked counts diverged ({ctx})"
            );
        }
        // Drain and verify the table forgets everything.
        for pid in 0..CAPACITY {
            table.deregister(pid);
        }
        assert_eq!(table.parked_fifo(), Vec::<usize>::new());
        assert_eq!((table.parked_readers(), table.parked_writers()), (0, 0));
    }
}

/// Concurrent stress: owner threads park/cancel their own pid at random
/// while a releaser thread sweeps `wake_all`. The table must never
/// deliver more wake-ups than registrations, and must drain to empty
/// once every owner deregisters — the cancel/unlink race in its
/// schedule-exhaustive form lives in `rmr-check`'s async battery; this
/// is the long random soak over real threads.
#[test]
fn intrusive_list_survives_concurrent_cancel_vs_wake() {
    const OWNERS: usize = 4;
    const ROUNDS: usize = 300;
    let seed = base_seed();
    let table: Arc<WakerTable<Native>> = Arc::new(WakerTable::new(OWNERS));
    let registrations = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    for pid in 0..OWNERS {
        let table = Arc::clone(&table);
        let registrations = Arc::clone(&registrations);
        threads.push(std::thread::spawn(move || {
            let mut rng = Rng(seed ^ (pid as u64).wrapping_mul(0xc2b2_ae35));
            let waker = Waker::from(Arc::new(NoopWake));
            for _ in 0..ROUNDS {
                let kind = if rng.below(2) == 0 { WaitKind::Reader } else { WaitKind::Writer };
                table.register(pid, kind, &waker);
                registrations.fetch_add(1, Ordering::SeqCst);
                if rng.below(2) == 0 {
                    std::thread::yield_now();
                }
                table.deregister(pid);
            }
        }));
    }
    {
        let table = Arc::clone(&table);
        threads.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS * 2 {
                table.wake_all();
                std::thread::yield_now();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(table.parked_fifo(), Vec::<usize>::new(), "soak must drain the FIFO");
    assert_eq!((table.parked_readers(), table.parked_writers()), (0, 0));
    assert!(
        table.wakeups() <= registrations.load(Ordering::SeqCst),
        "more deliveries than registrations (seed {seed:#x})"
    );
}
