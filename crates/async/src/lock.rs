//! [`AsyncRwLock`] — the typed, waker-parking front end.
//!
//! # How parking composes with the raw locks
//!
//! The raw locks block by *spinning*; a service tier cannot burn a core
//! per waiter. This module converts every futile-spin point into
//! `Poll::Pending` **without re-entering the locks' blocking paths at
//! all**: an acquisition attempt is one bounded call into the lock's
//! non-blocking tier ([`RawTryReadLock`] / [`RawTryRwLock`]), whose
//! failure path retires through the ordinary exit section — so a pending
//! future holds *no* lock state between polls, which is what makes
//! dropping it mid-acquisition (future cancellation) safe by
//! construction: the doorway announcement was already unwound inside the
//! failed attempt.
//!
//! A failed attempt parks the task's waker in the per-pid
//! [`WakerTable`] and **retries once** before returning `Pending` — the
//! retry is the lost-wakeup linchpin (see the protocol argument below).
//! Wake-ups ride the release paths:
//!
//! * a write guard drop wakes every parked future (readers and writers —
//!   who may actually proceed is the raw lock's policy, and losers simply
//!   re-park);
//! * the last read guard drop also wakes everyone: almost always that
//!   means parked writers, but a reader can transiently park behind
//!   another *reader* (a raw read entry is not atomic — e.g. the ticket
//!   lock's drawn-ticket-to-grant-bump window — and an attempt failing
//!   inside that window parks), so a completed read entry additionally
//!   re-polls parked readers. The model-checked battery caught exactly
//!   this reader-parked-behind-reader stranding in an earlier version
//!   that woke only writers;
//! * a Bravo-wrapped lock's fast-path readers stay zero-inner-op: the
//!   async layer touches only its own counters and table, never the
//!   inner lock.
//!
//! # Why no wake-up is lost
//!
//! A future parks only after the sequence *attempt fails → register waker
//! → attempt fails again*. The parked-count announce in the registration
//! and the release paths' scan-skip checks are SeqCst (sites AS-ANNOUNCE
//! and AS-COUNT, DESIGN.md §13), so when the second attempt fails some
//! holder `H` exists at that point; `H`'s release runs strictly later,
//! and its wake scan therefore observes the registration.
//! Any *other* failed attempt leaves the lock state untouched (the try
//! tier is abortable), so "holder exists" is the only way an attempt can
//! fail — the wake-delivering release is always still in the future when
//! a future parks. Spurious wake-ups (thundering herd on writer exit,
//! stale wakers) merely cause a re-poll that re-parks.
//!
//! Liveness is per-release, not per-class: because a pending future has
//! no queue presence in the raw lock, anti-starvation policies that rely
//! on standing in line (ticket FIFO, Figure 4's writer priority) do not
//! protect an *awaiting* writer — continuously overlapping read sessions
//! can keep `write().await` parked indefinitely (each wake-up's retry
//! finds the lock read-held). Where that matters, take the writer
//! through [`AsyncRwLock::write_blocking`] (a real queue entry) or bound
//! reader overlap.
//!
//! # Writers on locks without a try tier
//!
//! The paper's core locks deliberately do not implement [`RawTryRwLock`]
//! (their writer doorway is irrevocable), so `write().await` is a compile
//! error on them — exactly like the typed [`RwLock`]'s capability gating.
//! [`AsyncRwLock::write_blocking`] is the escape hatch: a *blocking*
//! writer acquisition (intended for a dedicated writer thread or a
//! `spawn_blocking`-style offload) whose release still wakes parked
//! async readers. Its spin loops run under a
//! [`park hint`](rmr_mutex::spin::with_park_hint) that yields the core
//! from the first futile iteration, so a blocking writer stranded on an
//! executor thread degrades politely instead of burning hot.
//!
//! [`RawTryReadLock`]: rmr_core::raw::RawTryReadLock
//! [`RawTryRwLock`]: rmr_core::raw::RawTryRwLock
//! [`RwLock`]: rmr_core::rwlock::RwLock
//! [`WakerTable`]: crate::park::WakerTable

use crate::park::{WaitKind, WakerTable};
use rmr_core::raw::{RawMultiWriter, RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::{Pid, PidRegistry};
use rmr_mutex::mem::{Backend, Native, Ordering as MemOrdering, SharedWord};
use rmr_mutex::{spin, CachePadded};
use rmr_obs::{Event, Metric, NoopRecorder, Recorder};
use std::cell::UnsafeCell;
use std::fmt;
use std::future::Future;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::task::{Context, Poll};

/// An async reader-writer lock over any raw lock `L`, generic over the
/// memory backend `B` of its own parking state (the raw lock keeps
/// whatever backend it was built with).
///
/// `read().await` suits services that must not burn a core per waiter;
/// the cost model is spelled out in DESIGN.md §11 (parking trades the
/// paper's RMR-bounded spinning for wake-up latency and an O(capacity)
/// release-path scan *when waiters exist*).
///
/// Each acquisition leases a [`Pid`] from the lock's registry for exactly
/// the guard's (or pending future's) lifetime, so futures may migrate
/// threads freely — there is no thread-local leasing here.
///
/// # Example
///
/// ```
/// use rmr_async::exec::block_on;
/// use rmr_async::AsyncRwLock;
/// use rmr_baselines::TicketRwLock;
///
/// let lock = AsyncRwLock::with_raw(0u64, TicketRwLock::new(4));
/// block_on(async {
///     *lock.write().await += 1;
///     assert_eq!(*lock.read().await, 1);
/// });
/// ```
pub struct AsyncRwLock<T: ?Sized, L, B: Backend = Native, R: Recorder = NoopRecorder> {
    raw: L,
    registry: PidRegistry,
    table: WakerTable<B>,
    /// Currently held async read guards; the 1 → 0 transition wakes
    /// parked writers.
    readers: CachePadded<B::Word>,
    /// Passages reported here; inert by default ([`AsyncRwLock::with_recorder`]).
    recorder: R,
    /// `recorder.now()` at the latest wake scan — the subtrahend for
    /// [`Metric::WakeToGrantNs`]. A plain `std` atomic (never `B`-typed):
    /// recorder-private state must stay invisible to the `Counting`
    /// backend and the `Sched` explorer alike.
    wake_ts: CachePadded<AtomicU64>,
    data: UnsafeCell<T>,
}

// SAFETY: same argument as `rmr_core::rwlock::RwLock` — the raw lock
// guarantees `&mut T` never coexists with any other access and `&T` only
// with other `&T`; the parking layer never hands out access, it only
// schedules retries.
unsafe impl<T: ?Sized + Send, L: RawRwLock, B: Backend, R: Recorder> Send
    for AsyncRwLock<T, L, B, R>
{
}
unsafe impl<T: ?Sized + Send + Sync, L: RawRwLock, B: Backend, R: Recorder> Sync
    for AsyncRwLock<T, L, B, R>
{
}

impl<T, L: RawRwLock> AsyncRwLock<T, L> {
    /// Wraps `value` behind `raw` over the [`Native`] backend, sizing the
    /// pid registry and waker table to `raw.max_processes()`.
    ///
    /// # Panics
    ///
    /// Panics if the raw lock reports an unbounded process count
    /// (`usize::MAX`) — use [`AsyncRwLock::with_raw_and_capacity`].
    pub fn with_raw(value: T, raw: L) -> Self {
        Self::with_raw_in(value, raw, Native)
    }

    /// Wraps `value` behind `raw` over [`Native`] with an explicit
    /// capacity — the maximum number of *concurrent* acquisitions
    /// (pending futures plus held guards).
    pub fn with_raw_and_capacity(value: T, raw: L, capacity: usize) -> Self {
        Self::with_raw_and_capacity_in(value, raw, capacity, Native)
    }
}

impl<T, L: RawRwLock, B: Backend> AsyncRwLock<T, L, B> {
    /// Like [`AsyncRwLock::with_raw`], with the parking state (waker
    /// table, reader counter) over an explicit backend — `Sched` is what
    /// lets `rmr-check` model-check the parking protocol on this very
    /// code.
    pub fn with_raw_in(value: T, raw: L, backend: B) -> Self {
        let cap = raw.max_processes();
        assert!(cap != usize::MAX, "raw lock has no process bound; use with_raw_and_capacity");
        Self::with_raw_and_capacity_in(value, raw, cap, backend)
    }

    /// Like [`AsyncRwLock::with_raw_and_capacity`], over an explicit
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `raw.max_processes()`.
    pub fn with_raw_and_capacity_in(value: T, raw: L, capacity: usize, _backend: B) -> Self {
        assert!(
            capacity <= raw.max_processes(),
            "capacity {capacity} exceeds the raw lock's bound {}",
            raw.max_processes()
        );
        Self {
            raw,
            registry: PidRegistry::new(capacity),
            table: WakerTable::new(capacity),
            readers: CachePadded::new(B::Word::new(0)),
            recorder: NoopRecorder,
            wake_ts: CachePadded::new(AtomicU64::new(0)),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T, L: RawRwLock, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// Re-types the lock to report every passage — acquires, releases,
    /// parks, wakes, cancellations, wake-to-grant latency — to
    /// `recorder`. Pass an `Arc<StatsRecorder>` and keep a clone for
    /// reading; with the default [`NoopRecorder`] every hook const-folds
    /// away.
    pub fn with_recorder<R2: Recorder>(self, recorder: R2) -> AsyncRwLock<T, L, B, R2> {
        let Self { raw, registry, table, readers, recorder: _, wake_ts, data } = self;
        AsyncRwLock { raw, registry, table, readers, recorder, wake_ts, data }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// The underlying raw lock.
    pub fn raw(&self) -> &L {
        &self.raw
    }

    /// The recorder passages are reported to.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access without locking — safe because `&mut self` proves
    /// exclusive ownership.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Maximum number of concurrent acquisitions (pids / waker slots).
    pub fn max_processes(&self) -> usize {
        self.registry.capacity()
    }

    /// Pids currently leased to guards or pending futures (approximate
    /// under concurrency). Checker entry point: zero once every future
    /// and guard is gone.
    pub fn registered(&self) -> usize {
        self.registry.allocated()
    }

    /// Read futures currently parked (approximate under concurrency).
    pub fn parked_readers(&self) -> usize {
        self.table.parked_readers()
    }

    /// Write futures currently parked (approximate under concurrency).
    pub fn parked_writers(&self) -> usize {
        self.table.parked_writers()
    }

    /// Async read guards currently held (approximate under concurrency).
    pub fn reading(&self) -> usize {
        // Diagnostic snapshot only.
        self.readers.load(MemOrdering::Relaxed) as usize
    }

    /// Wake-ups delivered by the release paths so far (diagnostics).
    pub fn wakeups(&self) -> u64 {
        self.table.wakeups()
    }

    /// Checker entry point: nothing parked, nothing held, no pid leased.
    /// Combine with the raw lock's own `is_quiescent` where one exists.
    pub fn is_quiescent(&self) -> bool {
        self.table.parked_readers() == 0
            && self.table.parked_writers() == 0
            && self.readers.load(MemOrdering::Relaxed) == 0
            && self.registry.allocated() == 0
    }

    fn allocate_pid(&self) -> Pid {
        self.registry.allocate().unwrap_or_else(|e| {
            panic!(
                "cannot lease a pid for an async acquisition: {e}; size the capacity to the \
                 maximum number of concurrent acquisitions (pending futures + held guards)"
            )
        })
    }

    fn finish_read(&self, pid: Pid, token: L::ReadToken) -> AsyncReadGuard<'_, T, L, B, R> {
        // SeqCst: this counter's 1 → 0 edge (in the guard drop) gates a
        // wake_all scan, the same lost-wakeup square as AS-COUNT; keep
        // both ends of the guard count in the total order.
        self.readers.fetch_add(1, MemOrdering::SeqCst);
        // A raw read *entry* is not atomic (e.g. the ticket lock's
        // drawn-ticket-to-grant-bump window), and a concurrent reader's
        // attempt failing inside that window parks it behind *us* — a
        // reader. The window is closed now, so re-poll any parked
        // readers; the common case is one load of a zero counter.
        if self.table.parked_readers() > 0 {
            self.wake_scan(pid.index(), WakerTable::wake_readers);
        }
        AsyncReadGuard { lock: self, pid, token: Some(token) }
    }

    fn finish_write(&self, pid: Pid, token: L::WriteToken) -> AsyncWriteGuard<'_, T, L, B, R> {
        AsyncWriteGuard { lock: self, pid, token: Some(token) }
    }

    /// Runs one wake scan, stamping [`Self::wake_ts`] first (so a woken
    /// future can attribute its grant) and crediting the delivered
    /// wake-ups to `pid`.
    fn wake_scan(&self, pid: usize, scan: impl FnOnce(&WakerTable<B>) -> usize) {
        if R::ENABLED {
            self.wake_ts.store(self.recorder.now(), StdOrdering::Relaxed);
        }
        let woken = scan(&self.table);
        if R::ENABLED && woken > 0 {
            self.recorder.add(pid, Event::AsyncWake, woken as u64);
        }
    }

    /// Records one granted (future-completing) acquisition: the acquire
    /// event, its latency since the future's first poll, and — when the
    /// future had parked — the wake-to-grant latency.
    fn grant_obs(&self, pid: usize, write: bool, t0: u64, parked: bool) {
        let now = self.recorder.now();
        self.recorder.count(pid, if write { Event::WriteAcquire } else { Event::ReadAcquire });
        let metric = if write { Metric::WriteAcquireNs } else { Metric::ReadAcquireNs };
        self.recorder.record(pid, metric, now.saturating_sub(t0));
        if parked {
            let woke = self.wake_ts.load(StdOrdering::Relaxed);
            self.recorder.record(pid, Metric::WakeToGrantNs, now.saturating_sub(woke));
        }
    }
}

impl<T: ?Sized, L: RawTryReadLock, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// Acquires the lock for reading, suspending (never spinning) while a
    /// writer is in the way.
    ///
    /// Cancel-safe: dropping the returned future before completion
    /// unwinds everything — the doorway announcement (inside the failed
    /// bounded attempt), the parked waker, and the leased pid.
    ///
    /// # Panics
    ///
    /// The future's first poll panics if the lock's capacity is
    /// exhausted (more concurrent acquisitions than `max_processes()`).
    pub fn read(&self) -> AsyncRead<'_, T, L, B, R> {
        AsyncRead { lock: self, pid: None, done: false, parked: false, t0: 0 }
    }

    /// Attempts to acquire the lock for reading without blocking or
    /// suspending — one bounded attempt, exactly [`RawTryReadLock`]'s.
    #[must_use = "a silently dropped guard releases the lock at once; check the Option"]
    pub fn try_read(&self) -> Option<AsyncReadGuard<'_, T, L, B, R>> {
        let pid = self.registry.allocate().ok()?;
        let token = self.raw.try_read_lock(pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryReadOk } else { Event::TryReadFail };
            self.recorder.count(pid.index(), ev);
        }
        match token {
            Some(token) => Some(self.finish_read(pid, token)),
            None => {
                self.registry.release(pid);
                None
            }
        }
    }
}

impl<T: ?Sized, L: RawTryRwLock + RawMultiWriter, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// Acquires the lock for writing, suspending while readers or another
    /// writer are in the way.
    ///
    /// Requires the full non-blocking tier ([`RawTryRwLock`]): the
    /// paper's core locks cannot abort a started write doorway, so on
    /// them this method does not exist — use
    /// [`AsyncRwLock::write_blocking`] from a thread that may block.
    /// Cancel-safe for the same reason as [`AsyncRwLock::read`].
    ///
    /// ```compile_fail
    /// use rmr_async::AsyncRwLock;
    /// use rmr_core::mwmr::MwmrStarvationFree;
    ///
    /// let lock = AsyncRwLock::with_raw(0u32, MwmrStarvationFree::new(2));
    /// let _ = lock.write(); // ERROR: MwmrStarvationFree is not RawTryRwLock
    /// ```
    pub fn write(&self) -> AsyncWrite<'_, T, L, B, R> {
        AsyncWrite { lock: self, pid: None, done: false, parked: false, t0: 0 }
    }

    /// Attempts to acquire the lock for writing without blocking or
    /// suspending.
    #[must_use = "a silently dropped guard releases the lock at once; check the Option"]
    pub fn try_write(&self) -> Option<AsyncWriteGuard<'_, T, L, B, R>> {
        let pid = self.registry.allocate().ok()?;
        let token = self.raw.try_write_lock(pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryWriteOk } else { Event::TryWriteFail };
            self.recorder.count(pid.index(), ev);
        }
        match token {
            Some(token) => Some(self.finish_write(pid, token)),
            None => {
                self.registry.release(pid);
                None
            }
        }
    }
}

impl<T: ?Sized, L: RawMultiWriter, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// Acquires the lock for writing by *blocking* (the raw lock's own
    /// spin, under a yield-first [`park hint`](rmr_mutex::spin::with_park_hint)).
    ///
    /// This is the writer path for locks without [`RawTryRwLock`] (the
    /// paper's core locks): call it from a dedicated writer thread or a
    /// `spawn_blocking`-style offload, never from inside a future. The
    /// returned guard is the ordinary [`AsyncWriteGuard`], so its drop
    /// wakes parked async readers exactly like `write().await`'s.
    pub fn write_blocking(&self) -> AsyncWriteGuard<'_, T, L, B, R> {
        let pid = self.allocate_pid();
        let t0 = if R::ENABLED { self.recorder.now() } else { 0 };
        let token = spin::with_park_hint(std::thread::yield_now, || self.raw.write_lock(pid));
        if R::ENABLED {
            self.grant_obs(pid.index(), true, t0, false);
        }
        self.finish_write(pid, token)
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock, B: Backend, R: Recorder> fmt::Debug
    for AsyncRwLock<T, L, B, R>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately does not read `data` (would need the lock).
        f.debug_struct("AsyncRwLock")
            .field("max_processes", &self.max_processes())
            .field("registered", &self.registered())
            .field("parked_readers", &self.parked_readers())
            .field("parked_writers", &self.parked_writers())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Futures
// ---------------------------------------------------------------------

/// Future of [`AsyncRwLock::read`]. One bounded attempt per poll; parks
/// the waker (and retries once) on failure.
#[must_use = "futures do nothing unless polled"]
pub struct AsyncRead<'l, T: ?Sized, L: RawRwLock, B: Backend, R: Recorder = NoopRecorder> {
    lock: &'l AsyncRwLock<T, L, B, R>,
    /// Leased on first poll; consumed by the guard on success, returned
    /// by Drop on cancellation.
    pid: Option<Pid>,
    done: bool,
    /// Whether this future ever returned `Pending` — a granted parked
    /// future records its wake-to-grant latency.
    parked: bool,
    /// `recorder.now()` at the first poll (0 when inert).
    t0: u64,
}

impl<'l, T: ?Sized, L: RawTryReadLock, B: Backend, R: Recorder> Future
    for AsyncRead<'l, T, L, B, R>
{
    type Output = AsyncReadGuard<'l, T, L, B, R>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        assert!(!this.done, "AsyncRead polled after completion");
        let lock = this.lock;
        let pid = match this.pid {
            Some(pid) => pid,
            None => {
                if R::ENABLED {
                    this.t0 = lock.recorder.now();
                }
                *this.pid.insert(lock.allocate_pid())
            }
        };
        if let Some(token) = lock.raw.try_read_lock(pid) {
            lock.table.deregister(pid.index());
            this.pid = None;
            this.done = true;
            if R::ENABLED {
                lock.grant_obs(pid.index(), false, this.t0, this.parked);
            }
            return Poll::Ready(lock.finish_read(pid, token));
        }
        lock.table.register(pid.index(), WaitKind::Reader, cx.waker());
        // The lost-wakeup linchpin: a release between the failed attempt
        // and the registration must not strand us, so try once more now
        // that the waker is visible to release scans.
        if let Some(token) = lock.raw.try_read_lock(pid) {
            lock.table.deregister(pid.index());
            this.pid = None;
            this.done = true;
            if R::ENABLED {
                lock.grant_obs(pid.index(), false, this.t0, this.parked);
            }
            return Poll::Ready(lock.finish_read(pid, token));
        }
        if R::ENABLED {
            lock.recorder.count(pid.index(), Event::AsyncPark);
        }
        this.parked = true;
        Poll::Pending
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Drop for AsyncRead<'_, T, L, B, R> {
    fn drop(&mut self) {
        if let Some(pid) = self.pid.take() {
            // Cancelled mid-acquisition: the failed bounded attempt
            // already unwound the doorway, so only the parked waker and
            // the pid lease remain.
            self.lock.table.deregister(pid.index());
            self.lock.registry.release(pid);
            if R::ENABLED {
                self.lock.recorder.count(pid.index(), Event::AsyncCancel);
            }
        }
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> fmt::Debug for AsyncRead<'_, T, L, B, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncRead").field("pid", &self.pid).field("done", &self.done).finish()
    }
}

/// Future of [`AsyncRwLock::write`]. Same protocol as [`AsyncRead`] with
/// the writer wait kind.
#[must_use = "futures do nothing unless polled"]
pub struct AsyncWrite<'l, T: ?Sized, L: RawRwLock, B: Backend, R: Recorder = NoopRecorder> {
    lock: &'l AsyncRwLock<T, L, B, R>,
    pid: Option<Pid>,
    done: bool,
    parked: bool,
    t0: u64,
}

impl<'l, T: ?Sized, L: RawTryRwLock + RawMultiWriter, B: Backend, R: Recorder> Future
    for AsyncWrite<'l, T, L, B, R>
{
    type Output = AsyncWriteGuard<'l, T, L, B, R>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        assert!(!this.done, "AsyncWrite polled after completion");
        let lock = this.lock;
        let pid = match this.pid {
            Some(pid) => pid,
            None => {
                if R::ENABLED {
                    this.t0 = lock.recorder.now();
                }
                *this.pid.insert(lock.allocate_pid())
            }
        };
        if let Some(token) = lock.raw.try_write_lock(pid) {
            lock.table.deregister(pid.index());
            this.pid = None;
            this.done = true;
            if R::ENABLED {
                lock.grant_obs(pid.index(), true, this.t0, this.parked);
            }
            return Poll::Ready(lock.finish_write(pid, token));
        }
        lock.table.register(pid.index(), WaitKind::Writer, cx.waker());
        if let Some(token) = lock.raw.try_write_lock(pid) {
            lock.table.deregister(pid.index());
            this.pid = None;
            this.done = true;
            if R::ENABLED {
                lock.grant_obs(pid.index(), true, this.t0, this.parked);
            }
            return Poll::Ready(lock.finish_write(pid, token));
        }
        if R::ENABLED {
            lock.recorder.count(pid.index(), Event::AsyncPark);
        }
        this.parked = true;
        Poll::Pending
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Drop for AsyncWrite<'_, T, L, B, R> {
    fn drop(&mut self) {
        if let Some(pid) = self.pid.take() {
            self.lock.table.deregister(pid.index());
            self.lock.registry.release(pid);
            if R::ENABLED {
                self.lock.recorder.count(pid.index(), Event::AsyncCancel);
            }
        }
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> fmt::Debug for AsyncWrite<'_, T, L, B, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncWrite").field("pid", &self.pid).field("done", &self.done).finish()
    }
}

// ---------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------

/// RAII shared access; the drop releases the raw lock and, when it was
/// the last reader out, wakes parked writers.
///
/// Unlike the sync [`ReadGuard`](rmr_core::rwlock::ReadGuard), this guard
/// is `Send` (where `T` and the token allow): its pid is owned by the
/// guard alone — never thread-leased, never reusable elsewhere — so
/// whichever thread drops the guard is, for the raw contract's purposes,
/// that pid. Futures holding a guard across an `.await` can therefore
/// migrate threads.
#[must_use = "dropping the guard immediately releases the read lock"]
pub struct AsyncReadGuard<'l, T: ?Sized, L: RawRwLock, B: Backend, R: Recorder = NoopRecorder> {
    lock: &'l AsyncRwLock<T, L, B, R>,
    pid: Pid,
    token: Option<L::ReadToken>,
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Deref for AsyncReadGuard<'_, T, L, B, R> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the raw lock admits no writer while this read session
        // is open.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Drop for AsyncReadGuard<'_, T, L, B, R> {
    fn drop(&mut self) {
        let token = self.token.take().expect("read token taken twice");
        self.lock.raw.read_unlock(self.pid, token);
        if R::ENABLED {
            self.lock.recorder.count(self.pid.index(), Event::ReadRelease);
        }
        // Raw release first, then the wake: a woken waiter's attempt must
        // be able to succeed. Only the last reader out scans — and it
        // wakes *everyone*, not just writers: a reader parked behind
        // another reader's entry window (see `finish_read`) may have this
        // release as its only remaining wake source.
        // SeqCst: the last-reader edge decides whether anyone scans at
        // all — it must be ordered after the raw release above and
        // before the wake scan's skip checks (the AS-COUNT square).
        if self.lock.readers.fetch_sub(1, MemOrdering::SeqCst) == 1 {
            self.lock.wake_scan(self.pid.index(), WakerTable::wake_all);
        }
        self.lock.registry.release(self.pid);
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock, B: Backend, R: Recorder> fmt::Debug
    for AsyncReadGuard<'_, T, L, B, R>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AsyncReadGuard").field(&&**self).finish()
    }
}

/// RAII exclusive access; the drop releases the raw lock and wakes every
/// parked future (readers and writers — the raw lock's policy arbitrates,
/// losers re-park).
///
/// `Send` for the same reason as [`AsyncReadGuard`].
#[must_use = "dropping the guard immediately releases the write lock"]
pub struct AsyncWriteGuard<'l, T: ?Sized, L: RawRwLock, B: Backend, R: Recorder = NoopRecorder> {
    lock: &'l AsyncRwLock<T, L, B, R>,
    pid: Pid,
    token: Option<L::WriteToken>,
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Deref for AsyncWriteGuard<'_, T, L, B, R> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this write session excludes all other access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> DerefMut
    for AsyncWriteGuard<'_, T, L, B, R>
{
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: this write session excludes all other access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Drop for AsyncWriteGuard<'_, T, L, B, R> {
    fn drop(&mut self) {
        let token = self.token.take().expect("write token taken twice");
        self.lock.raw.write_unlock(self.pid, token);
        if R::ENABLED {
            self.lock.recorder.count(self.pid.index(), Event::WriteRelease);
        }
        self.lock.wake_scan(self.pid.index(), WakerTable::wake_all);
        self.lock.registry.release(self.pid);
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock, B: Backend, R: Recorder> fmt::Debug
    for AsyncWriteGuard<'_, T, L, B, R>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AsyncWriteGuard").field(&&**self).finish()
    }
}
