//! [`AsyncRwLock`] — the typed, waker-parking front end.
//!
//! # How parking composes with the raw locks
//!
//! The raw locks block by *spinning*; a service tier cannot burn a core
//! per waiter. This module converts every futile-spin point into
//! `Poll::Pending`:
//!
//! * **Readers** make one bounded call per poll into the lock's
//!   non-blocking tier ([`RawTryReadLock`]), whose failure path retires
//!   through the ordinary exit section — a pending read future holds
//!   *no* lock state between polls, so dropping it mid-acquisition
//!   (future cancellation) is safe by construction.
//! * **Writers** hold a real queue position: `write().await` claims the
//!   lock's single *writer doorway* ([`RawParkedWaiters`]) and keeps the
//!   parked [`WriteDoorway`](rmr_core::raw::RawParkedWaiters::WriteDoorway)
//!   across polls — the awaiting writer is **tokened**, counted by the
//!   raw lock exactly like a blocking writer standing in line, so the
//!   lock's own anti-starvation policy (ticket FIFO, Figure 1's
//!   writer-priority doorway) protects it and readers cannot bypass it
//!   more than the lock's bound allows (`QUEUED` locks; `rmr-check`'s
//!   bounded-bypass oracle enforces k = in-flight readers).
//!   Cancellation-safety is restored *revocably*: dropping the future
//!   calls `cancel_write`, which unwinds or hands off the half-entered
//!   passage (each lock's documented zombie/adoption protocol).
//!
//! A failed attempt parks the task's waker in the per-pid
//! [`WakerTable`] and **retries once** before returning `Pending` — the
//! retry is the lost-wakeup linchpin (see the protocol argument below).
//! Wake-ups ride the release paths:
//!
//! * a write guard drop wakes every parked future (readers and writers —
//!   who may actually proceed is the raw lock's policy, and losers simply
//!   re-park);
//! * the last read guard drop also wakes everyone: almost always that
//!   means parked writers, but a reader can transiently park behind
//!   another *reader* (a raw read entry is not atomic — e.g. the ticket
//!   lock's drawn-ticket-to-grant-bump window — and an attempt failing
//!   inside that window parks), so a completed read entry additionally
//!   re-polls parked readers. The model-checked battery caught exactly
//!   this reader-parked-behind-reader stranding in an earlier version
//!   that woke only writers;
//! * **every** read guard drop re-polls parked *writers* while any
//!   exist: a tokened doorway typically becomes grantable when one
//!   *side* of the lock drains (Figure 1's previous-side count, a ticket
//!   predecessor), long before the global reader count reaches zero —
//!   waking only on last-reader-out would strand the doorway behind
//!   overlapping read sessions, the very starvation the token exists to
//!   end. The common no-writer case is one `SeqCst` load;
//! * a Bravo-wrapped lock's fast-path readers stay zero-inner-op: the
//!   async layer touches only its own counters and table, never the
//!   inner lock.
//!
//! # Why no wake-up is lost
//!
//! A future parks only after the sequence *attempt fails → register waker
//! → attempt fails again*. The parked-count announce in the registration
//! and the release paths' scan-skip checks are SeqCst (sites AS-ANNOUNCE
//! and AS-COUNT, DESIGN.md §13), so when the second attempt fails some
//! holder `H` exists at that point; `H`'s release runs strictly later,
//! and its wake scan therefore observes the registration.
//! Any *other* failed attempt leaves the lock state untouched (the try
//! tier is abortable), so "holder exists" is the only way an attempt can
//! fail — the wake-delivering release is always still in the future when
//! a future parks. Spurious wake-ups (thundering herd on writer exit,
//! stale wakers) merely cause a re-poll that re-parks.
//!
//! # The writer-claim word
//!
//! [`RawParkedWaiters`] grants **one** doorway per lock at a time; the
//! async tier serializes its writers through a word-sized claim
//! (CAS 0 → 1 to start a doorway, store 0 on guard drop or cancel).
//! Losers park as writers and re-CAS on wake — so on a *single-writer*
//! paper lock (Figure 1), concurrent `write().await` callers are safe:
//! the claim word is the serialization the `RawMultiWriter` bound used
//! to demand, which is why that gate is lifted for `write()`.
//! [`AsyncRwLock::try_write`] still requires `RawMultiWriter` (a bounded
//! attempt never takes the claim).
//!
//! Fairness across classes is the raw lock's, not the claim word's: the
//! claim hands the doorway to *some* awaiting writer (wake order is the
//! waiter-FIFO, but a fresh `write()` can CAS first); once claimed, the
//! doorway's queue position is what readers must respect.
//!
//! # `write_blocking` (deprecated)
//!
//! [`AsyncRwLock::write_blocking`] predates the doorway: a *blocking*
//! writer acquisition through the raw lock's own spin (under a
//! [`park hint`](rmr_mutex::spin::with_park_hint)), for locks that offer
//! `RawMultiWriter`. `write().await` + [`block_on`](crate::exec::block_on)
//! now covers every lock with a doorway — including the core SWMR locks,
//! which never had `write_blocking` — so this method is deprecated and
//! kept only for multi-writer locks without a fair doorway.
//!
//! [`RawParkedWaiters`]: rmr_core::raw::RawParkedWaiters
//! [`RawTryReadLock`]: rmr_core::raw::RawTryReadLock
//! [`RawTryRwLock`]: rmr_core::raw::RawTryRwLock
//! [`RwLock`]: rmr_core::rwlock::RwLock
//! [`WakerTable`]: crate::park::WakerTable

use crate::park::{WaitKind, WakerTable};
use rmr_core::raw::{RawMultiWriter, RawParkedWaiters, RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::{Pid, PidRegistry};
use rmr_mutex::mem::{Backend, Native, Ordering as MemOrdering, SharedWord};
use rmr_mutex::{spin, CachePadded};
use rmr_obs::{Event, Metric, NoopRecorder, Recorder};
use std::cell::UnsafeCell;
use std::fmt;
use std::future::Future;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::task::{Context, Poll};

/// An async reader-writer lock over any raw lock `L`, generic over the
/// memory backend `B` of its own parking state (the raw lock keeps
/// whatever backend it was built with).
///
/// `read().await` suits services that must not burn a core per waiter;
/// the cost model is spelled out in DESIGN.md §11 (parking trades the
/// paper's RMR-bounded spinning for wake-up latency and an O(capacity)
/// release-path scan *when waiters exist*).
///
/// Each acquisition leases a [`Pid`] from the lock's registry for exactly
/// the guard's (or pending future's) lifetime, so futures may migrate
/// threads freely — there is no thread-local leasing here.
///
/// # Example
///
/// ```
/// use rmr_async::exec::block_on;
/// use rmr_async::AsyncRwLock;
/// use rmr_baselines::TicketRwLock;
///
/// let lock = AsyncRwLock::with_raw(0u64, TicketRwLock::new(4));
/// block_on(async {
///     *lock.write().await += 1;
///     assert_eq!(*lock.read().await, 1);
/// });
/// ```
pub struct AsyncRwLock<T: ?Sized, L, B: Backend = Native, R: Recorder = NoopRecorder> {
    raw: L,
    registry: PidRegistry,
    table: WakerTable<B>,
    /// Currently held async read guards; the 1 → 0 transition wakes
    /// parked writers.
    readers: CachePadded<B::Word>,
    /// The writer-claim word (see the module docs): 1 while some writer
    /// future or blocking writer owns the lock's single doorway, from
    /// `start_write` until the guard drops or the future cancels.
    writer_claim: CachePadded<B::Word>,
    /// Passages reported here; inert by default ([`AsyncRwLock::with_recorder`]).
    recorder: R,
    /// `recorder.now()` at the latest wake scan — the subtrahend for
    /// [`Metric::WakeToGrantNs`]. A plain `std` atomic (never `B`-typed):
    /// recorder-private state must stay invisible to the `Counting`
    /// backend and the `Sched` explorer alike.
    wake_ts: CachePadded<AtomicU64>,
    data: UnsafeCell<T>,
}

// SAFETY: same argument as `rmr_core::rwlock::RwLock` — the raw lock
// guarantees `&mut T` never coexists with any other access and `&T` only
// with other `&T`; the parking layer never hands out access, it only
// schedules retries.
unsafe impl<T: ?Sized + Send, L: RawRwLock, B: Backend, R: Recorder> Send
    for AsyncRwLock<T, L, B, R>
{
}
unsafe impl<T: ?Sized + Send + Sync, L: RawRwLock, B: Backend, R: Recorder> Sync
    for AsyncRwLock<T, L, B, R>
{
}

impl<T, L: RawRwLock> AsyncRwLock<T, L> {
    /// Wraps `value` behind `raw` over the [`Native`] backend, sizing the
    /// pid registry and waker table to `raw.max_processes()`.
    ///
    /// # Panics
    ///
    /// Panics if the raw lock reports an unbounded process count
    /// (`usize::MAX`) — use [`AsyncRwLock::with_raw_and_capacity`].
    pub fn with_raw(value: T, raw: L) -> Self {
        Self::with_raw_in(value, raw, Native)
    }

    /// Wraps `value` behind `raw` over [`Native`] with an explicit
    /// capacity — the maximum number of *concurrent* acquisitions
    /// (pending futures plus held guards).
    pub fn with_raw_and_capacity(value: T, raw: L, capacity: usize) -> Self {
        Self::with_raw_and_capacity_in(value, raw, capacity, Native)
    }
}

impl<T, L: RawRwLock, B: Backend> AsyncRwLock<T, L, B> {
    /// Like [`AsyncRwLock::with_raw`], with the parking state (waker
    /// table, reader counter) over an explicit backend — `Sched` is what
    /// lets `rmr-check` model-check the parking protocol on this very
    /// code.
    pub fn with_raw_in(value: T, raw: L, backend: B) -> Self {
        let cap = raw.max_processes();
        assert!(cap != usize::MAX, "raw lock has no process bound; use with_raw_and_capacity");
        Self::with_raw_and_capacity_in(value, raw, cap, backend)
    }

    /// Like [`AsyncRwLock::with_raw_and_capacity`], over an explicit
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `raw.max_processes()`.
    pub fn with_raw_and_capacity_in(value: T, raw: L, capacity: usize, _backend: B) -> Self {
        assert!(
            capacity <= raw.max_processes(),
            "capacity {capacity} exceeds the raw lock's bound {}",
            raw.max_processes()
        );
        Self {
            raw,
            registry: PidRegistry::new(capacity),
            table: WakerTable::new(capacity),
            readers: CachePadded::new(B::Word::new(0)),
            writer_claim: CachePadded::new(B::Word::new(0)),
            recorder: NoopRecorder,
            wake_ts: CachePadded::new(AtomicU64::new(0)),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T, L: RawRwLock, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// Re-types the lock to report every passage — acquires, releases,
    /// parks, wakes, cancellations, wake-to-grant latency — to
    /// `recorder`. Pass an `Arc<StatsRecorder>` and keep a clone for
    /// reading; with the default [`NoopRecorder`] every hook const-folds
    /// away.
    pub fn with_recorder<R2: Recorder>(self, recorder: R2) -> AsyncRwLock<T, L, B, R2> {
        let Self { raw, registry, table, readers, writer_claim, recorder: _, wake_ts, data } = self;
        AsyncRwLock { raw, registry, table, readers, writer_claim, recorder, wake_ts, data }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// The underlying raw lock.
    pub fn raw(&self) -> &L {
        &self.raw
    }

    /// The recorder passages are reported to.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access without locking — safe because `&mut self` proves
    /// exclusive ownership.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Maximum number of concurrent acquisitions (pids / waker slots).
    pub fn max_processes(&self) -> usize {
        self.registry.capacity()
    }

    /// Pids currently leased to guards or pending futures (approximate
    /// under concurrency). Checker entry point: zero once every future
    /// and guard is gone.
    pub fn registered(&self) -> usize {
        self.registry.allocated()
    }

    /// Read futures currently parked (approximate under concurrency).
    pub fn parked_readers(&self) -> usize {
        self.table.parked_readers()
    }

    /// Write futures currently parked (approximate under concurrency).
    pub fn parked_writers(&self) -> usize {
        self.table.parked_writers()
    }

    /// Async read guards currently held (approximate under concurrency).
    pub fn reading(&self) -> usize {
        // Diagnostic snapshot only.
        self.readers.load(MemOrdering::Relaxed) as usize
    }

    /// Wake-ups delivered by the release paths so far (diagnostics).
    pub fn wakeups(&self) -> u64 {
        self.table.wakeups()
    }

    /// Checker entry point: nothing parked, nothing held, no pid leased,
    /// no doorway claimed. Combine with the raw lock's own
    /// `is_quiescent` where one exists.
    pub fn is_quiescent(&self) -> bool {
        self.table.parked_readers() == 0
            && self.table.parked_writers() == 0
            && self.readers.load(MemOrdering::Relaxed) == 0
            && self.registry.allocated() == 0
            && self.writer_claim.load(MemOrdering::Relaxed) == 0
    }

    /// One bounded attempt to claim the lock's single writer doorway.
    fn claim_doorway(&self) -> bool {
        // Site AS-CLAIM: both ends of the claim word ride the same
        // lost-wakeup square as AS-COUNT — the freeing store (guard drop
        // / cancel) precedes a wake scan, the claiming CAS follows a
        // waker registration — so both are SeqCst.
        self.writer_claim.compare_exchange(0, 1, MemOrdering::SeqCst, MemOrdering::SeqCst).is_ok()
    }

    /// Frees the doorway claim. The caller must follow with a wake scan
    /// so a parked claimer re-CASes.
    fn release_doorway_claim(&self) {
        // Site AS-CLAIM: see `claim_doorway`.
        self.writer_claim.store(0, MemOrdering::SeqCst);
    }

    fn allocate_pid(&self) -> Pid {
        self.registry.allocate().unwrap_or_else(|e| {
            panic!(
                "cannot lease a pid for an async acquisition: {e}; size the capacity to the \
                 maximum number of concurrent acquisitions (pending futures + held guards)"
            )
        })
    }

    fn finish_read(&self, pid: Pid, token: L::ReadToken) -> AsyncReadGuard<'_, T, L, B, R> {
        // SeqCst: this counter's 1 → 0 edge (in the guard drop) gates a
        // wake_all scan, the same lost-wakeup square as AS-COUNT; keep
        // both ends of the guard count in the total order.
        self.readers.fetch_add(1, MemOrdering::SeqCst);
        // A raw read *entry* is not atomic (e.g. the ticket lock's
        // drawn-ticket-to-grant-bump window), and a concurrent reader's
        // attempt failing inside that window parks it behind *us* — a
        // reader. The window is closed now, so re-poll any parked
        // readers; the common case is one load of a zero counter.
        if self.table.parked_readers() > 0 {
            self.wake_scan(pid.index(), WakerTable::wake_readers);
        }
        AsyncReadGuard { lock: self, pid, token: Some(token) }
    }

    fn finish_write(
        &self,
        pid: Pid,
        token: L::WriteToken,
        claimed: bool,
    ) -> AsyncWriteGuard<'_, T, L, B, R> {
        AsyncWriteGuard { lock: self, pid, token: Some(token), claimed }
    }

    /// Runs one wake scan, stamping [`Self::wake_ts`] first (so a woken
    /// future can attribute its grant) and crediting the delivered
    /// wake-ups to `pid`.
    fn wake_scan(&self, pid: usize, scan: impl FnOnce(&WakerTable<B>) -> usize) {
        if R::ENABLED {
            self.wake_ts.store(self.recorder.now(), StdOrdering::Relaxed);
        }
        let woken = scan(&self.table);
        if R::ENABLED && woken > 0 {
            self.recorder.add(pid, Event::AsyncWake, woken as u64);
        }
    }

    /// Records one granted (future-completing) acquisition: the acquire
    /// event, its latency since the future's first poll, and — when the
    /// future had parked — the wake-to-grant latency.
    fn grant_obs(&self, pid: usize, write: bool, t0: u64, parked: bool) {
        let now = self.recorder.now();
        self.recorder.count(pid, if write { Event::WriteAcquire } else { Event::ReadAcquire });
        let metric = if write { Metric::WriteAcquireNs } else { Metric::ReadAcquireNs };
        self.recorder.record(pid, metric, now.saturating_sub(t0));
        if parked {
            let woke = self.wake_ts.load(StdOrdering::Relaxed);
            self.recorder.record(pid, Metric::WakeToGrantNs, now.saturating_sub(woke));
        }
    }
}

impl<T: ?Sized, L: RawTryReadLock, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// Acquires the lock for reading, suspending (never spinning) while a
    /// writer is in the way.
    ///
    /// Cancel-safe: dropping the returned future before completion
    /// unwinds everything — the doorway announcement (inside the failed
    /// bounded attempt), the parked waker, and the leased pid.
    ///
    /// # Panics
    ///
    /// The future's first poll panics if the lock's capacity is
    /// exhausted (more concurrent acquisitions than `max_processes()`).
    pub fn read(&self) -> AsyncRead<'_, T, L, B, R> {
        AsyncRead { lock: self, pid: None, done: false, parked: false, t0: 0 }
    }

    /// Attempts to acquire the lock for reading without blocking or
    /// suspending — one bounded attempt, exactly [`RawTryReadLock`]'s.
    #[must_use = "a silently dropped guard releases the lock at once; check the Option"]
    pub fn try_read(&self) -> Option<AsyncReadGuard<'_, T, L, B, R>> {
        let pid = self.registry.allocate().ok()?;
        let token = self.raw.try_read_lock(pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryReadOk } else { Event::TryReadFail };
            self.recorder.count(pid.index(), ev);
        }
        match token {
            Some(token) => Some(self.finish_read(pid, token)),
            None => {
                self.registry.release(pid);
                None
            }
        }
    }
}

impl<T: ?Sized, L: RawParkedWaiters, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// Acquires the lock for writing, suspending while readers or another
    /// writer are in the way.
    ///
    /// Requires only [`RawParkedWaiters`] — **every** lock in the
    /// workspace, including the paper's single-writer core locks: the
    /// writer-claim word serializes concurrent `write()` callers (see
    /// the module docs), and the claimed doorway is a *real, tokened
    /// queue position* the raw lock counts like a blocking writer, so on
    /// `QUEUED` locks readers cannot bypass an awaiting writer beyond
    /// the lock's bound.
    ///
    /// Cancel-safe: dropping the future before completion unwinds
    /// everything — a parked doorway is revoked through the lock's own
    /// `cancel_write` protocol, the claim is freed (waking the next
    /// claimer), and the waker and pid lease are returned.
    ///
    /// Locks without any write capability stay a compile error:
    ///
    /// ```compile_fail
    /// use rmr_async::AsyncRwLock;
    /// use rmr_core::mwmr::MwmrStarvationFree;
    ///
    /// let lock = AsyncRwLock::with_raw(0u32, MwmrStarvationFree::new(2));
    /// let _ = lock.write(); // ERROR: MwmrStarvationFree is not RawParkedWaiters
    /// ```
    pub fn write(&self) -> AsyncWrite<'_, T, L, B, R> {
        AsyncWrite { lock: self, pid: None, stage: WriteStage::Claiming, parked: false, t0: 0 }
    }
}

impl<T: ?Sized, L: RawTryRwLock + RawMultiWriter, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// Attempts to acquire the lock for writing without blocking or
    /// suspending — one bounded attempt, exactly [`RawTryRwLock`]'s.
    ///
    /// Keeps the [`RawMultiWriter`] bound (unlike [`AsyncRwLock::write`]):
    /// a bounded attempt never takes the writer-claim word, so on a
    /// single-writer lock it could race the claimed doorway.
    #[must_use = "a silently dropped guard releases the lock at once; check the Option"]
    pub fn try_write(&self) -> Option<AsyncWriteGuard<'_, T, L, B, R>> {
        let pid = self.registry.allocate().ok()?;
        let token = self.raw.try_write_lock(pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryWriteOk } else { Event::TryWriteFail };
            self.recorder.count(pid.index(), ev);
        }
        match token {
            Some(token) => Some(self.finish_write(pid, token, false)),
            None => {
                self.registry.release(pid);
                None
            }
        }
    }
}

impl<T: ?Sized, L: RawMultiWriter, B: Backend, R: Recorder> AsyncRwLock<T, L, B, R> {
    /// Acquires the lock for writing by *blocking* (the raw lock's own
    /// spin, under a yield-first [`park hint`](rmr_mutex::spin::with_park_hint)).
    ///
    /// Call it from a dedicated writer thread or a
    /// `spawn_blocking`-style offload, never from inside a future. The
    /// returned guard is the ordinary [`AsyncWriteGuard`], so its drop
    /// wakes parked async readers exactly like `write().await`'s.
    ///
    /// Deprecated: this writer bypasses the claim word and holds no
    /// revocable doorway, so it predates — and forfeits — the tokened
    /// fairness story. `write().await` (or
    /// [`block_on`](crate::exec::block_on)`(lock.write())` from sync
    /// code) now works on every lock with a doorway, including the core
    /// SWMR locks this method was the escape hatch for.
    #[deprecated(
        since = "0.1.0",
        note = "use write().await (or block_on(lock.write()) from sync code); every lock now \
                carries a RawParkedWaiters doorway"
    )]
    pub fn write_blocking(&self) -> AsyncWriteGuard<'_, T, L, B, R> {
        let pid = self.allocate_pid();
        let t0 = if R::ENABLED { self.recorder.now() } else { 0 };
        let token = spin::with_park_hint(std::thread::yield_now, || self.raw.write_lock(pid));
        if R::ENABLED {
            self.grant_obs(pid.index(), true, t0, false);
        }
        self.finish_write(pid, token, false)
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock, B: Backend, R: Recorder> fmt::Debug
    for AsyncRwLock<T, L, B, R>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately does not read `data` (would need the lock).
        f.debug_struct("AsyncRwLock")
            .field("max_processes", &self.max_processes())
            .field("registered", &self.registered())
            .field("parked_readers", &self.parked_readers())
            .field("parked_writers", &self.parked_writers())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Futures
// ---------------------------------------------------------------------

/// Future of [`AsyncRwLock::read`]. One bounded attempt per poll; parks
/// the waker (and retries once) on failure.
#[must_use = "futures do nothing unless polled"]
pub struct AsyncRead<'l, T: ?Sized, L: RawRwLock, B: Backend, R: Recorder = NoopRecorder> {
    lock: &'l AsyncRwLock<T, L, B, R>,
    /// Leased on first poll; consumed by the guard on success, returned
    /// by Drop on cancellation.
    pid: Option<Pid>,
    done: bool,
    /// Whether this future ever returned `Pending` — a granted parked
    /// future records its wake-to-grant latency.
    parked: bool,
    /// `recorder.now()` at the first poll (0 when inert).
    t0: u64,
}

impl<'l, T: ?Sized, L: RawTryReadLock, B: Backend, R: Recorder> Future
    for AsyncRead<'l, T, L, B, R>
{
    type Output = AsyncReadGuard<'l, T, L, B, R>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        assert!(!this.done, "AsyncRead polled after completion");
        let lock = this.lock;
        let pid = match this.pid {
            Some(pid) => pid,
            None => {
                if R::ENABLED {
                    this.t0 = lock.recorder.now();
                }
                *this.pid.insert(lock.allocate_pid())
            }
        };
        if let Some(token) = lock.raw.try_read_lock(pid) {
            lock.table.deregister(pid.index());
            this.pid = None;
            this.done = true;
            if R::ENABLED {
                lock.grant_obs(pid.index(), false, this.t0, this.parked);
            }
            return Poll::Ready(lock.finish_read(pid, token));
        }
        lock.table.register(pid.index(), WaitKind::Reader, cx.waker());
        // The lost-wakeup linchpin: a release between the failed attempt
        // and the registration must not strand us, so try once more now
        // that the waker is visible to release scans.
        if let Some(token) = lock.raw.try_read_lock(pid) {
            lock.table.deregister(pid.index());
            this.pid = None;
            this.done = true;
            if R::ENABLED {
                lock.grant_obs(pid.index(), false, this.t0, this.parked);
            }
            return Poll::Ready(lock.finish_read(pid, token));
        }
        // A failed attempt is not a silent no-op to a *tokened doorway*:
        // its transient admission announcement (fig. 1's `C[side]`
        // increment, a conditionally-drawn ticket probe) may be exactly
        // what a parked writer's last `poll_write` observed before it
        // parked — and the attempt's unwind, unlike a read session's
        // exit, passes through no release path. Re-polling parked
        // writers after the unwind closes that square: either the
        // writer's re-poll already ran after our unwind (it is granted),
        // or its SeqCst parked announce precedes its re-poll and this
        // SeqCst count check sees it.
        if lock.table.parked_writers() > 0 {
            lock.wake_scan(pid.index(), WakerTable::wake_writers);
        }
        if R::ENABLED {
            lock.recorder.count(pid.index(), Event::AsyncPark);
        }
        this.parked = true;
        Poll::Pending
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Drop for AsyncRead<'_, T, L, B, R> {
    fn drop(&mut self) {
        if let Some(pid) = self.pid.take() {
            // Cancelled mid-acquisition: the failed bounded attempt
            // already unwound the doorway, so only the parked waker and
            // the pid lease remain.
            self.lock.table.deregister(pid.index());
            self.lock.registry.release(pid);
            if R::ENABLED {
                self.lock.recorder.count(pid.index(), Event::AsyncCancel);
            }
        }
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> fmt::Debug for AsyncRead<'_, T, L, B, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncRead").field("pid", &self.pid).field("done", &self.done).finish()
    }
}

/// Where an [`AsyncWrite`] passage stands between polls.
enum WriteStage<D> {
    /// No claim yet: CAS the writer-claim word each poll, parking as a
    /// writer on failure (woken when a guard drop / cancel frees it).
    Claiming,
    /// Claim held; the raw lock's revocable doorway is parked in here
    /// between polls — this *is* the tokened queue position. The
    /// `Option` is only transiently `None` inside a poll.
    Doorway(Option<D>),
    /// Granted; the guard owns everything now.
    Done,
}

/// Future of [`AsyncRwLock::write`]: claim the writer doorway, then poll
/// the parked [`WriteDoorway`](RawParkedWaiters::WriteDoorway) — a real,
/// tokened queue position in the raw lock — to the grant.
#[must_use = "futures do nothing unless polled"]
pub struct AsyncWrite<'l, T: ?Sized, L: RawParkedWaiters, B: Backend, R: Recorder = NoopRecorder> {
    lock: &'l AsyncRwLock<T, L, B, R>,
    /// Leased on first poll; consumed by the guard on success, returned
    /// by Drop on cancellation.
    pid: Option<Pid>,
    stage: WriteStage<L::WriteDoorway>,
    /// Whether this future ever returned `Pending` — a granted parked
    /// future records its wake-to-grant latency.
    parked: bool,
    /// `recorder.now()` at the first poll (0 when inert).
    t0: u64,
}

// The future owns the doorway by value and holds no self-references, so
// pinning is not structural — `poll` may freely `get_mut` even when the
// lock's doorway type is not `Unpin`.
impl<T: ?Sized, L: RawParkedWaiters, B: Backend, R: Recorder> Unpin for AsyncWrite<'_, T, L, B, R> {}

impl<'l, T: ?Sized, L: RawParkedWaiters, B: Backend, R: Recorder> AsyncWrite<'l, T, L, B, R> {
    /// Grant epilogue: retire the waker, hand pid + token + claim to the
    /// guard.
    fn complete(&mut self, pid: Pid, token: L::WriteToken) -> AsyncWriteGuard<'l, T, L, B, R> {
        let lock = self.lock;
        lock.table.deregister(pid.index());
        self.pid = None;
        self.stage = WriteStage::Done;
        if R::ENABLED {
            lock.grant_obs(pid.index(), true, self.t0, self.parked);
        }
        lock.finish_write(pid, token, true)
    }
}

impl<'l, T: ?Sized, L: RawParkedWaiters, B: Backend, R: Recorder> Future
    for AsyncWrite<'l, T, L, B, R>
{
    type Output = AsyncWriteGuard<'l, T, L, B, R>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        assert!(!matches!(this.stage, WriteStage::Done), "AsyncWrite polled after completion");
        let lock = this.lock;
        let pid = match this.pid {
            Some(pid) => pid,
            None => {
                if R::ENABLED {
                    this.t0 = lock.recorder.now();
                }
                *this.pid.insert(lock.allocate_pid())
            }
        };
        if matches!(this.stage, WriteStage::Claiming) {
            if !lock.claim_doorway() {
                lock.table.register(pid.index(), WaitKind::Writer, cx.waker());
                // The lost-wakeup linchpin: the claim may have been freed
                // (and its wake scanned past us) between the failed CAS
                // and the registration — retry now that the waker is
                // visible.
                if !lock.claim_doorway() {
                    if R::ENABLED {
                        lock.recorder.count(pid.index(), Event::AsyncPark);
                    }
                    this.parked = true;
                    return Poll::Pending;
                }
            }
            // Claim won: take the real queue position. From here on the
            // raw lock counts this passage like a blocking writer's.
            this.stage = WriteStage::Doorway(Some(lock.raw.start_write(pid)));
        }
        let doorway = match &mut this.stage {
            WriteStage::Doorway(doorway) => doorway.take().expect("doorway parked between polls"),
            _ => unreachable!("Claiming was advanced above, Done asserted on entry"),
        };
        let doorway = match lock.raw.poll_write(pid, doorway) {
            Ok(token) => return Poll::Ready(this.complete(pid, token)),
            Err(doorway) => doorway,
        };
        lock.table.register(pid.index(), WaitKind::Writer, cx.waker());
        // Same linchpin, doorway flavor: the release that would have
        // granted us may have scanned before the registration.
        match lock.raw.poll_write(pid, doorway) {
            Ok(token) => Poll::Ready(this.complete(pid, token)),
            Err(doorway) => {
                this.stage = WriteStage::Doorway(Some(doorway));
                if R::ENABLED {
                    lock.recorder.count(pid.index(), Event::AsyncPark);
                }
                this.parked = true;
                Poll::Pending
            }
        }
    }
}

impl<T: ?Sized, L: RawParkedWaiters, B: Backend, R: Recorder> Drop for AsyncWrite<'_, T, L, B, R> {
    fn drop(&mut self) {
        let Some(pid) = self.pid.take() else { return };
        // Cancelled mid-acquisition.
        if let WriteStage::Doorway(doorway) = &mut self.stage {
            // Revoke the half-entered passage through the lock's own
            // cancellation protocol (unwind or zombie-handoff), free the
            // claim, then wake everyone: cancellation may have reopened
            // reader admission, and the claim is up for grabs.
            if let Some(doorway) = doorway.take() {
                self.lock.raw.cancel_write(pid, doorway);
            }
            self.lock.release_doorway_claim();
            self.lock.table.deregister(pid.index());
            self.lock.wake_scan(pid.index(), WakerTable::wake_all);
        } else {
            // Claiming stage: no lock state exists beyond the parked
            // waker and the pid lease.
            self.lock.table.deregister(pid.index());
        }
        self.lock.registry.release(pid);
        if R::ENABLED {
            self.lock.recorder.count(pid.index(), Event::AsyncCancel);
        }
    }
}

impl<T: ?Sized, L: RawParkedWaiters, B: Backend, R: Recorder> fmt::Debug
    for AsyncWrite<'_, T, L, B, R>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.stage {
            WriteStage::Claiming => "claiming",
            WriteStage::Doorway(_) => "doorway",
            WriteStage::Done => "done",
        };
        f.debug_struct("AsyncWrite").field("pid", &self.pid).field("stage", &stage).finish()
    }
}

// ---------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------

/// RAII shared access; the drop releases the raw lock and, when it was
/// the last reader out, wakes parked writers.
///
/// Unlike the sync [`ReadGuard`](rmr_core::rwlock::ReadGuard), this guard
/// is `Send` (where `T` and the token allow): its pid is owned by the
/// guard alone — never thread-leased, never reusable elsewhere — so
/// whichever thread drops the guard is, for the raw contract's purposes,
/// that pid. Futures holding a guard across an `.await` can therefore
/// migrate threads.
#[must_use = "dropping the guard immediately releases the read lock"]
pub struct AsyncReadGuard<'l, T: ?Sized, L: RawRwLock, B: Backend, R: Recorder = NoopRecorder> {
    lock: &'l AsyncRwLock<T, L, B, R>,
    pid: Pid,
    token: Option<L::ReadToken>,
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Deref for AsyncReadGuard<'_, T, L, B, R> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the raw lock admits no writer while this read session
        // is open.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Drop for AsyncReadGuard<'_, T, L, B, R> {
    fn drop(&mut self) {
        let token = self.token.take().expect("read token taken twice");
        self.lock.raw.read_unlock(self.pid, token);
        if R::ENABLED {
            self.lock.recorder.count(self.pid.index(), Event::ReadRelease);
        }
        // Raw release first, then the wake: a woken waiter's attempt must
        // be able to succeed. The last reader out wakes *everyone*, not
        // just writers: a reader parked behind another reader's entry
        // window (see `finish_read`) may have this release as its only
        // remaining wake source.
        // SeqCst: the last-reader edge decides whether anyone scans at
        // all — it must be ordered after the raw release above and
        // before the wake scan's skip checks (the AS-COUNT square).
        if self.lock.readers.fetch_sub(1, MemOrdering::SeqCst) == 1 {
            self.lock.wake_scan(self.pid.index(), WakerTable::wake_all);
        } else if self.lock.table.parked_writers() > 0 {
            // Not the last reader, but a *tokened doorway* may already be
            // grantable: Figure 1's writer waits only for its previous
            // side (a ticket writer only for its predecessor), so the
            // drain it needs can complete long before the global count
            // hits zero. Re-poll parked writers on every reader exit
            // while any exist — the no-writer common case is this one
            // SeqCst load (site AS-COUNT).
            self.lock.wake_scan(self.pid.index(), WakerTable::wake_writers);
        }
        self.lock.registry.release(self.pid);
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock, B: Backend, R: Recorder> fmt::Debug
    for AsyncReadGuard<'_, T, L, B, R>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AsyncReadGuard").field(&&**self).finish()
    }
}

/// RAII exclusive access; the drop releases the raw lock and wakes every
/// parked future (readers and writers — the raw lock's policy arbitrates,
/// losers re-park).
///
/// `Send` for the same reason as [`AsyncReadGuard`].
#[must_use = "dropping the guard immediately releases the write lock"]
pub struct AsyncWriteGuard<'l, T: ?Sized, L: RawRwLock, B: Backend, R: Recorder = NoopRecorder> {
    lock: &'l AsyncRwLock<T, L, B, R>,
    pid: Pid,
    token: Option<L::WriteToken>,
    /// Whether this guard owns the writer-claim word (true for doorway
    /// passages, false for `try_write` / `write_blocking`).
    claimed: bool,
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Deref for AsyncWriteGuard<'_, T, L, B, R> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this write session excludes all other access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> DerefMut
    for AsyncWriteGuard<'_, T, L, B, R>
{
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: this write session excludes all other access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock, B: Backend, R: Recorder> Drop for AsyncWriteGuard<'_, T, L, B, R> {
    fn drop(&mut self) {
        let token = self.token.take().expect("write token taken twice");
        self.lock.raw.write_unlock(self.pid, token);
        if R::ENABLED {
            self.lock.recorder.count(self.pid.index(), Event::WriteRelease);
        }
        // Free the doorway claim *before* the wake scan so a woken
        // claimer's CAS succeeds (the AS-CLAIM square).
        if self.claimed {
            self.lock.release_doorway_claim();
        }
        self.lock.wake_scan(self.pid.index(), WakerTable::wake_all);
        self.lock.registry.release(self.pid);
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock, B: Backend, R: Recorder> fmt::Debug
    for AsyncWriteGuard<'_, T, L, B, R>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AsyncWriteGuard").field(&&**self).finish()
    }
}
