//! **rmr-async** — a waker-parking async front end over the workspace's
//! reader-writer locks.
//!
//! The paper's locks achieve O(1) RMR by *spinning on local variables*; a
//! service tier serving heavy traffic cannot afford a core per waiter.
//! This crate adds the fourth way to wait: [`AsyncRwLock<T, L, B>`] wraps
//! any [`RawRwLock`](rmr_core::raw::RawRwLock) so that `read().await`
//! *suspends* — the would-be spin becomes `Poll::Pending` plus a waker
//! parked in a cache-padded per-pid [`WakerTable`], and
//! the lock's release paths deliver the wake-ups (writer exit and
//! last-reader exit wake everyone parked; a completed read entry re-polls
//! parked readers).
//!
//! Three design commitments, spelled out in DESIGN.md §11:
//!
//! * **The real locks, not a re-implementation.** Every read attempt is
//!   one call into the shipped locks' bounded non-blocking tier, and
//!   every awaited *write* holds a revocable
//!   [`RawParkedWaiters`](rmr_core::raw::RawParkedWaiters) doorway — a
//!   genuine queue presence in the raw lock, counted like a queued
//!   process — so *admission*, *exclusion* **and** the paper's
//!   cross-class fairness transfer to `write().await`: once the doorway
//!   is tokened, the raw lock bounds how many late readers can bypass
//!   the parked writer (the `async-fair` batteries in `rmr-check` hold
//!   it to that bound). The async layer only decides when to re-poll.
//!   See DESIGN.md §11 and §15.
//! * **Cancel-safety by construction.** A pending future holds no lock
//!   state between polls (the try tier's failure path unwinds the doorway
//!   announcement before returning), so dropping it only has to clear a
//!   waker slot and return a pid — which its `Drop` does.
//! * **Model-checkable.** The parking state is generic over the memory
//!   backend, and the executor's wait is a pluggable [`Parker`]
//!   — `rmr-check` runs this exact code under the deterministic `Sched`
//!   scheduler, where a lost wake-up is a replayable deadlock report, and
//!   keeps a seeded `DropWakeup` mutant to prove the battery would see one.
//!
//! No external dependencies: the executor ([`exec::block_on`]) and the
//! waker plumbing are hand-rolled over `std`.
//!
//! # Example
//!
//! ```
//! use rmr_async::exec::block_on;
//! use rmr_async::AsyncRwLock;
//! use rmr_baselines::TicketRwLock;
//! use rmr_bravo::Bravo;
//! use std::sync::Arc;
//!
//! // Reader-biased fast path + parking: fast readers never touch the
//! // inner lock, writers revoke, and nobody spins while waiting.
//! let lock = Arc::new(AsyncRwLock::with_raw_and_capacity(
//!     0u64,
//!     Bravo::new(TicketRwLock::new(8)),
//!     8,
//! ));
//! let mut threads = Vec::new();
//! for _ in 0..4 {
//!     let lock = Arc::clone(&lock);
//!     threads.push(std::thread::spawn(move || {
//!         block_on(async {
//!             for i in 0..100u64 {
//!                 if i % 10 == 0 {
//!                     *lock.write().await += 1;
//!                 } else {
//!                     let _ = *lock.read().await;
//!                 }
//!             }
//!         })
//!     }));
//! }
//! for t in threads {
//!     t.join().unwrap();
//! }
//! block_on(async { assert_eq!(*lock.read().await, 40) });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod lock;
pub mod park;

pub use exec::{block_on, block_on_with};
pub use lock::{AsyncRead, AsyncReadGuard, AsyncRwLock, AsyncWrite, AsyncWriteGuard};
pub use park::{Parker, ThreadParker, WakerTable};
