//! A hand-rolled, dependency-free executor: [`block_on`] drives one
//! future to completion on the calling thread, waiting between polls
//! through a [`Parker`].
//!
//! The parker is the only pluggable part, and it is exactly the seam the
//! deterministic checker uses: `rmr-check`'s `SchedParker` waits by
//! spinning on a `Sched`-backed flag, so under the cooperative scheduler
//! an executor's idle wait is an ordinary futile-spin — explored,
//! stall-detected, and replayed like any other — and a lost wake-up
//! surfaces as a deterministic deadlock report instead of a hung test.

use crate::park::{Parker, ThreadParker};
use std::future::Future;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Adapter: any [`Parker`] is a `std::task::Wake`, so the executor's
/// waker is just `Waker::from(Arc<ParkWake<P>>)` — no hand-written
/// vtables.
struct ParkWake<P: Parker>(Arc<P>);

impl<P: Parker> Wake for ParkWake<P> {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// A [`Waker`] that unparks `parker` — for harnesses that poll futures by
/// hand (the checker's cancellation trials do).
pub fn parker_waker<P: Parker>(parker: Arc<P>) -> Waker {
    Waker::from(Arc::new(ParkWake(parker)))
}

/// Runs `future` to completion on the calling thread, parking the thread
/// between polls.
///
/// # Example
///
/// ```
/// let v = rmr_async::exec::block_on(async { 40 + 2 });
/// assert_eq!(v, 42);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    block_on_with(future, Arc::new(ThreadParker::current()))
}

/// Runs `future` to completion, waiting through an explicit [`Parker`] —
/// the checker passes a `Sched`-backed one so the wait itself is a
/// scheduled, replayable operation.
pub fn block_on_with<F: Future, P: Parker>(future: F, parker: Arc<P>) -> F::Output {
    let waker = parker_waker(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => parker.park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::pin::Pin;

    #[test]
    fn ready_future_completes_without_parking() {
        assert_eq!(block_on(async { 7 }), 7);
    }

    /// A future that is Pending `n` times, each time handing its waker to
    /// another thread that wakes it.
    struct CountDown {
        n: u32,
    }

    impl Future for CountDown {
        type Output = u32;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
            if self.n == 0 {
                return Poll::Ready(0);
            }
            self.n -= 1;
            let waker = cx.waker().clone();
            std::thread::spawn(move || waker.wake());
            Poll::Pending
        }
    }

    #[test]
    fn cross_thread_wakeups_drive_the_loop() {
        assert_eq!(block_on(CountDown { n: 5 }), 0);
    }

    #[test]
    fn wake_by_ref_also_unparks() {
        struct WakeByRefOnce(bool);
        impl Future for WakeByRefOnce {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.0 {
                    return Poll::Ready(());
                }
                self.0 = true;
                cx.waker().wake_by_ref(); // immediate self-wake
                Poll::Pending
            }
        }
        block_on(WakeByRefOnce(false));
    }
}
