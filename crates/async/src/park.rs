//! The parking layer: the [`Parker`] abstraction and the per-pid
//! [`WakerTable`].
//!
//! Parking splits into two halves:
//!
//! * **How a suspended acquisition is resumed** — the [`WakerTable`], a
//!   fixed-capacity array of cache-padded slots (one per pid) in which a
//!   pending future leaves its [`Waker`] before going to sleep, and from
//!   which the release paths of [`AsyncRwLock`](crate::lock::AsyncRwLock)
//!   deliver wake-ups.
//! * **How an executor waits between polls** — the [`Parker`] trait.
//!   [`ThreadParker`] blocks the OS thread (`std::thread::park`), which is
//!   what the shipped [`block_on`](crate::exec::block_on) uses; `rmr-check`
//!   supplies a `SchedParker` whose wait is a spin on a `Sched`-backed flag,
//!   so the deterministic scheduler explores and replays executor wake-ups
//!   exactly like any other shared-memory race.
//!
//! # The slot state machine
//!
//! Each slot is one backend word (`EMPTY`, `PARKED_READER`,
//! `PARKED_WRITER`, `TAKING`) guarding an adjacent waker cell. The word is
//! the *only* cross-thread synchronization — there is no mutex, so a slot
//! transition can never block a scheduled turn:
//!
//! * The slot's **owner** (the one future currently leasing that pid) moves
//!   `EMPTY → PARKED_kind`, writing the waker cell first — while `EMPTY`
//!   the owner has exclusive cell access, because every other transition
//!   starts from `PARKED`.
//! * A **releaser** claims a parked waker with a `PARKED → TAKING` CAS
//!   (exactly one claimant can win), reads the cell, stores `EMPTY`, and
//!   only then invokes the waker. `TAKING` is the in-flight-delivery
//!   window; it lasts two operations.
//! * The owner cancels (future dropped) or retires (lock acquired) with a
//!   `PARKED → EMPTY` CAS; losing that CAS to a releaser means a wake is in
//!   flight, and the owner waits out the two-operation `TAKING` window
//!   before the pid can be reused — otherwise a wake meant for the old
//!   future could be consumed by a new future's registration and lost.
//!
//! # The intrusive waiter list
//!
//! Wake scans do **not** sweep the slot array: the table threads the
//! parked slots onto an intrusive FIFO (per-slot `next`/`prev` indices,
//! living inside the same cache-padded slot the future already owns), so
//! a wake walks exactly the parked waiters — **O(waiters), not
//! O(capacity)** — and never inspects an empty slot. The list ends and
//! every link are guarded by one word-sized spinlock (`queue_lock`) whose
//! critical sections are a handful of index writes, never a wait; the
//! slot *state machine* above stays the cross-thread synchronization for
//! the waker cell itself. Registration links at the tail **before** the
//! parked-count announce (so any scan the announce un-skips also finds
//! the node); cancellation unlinks **before** the slot dance (so a pid is
//! never re-leased while still threaded). The cancel/unlink race against
//! a concurrent wake is arbitrated by the `PARKED → TAKING` claim CAS
//! exactly as before — a claimant that loses simply skips the node — and
//! is explored by the `Sched` cancellation batteries in `rmr-check`.
//! Links are deliberately indices, not pointers, so `Sched` replays
//! observe identical values run after run; all state values are likewise
//! small constants.

use rmr_mutex::mem::{Backend, Ordering as MemOrdering, SharedWord};
use rmr_mutex::{spin_until, CachePadded};
use std::cell::UnsafeCell;
use std::fmt;
use std::task::Waker;

/// How an executor waits between polls, and how anyone wakes it.
///
/// Implementations must tolerate spurious unparks (a [`Parker::park`] may
/// return without a matching unpark) and *token semantics*: an unpark that
/// arrives while the thread is not parked must make the **next** park
/// return immediately, or wake-ups delivered between a `Poll::Pending` and
/// the executor's park would be lost.
pub trait Parker: Send + Sync + 'static {
    /// Blocks the calling context until [`Parker::unpark`] is (or was
    /// already) called.
    fn park(&self);

    /// Releases a parked (or about-to-park) context. Callable from any
    /// thread.
    fn unpark(&self);
}

/// [`Parker`] over `std::thread::park`: the production executor's wait
/// primitive.
///
/// # Example
///
/// ```
/// use rmr_async::park::{Parker, ThreadParker};
/// use std::sync::Arc;
///
/// let parker = Arc::new(ThreadParker::current());
/// let p2 = Arc::clone(&parker);
/// let t = std::thread::spawn(move || p2.unpark());
/// parker.park(); // returns once the token is delivered
/// t.join().unwrap();
/// ```
pub struct ThreadParker {
    token: std::sync::atomic::AtomicBool,
    thread: std::thread::Thread,
}

impl ThreadParker {
    /// A parker whose [`Parker::park`] must be called from the *current*
    /// thread (the one this constructor runs on).
    pub fn current() -> Self {
        Self { token: std::sync::atomic::AtomicBool::new(false), thread: std::thread::current() }
    }
}

impl Parker for ThreadParker {
    fn park(&self) {
        use std::sync::atomic::Ordering;
        // `thread::park` may return spuriously; the token is the truth.
        while !self.token.swap(false, Ordering::SeqCst) {
            std::thread::park();
        }
    }

    fn unpark(&self) {
        use std::sync::atomic::Ordering;
        self.token.store(true, Ordering::SeqCst);
        self.thread.unpark();
    }
}

impl fmt::Debug for ThreadParker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadParker").field("thread", &self.thread.id()).finish()
    }
}

/// Which side of the lock a parked future is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Waiting to read; woken by writer exits.
    Reader,
    /// Waiting to write; woken by writer exits and last-reader exits.
    Writer,
}

/// Slot state: no one is parked here.
const EMPTY: u64 = 0;
/// Slot state: the owner parked a reader waker.
const PARKED_READER: u64 = 1;
/// Slot state: the owner parked a writer waker.
const PARKED_WRITER: u64 = 2;
/// Slot state: a releaser claimed the waker and is about to deliver it.
const TAKING: u64 = 3;

impl WaitKind {
    fn parked_word(self) -> u64 {
        match self {
            WaitKind::Reader => PARKED_READER,
            WaitKind::Writer => PARKED_WRITER,
        }
    }
}

/// Absent link ("null" index).
const NIL: usize = usize::MAX;

struct Slot<B: Backend> {
    state: B::Word,
    /// Written only by the slot's owner while `state == EMPTY`; read only
    /// by the releaser that won the `PARKED → TAKING` CAS. The state
    /// machine is the synchronization.
    cell: UnsafeCell<Option<Waker>>,
    /// Intrusive FIFO links (slot indices, [`NIL`] when absent) and the
    /// threaded flag — read and written **only** while holding the
    /// table's `queue_lock` word. Plain cells, not atomics: the spinlock
    /// is the synchronization, and keeping them invisible to the
    /// `Counting` backend is what makes the O(waiters) wake-cost
    /// assertion exact.
    next: UnsafeCell<usize>,
    prev: UnsafeCell<usize>,
    linked: UnsafeCell<bool>,
}

/// The FIFO's end indices, guarded by `queue_lock` like the links.
struct QueueEnds {
    head: usize,
    tail: usize,
}

// SAFETY: cross-thread access to `cell` is serialized by the slot state
// machine documented on the module (owner-exclusive while EMPTY,
// claimant-exclusive while TAKING); `Waker` itself is Send + Sync.
unsafe impl<B: Backend> Sync for Slot<B> {}
unsafe impl<B: Backend> Send for Slot<B> {}

/// The cache-padded waker-slot table: one slot per pid, plus parked-side
/// counters that let the release paths skip the scan entirely when nobody
/// is waiting.
///
/// # Example
///
/// ```
/// use rmr_async::park::{WaitKind, WakerTable};
/// use rmr_mutex::mem::Native;
/// use std::task::Waker;
///
/// let table: WakerTable<Native> = WakerTable::new(4);
/// table.register(1, WaitKind::Writer, Waker::noop());
/// assert_eq!(table.parked_writers(), 1);
/// assert_eq!(table.wake_writers(), 1); // delivers (and consumes) the waker
/// assert_eq!(table.parked_writers(), 0);
/// ```
pub struct WakerTable<B: Backend> {
    slots: Box<[CachePadded<Slot<B>>]>,
    parked_readers: CachePadded<B::Word>,
    parked_writers: CachePadded<B::Word>,
    /// Wake-ups delivered so far (diagnostics; bumped on the release path
    /// only, never while registering).
    wakeups: CachePadded<B::Word>,
    /// Word-sized test-and-set spinlock guarding `queue` and every slot's
    /// links (see the module docs).
    queue_lock: CachePadded<B::Word>,
    queue: UnsafeCell<QueueEnds>,
}

// SAFETY: `queue` and the slots' link cells are only touched while
// holding the `queue_lock` word (see `with_queue`); everything else is
// atomics plus the slot state machine already argued at `Slot`.
unsafe impl<B: Backend> Sync for WakerTable<B> {}
unsafe impl<B: Backend> Send for WakerTable<B> {}

impl<B: Backend> WakerTable<B> {
    /// A table with `capacity` slots, one per pid in `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "waker table capacity must be positive");
        Self {
            slots: (0..capacity)
                .map(|_| {
                    CachePadded::new(Slot {
                        state: B::Word::new(EMPTY),
                        cell: UnsafeCell::new(None),
                        next: UnsafeCell::new(NIL),
                        prev: UnsafeCell::new(NIL),
                        linked: UnsafeCell::new(false),
                    })
                })
                .collect(),
            parked_readers: CachePadded::new(B::Word::new(0)),
            parked_writers: CachePadded::new(B::Word::new(0)),
            wakeups: CachePadded::new(B::Word::new(0)),
            queue_lock: CachePadded::new(B::Word::new(0)),
            queue: UnsafeCell::new(QueueEnds { head: NIL, tail: NIL }),
        }
    }

    /// Runs `f` with the intrusive FIFO locked. The critical sections are
    /// a bounded handful of index writes (link, unlink, claim) — never a
    /// wait — so the spin here is only ever contention, not blocking.
    fn with_queue<O>(&self, f: impl FnOnce(&mut QueueEnds) -> O) -> O {
        spin_until(|| {
            // Acquire on success pairs with the Release unlock below, so
            // every link written under the previous holder is visible.
            self.queue_lock
                .compare_exchange(0, 1, MemOrdering::Acquire, MemOrdering::Relaxed)
                .is_ok()
        });
        // SAFETY: the lock word is held — exclusive access to the ends
        // and every slot's link cells.
        let out = f(unsafe { &mut *self.queue.get() });
        self.queue_lock.store(0, MemOrdering::Release);
        out
    }

    /// Threads `pid` onto the FIFO tail. No-op when already threaded (a
    /// waker refresh keeps its queue position). Caller holds `queue_lock`.
    fn link_tail(&self, q: &mut QueueEnds, pid: usize) {
        let slot = &self.slots[pid];
        // SAFETY: queue lock held (caller contract).
        unsafe {
            if *slot.linked.get() {
                return;
            }
            *slot.linked.get() = true;
            *slot.next.get() = NIL;
            *slot.prev.get() = q.tail;
            if q.tail == NIL {
                q.head = pid;
            } else {
                *self.slots[q.tail].next.get() = pid;
            }
            q.tail = pid;
        }
    }

    /// Unthreads `pid` from the FIFO. No-op when not threaded. Caller
    /// holds `queue_lock`.
    fn unlink(&self, q: &mut QueueEnds, pid: usize) {
        let slot = &self.slots[pid];
        // SAFETY: queue lock held (caller contract).
        unsafe {
            if !*slot.linked.get() {
                return;
            }
            *slot.linked.get() = false;
            let next = *slot.next.get();
            let prev = *slot.prev.get();
            if prev == NIL {
                q.head = next;
            } else {
                *self.slots[prev].next.get() = next;
            }
            if next == NIL {
                q.tail = prev;
            } else {
                *self.slots[next].prev.get() = prev;
            }
        }
    }

    /// The parked pids in FIFO (park) order — diagnostic snapshot for
    /// tests and the reference-model stress; racing parks/wakes make it
    /// approximate, exact only at rest.
    pub fn parked_fifo(&self) -> Vec<usize> {
        self.with_queue(|q| {
            let mut pids = Vec::new();
            let mut pid = q.head;
            while pid != NIL {
                pids.push(pid);
                // SAFETY: queue lock held.
                pid = unsafe { *self.slots[pid].next.get() };
            }
            pids
        })
    }

    /// Number of slots (pids) the table serves.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Readers currently parked (approximate under concurrency).
    pub fn parked_readers(&self) -> usize {
        // Site AS-COUNT (DESIGN.md §13): release paths key their wake
        // scans off this value, making it the load half of the
        // park-announce SB square (see `register`) — SeqCst, not Relaxed.
        self.parked_readers.load(MemOrdering::SeqCst) as usize
    }

    /// Writers currently parked (approximate under concurrency).
    pub fn parked_writers(&self) -> usize {
        // Site AS-COUNT: same SB square as `parked_readers`.
        self.parked_writers.load(MemOrdering::SeqCst) as usize
    }

    /// Total wake-ups delivered since construction (diagnostics).
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(MemOrdering::Relaxed)
    }

    fn parked_count(&self, kind: WaitKind) -> &B::Word {
        match kind {
            WaitKind::Reader => &self.parked_readers,
            WaitKind::Writer => &self.parked_writers,
        }
    }

    /// Parks `waker` in `pid`'s slot (owner-only: at most one future may
    /// lease a pid at a time). Re-registering while already parked
    /// refreshes the stored waker; a delivery in flight toward a
    /// *previous* registration is waited out (the two-operation `TAKING`
    /// window) so the **latest** waker is always the parked one — the
    /// Future contract lets each poll arrive with a different waker, and
    /// a stale delivery must never substitute for parking the fresh one.
    pub fn register(&self, pid: usize, kind: WaitKind, waker: &Waker) {
        let slot = &self.slots[pid];
        loop {
            // Acquire: an EMPTY observed here may have been stored by a
            // claimant that just read the cell (`wake_matching`); the
            // owner is about to rewrite the cell and must happen-after
            // that take.
            match slot.state.load(MemOrdering::Acquire) {
                EMPTY => {
                    // Owner-exclusive while EMPTY: write the cell, then
                    // publish. Release pairs with the claimant's Acquire
                    // CAS so the cloned waker is visible to the take.
                    unsafe { *slot.cell.get() = Some(waker.clone()) };
                    slot.state.store(kind.parked_word(), MemOrdering::Release);
                    // Thread onto the FIFO *before* the announce: a scan
                    // that the announce below stops from skipping takes
                    // the queue lock after this release and so finds the
                    // node. (A refresh is already threaded and keeps its
                    // position — `link_tail` no-ops.)
                    self.with_queue(|q| self.link_tail(q, pid));
                    // Site AS-ANNOUNCE: the announce half of the
                    // park-announce SB square — the caller re-tries the
                    // lock after this bump, and a releaser checks the
                    // count after its unlock (site AS-COUNT); only the
                    // total order over both pairs rules out the lost
                    // wakeup. SeqCst (an RMW besides, which drains the
                    // store buffer in the checked weak model).
                    self.parked_count(kind).fetch_add(1, MemOrdering::SeqCst);
                    return;
                }
                TAKING => {
                    // The claimant stores EMPTY within two operations and
                    // then fires the superseded waker — a harmless
                    // spurious re-poll. Relaxed: the loop-top Acquire
                    // load re-reads before any cell access.
                    spin_until(|| slot.state.load(MemOrdering::Relaxed) != TAKING);
                }
                parked => {
                    debug_assert_eq!(
                        parked,
                        kind.parked_word(),
                        "slot {pid} parked under a foreign kind"
                    );
                    // Still parked from an earlier poll: reclaim the slot
                    // to refresh the waker. Losing the CAS means a
                    // releaser got there first; loop to the TAKING arm.
                    // The decrement keys off the *observed* word so the
                    // counters stay right even if the single-owner
                    // discipline is violated upstream.
                    let observed =
                        if parked == PARKED_READER { WaitKind::Reader } else { WaitKind::Writer };
                    // Relaxed CAS: success proves no claimant touched the
                    // slot since our own Release publish, so the cell's
                    // last writer was this owner — nothing to acquire.
                    if slot
                        .state
                        .compare_exchange(parked, EMPTY, MemOrdering::Relaxed, MemOrdering::Relaxed)
                        .is_ok()
                    {
                        self.parked_count(observed).fetch_sub(1, MemOrdering::Relaxed);
                    }
                }
            }
        }
    }

    /// Clears `pid`'s slot (owner-only): the future was cancelled or went
    /// on to acquire the lock. Waits out an in-flight delivery (`TAKING`,
    /// a two-operation window) so the pid can be safely re-leased — a
    /// wake delivered across a pid reuse would otherwise be consumed by
    /// the wrong future.
    pub fn deregister(&self, pid: usize) {
        let slot = &self.slots[pid];
        // Unthread first (the cancel/unlink linchpin): once this returns,
        // no scan can reach the node, so the slot dance below — and the
        // pid re-lease after it — can never race a walk that still holds
        // our index. A wake that *already* claimed the slot (`TAKING`)
        // has unlinked it itself; `unlink` then no-ops and the dance
        // waits out the delivery as before.
        self.with_queue(|q| self.unlink(q, pid));
        loop {
            // Acquire for the same reason as `register`'s loop-top load:
            // waiting out TAKING must happen-after the claimant's take
            // before the pid (and so the cell) can be re-leased.
            match slot.state.load(MemOrdering::Acquire) {
                EMPTY => return,
                TAKING => {
                    // The claimant stores EMPTY within two operations;
                    // its wake then lands on this (already finished)
                    // future, which is harmlessly spurious. Relaxed: the
                    // loop-top Acquire load re-reads.
                    spin_until(|| slot.state.load(MemOrdering::Relaxed) != TAKING);
                }
                parked => {
                    let kind =
                        if parked == PARKED_READER { WaitKind::Reader } else { WaitKind::Writer };
                    // Relaxed CAS: as in `register`, success proves the
                    // cell's last writer was this owner.
                    if slot
                        .state
                        .compare_exchange(parked, EMPTY, MemOrdering::Relaxed, MemOrdering::Relaxed)
                        .is_ok()
                    {
                        self.parked_count(kind).fetch_sub(1, MemOrdering::Relaxed);
                        // Owner-exclusive again: drop the stored waker.
                        unsafe { *slot.cell.get() = None };
                        return;
                    }
                }
            }
        }
    }

    /// Delivers every parked *writer* waker. Returns the number of
    /// wake-ups delivered.
    pub fn wake_writers(&self) -> usize {
        // Site AS-COUNT: the load half of the park-announce SB square —
        // this skip check runs after the caller's raw release, and must
        // not be reordered before it or a just-announced parker is
        // stranded. SeqCst.
        if self.parked_writers.load(MemOrdering::SeqCst) == 0 {
            return 0;
        }
        self.wake_matching(false, true)
    }

    /// Delivers every parked *reader* waker (the read-entry-completed
    /// path: the transient entry window that made a concurrent reader's
    /// attempt fail has closed). Returns the number of wake-ups
    /// delivered.
    pub fn wake_readers(&self) -> usize {
        // Site AS-COUNT: SeqCst skip check, as in `wake_writers`.
        if self.parked_readers.load(MemOrdering::SeqCst) == 0 {
            return 0;
        }
        self.wake_matching(true, false)
    }

    /// Delivers every parked waker, reader and writer (the writer exit
    /// and last-reader exit paths). Returns the number of wake-ups
    /// delivered.
    pub fn wake_all(&self) -> usize {
        // Site AS-COUNT: SeqCst skip checks, as in `wake_writers`.
        if self.parked_readers.load(MemOrdering::SeqCst) == 0
            && self.parked_writers.load(MemOrdering::SeqCst) == 0
        {
            return 0;
        }
        self.wake_matching(true, true)
    }

    fn wake_matching(&self, include_readers: bool, include_writers: bool) -> usize {
        // Claim under the queue lock (bounded index work, no user code);
        // deliver outside it, so a `wake()` that synchronously re-polls a
        // future can re-register without self-deadlocking on the lock.
        let mut wakers: Vec<Waker> = Vec::new();
        self.with_queue(|q| {
            let mut pid = q.head;
            // The walk touches only threaded nodes — parked (or
            // mid-refresh) waiters — never an empty slot: O(waiters).
            while pid != NIL {
                let slot = &self.slots[pid];
                // SAFETY: queue lock held; read the link before any claim
                // below rewires it.
                let next = unsafe { *slot.next.get() };
                // Relaxed: a pure hint — the CAS below re-checks with the
                // ordering that matters.
                let state = slot.state.load(MemOrdering::Relaxed);
                let kind = match state {
                    PARKED_READER if include_readers => WaitKind::Reader,
                    PARKED_WRITER if include_writers => WaitKind::Writer,
                    // Wrong side, or the owner is mid-dance (EMPTY while
                    // refreshing, TAKING under another releaser): leave
                    // it threaded and move on.
                    _ => {
                        pid = next;
                        continue;
                    }
                };
                // Acquire on success pairs with the owner's Release
                // publish: the cloned waker in the cell is visible before
                // the take. Failure means the owner retired or refreshed
                // concurrently — skip, the node stays theirs to unthread.
                if slot
                    .state
                    .compare_exchange(state, TAKING, MemOrdering::Acquire, MemOrdering::Relaxed)
                    .is_ok()
                {
                    self.parked_count(kind).fetch_sub(1, MemOrdering::Relaxed);
                    // Claimant-exclusive while TAKING.
                    let waker = unsafe { (*slot.cell.get()).take() };
                    // Release: publishes the take to the next owner write
                    // (the loop-top Acquire loads in `register` /
                    // `deregister`).
                    slot.state.store(EMPTY, MemOrdering::Release);
                    self.unlink(q, pid);
                    if let Some(waker) = waker {
                        self.wakeups.fetch_add(1, MemOrdering::Relaxed);
                        wakers.push(waker);
                    }
                }
                pid = next;
            }
        });
        let woken = wakers.len();
        for waker in wakers {
            waker.wake();
        }
        woken
    }
}

impl<B: Backend> fmt::Debug for WakerTable<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WakerTable")
            .field("capacity", &self.capacity())
            .field("parked_readers", &self.parked_readers())
            .field("parked_writers", &self.parked_writers())
            .field("wakeups", &self.wakeups())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_mutex::mem::Native;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    /// A waker that counts its deliveries.
    struct CountingWake(AtomicU64);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting() -> (Arc<CountingWake>, Waker) {
        let w = Arc::new(CountingWake(AtomicU64::new(0)));
        (Arc::clone(&w), Waker::from(Arc::clone(&w)))
    }

    #[test]
    fn register_wake_round_trip() {
        let table: WakerTable<Native> = WakerTable::new(2);
        let (count, waker) = counting();
        table.register(0, WaitKind::Reader, &waker);
        assert_eq!((table.parked_readers(), table.parked_writers()), (1, 0));
        assert_eq!(table.wake_writers(), 0, "no writer parked");
        assert_eq!(count.0.load(Ordering::SeqCst), 0);
        assert_eq!(table.wake_all(), 1);
        assert_eq!(count.0.load(Ordering::SeqCst), 1);
        assert_eq!(table.parked_readers(), 0);
        assert_eq!(table.wakeups(), 1);
    }

    #[test]
    fn deregister_drops_without_waking() {
        let table: WakerTable<Native> = WakerTable::new(1);
        let (count, waker) = counting();
        table.register(0, WaitKind::Writer, &waker);
        table.deregister(0);
        assert_eq!(table.parked_writers(), 0);
        assert_eq!(table.wake_all(), 0);
        assert_eq!(count.0.load(Ordering::SeqCst), 0, "cancelled waker must not fire");
    }

    #[test]
    fn reregistration_refreshes_the_waker() {
        let table: WakerTable<Native> = WakerTable::new(1);
        let (old_count, old_waker) = counting();
        let (new_count, new_waker) = counting();
        table.register(0, WaitKind::Writer, &old_waker);
        table.register(0, WaitKind::Writer, &new_waker);
        assert_eq!(table.parked_writers(), 1, "refresh must not double-count");
        assert_eq!(table.wake_writers(), 1);
        assert_eq!(old_count.0.load(Ordering::SeqCst), 0, "stale waker fired");
        assert_eq!(new_count.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wake_writers_leaves_readers_parked() {
        let table: WakerTable<Native> = WakerTable::new(4);
        let (r, rw) = counting();
        let (w, ww) = counting();
        table.register(0, WaitKind::Reader, &rw);
        table.register(1, WaitKind::Writer, &ww);
        assert_eq!(table.wake_writers(), 1);
        assert_eq!((r.0.load(Ordering::SeqCst), w.0.load(Ordering::SeqCst)), (0, 1));
        assert_eq!((table.parked_readers(), table.parked_writers()), (1, 0));
        assert_eq!(table.wake_all(), 1);
        assert_eq!(r.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_wakes_deliver_exactly_once() {
        for _ in 0..50 {
            let table: Arc<WakerTable<Native>> = Arc::new(WakerTable::new(8));
            let (count, waker) = counting();
            for pid in 0..8 {
                table.register(pid, WaitKind::Writer, &waker);
            }
            let mut threads = Vec::new();
            for _ in 0..4 {
                let table = Arc::clone(&table);
                threads.push(std::thread::spawn(move || table.wake_all()));
            }
            let woken: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
            assert_eq!(woken, 8, "each parked waker delivered exactly once");
            assert_eq!(count.0.load(Ordering::SeqCst), 8);
            assert_eq!(table.parked_writers(), 0);
        }
    }

    #[test]
    fn thread_parker_token_survives_early_unpark() {
        let p = ThreadParker::current();
        p.unpark(); // token delivered before the park
        p.park(); // must return immediately
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: WakerTable<Native> = WakerTable::new(0);
    }

    #[test]
    fn debug_formats() {
        let table: WakerTable<Native> = WakerTable::new(2);
        let s = format!("{table:?}");
        assert!(s.contains("WakerTable") && s.contains("parked_readers"), "{s}");
    }

    #[test]
    fn fifo_preserves_park_order_and_unthreads_on_wake() {
        let table: WakerTable<Native> = WakerTable::new(8);
        let (_, waker) = counting();
        for pid in [5, 0, 3] {
            table.register(pid, WaitKind::Writer, &waker);
        }
        assert_eq!(table.parked_fifo(), vec![5, 0, 3], "tail-linked in park order");
        // A waker refresh keeps the queue position.
        table.register(0, WaitKind::Writer, &waker);
        assert_eq!(table.parked_fifo(), vec![5, 0, 3], "refresh must not re-queue");
        assert_eq!(table.wake_writers(), 3);
        assert_eq!(table.parked_fifo(), Vec::<usize>::new(), "wake unthreads what it claims");
    }

    #[test]
    fn deregister_unthreads_a_middle_node() {
        let table: WakerTable<Native> = WakerTable::new(8);
        let (count, waker) = counting();
        for pid in [2, 6, 1] {
            table.register(pid, WaitKind::Reader, &waker);
        }
        table.deregister(6);
        assert_eq!(table.parked_fifo(), vec![2, 1]);
        assert_eq!(table.wake_readers(), 2);
        assert_eq!(count.0.load(Ordering::SeqCst), 2, "unthreaded node must not fire");
        assert_eq!(table.parked_fifo(), Vec::<usize>::new());
    }

    /// The acceptance assertion for the intrusive list: a wake performs
    /// the same number of backend operations no matter how large the
    /// table is — it walks the waiter list, inspecting **no** empty
    /// slots. (The links themselves are plain cells, invisible to
    /// `Counting`, so the tally is exactly the skip checks + queue lock +
    /// per-waiter claim dance.)
    #[test]
    fn wake_cost_is_o_waiters_not_o_capacity() {
        use rmr_mutex::mem::{self, Counting};

        fn wake_ops(capacity: usize) -> u64 {
            let table: WakerTable<Counting> = WakerTable::new(capacity);
            let (_, waker) = counting();
            table.register(0, WaitKind::Writer, &waker);
            table.register(1, WaitKind::Reader, &waker);
            mem::reset_thread_tally();
            assert_eq!(table.wake_all(), 2);
            mem::thread_tally().ops
        }

        let small = wake_ops(8);
        let large = wake_ops(512);
        assert_eq!(small, large, "wake cost must not scale with table capacity");
    }
}
