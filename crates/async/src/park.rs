//! The parking layer: the [`Parker`] abstraction and the per-pid
//! [`WakerTable`].
//!
//! Parking splits into two halves:
//!
//! * **How a suspended acquisition is resumed** — the [`WakerTable`], a
//!   fixed-capacity array of cache-padded slots (one per pid) in which a
//!   pending future leaves its [`Waker`] before going to sleep, and from
//!   which the release paths of [`AsyncRwLock`](crate::lock::AsyncRwLock)
//!   deliver wake-ups.
//! * **How an executor waits between polls** — the [`Parker`] trait.
//!   [`ThreadParker`] blocks the OS thread (`std::thread::park`), which is
//!   what the shipped [`block_on`](crate::exec::block_on) uses; `rmr-check`
//!   supplies a `SchedParker` whose wait is a spin on a `Sched`-backed flag,
//!   so the deterministic scheduler explores and replays executor wake-ups
//!   exactly like any other shared-memory race.
//!
//! # The slot state machine
//!
//! Each slot is one backend word (`EMPTY`, `PARKED_READER`,
//! `PARKED_WRITER`, `TAKING`) guarding an adjacent waker cell. The word is
//! the *only* cross-thread synchronization — there is no mutex, so a slot
//! transition can never block a scheduled turn:
//!
//! * The slot's **owner** (the one future currently leasing that pid) moves
//!   `EMPTY → PARKED_kind`, writing the waker cell first — while `EMPTY`
//!   the owner has exclusive cell access, because every other transition
//!   starts from `PARKED`.
//! * A **releaser** claims a parked waker with a `PARKED → TAKING` CAS
//!   (exactly one claimant can win), reads the cell, stores `EMPTY`, and
//!   only then invokes the waker. `TAKING` is the in-flight-delivery
//!   window; it lasts two operations.
//! * The owner cancels (future dropped) or retires (lock acquired) with a
//!   `PARKED → EMPTY` CAS; losing that CAS to a releaser means a wake is in
//!   flight, and the owner waits out the two-operation `TAKING` window
//!   before the pid can be reused — otherwise a wake meant for the old
//!   future could be consumed by a new future's registration and lost.
//!
//! All state values are small constants (never pointers), so `Sched`
//! replays observe identical values run after run.

use rmr_mutex::mem::{Backend, Ordering as MemOrdering, SharedWord};
use rmr_mutex::{spin_until, CachePadded};
use std::cell::UnsafeCell;
use std::fmt;
use std::task::Waker;

/// How an executor waits between polls, and how anyone wakes it.
///
/// Implementations must tolerate spurious unparks (a [`Parker::park`] may
/// return without a matching unpark) and *token semantics*: an unpark that
/// arrives while the thread is not parked must make the **next** park
/// return immediately, or wake-ups delivered between a `Poll::Pending` and
/// the executor's park would be lost.
pub trait Parker: Send + Sync + 'static {
    /// Blocks the calling context until [`Parker::unpark`] is (or was
    /// already) called.
    fn park(&self);

    /// Releases a parked (or about-to-park) context. Callable from any
    /// thread.
    fn unpark(&self);
}

/// [`Parker`] over `std::thread::park`: the production executor's wait
/// primitive.
///
/// # Example
///
/// ```
/// use rmr_async::park::{Parker, ThreadParker};
/// use std::sync::Arc;
///
/// let parker = Arc::new(ThreadParker::current());
/// let p2 = Arc::clone(&parker);
/// let t = std::thread::spawn(move || p2.unpark());
/// parker.park(); // returns once the token is delivered
/// t.join().unwrap();
/// ```
pub struct ThreadParker {
    token: std::sync::atomic::AtomicBool,
    thread: std::thread::Thread,
}

impl ThreadParker {
    /// A parker whose [`Parker::park`] must be called from the *current*
    /// thread (the one this constructor runs on).
    pub fn current() -> Self {
        Self { token: std::sync::atomic::AtomicBool::new(false), thread: std::thread::current() }
    }
}

impl Parker for ThreadParker {
    fn park(&self) {
        use std::sync::atomic::Ordering;
        // `thread::park` may return spuriously; the token is the truth.
        while !self.token.swap(false, Ordering::SeqCst) {
            std::thread::park();
        }
    }

    fn unpark(&self) {
        use std::sync::atomic::Ordering;
        self.token.store(true, Ordering::SeqCst);
        self.thread.unpark();
    }
}

impl fmt::Debug for ThreadParker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadParker").field("thread", &self.thread.id()).finish()
    }
}

/// Which side of the lock a parked future is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Waiting to read; woken by writer exits.
    Reader,
    /// Waiting to write; woken by writer exits and last-reader exits.
    Writer,
}

/// Slot state: no one is parked here.
const EMPTY: u64 = 0;
/// Slot state: the owner parked a reader waker.
const PARKED_READER: u64 = 1;
/// Slot state: the owner parked a writer waker.
const PARKED_WRITER: u64 = 2;
/// Slot state: a releaser claimed the waker and is about to deliver it.
const TAKING: u64 = 3;

impl WaitKind {
    fn parked_word(self) -> u64 {
        match self {
            WaitKind::Reader => PARKED_READER,
            WaitKind::Writer => PARKED_WRITER,
        }
    }
}

struct Slot<B: Backend> {
    state: B::Word,
    /// Written only by the slot's owner while `state == EMPTY`; read only
    /// by the releaser that won the `PARKED → TAKING` CAS. The state
    /// machine is the synchronization.
    cell: UnsafeCell<Option<Waker>>,
}

// SAFETY: cross-thread access to `cell` is serialized by the slot state
// machine documented on the module (owner-exclusive while EMPTY,
// claimant-exclusive while TAKING); `Waker` itself is Send + Sync.
unsafe impl<B: Backend> Sync for Slot<B> {}
unsafe impl<B: Backend> Send for Slot<B> {}

/// The cache-padded waker-slot table: one slot per pid, plus parked-side
/// counters that let the release paths skip the scan entirely when nobody
/// is waiting.
///
/// # Example
///
/// ```
/// use rmr_async::park::{WaitKind, WakerTable};
/// use rmr_mutex::mem::Native;
/// use std::task::Waker;
///
/// let table: WakerTable<Native> = WakerTable::new(4);
/// table.register(1, WaitKind::Writer, Waker::noop());
/// assert_eq!(table.parked_writers(), 1);
/// assert_eq!(table.wake_writers(), 1); // delivers (and consumes) the waker
/// assert_eq!(table.parked_writers(), 0);
/// ```
pub struct WakerTable<B: Backend> {
    slots: Box<[CachePadded<Slot<B>>]>,
    parked_readers: CachePadded<B::Word>,
    parked_writers: CachePadded<B::Word>,
    /// Wake-ups delivered so far (diagnostics; bumped on the release path
    /// only, never while registering).
    wakeups: CachePadded<B::Word>,
}

impl<B: Backend> WakerTable<B> {
    /// A table with `capacity` slots, one per pid in `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "waker table capacity must be positive");
        Self {
            slots: (0..capacity)
                .map(|_| {
                    CachePadded::new(Slot {
                        state: B::Word::new(EMPTY),
                        cell: UnsafeCell::new(None),
                    })
                })
                .collect(),
            parked_readers: CachePadded::new(B::Word::new(0)),
            parked_writers: CachePadded::new(B::Word::new(0)),
            wakeups: CachePadded::new(B::Word::new(0)),
        }
    }

    /// Number of slots (pids) the table serves.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Readers currently parked (approximate under concurrency).
    pub fn parked_readers(&self) -> usize {
        // Site AS-COUNT (DESIGN.md §13): release paths key their wake
        // scans off this value, making it the load half of the
        // park-announce SB square (see `register`) — SeqCst, not Relaxed.
        self.parked_readers.load(MemOrdering::SeqCst) as usize
    }

    /// Writers currently parked (approximate under concurrency).
    pub fn parked_writers(&self) -> usize {
        // Site AS-COUNT: same SB square as `parked_readers`.
        self.parked_writers.load(MemOrdering::SeqCst) as usize
    }

    /// Total wake-ups delivered since construction (diagnostics).
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(MemOrdering::Relaxed)
    }

    fn parked_count(&self, kind: WaitKind) -> &B::Word {
        match kind {
            WaitKind::Reader => &self.parked_readers,
            WaitKind::Writer => &self.parked_writers,
        }
    }

    /// Parks `waker` in `pid`'s slot (owner-only: at most one future may
    /// lease a pid at a time). Re-registering while already parked
    /// refreshes the stored waker; a delivery in flight toward a
    /// *previous* registration is waited out (the two-operation `TAKING`
    /// window) so the **latest** waker is always the parked one — the
    /// Future contract lets each poll arrive with a different waker, and
    /// a stale delivery must never substitute for parking the fresh one.
    pub fn register(&self, pid: usize, kind: WaitKind, waker: &Waker) {
        let slot = &self.slots[pid];
        loop {
            // Acquire: an EMPTY observed here may have been stored by a
            // claimant that just read the cell (`wake_matching`); the
            // owner is about to rewrite the cell and must happen-after
            // that take.
            match slot.state.load(MemOrdering::Acquire) {
                EMPTY => {
                    // Owner-exclusive while EMPTY: write the cell, then
                    // publish. Release pairs with the claimant's Acquire
                    // CAS so the cloned waker is visible to the take.
                    unsafe { *slot.cell.get() = Some(waker.clone()) };
                    slot.state.store(kind.parked_word(), MemOrdering::Release);
                    // Site AS-ANNOUNCE: the announce half of the
                    // park-announce SB square — the caller re-tries the
                    // lock after this bump, and a releaser checks the
                    // count after its unlock (site AS-COUNT); only the
                    // total order over both pairs rules out the lost
                    // wakeup. SeqCst (an RMW besides, which drains the
                    // store buffer in the checked weak model).
                    self.parked_count(kind).fetch_add(1, MemOrdering::SeqCst);
                    return;
                }
                TAKING => {
                    // The claimant stores EMPTY within two operations and
                    // then fires the superseded waker — a harmless
                    // spurious re-poll. Relaxed: the loop-top Acquire
                    // load re-reads before any cell access.
                    spin_until(|| slot.state.load(MemOrdering::Relaxed) != TAKING);
                }
                parked => {
                    debug_assert_eq!(
                        parked,
                        kind.parked_word(),
                        "slot {pid} parked under a foreign kind"
                    );
                    // Still parked from an earlier poll: reclaim the slot
                    // to refresh the waker. Losing the CAS means a
                    // releaser got there first; loop to the TAKING arm.
                    // The decrement keys off the *observed* word so the
                    // counters stay right even if the single-owner
                    // discipline is violated upstream.
                    let observed =
                        if parked == PARKED_READER { WaitKind::Reader } else { WaitKind::Writer };
                    // Relaxed CAS: success proves no claimant touched the
                    // slot since our own Release publish, so the cell's
                    // last writer was this owner — nothing to acquire.
                    if slot
                        .state
                        .compare_exchange(parked, EMPTY, MemOrdering::Relaxed, MemOrdering::Relaxed)
                        .is_ok()
                    {
                        self.parked_count(observed).fetch_sub(1, MemOrdering::Relaxed);
                    }
                }
            }
        }
    }

    /// Clears `pid`'s slot (owner-only): the future was cancelled or went
    /// on to acquire the lock. Waits out an in-flight delivery (`TAKING`,
    /// a two-operation window) so the pid can be safely re-leased — a
    /// wake delivered across a pid reuse would otherwise be consumed by
    /// the wrong future.
    pub fn deregister(&self, pid: usize) {
        let slot = &self.slots[pid];
        loop {
            // Acquire for the same reason as `register`'s loop-top load:
            // waiting out TAKING must happen-after the claimant's take
            // before the pid (and so the cell) can be re-leased.
            match slot.state.load(MemOrdering::Acquire) {
                EMPTY => return,
                TAKING => {
                    // The claimant stores EMPTY within two operations;
                    // its wake then lands on this (already finished)
                    // future, which is harmlessly spurious. Relaxed: the
                    // loop-top Acquire load re-reads.
                    spin_until(|| slot.state.load(MemOrdering::Relaxed) != TAKING);
                }
                parked => {
                    let kind =
                        if parked == PARKED_READER { WaitKind::Reader } else { WaitKind::Writer };
                    // Relaxed CAS: as in `register`, success proves the
                    // cell's last writer was this owner.
                    if slot
                        .state
                        .compare_exchange(parked, EMPTY, MemOrdering::Relaxed, MemOrdering::Relaxed)
                        .is_ok()
                    {
                        self.parked_count(kind).fetch_sub(1, MemOrdering::Relaxed);
                        // Owner-exclusive again: drop the stored waker.
                        unsafe { *slot.cell.get() = None };
                        return;
                    }
                }
            }
        }
    }

    /// Delivers every parked *writer* waker. Returns the number of
    /// wake-ups delivered.
    pub fn wake_writers(&self) -> usize {
        // Site AS-COUNT: the load half of the park-announce SB square —
        // this skip check runs after the caller's raw release, and must
        // not be reordered before it or a just-announced parker is
        // stranded. SeqCst.
        if self.parked_writers.load(MemOrdering::SeqCst) == 0 {
            return 0;
        }
        self.wake_matching(false, true)
    }

    /// Delivers every parked *reader* waker (the read-entry-completed
    /// path: the transient entry window that made a concurrent reader's
    /// attempt fail has closed). Returns the number of wake-ups
    /// delivered.
    pub fn wake_readers(&self) -> usize {
        // Site AS-COUNT: SeqCst skip check, as in `wake_writers`.
        if self.parked_readers.load(MemOrdering::SeqCst) == 0 {
            return 0;
        }
        self.wake_matching(true, false)
    }

    /// Delivers every parked waker, reader and writer (the writer exit
    /// and last-reader exit paths). Returns the number of wake-ups
    /// delivered.
    pub fn wake_all(&self) -> usize {
        // Site AS-COUNT: SeqCst skip checks, as in `wake_writers`.
        if self.parked_readers.load(MemOrdering::SeqCst) == 0
            && self.parked_writers.load(MemOrdering::SeqCst) == 0
        {
            return 0;
        }
        self.wake_matching(true, true)
    }

    fn wake_matching(&self, include_readers: bool, include_writers: bool) -> usize {
        let mut woken = 0;
        for slot in self.slots.iter() {
            // Relaxed: a pure hint — the CAS below re-checks with the
            // ordering that matters.
            let state = slot.state.load(MemOrdering::Relaxed);
            let kind = match state {
                PARKED_READER if include_readers => WaitKind::Reader,
                PARKED_WRITER if include_writers => WaitKind::Writer,
                _ => continue,
            };
            // Acquire on success pairs with the owner's Release publish:
            // the cloned waker in the cell is visible before the take.
            if slot
                .state
                .compare_exchange(state, TAKING, MemOrdering::Acquire, MemOrdering::Relaxed)
                .is_err()
            {
                continue; // the owner retired it, or another releaser won
            }
            self.parked_count(kind).fetch_sub(1, MemOrdering::Relaxed);
            // Claimant-exclusive while TAKING.
            let waker = unsafe { (*slot.cell.get()).take() };
            // Release: publishes the take to the next owner write (the
            // loop-top Acquire loads in `register`/`deregister`).
            slot.state.store(EMPTY, MemOrdering::Release);
            if let Some(waker) = waker {
                self.wakeups.fetch_add(1, MemOrdering::Relaxed);
                woken += 1;
                waker.wake();
            }
        }
        woken
    }
}

impl<B: Backend> fmt::Debug for WakerTable<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WakerTable")
            .field("capacity", &self.capacity())
            .field("parked_readers", &self.parked_readers())
            .field("parked_writers", &self.parked_writers())
            .field("wakeups", &self.wakeups())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_mutex::mem::Native;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    /// A waker that counts its deliveries.
    struct CountingWake(AtomicU64);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting() -> (Arc<CountingWake>, Waker) {
        let w = Arc::new(CountingWake(AtomicU64::new(0)));
        (Arc::clone(&w), Waker::from(Arc::clone(&w)))
    }

    #[test]
    fn register_wake_round_trip() {
        let table: WakerTable<Native> = WakerTable::new(2);
        let (count, waker) = counting();
        table.register(0, WaitKind::Reader, &waker);
        assert_eq!((table.parked_readers(), table.parked_writers()), (1, 0));
        assert_eq!(table.wake_writers(), 0, "no writer parked");
        assert_eq!(count.0.load(Ordering::SeqCst), 0);
        assert_eq!(table.wake_all(), 1);
        assert_eq!(count.0.load(Ordering::SeqCst), 1);
        assert_eq!(table.parked_readers(), 0);
        assert_eq!(table.wakeups(), 1);
    }

    #[test]
    fn deregister_drops_without_waking() {
        let table: WakerTable<Native> = WakerTable::new(1);
        let (count, waker) = counting();
        table.register(0, WaitKind::Writer, &waker);
        table.deregister(0);
        assert_eq!(table.parked_writers(), 0);
        assert_eq!(table.wake_all(), 0);
        assert_eq!(count.0.load(Ordering::SeqCst), 0, "cancelled waker must not fire");
    }

    #[test]
    fn reregistration_refreshes_the_waker() {
        let table: WakerTable<Native> = WakerTable::new(1);
        let (old_count, old_waker) = counting();
        let (new_count, new_waker) = counting();
        table.register(0, WaitKind::Writer, &old_waker);
        table.register(0, WaitKind::Writer, &new_waker);
        assert_eq!(table.parked_writers(), 1, "refresh must not double-count");
        assert_eq!(table.wake_writers(), 1);
        assert_eq!(old_count.0.load(Ordering::SeqCst), 0, "stale waker fired");
        assert_eq!(new_count.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wake_writers_leaves_readers_parked() {
        let table: WakerTable<Native> = WakerTable::new(4);
        let (r, rw) = counting();
        let (w, ww) = counting();
        table.register(0, WaitKind::Reader, &rw);
        table.register(1, WaitKind::Writer, &ww);
        assert_eq!(table.wake_writers(), 1);
        assert_eq!((r.0.load(Ordering::SeqCst), w.0.load(Ordering::SeqCst)), (0, 1));
        assert_eq!((table.parked_readers(), table.parked_writers()), (1, 0));
        assert_eq!(table.wake_all(), 1);
        assert_eq!(r.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_wakes_deliver_exactly_once() {
        for _ in 0..50 {
            let table: Arc<WakerTable<Native>> = Arc::new(WakerTable::new(8));
            let (count, waker) = counting();
            for pid in 0..8 {
                table.register(pid, WaitKind::Writer, &waker);
            }
            let mut threads = Vec::new();
            for _ in 0..4 {
                let table = Arc::clone(&table);
                threads.push(std::thread::spawn(move || table.wake_all()));
            }
            let woken: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
            assert_eq!(woken, 8, "each parked waker delivered exactly once");
            assert_eq!(count.0.load(Ordering::SeqCst), 8);
            assert_eq!(table.parked_writers(), 0);
        }
    }

    #[test]
    fn thread_parker_token_survives_early_unpark() {
        let p = ThreadParker::current();
        p.unpark(); // token delivered before the park
        p.park(); // must return immediately
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: WakerTable<Native> = WakerTable::new(0);
    }

    #[test]
    fn debug_formats() {
        let table: WakerTable<Native> = WakerTable::new(2);
        let s = format!("{table:?}");
        assert!(s.contains("WakerTable") && s.contains("parked_readers"), "{s}");
    }
}
