//! **rmr-swap** — an epoch-swap snapshot tier with zero-RMR wait-free
//! reads over any of the workspace's raw locks.
//!
//! The paper's locks achieve O(1) RMR per passage; BRAVO (`rmr-bravo`)
//! drops a biased reader to a couple of ops. This tier takes the last
//! step for read-mostly data: a [`Snapshot<T>`](Snapshot) read is one
//! payload-pointer load plus an epoch stamp into the reader's *own*
//! cache-padded slot — **zero** shared-variable RMRs in steady state,
//! wait-free (no loop whose length another process controls). Writers
//! pay for it: an update clones-or-rebuilds the payload, swaps a
//! pointer, and retires the old payload through a grace period over the
//! reader epoch table — RCU's trade, with the age-vs-memory retirement
//! knob from Ramani et al. surfaced as the [`RetirePolicy`] type
//! parameter.
//!
//! # The protocol
//!
//! Shared state: a global epoch counter `G` (starts at 1), the current
//! payload pointer `P`, and one cache-padded epoch slot per pid in the
//! lock's [`PidRegistry`] (0 = empty). The accesses that carry the
//! grace-period argument — the reader's epoch publish and payload load,
//! the writer's payload swap, epoch bump, and table scan (sites SW-PUB,
//! SW-LOAD, SW-SWAP, SW-BUMP, SW-SCAN in DESIGN.md §13) — are `SeqCst`;
//! everything else (the initial epoch read, lock-protected accesses,
//! diagnostics) is relaxed, with the justification at each site.
//!
//! *Reader pin* ([`Snapshot::load`]):
//!
//! 1. `e ← G`; **publish** `e` into own slot;
//! 2. `p ← P` (the snapshot the guard will dereference);
//! 3. `e₂ ← G`; if `e₂ ≠ e`, republish `e₂` and reload `p` — one bounded
//!    round, so the whole passage is wait-free.
//!
//! Guard drop clears the slot.
//!
//! *Writer install* ([`Snapshot::update`] / [`Snapshot::store`]), under
//! the raw lock `L`'s write session (writers serialize through any of the
//! paper's locks, so readers never contend on anything):
//!
//! 1. build the new payload, `old ← swap(P, new)`;
//! 2. `r ← G + 1` (fetch&add — `old` is *retired at epoch `r`*);
//! 3. grace period: `old` (and any earlier retiree) may be freed once
//!    every slot is empty or holds an epoch ≥ its retirement epoch.
//!    [`RetireEager`] waits for that bound inside the write session;
//!    [`RetireBatched`] defers it until `high_water` payloads have
//!    accumulated and then frees whatever a single non-blocking scan
//!    proves unpinned.
//!
//! # Why the publish-then-load order is the linchpin
//!
//! A guard must never dereference a freed payload. The freeing rule is
//! "retired at `r`, freeable once `r` ≤ every published epoch". Suppose a
//! reader's guard holds payload `p` and some writer frees `p`:
//!
//! * the reader loaded `P` **after** publishing `v`, so at load time `p`
//!   was current, not yet retired;
//! * the retiring swap therefore happened after the reader's load, and
//!   the epoch bump gives `r ≥ v + 1 > v` (G was already ≥ `v` when the
//!   reader read it, and it only grows);
//! * the retiring writer's grace scan runs after its swap, hence after
//!   the reader's publish — so it reads the slot as `v < r` and the
//!   freeing rule forbids freeing `p` until the slot changes.
//!
//! Publishing a *stale* epoch (G advanced between reading `e` and
//! publishing it) only over-pins — a lower published epoch pins more,
//! never less. The step-3 re-check bounds that staleness to one round so
//! a reader never blocks reclamation by more than one epoch of slack.
//! The model-checked battery in `rmr-check` (see `tests/swap.rs` there)
//! drives exactly these oracles — no guard observes a retired payload,
//! no payload is freed while an epoch pins it — and a
//! `Mutation::PrematureRetire` mutant (the grace scan skips one slot)
//! verifies the battery would catch the bug this argument rules out.
//!
//! # RMR cost — an honest accounting
//!
//! * **Read passage, steady state**: `G` and `P` are cached after the
//!   first passage and invalidated only by an actual update; the epoch
//!   publish and clear hit the reader's own padded slot, which no one
//!   else writes — in the CC model that is **0 RMRs** while no write is
//!   in flight. The `Counting`-backend acceptance proof in
//!   `swap_table` asserts exactly this and exits nonzero otherwise.
//! * **Write passage**: O(copy of `T`) + the raw lock's O(1) RMR
//!   passage + an **O(registry-capacity) grace scan** — every slot is
//!   read once (eager waits on each until it moves; batched reads each
//!   once). Writers are not the point of this tier; if writes matter,
//!   use the locks directly.
//! * **Memory**: a stalled reader (guard held across a long pause, or
//!   leaked) pins every payload retired after its published epoch.
//!   [`RetireEager`] converts that into writer *blocking* (bounded
//!   memory: at most one retired payload in flight); [`RetireBatched`]
//!   converts it into **unbounded memory growth** while the reader
//!   stalls — the retired list grows by one payload per update until the
//!   pin clears. That is the RCU age-memory trade-off; pick per
//!   workload and watch [`Snapshot::peak_retired`].
//!
//! # Reentrancy
//!
//! Unlike `RwLock::read` — where a nested read self-deadlocks whenever a
//! writer is waiting under the writer-priority or starvation-free
//! policies — [`Snapshot::load`] is safely reentrant: a nested load on
//! the same thread leases a distinct pid (the thread's cached lease is
//! busy while the outer guard is open), publishes in its own slot, and
//! never waits on anyone. The `load_is_reentrant` test proves it with a
//! writer mid-update.
//!
//! # Example
//!
//! ```
//! use rmr_swap::Snapshot;
//! use std::sync::Arc;
//!
//! let snap = Arc::new(Snapshot::new(vec![1, 2, 3], 4));
//! let reader = {
//!     let snap = Arc::clone(&snap);
//!     std::thread::spawn(move || snap.load().len())
//! };
//! snap.update(|v| {
//!     let mut next = v.clone();
//!     next.push(4);
//!     next
//! });
//! let seen = reader.join().unwrap();
//! assert!(seen == 3 || seen == 4); // a snapshot: one version or the other
//! assert_eq!(snap.load().len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rmr_core::mwmr::MwmrStarvationFree;
use rmr_core::raw::RawRwLock;
use rmr_core::registry::{Pid, PidRegistry};
use rmr_core::rwlock::{lease_pid, release_pid, PidSource};
use rmr_mutex::mem::{Backend, Native, Ordering as MemOrdering, SharedWord};
use rmr_mutex::spin_until;
use rmr_obs::{Event, Metric, NoopRecorder, Recorder};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Retirement policies
// ---------------------------------------------------------------------

/// When a writer reclaims retired payloads — the RCU age-memory knob.
///
/// Implemented by [`RetireEager`] and [`RetireBatched`]; a policy is a
/// type parameter of [`Snapshot`] so the choice is zero-cost.
pub trait RetirePolicy: Send + Sync + 'static {
    /// Eager policies block the writer (inside its write session) until
    /// every payload it retired is provably unpinned, then free them all:
    /// bounded memory, writer waits on stalled readers.
    const EAGER: bool;

    /// For non-eager policies: whether a reclamation scan should run now,
    /// given the current retired-list length.
    fn should_scan(&self, retired: usize) -> bool;
}

/// Free every retired payload before the write session ends: at most one
/// retired payload in flight, at the cost of the writer waiting out any
/// reader that pins it.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetireEager;

impl RetirePolicy for RetireEager {
    const EAGER: bool = true;

    fn should_scan(&self, _retired: usize) -> bool {
        true
    }
}

/// Let retired payloads age: accumulate until `high_water`, then free
/// whatever one non-blocking scan proves unpinned. Writers never wait on
/// readers, but a stalled reader makes the retired list grow without
/// bound (one payload per update).
#[derive(Clone, Copy, Debug)]
pub struct RetireBatched {
    /// Run a reclamation scan once this many payloads are retired.
    pub high_water: usize,
}

impl Default for RetireBatched {
    fn default() -> Self {
        RetireBatched { high_water: 8 }
    }
}

impl RetirePolicy for RetireBatched {
    const EAGER: bool = false;

    fn should_scan(&self, retired: usize) -> bool {
        retired >= self.high_water
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

/// An epoch-swap snapshot cell: wait-free zero-RMR reads of a `T`,
/// copy-swap-retire writes serialized through the raw lock `L`.
///
/// See the [module docs](self) for the protocol and its cost model.
/// Defaults: writers serialize through the paper's starvation-free lock,
/// retirement is [`RetireEager`], memory is the native backend, and the
/// recorder is the inert [`NoopRecorder`] (hooks const-fold away; swap
/// it via [`Snapshot::with_recorder`] to count loads/installs and
/// histogram retire depth and grace-scan duration).
pub struct Snapshot<T, L = MwmrStarvationFree, P = RetireEager, B = Native, R = NoopRecorder>
where
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
    recorder: R,
    /// The global epoch `G`. Starts at 1 (0 is the empty-slot sentinel)
    /// and is bumped once per install, *after* the payload swap.
    epoch: B::Word,
    /// The current payload: a `Box<T>` address. Readers only ever load
    /// it; the (lock-serialized) writer is the only swapper, so there is
    /// no ABA to defend against.
    payload: B::Word,
    /// Pid slots double as the reader epoch table (see `PidRegistry`).
    registry: Arc<PidRegistry<B>>,
    /// Serializes writers. Readers never touch it.
    lock: L,
    policy: P,
    /// Retired `(payload address, retirement epoch)` pairs awaiting the
    /// grace bound. Only the lock-serialized writer and explicit
    /// [`Snapshot::reclaim`] calls touch it, so a plain mutex costs no
    /// reader anything.
    retired: Mutex<Vec<(u64, u64)>>,
    /// Diagnostics. Deliberately plain std atomics, not `B`-typed: they
    /// must not pollute `Counting` tallies or `Sched` schedules.
    swaps: AtomicU64,
    peak_retired: AtomicU64,
    _payload_owner: PhantomData<T>,
}

// The struct holds raw payload addresses (in `retired` and `payload`),
// which kills the auto impls.
//
// SAFETY: `Snapshot` owns every payload it points to. Guards hand out
// `&T` from any thread (needs `T: Sync`) and reclamation drops `Box<T>`
// on whichever thread runs the scan (needs `T: Send`). Everything else
// in the struct is already thread-safe (`L: RawRwLock` is `Send + Sync`,
// backend words are shared-memory cells, the retired list is mutexed).
unsafe impl<T, L, P, B, R> Send for Snapshot<T, L, P, B, R>
where
    T: Send + Sync,
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
}
unsafe impl<T, L, P, B, R> Sync for Snapshot<T, L, P, B, R>
where
    T: Send + Sync,
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
}

impl<T: Send + Sync> Snapshot<T> {
    /// Creates a snapshot of `value` for up to `capacity` concurrent
    /// threads, with the default starvation-free writer lock and eager
    /// retirement.
    pub fn new(value: T, capacity: usize) -> Self {
        Self::with_raw(value, MwmrStarvationFree::new(capacity), RetireEager)
    }
}

impl<T, L, P> Snapshot<T, L, P, Native>
where
    T: Send + Sync,
    L: RawRwLock,
    P: RetirePolicy,
{
    /// Creates a snapshot over any raw lock and retirement policy. The
    /// registry (and thus the reader table) is sized to
    /// `lock.max_processes()`.
    ///
    /// # Panics
    ///
    /// Panics if the lock reports unbounded capacity (`usize::MAX`) —
    /// use [`Snapshot::with_raw_and_capacity`] for such locks.
    pub fn with_raw(value: T, lock: L, policy: P) -> Self {
        let capacity = lock.max_processes();
        assert!(
            capacity != usize::MAX,
            "lock reports unbounded capacity; use with_raw_and_capacity"
        );
        Self::with_raw_and_capacity(value, lock, policy, capacity)
    }

    /// [`Snapshot::with_raw`] with an explicit reader-table capacity, for
    /// raw locks that report unbounded `max_processes` (e.g. the
    /// `StdRwLock` baseline).
    pub fn with_raw_and_capacity(value: T, lock: L, policy: P, capacity: usize) -> Self {
        Self::with_raw_in(value, lock, policy, capacity, Native)
    }
}

impl<T, L, P, B> Snapshot<T, L, P, B>
where
    T: Send + Sync,
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
{
    /// Fully general constructor: any lock, policy, capacity, and memory
    /// backend (`Counting` for RMR proofs, `Sched` for model checking).
    pub fn with_raw_in(value: T, lock: L, policy: P, capacity: usize, backend: B) -> Self {
        Snapshot {
            recorder: NoopRecorder,
            epoch: B::Word::new(1),
            payload: B::Word::new(Box::into_raw(Box::new(value)) as u64),
            registry: Arc::new(PidRegistry::new_in(capacity, backend)),
            lock,
            policy,
            retired: Mutex::new(Vec::new()),
            swaps: AtomicU64::new(0),
            peak_retired: AtomicU64::new(0),
            _payload_owner: PhantomData,
        }
    }
}

impl<T, L, P, B, R> Snapshot<T, L, P, B, R>
where
    T: Send + Sync,
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
    /// Replaces the snapshot's recorder, re-typing the cell: every load
    /// then counts [`Event::SnapLoad`], every install counts
    /// [`Event::SnapInstall`] plus a [`Metric::RetireDepth`] sample, and
    /// an eager writer's grace wait is timed as [`Metric::GraceScanNs`].
    /// Builder-style because the recorder is a type parameter — disabled
    /// hooks const-fold away.
    pub fn with_recorder<R2: Recorder>(self, recorder: R2) -> Snapshot<T, L, P, B, R2> {
        // `Snapshot` has a `Drop` impl, so its fields cannot be moved out
        // by destructuring; take them by `ptr::read` from a ManuallyDrop
        // shell instead.
        let this = std::mem::ManuallyDrop::new(self);
        // SAFETY: every field is read out exactly once and the shell is
        // never dropped, so ownership transfers without a double free;
        // the old recorder is dropped explicitly.
        unsafe {
            drop(std::ptr::read(&this.recorder));
            Snapshot {
                recorder,
                epoch: std::ptr::read(&this.epoch),
                payload: std::ptr::read(&this.payload),
                registry: std::ptr::read(&this.registry),
                lock: std::ptr::read(&this.lock),
                policy: std::ptr::read(&this.policy),
                retired: std::ptr::read(&this.retired),
                swaps: std::ptr::read(&this.swaps),
                peak_retired: std::ptr::read(&this.peak_retired),
                _payload_owner: PhantomData,
            }
        }
    }

    /// The snapshot's recorder (the default is the inert [`NoopRecorder`]).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    // -- read side ----------------------------------------------------

    /// [`Snapshot::load`] with an explicit pid (allocate one from
    /// [`Snapshot::registry`]): the wait-free pin passage, for callers
    /// that manage pids themselves (benchmarks, the checker).
    ///
    /// The pid must not already have an open guard — each pid owns one
    /// epoch slot, and a nested pin would overwrite the outer guard's
    /// published epoch.
    pub fn load_with(&self, pid: Pid) -> SnapGuard<'_, T, L, P, B, R> {
        debug_assert!(
            self.registry.published_epoch(pid.index()).is_none(),
            "pid {pid} already has an open snapshot guard"
        );
        let (value, epoch) = self.pin(pid);
        SnapGuard { snap: self, pid, epoch, value, lease: None, _not_send: PhantomData }
    }

    /// The pin passage: publish the epoch, load the payload, re-check
    /// the epoch once (see the module docs for why this order is the
    /// exclusion linchpin).
    fn pin(&self, pid: Pid) -> (*const T, u64) {
        // Relaxed: G is monotone, so a stale read here only publishes a
        // lower epoch, which over-pins — safe (module docs). The ordering
        // the proof needs starts at the publish below.
        let mut e = self.epoch.load(MemOrdering::Relaxed);
        // `publish_epoch` is SeqCst (site SW-PUB, in the registry).
        self.registry.publish_epoch(pid, e);
        // Site SW-LOAD: the load half of the reader's publish-then-load
        // SB square. SeqCst keeps it after the publish in the single
        // total order — a writer's scan that misses the publication must
        // imply this load sees the post-swap payload.
        let mut p = self.payload.load(MemOrdering::SeqCst);
        // SeqCst re-check: ordered after the payload load, so it cannot
        // miss the bump of an install whose payload we just observed —
        // that is what bounds a guard's over-pin to one epoch of slack.
        let e2 = self.epoch.load(MemOrdering::SeqCst);
        if e2 != e {
            // An install landed mid-pin. Our published epoch is merely
            // stale (it over-pins, which is safe); republish the fresh
            // one and reload so we hold the newest payload and block no
            // reclamation beyond one round. Exactly one bounded retry:
            // wait-freedom does not depend on writers pausing.
            self.registry.publish_epoch(pid, e2);
            p = self.payload.load(MemOrdering::SeqCst); // site SW-LOAD again
            e = e2;
        }
        if R::ENABLED {
            self.recorder.count(pid.index(), Event::SnapLoad);
        }
        (p as *const T, e)
    }

    // -- write side ---------------------------------------------------

    /// [`Snapshot::update`] with an explicit pid (used for the raw
    /// lock's write session).
    pub fn update_with(&self, pid: Pid, f: impl FnOnce(&T) -> T) {
        let token = self.lock.write_lock(pid);
        // SAFETY: we hold the write lock, so no other writer can swap or
        // retire the current payload out from under us; readers never
        // mutate it.
        // Relaxed: the last swap was performed under this same lock, so
        // the lock handoff already ordered it before this load.
        let current = unsafe { &*(self.payload.load(MemOrdering::Relaxed) as *const T) };
        let next = f(current);
        self.install(pid, next);
        self.lock.write_unlock(pid, token);
    }

    /// [`Snapshot::store`] with an explicit pid.
    pub fn store_with(&self, pid: Pid, value: T) {
        let token = self.lock.write_lock(pid);
        self.install(pid, value);
        self.lock.write_unlock(pid, token);
    }

    /// Swap-and-retire, under the caller's write session.
    fn install(&self, pid: Pid, next: T) {
        let new_ptr = Box::into_raw(Box::new(next)) as u64;
        // Site SW-SWAP: the store half of the writer's swap-then-scan SB
        // square — SeqCst so the grace scan below is ordered after it.
        let old = self.payload.swap(new_ptr, MemOrdering::SeqCst);
        // Site SW-BUMP: SeqCst keeps the bump between the swap and the
        // scan in the total order; a reader's re-check that sees the new
        // payload must also be able to see the bumped epoch.
        let r = self.epoch.fetch_add(1, MemOrdering::SeqCst) + 1;
        self.swaps.fetch_add(1, Ordering::Relaxed);

        let pending = {
            let mut retired = self.retired.lock().expect("retired list poisoned");
            retired.push((old, r));
            retired.len() as u64
        };
        self.peak_retired.fetch_max(pending, Ordering::Relaxed);
        if R::ENABLED {
            self.recorder.count(pid.index(), Event::SnapInstall);
            self.recorder.record(pid.index(), Metric::RetireDepth, pending);
        }

        if P::EAGER {
            let grace_t0 = if R::ENABLED { self.recorder.now() } else { 0 };
            // Wait out the grace period for everything retired so far:
            // once every slot is empty or holds an epoch ≥ r, no
            // published epoch is < r, so every retiree (all have epoch
            // ≤ r) is unpinned. One subtlety forces the outer loop: a
            // reader that read G *before* our bump can publish its stale
            // epoch *after* the scan passed its slot; it republishes the
            // fresh epoch within its own bounded pin passage (the step-3
            // re-check), so re-scanning drains in at most one extra
            // round per such straggler.
            loop {
                for slot in 0..self.registry.capacity() {
                    spin_until(|| match self.registry.published_epoch(slot) {
                        None => true,
                        Some(published) => published >= r,
                    });
                }
                self.reclaim();
                if self.retired.lock().expect("retired list poisoned").is_empty() {
                    break;
                }
            }
            if R::ENABLED {
                let spent = self.recorder.now().saturating_sub(grace_t0);
                self.recorder.record(pid.index(), Metric::GraceScanNs, spent);
            }
        } else if self.policy.should_scan(pending as usize) {
            self.reclaim();
        }
    }

    // -- reclamation and diagnostics ----------------------------------

    /// One non-blocking reclamation scan: frees every retired payload
    /// whose retirement epoch is ≤ the minimum published epoch, returns
    /// how many were freed. Runs automatically per the [`RetirePolicy`];
    /// call it directly to drain the batched list at a quiescent point.
    pub fn reclaim(&self) -> usize {
        // Read the epoch table *before* taking the list mutex: the scan
        // touches shared (possibly Sched-scheduled) memory, the mutex
        // must stay a leaf.
        let min = self.registry.min_published_epoch().unwrap_or(u64::MAX);
        let mut freeable = Vec::new();
        {
            let mut retired = self.retired.lock().expect("retired list poisoned");
            retired.retain(|&(ptr, r)| {
                if r <= min {
                    freeable.push(ptr);
                    false
                } else {
                    true
                }
            });
        }
        let freed = freeable.len();
        for ptr in freeable {
            // SAFETY: `ptr` came from `Box::into_raw` in `install`, was
            // retired exactly once (the swap removed it from `payload`),
            // and the grace bound just proved no guard pins it.
            unsafe { drop(Box::from_raw(ptr as *mut T)) };
        }
        freed
    }

    /// Number of retired-but-unreclaimed payloads right now.
    pub fn retired(&self) -> usize {
        self.retired.lock().expect("retired list poisoned").len()
    }

    /// Number of reader slots with a published epoch (open guards).
    pub fn published(&self) -> usize {
        self.registry.published_epochs()
    }

    /// The current global epoch (= number of installs + 1).
    pub fn current_epoch(&self) -> u64 {
        // Diagnostic snapshot only.
        self.epoch.load(MemOrdering::Relaxed)
    }

    /// Total installs ([`Snapshot::update`] + [`Snapshot::store`]).
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// High-water mark of the retired list — the memory half of the
    /// age-memory trade-off, for comparing [`RetirePolicy`] choices.
    pub fn peak_retired(&self) -> u64 {
        self.peak_retired.load(Ordering::Relaxed)
    }

    /// Quiescence: no open guard and nothing retired awaiting
    /// reclamation. The checker's post-trial oracle (after a final
    /// [`Snapshot::reclaim`]).
    pub fn is_quiescent(&self) -> bool {
        self.published() == 0 && self.retired() == 0
    }

    /// The pid registry doubling as the reader epoch table. Allocate
    /// from it for the `*_with` methods.
    pub fn registry(&self) -> &Arc<PidRegistry<B>> {
        &self.registry
    }

    /// Number of threads that may participate simultaneously.
    pub fn capacity(&self) -> usize {
        self.registry.capacity()
    }

    /// The raw lock serializing writers.
    pub fn raw(&self) -> &L {
        &self.lock
    }
}

impl<T, L, P, R> Snapshot<T, L, P, Native, R>
where
    T: Send + Sync,
    L: RawRwLock,
    P: RetirePolicy,
    R: Recorder,
{
    /// Takes a wait-free snapshot of the current value with this
    /// thread's leased pid: one pointer load plus an epoch stamp in the
    /// reader's own slot — zero shared-variable RMRs in steady state.
    ///
    /// Unlike `RwLock::read`, `load` never blocks: there is no writer to
    /// wait for and no doorway to pass. It is therefore also **safely
    /// reentrant** — a nested `load` while a guard is open leases a
    /// distinct pid and its own epoch slot, where a nested `RwLock::read`
    /// self-deadlocks whenever a writer is waiting (see that method's
    /// `# Deadlock` section). The guard pins its payload (and every
    /// later retiree) until dropped; don't hold it across long pauses
    /// under [`RetireBatched`] unless the memory is budgeted.
    ///
    /// # Panics
    ///
    /// Panics if the registry is exhausted (more simultaneous readers
    /// than capacity — remember nested guards take an extra pid each).
    pub fn load(&self) -> SnapGuard<'_, T, L, P, Native, R> {
        let (pid, source) = lease_pid(&self.registry)
            .unwrap_or_else(|e| panic!("cannot lease a pid for a snapshot read: {e}"));
        let lease = Some(LeaseToken { registry: &self.registry, pid, source });
        let (value, epoch) = self.pin(pid);
        SnapGuard { snap: self, pid, epoch, value, lease, _not_send: PhantomData }
    }

    /// Replaces the value with `f(&current)`, serialized through the
    /// writer lock with this thread's leased pid, then retires the old
    /// payload per the [`RetirePolicy`] (an eager writer waits out the
    /// grace period inside its write session).
    pub fn update(&self, f: impl FnOnce(&T) -> T) {
        let (pid, source) = lease_pid(&self.registry)
            .unwrap_or_else(|e| panic!("cannot lease a pid for a snapshot update: {e}"));
        self.update_with(pid, f);
        release_pid(&self.registry, pid, source);
    }

    /// Replaces the value outright — [`Snapshot::update`] without
    /// reading the current payload.
    pub fn store(&self, value: T) {
        let (pid, source) = lease_pid(&self.registry)
            .unwrap_or_else(|e| panic!("cannot lease a pid for a snapshot store: {e}"));
        self.store_with(pid, value);
        release_pid(&self.registry, pid, source);
    }
}

impl<T, L, P, B, R> Drop for Snapshot<T, L, P, B, R>
where
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
    fn drop(&mut self) {
        // `&mut self` proves no guard is alive (guards borrow the
        // snapshot), so the current payload and every retiree are ours —
        // Relaxed: whatever synchronization delivered `&mut` ordered all
        // prior swaps before us.
        let current = self.payload.load(MemOrdering::Relaxed);
        // SAFETY: `current` came from `Box::into_raw` and nothing pins it.
        unsafe { drop(Box::from_raw(current as *mut T)) };
        let retired = self.retired.get_mut().expect("retired list poisoned");
        for (ptr, _epoch) in retired.drain(..) {
            // SAFETY: retired exactly once, never freed (still listed).
            unsafe { drop(Box::from_raw(ptr as *mut T)) };
        }
    }
}

impl<T, L, P, B, R> fmt::Debug for Snapshot<T, L, P, B, R>
where
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch.load(MemOrdering::Relaxed))
            .field("swaps", &self.swaps.load(Ordering::Relaxed))
            .field("capacity", &self.registry.capacity())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------

/// Returns a leased pid on drop. Kept as a separate owned field of
/// [`SnapGuard`], declared *after* the fields its drop must follow: the
/// guard's own `Drop` clears the published epoch first, then this token
/// releases the pid — the registry debug-asserts that order.
struct LeaseToken<'s> {
    registry: &'s Arc<PidRegistry>,
    pid: Pid,
    source: PidSource,
}

impl Drop for LeaseToken<'_> {
    fn drop(&mut self) {
        release_pid(self.registry, self.pid, self.source);
    }
}

/// A wait-free snapshot of the payload: `Deref`s to the `T` that was
/// current when [`Snapshot::load`] pinned it. Later updates don't change
/// what this guard sees (snapshot isolation); they retire payloads that
/// stay allocated at least until this guard drops.
///
/// Holding the guard blocks no one's *progress* — writers keep
/// installing — but pins memory (and, under [`RetireEager`], makes the
/// writer's grace wait spin until the guard drops).
pub struct SnapGuard<'s, T, L, P, B = Native, R = NoopRecorder>
where
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
    snap: &'s Snapshot<T, L, P, B, R>,
    pid: Pid,
    epoch: u64,
    value: *const T,
    /// `Some` only for leased (ergonomic-tier) guards; `*_with` callers
    /// own their pids. Field order matters — see [`LeaseToken`].
    #[allow(dead_code)] // held solely for its Drop
    lease: Option<LeaseToken<'s>>,
    /// The guard must drop on the thread that published the epoch (its
    /// pid lease is thread-local), like the lock guards.
    _not_send: PhantomData<*const ()>,
}

impl<T, L, P, B, R> SnapGuard<'_, T, L, P, B, R>
where
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
    /// The epoch this guard published — every payload retired at a
    /// later epoch is pinned until the guard drops.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pid whose slot carries the pin.
    pub fn pid(&self) -> Pid {
        self.pid
    }
}

impl<T, L, P, B, R> Deref for SnapGuard<'_, T, L, P, B, R>
where
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the pin passage published this guard's epoch before
        // loading `value`, so the grace bound keeps the payload
        // allocated until `drop` clears the slot (module docs, "why the
        // publish-then-load order is the linchpin").
        unsafe { &*self.value }
    }
}

impl<T, L, P, B, R> Drop for SnapGuard<'_, T, L, P, B, R>
where
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
    fn drop(&mut self) {
        // Unpin first; the lease token (if any) then releases the pid —
        // struct Drop runs before field drops, giving exactly that order.
        self.snap.registry.clear_epoch(self.pid);
    }
}

impl<T, L, P, B, R> fmt::Debug for SnapGuard<'_, T, L, P, B, R>
where
    T: fmt::Debug,
    L: RawRwLock,
    P: RetirePolicy,
    B: Backend,
    R: Recorder,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapGuard")
            .field("pid", &self.pid)
            .field("epoch", &self.epoch)
            .field("value", &**self)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_mutex::mem::{self, Counting};
    use std::sync::atomic::AtomicUsize;

    /// A payload that counts how many instances are alive, so tests can
    /// assert exactly when reclamation frees.
    struct Counted {
        value: u64,
        live: Arc<AtomicUsize>,
    }

    impl Counted {
        fn new(value: u64, live: &Arc<AtomicUsize>) -> Self {
            live.fetch_add(1, Ordering::SeqCst);
            Counted { value, live: Arc::clone(live) }
        }
    }

    impl Drop for Counted {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn single_thread_round_trip() {
        let snap = Snapshot::new(41u64, 2);
        assert_eq!(*snap.load(), 41);
        snap.update(|v| v + 1);
        assert_eq!(*snap.load(), 42);
        snap.store(7);
        assert_eq!(*snap.load(), 7);
        assert_eq!(snap.swaps(), 2);
        assert_eq!(snap.current_epoch(), 3);
        assert!(snap.is_quiescent(), "eager retirement drains immediately");
    }

    #[test]
    fn guard_is_a_snapshot() {
        // Batched: an eager store would (correctly) wait for the open
        // guard to unpin, which on one thread never happens.
        let snap = Snapshot::with_raw(
            1u64,
            MwmrStarvationFree::new(2),
            RetireBatched { high_water: usize::MAX },
        );
        let guard = snap.load();
        snap.store(2);
        assert_eq!(*guard, 1, "guard still sees its pinned version");
        assert_eq!(*snap.load(), 2, "fresh load sees the new version");
        drop(guard);
    }

    #[test]
    fn load_is_reentrant() {
        // The satellite-2 proof: nested loads take distinct pids,
        // publish in their own slots, and never wait — with an update
        // squeezed between them, which is exactly where a nested
        // RwLock::read would self-deadlock on the waiting writer.
        // Batched retirement so the single-threaded writer doesn't wait
        // on its own outer guard's pin.
        let snap = Snapshot::with_raw(
            10u64,
            MwmrStarvationFree::new(4),
            RetireBatched { high_water: usize::MAX },
        );
        let outer = snap.load();
        snap.store(20); // never blocks: the outer pin just ages the retiree
        let inner = snap.load();
        assert_ne!(outer.pid(), inner.pid(), "nested load leased a distinct slot");
        assert_eq!(*outer, 10, "outer guard still sees its snapshot");
        assert_eq!(*inner, 20, "inner guard pinned the fresh payload");
        let innermost = snap.load();
        assert_eq!(*innermost, 20);
        drop(innermost);
        drop(inner);
        drop(outer);
        snap.reclaim();
        assert!(snap.is_quiescent(), "all guards unpinned, all retirees drained");
    }

    #[test]
    fn eager_writer_waits_out_pinned_readers() {
        let live = Arc::new(AtomicUsize::new(0));
        let snap = Arc::new(Snapshot::new(Counted::new(1, &live), 4));
        let guard = snap.load();
        let writer = {
            let snap = Arc::clone(&snap);
            let live = Arc::clone(&live);
            std::thread::spawn(move || {
                snap.store(Counted::new(2, &live));
            })
        };
        // The eager writer cannot finish while `guard` pins epoch 1.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!writer.is_finished(), "eager grace wait returned early");
        assert_eq!(live.load(Ordering::SeqCst), 2, "old payload still allocated");
        drop(guard);
        writer.join().unwrap();
        assert_eq!(live.load(Ordering::SeqCst), 1, "old payload freed after unpin");
        assert!(snap.is_quiescent());
        drop(snap);
        assert_eq!(live.load(Ordering::SeqCst), 0, "snapshot drop frees the payload");
    }

    #[test]
    fn batched_retirement_ages_then_drains() {
        let live = Arc::new(AtomicUsize::new(0));
        let snap = Snapshot::with_raw(
            Counted::new(0, &live),
            MwmrStarvationFree::new(4),
            RetireBatched { high_water: 4 },
        );
        let guard = snap.load();
        for i in 1..=3 {
            snap.store(Counted::new(i, &live));
            // Writer never blocks: the guard pins, the list just grows.
        }
        assert_eq!(snap.retired(), 3);
        assert_eq!(snap.peak_retired(), 3);
        assert_eq!(live.load(Ordering::SeqCst), 4);
        assert_eq!((*guard).value, 0, "guard pinned the original payload");
        drop(guard);
        snap.store(Counted::new(4, &live)); // hits high_water → scan
        assert_eq!(snap.retired(), 0, "scan drained the whole list");
        assert_eq!(live.load(Ordering::SeqCst), 1);
        assert!(snap.is_quiescent());
    }

    #[test]
    fn reclaim_is_safe_to_call_anytime() {
        let snap = Snapshot::with_raw(
            0u64,
            MwmrStarvationFree::new(2),
            RetireBatched { high_water: usize::MAX },
        );
        assert_eq!(snap.reclaim(), 0);
        snap.store(1);
        snap.store(2);
        assert_eq!(snap.retired(), 2);
        assert_eq!(snap.reclaim(), 2);
        assert!(snap.is_quiescent());
    }

    #[test]
    fn concurrent_smoke() {
        const READERS: usize = 3;
        const UPDATES: u64 = 200;
        let snap = Arc::new(Snapshot::with_raw(
            (0u64, 1u64),
            MwmrStarvationFree::new(READERS + 1),
            RetireBatched { high_water: 8 },
        ));
        let mut threads = Vec::new();
        for _ in 0..READERS {
            let snap = Arc::clone(&snap);
            threads.push(std::thread::spawn(move || {
                let mut last = 0;
                loop {
                    let g = snap.load();
                    let (a, b) = *g;
                    assert_eq!(b, a + 1, "torn snapshot");
                    assert!(a >= last, "snapshot went backwards");
                    last = a;
                    if a == UPDATES {
                        return;
                    }
                }
            }));
        }
        for i in 1..=UPDATES {
            snap.store((i, i + 1));
        }
        for t in threads {
            t.join().unwrap();
        }
        snap.reclaim();
        assert!(snap.is_quiescent());
        assert_eq!(snap.swaps(), UPDATES);
    }

    #[test]
    fn steady_state_load_performs_zero_cc_rmrs() {
        // The acceptance-proof logic in unit form (swap_table's
        // steady_state section is the shipped binary version): over the
        // Counting backend, a warm load passage must cost zero
        // cache-coherence RMRs — the epoch stamp hits the reader's own
        // padded slot, everything else is a cached read.
        let snap: Snapshot<u64, MwmrStarvationFree<_, Counting>, RetireEager, Counting> =
            Snapshot::with_raw_in(
                99,
                MwmrStarvationFree::new_in(2, Counting),
                RetireEager,
                2,
                Counting,
            );
        let pid = snap.registry().allocate().unwrap();
        mem::set_thread_slot(1);
        // Warm-up passage: first touches are compulsory misses.
        drop(snap.load_with(pid));
        mem::reset_thread_tally();
        for _ in 0..10 {
            let g = snap.load_with(pid);
            assert_eq!(*g, 99);
            drop(g);
        }
        let tally = mem::thread_tally();
        assert_eq!(tally.cc, 0, "steady-state load must be RMR-free, tally: {tally:?}");
        assert!(tally.ops > 0, "the passage does execute shared ops");
    }

    #[test]
    fn debug_formats() {
        let snap = Snapshot::new(5u8, 2);
        let g = snap.load();
        assert!(format!("{snap:?}").contains("Snapshot"));
        assert!(format!("{g:?}").contains("epoch"));
    }

    #[test]
    fn recorder_sees_loads_installs_and_grace_scans() {
        use rmr_obs::StatsRecorder;
        let rec = Arc::new(StatsRecorder::new(4));
        let snap = Snapshot::new(1u64, 4).with_recorder(Arc::clone(&rec));
        assert_eq!(*snap.load(), 1);
        snap.store(2); // eager: install + grace scan
        snap.update(|v| v + 1); // install (update reads under the lock, not via pin)
        assert_eq!(*snap.load(), 3);

        assert_eq!(rec.counter(Event::SnapLoad), 2);
        assert_eq!(rec.counter(Event::SnapInstall), 2);
        assert_eq!(rec.samples(Metric::RetireDepth), 2);
        assert_eq!(rec.samples(Metric::GraceScanNs), 2, "one grace scan per eager install");
        // With no pinned reader, nothing outlives its install.
        assert!(snap.is_quiescent());
    }
}
