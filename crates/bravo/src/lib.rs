//! **rmr-bravo** — a reader-biased fast path over *any* reader-writer
//! lock, after Dice & Kogan's BRAVO (*"BRAVO — Biased Locking for
//! Reader-Writer Locks"*, USENIX ATC 2019; PAPERS.md).
//!
//! The paper's locks achieve O(1) RMR, but every reader still performs at
//! least one store to a *shared* gate or indicator on the hot path; under
//! read-mostly traffic those stores are the coherence bottleneck. BRAVO's
//! observation is that the reader path of an existing lock can be skipped
//! entirely while the lock is **biased** toward readers: a reader instead
//! publishes itself in a *distributed visible-readers table* (one slot per
//! cache line, chosen by hashing the reader's pid), and a writer **revokes**
//! the bias — flip the bias word off, then scan the table and wait for
//! every published reader to drain — before entering its critical section.
//!
//! [`Bravo<L, B>`] packages that protocol as a wrapper implementing
//! [`RawRwLock`] around any inner lock `L: RawRwLock`, so every consumer of
//! the capability tier — the typed [`RwLock`](rmr_core::rwlock::RwLock)
//! front end, the benches, the `rmr-check` schedule explorer — works
//! unchanged. Like every lock in this workspace it is generic over the
//! memory backend `B` ([`Native`] by default), so the fast path can be
//! RMR-accounted with `Counting` and model-checked with `Sched` on the
//! *shipped* code.
//!
//! # The protocol
//!
//! Shared state added by the wrapper: a bias flag `rbias`, a fixed-capacity
//! table of cache-padded slots (`0` = empty, else `pid + 1`), and a
//! slow-read counter for the re-bias policy.
//!
//! * **Reader fast path.** If `rbias` is set, CAS the slot `hash(pid)` from
//!   empty to `pid + 1`, then **re-check** `rbias`. Still set → the reader
//!   is in (zero operations on the inner lock). Cleared → a revocation is
//!   racing; retract the slot and fall back to the slow path. A CAS lost to
//!   a hash collision also falls back. Fast unlock is one store (slot ←
//!   empty) to the reader's *own* cache line.
//! * **Reader slow path.** `inner.read_lock`, exactly as without the
//!   wrapper, plus one counter bump for the re-bias policy.
//! * **Writer.** `inner.write_lock` first; then, if `rbias` is set: clear
//!   it and scan the table, waiting for each published slot to drain.
//!   Writer unlock is a pure pass-through.
//! * **Re-bias.** Revocation leaves the bias off (readers go through `L`
//!   again). After `rebias_after` slow reads, the slow path switches the
//!   bias back on. The policy is a deterministic counter — **time-free by
//!   design**, unlike the original BRAVO's timestamp inhibition — so
//!   schedules under the `Sched` backend replay bit-for-bit.
//!
//! # Why revocation preserves exclusion
//!
//! The exclusion predicate (`rmr_sim::predicates::rw_exclusion`, P1) needs:
//! no fast reader inside its read session while the writer is in the CS.
//! The writer's order is *clear `rbias`, then scan*; the reader's order is
//! *publish, then re-check `rbias`*. The four accesses that carry this
//! argument — the reader's publish CAS and bias re-check, the writer's
//! bias clear and slot scan — are `SeqCst` (sites BR-PUB, BR-RECHECK,
//! BR-CLEAR, BR-SCAN in DESIGN.md §13), so in the single total order
//! either the reader's re-check precedes the writer's clear — then the
//! publish precedes the scan and the writer waits for that slot — or the
//! re-check observes the cleared flag and the reader retracts without
//! ever entering. There is no third interleaving; the re-check after
//! publish is the linchpin (and exactly what the seeded
//! `SkipRevocationScan` mutant in `rmr-check` breaks). Every other
//! access — bias pre-checks, the re-bias store, retract, counters — is
//! deliberately weaker, with the justification written at each site; the
//! `Sched` backend's `StoreBuffer` mode re-checks the whole protocol
//! under store reordering, and the `WrongOrdering::DemoteBiasClear`
//! mutant in `rmr-check` proves a demoted bias clear would be caught.
//!
//! # RMR cost — an honest accounting
//!
//! Readers get cheaper: in the biased steady state a read passage performs
//! **zero** operations on the inner lock and only own-cache-line traffic on
//! the table (the CC model charges nothing for a sole-holder update).
//! Writers pay: a revoking writer's scan is **O(table size)** RMRs on top
//! of the inner lock's cost — the wrapper deliberately trades the paper's
//! per-writer O(1) bound for reader throughput, which is the right trade
//! only for read-mostly traffic. `bravo_table` in `rmr-bench` measures
//! both sides.
//!
//! # Example
//!
//! ```
//! use rmr_bravo::Bravo;
//! use rmr_core::mwmr::MwmrStarvationFree;
//! use rmr_core::RwLock;
//!
//! // Any RawRwLock can be wrapped; multi-writer inner locks keep the
//! // typed write path.
//! let lock = RwLock::with_raw(0u64, Bravo::new(MwmrStarvationFree::new(8)));
//! *lock.write() += 1;
//! assert_eq!(*lock.read(), 1);
//! ```
//!
//! Wrapping a single-writer lock keeps the compile-time write restriction:
//! `Bravo<L>` implements [`RawMultiWriter`] only when `L` does.
//!
//! ```compile_fail
//! use rmr_bravo::Bravo;
//! use rmr_core::swmr::SwmrWriterPriority;
//! use rmr_core::RwLock;
//!
//! let lock = RwLock::with_raw_and_capacity(0u32, Bravo::new(SwmrWriterPriority::new()), 2);
//! let _ = lock.write(); // ERROR: Bravo<SwmrWriterPriority> is not RawMultiWriter
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rmr_core::raw::{RawMultiWriter, RawParkedWaiters, RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_mutex::mem::{Backend, Native, Ordering as MemOrdering, SharedBool, SharedWord};
use rmr_mutex::{spin_until, CachePadded};
use rmr_obs::{Event, NoopRecorder, Recorder};
use std::fmt;

/// An empty visible-readers slot; published slots hold `pid + 1`.
const EMPTY: u64 = 0;

/// Fibonacci-hash multiplier for spreading pids over the table.
const HASH_MUL: u64 = 0x9e37_79b9_7f4a_7c15;

/// Configuration of the wrapper's table and re-bias policy.
///
/// # Example
///
/// ```
/// use rmr_bravo::{Bravo, BravoConfig};
/// use rmr_baselines::TicketRwLock;
///
/// let cfg = BravoConfig { table_slots: 8, rebias_after: 4, ..BravoConfig::default() };
/// let lock = Bravo::with_config(TicketRwLock::new(4), cfg);
/// assert_eq!(lock.table_slots(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BravoConfig {
    /// Visible-readers slots (rounded up to a power of two, min 1). More
    /// slots mean fewer hash collisions (collisions fall back to the slow
    /// path) but a longer revocation scan for writers.
    pub table_slots: usize,
    /// Slow reads after a revocation before the bias switches back on;
    /// `0` disables re-biasing (one revocation turns the wrapper off for
    /// good). Deliberately a counter, not a clock: the policy must be
    /// deterministic under the `Sched` backend.
    pub rebias_after: u32,
    /// Whether the lock starts biased toward readers.
    pub initial_bias: bool,
}

impl Default for BravoConfig {
    fn default() -> Self {
        Self { table_slots: 64, rebias_after: 64, initial_bias: true }
    }
}

/// Proof of a held [`Bravo`] read session: either a published table slot
/// (fast path) or the inner lock's own token (slow path).
pub struct BravoReadToken<T> {
    path: ReadPath<T>,
}

enum ReadPath<T> {
    Fast { slot: usize },
    Slow(T),
}

impl<T> BravoReadToken<T> {
    /// True if this session took the biased fast path (never touched the
    /// inner lock).
    pub fn is_fast(&self) -> bool {
        matches!(self.path, ReadPath::Fast { .. })
    }
}

impl<T> fmt::Debug for BravoReadToken<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            ReadPath::Fast { slot } => {
                f.debug_struct("BravoReadToken::Fast").field("slot", slot).finish()
            }
            ReadPath::Slow(_) => f.debug_struct("BravoReadToken::Slow").finish_non_exhaustive(),
        }
    }
}

/// A reader-biased fast path bolted onto the inner lock `L` (see the
/// module docs for the protocol).
///
/// Implements [`RawRwLock`] always, and passes through the capability
/// tier: [`RawTryReadLock`] where `L` has it, [`RawTryRwLock`] where `L`
/// has it, and (crucially for the typed front end) [`RawMultiWriter`]
/// **only** where `L` is one — wrapping a single-writer algorithm keeps
/// `RwLock::write()` a compile error.
/// The third type parameter is an `rmr-obs` [`Recorder`] (default:
/// inert [`NoopRecorder`], hooks const-fold away). With a live recorder
/// ([`Bravo::with_recorder`]) every passage reports which path it took
/// ([`Event::BravoFastRead`] / [`Event::BravoSlowRead`]) plus the
/// policy transitions ([`Event::BravoRevoke`] / [`Event::BravoRebias`]) —
/// the wrapper's bias effectiveness becomes directly measurable.
pub struct Bravo<L, B: Backend = Native, R: Recorder = NoopRecorder> {
    inner: L,
    recorder: R,
    /// The bias word: readers may use the table iff set.
    rbias: B::Bool,
    /// Slow reads since construction; drives the counter re-bias policy.
    slow_reads: B::Word,
    /// Completed revocations (diagnostics; bumped inside the writer's
    /// already-expensive revocation, never on a reader path).
    revocations: B::Word,
    /// The visible-readers table, one slot per cache line.
    slots: Box<[CachePadded<B::Word>]>,
    rebias_after: u64,
}

impl<L: RawRwLock> Bravo<L> {
    /// Wraps `inner` with the default [`BravoConfig`] over the [`Native`]
    /// backend.
    pub fn new(inner: L) -> Self {
        Self::with_config(inner, BravoConfig::default())
    }

    /// Wraps `inner` with an explicit configuration over [`Native`].
    pub fn with_config(inner: L, config: BravoConfig) -> Self {
        Self::new_in(inner, config, Native)
    }
}

impl<L: RawRwLock, B: Backend> Bravo<L, B> {
    /// Wraps `inner` over the given memory backend. The wrapper's own
    /// shared variables (bias word, table, counters) live on `B`; the
    /// inner lock keeps whatever backend it was built with, which is what
    /// lets a `Counting` inner lock prove the fast path performs zero
    /// operations on it.
    pub fn new_in(inner: L, config: BravoConfig, _backend: B) -> Self {
        let slots = config.table_slots.max(1).next_power_of_two();
        Self {
            inner,
            recorder: NoopRecorder,
            rbias: B::Bool::new(config.initial_bias),
            slow_reads: B::Word::new(0),
            revocations: B::Word::new(0),
            slots: (0..slots).map(|_| CachePadded::new(B::Word::new(EMPTY))).collect(),
            rebias_after: u64::from(config.rebias_after),
        }
    }
}

impl<L: RawRwLock, B: Backend, R: Recorder> Bravo<L, B, R> {
    /// Replaces the wrapper's recorder, re-typing the wrapper — see the
    /// struct docs. Builder-style because the recorder is a type
    /// parameter (that is what lets disabled hooks const-fold away).
    pub fn with_recorder<R2: Recorder>(self, recorder: R2) -> Bravo<L, B, R2> {
        Bravo {
            inner: self.inner,
            recorder,
            rbias: self.rbias,
            slow_reads: self.slow_reads,
            revocations: self.revocations,
            slots: self.slots,
            rebias_after: self.rebias_after,
        }
    }

    /// The wrapper's recorder (the default is the inert [`NoopRecorder`]).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// The wrapped lock.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Number of visible-readers slots (a power of two).
    pub fn table_slots(&self) -> usize {
        self.slots.len()
    }

    /// Whether the lock is currently biased toward readers.
    pub fn bias(&self) -> bool {
        // Diagnostic snapshot only; no synchronization rides on it.
        self.rbias.load(MemOrdering::Relaxed)
    }

    /// Completed bias revocations so far.
    pub fn revocations(&self) -> u64 {
        // Diagnostic snapshot only.
        self.revocations.load(MemOrdering::Relaxed)
    }

    /// Number of currently published visible-reader slots.
    pub fn published(&self) -> usize {
        // Diagnostic/quiescence snapshot; callers quote it only at rest.
        self.slots.iter().filter(|s| s.load(MemOrdering::Relaxed) != EMPTY).count()
    }

    /// The table slot `pid` hashes to (exposed so tests and the bench
    /// verifier can reason about collisions).
    pub fn slot_index(&self, pid: Pid) -> usize {
        ((pid.index() as u64).wrapping_mul(HASH_MUL) >> 33) as usize & (self.slots.len() - 1)
    }

    /// Checker entry point: the visible-readers table has fully drained.
    /// At-rest bias may legitimately be either value (it records history,
    /// not occupancy); combine with the inner lock's own `is_quiescent`
    /// where one exists.
    pub fn is_quiescent(&self) -> bool {
        self.published() == 0
    }

    /// Attempts the biased fast path. `Some(slot)` means the caller is in
    /// (published + bias re-checked); `None` means bias off, collision, or
    /// a racing revocation — take the slow path.
    fn try_fast_read(&self, pid: Pid) -> Option<usize> {
        // Relaxed pre-check: purely an optimization hint. A stale `true`
        // is corrected by the SeqCst re-check below; a stale `false` only
        // costs a slow-path detour.
        if !self.rbias.load(MemOrdering::Relaxed) {
            return None;
        }
        let slot = self.slot_index(pid);
        // Site BR-PUB (DESIGN.md §13): the publish half of the
        // publish-then-re-check SB square — SeqCst so it cannot be
        // reordered after the re-check. Failure is a pure backoff, so
        // Relaxed there.
        if self.slots[slot]
            .compare_exchange(
                EMPTY,
                pid.index() as u64 + 1,
                MemOrdering::SeqCst,
                MemOrdering::Relaxed,
            )
            .is_err()
        {
            return None; // hash collision: someone else is published here
        }
        // Site BR-RECHECK: the linchpin re-check — a revoking writer
        // clears the bias before scanning, so either this SeqCst load
        // still sees the bias (and the scan will see our published slot),
        // or we retract and go slow. Demoting the *writer's* half of this
        // square is the `WrongOrdering::DemoteBiasClear` mutant.
        if self.rbias.load(MemOrdering::SeqCst) {
            return Some(slot);
        }
        // Retract before ever entering the CS: nothing was read under the
        // failed publish, so no ordering obligation — Relaxed.
        self.slots[slot].store(EMPTY, MemOrdering::Relaxed);
        None
    }

    /// The counter re-bias policy. Must only be called while holding the
    /// inner read lock: that is what guarantees no writer is inside its
    /// critical section at the instant the bias switches back on. Returns
    /// whether this read restored the bias (the observability hook).
    fn note_slow_read(&self) -> bool {
        if self.rebias_after == 0 {
            return false;
        }
        // Relaxed: the counter is a policy heuristic, not a synchronizer.
        let n = self.slow_reads.fetch_add(1, MemOrdering::Relaxed) + 1;
        if n.is_multiple_of(self.rebias_after) {
            // Relaxed: we hold the inner read lock, so any writer that
            // could act on this bias first completes `inner.write_lock`,
            // and a correct inner lock's read-unlock → write-lock handoff
            // is itself a happens-before edge that carries this store.
            self.rbias.store(true, MemOrdering::Relaxed);
            return true;
        }
        false
    }

    /// Writer-side bias revocation: clear the bias word, then scan the
    /// table and wait for every published reader to drain. Must be called
    /// while holding the inner write lock. Returns whether a revocation
    /// actually happened (the observability hook).
    fn revoke(&self) -> bool {
        // Relaxed: the bias was last set by a slow reader holding the
        // inner read lock (or retained from init), and we hold the inner
        // write lock — the inner handoff already ordered that store
        // before this load.
        if !self.rbias.load(MemOrdering::Relaxed) {
            return false;
        }
        // Site BR-CLEAR: the writer's half of the revocation SB square.
        // MUST be SeqCst, not Release — a buffered (reordered-late) clear
        // would let the scan below run while a fast reader's SeqCst
        // re-check still observes the stale bias: both enter. This is the
        // `WrongOrdering::DemoteBiasClear` mutant in `rmr-check`.
        self.rbias.store(false, MemOrdering::SeqCst);
        for slot in self.slots.iter() {
            // Site BR-SCAN: SeqCst keeps the scan after the clear in the
            // total order (the SB half) and acquires each reader's
            // retract/unlock store before the writer enters the CS.
            spin_until(|| slot.load(MemOrdering::SeqCst) == EMPTY);
        }
        // Diagnostics only.
        self.revocations.fetch_add(1, MemOrdering::Relaxed);
        true
    }
}

impl<L: RawRwLock, B: Backend, R: Recorder> RawRwLock for Bravo<L, B, R> {
    type ReadToken = BravoReadToken<L::ReadToken>;
    type WriteToken = L::WriteToken;

    fn read_lock(&self, pid: Pid) -> Self::ReadToken {
        if let Some(slot) = self.try_fast_read(pid) {
            if R::ENABLED {
                self.recorder.count(pid.index(), Event::BravoFastRead);
            }
            return BravoReadToken { path: ReadPath::Fast { slot } };
        }
        let token = self.inner.read_lock(pid);
        let rebiased = self.note_slow_read();
        if R::ENABLED {
            self.recorder.count(pid.index(), Event::BravoSlowRead);
            if rebiased {
                self.recorder.count(pid.index(), Event::BravoRebias);
            }
        }
        BravoReadToken { path: ReadPath::Slow(token) }
    }

    fn read_unlock(&self, pid: Pid, token: Self::ReadToken) {
        match token.path {
            ReadPath::Fast { slot } => {
                debug_assert_eq!(slot, self.slot_index(pid), "token returned by a foreign pid");
                // Release: publishes the read session's effects to the
                // revoking writer, whose SeqCst scan load acquires it.
                self.slots[slot].store(EMPTY, MemOrdering::Release);
            }
            ReadPath::Slow(t) => self.inner.read_unlock(pid, t),
        }
    }

    fn write_lock(&self, pid: Pid) -> Self::WriteToken {
        let token = self.inner.write_lock(pid);
        let revoked = self.revoke();
        if R::ENABLED && revoked {
            self.recorder.count(pid.index(), Event::BravoRevoke);
        }
        token
    }

    fn write_unlock(&self, pid: Pid, token: Self::WriteToken) {
        self.inner.write_unlock(pid, token);
    }

    fn max_processes(&self) -> usize {
        self.inner.max_processes()
    }
}

// SAFETY: writer-writer exclusion is delegated verbatim to the inner lock
// (`write_lock` is inner-first); the wrapper only adds readers that every
// writer drains before entering. So `Bravo<L>` excludes concurrent writers
// exactly when `L` does.
unsafe impl<L: RawMultiWriter, B: Backend, R: Recorder> RawMultiWriter for Bravo<L, B, R> {}

impl<L: RawTryReadLock, B: Backend, R: Recorder> RawTryReadLock for Bravo<L, B, R> {
    fn try_read_lock(&self, pid: Pid) -> Option<Self::ReadToken> {
        if let Some(slot) = self.try_fast_read(pid) {
            if R::ENABLED {
                self.recorder.count(pid.index(), Event::BravoFastRead);
            }
            return Some(BravoReadToken { path: ReadPath::Fast { slot } });
        }
        let token = self.inner.try_read_lock(pid)?;
        let rebiased = self.note_slow_read();
        if R::ENABLED {
            self.recorder.count(pid.index(), Event::BravoSlowRead);
            if rebiased {
                self.recorder.count(pid.index(), Event::BravoRebias);
            }
        }
        Some(BravoReadToken { path: ReadPath::Slow(token) })
    }
}

impl<L: RawTryRwLock, B: Backend, R: Recorder> RawTryRwLock for Bravo<L, B, R> {
    /// Bounded write attempt: inner `try_write_lock`, then a **one-shot**
    /// revocation — clear the bias and scan the table once, without
    /// waiting. An all-empty scan proves no fast reader can be inside
    /// (same SeqCst argument as the blocking revocation), so the attempt
    /// succeeds and stays bounded by the table size. Any published slot
    /// fails the attempt, and the failure path **restores the bias it
    /// cleared**: `revoke` keys its scan off the bias word, so leaving it
    /// cleared with readers still published would let a later *blocking*
    /// writer skip the scan and enter over a fast reader — the
    /// cleared-bias state is only ever allowed to persist once the table
    /// has been observed (or made) empty.
    fn try_write_lock(&self, pid: Pid) -> Option<Self::WriteToken> {
        let token = self.inner.try_write_lock(pid)?;
        // Relaxed pre-check: same inner-handoff argument as `revoke`.
        let was_biased = self.rbias.load(MemOrdering::Relaxed);
        if was_biased {
            // Site BR-CLEAR (one-shot variant): same SB square as the
            // blocking revocation — SeqCst for the same reason.
            self.rbias.store(false, MemOrdering::SeqCst);
        }
        // Site BR-SCAN (one-shot variant): SeqCst, as in `revoke`.
        if self.slots.iter().any(|slot| slot.load(MemOrdering::SeqCst) != EMPTY) {
            // Back out: un-clear the bias first (we hold the inner write
            // lock, so no revocation or re-bias can race this store),
            // then release. Fast readers resume as if the attempt never
            // happened. Relaxed: a reader acting on this restored bias
            // re-checks it with SeqCst after publishing, and the store is
            // also carried by the write-unlock handoff below.
            if was_biased {
                self.rbias.store(true, MemOrdering::Relaxed);
            }
            self.inner.write_unlock(pid, token);
            return None;
        }
        Some(token)
    }
}

/// A parked [`Bravo`] write passage: the inner lock's own doorway first,
/// then — once the inner lock granted — a **staged revocation** (bias
/// cleared; each poll is one bounded table scan).
#[must_use = "an abandoned doorway must be cancelled with cancel_write"]
pub enum BravoDoorway<D, T> {
    /// Still waiting on the inner lock's doorway. The bias is untouched,
    /// so fast readers are unaffected.
    Inner(D),
    /// Inner write lock granted and held (`token`); the bias has been
    /// cleared (site BR-CLEAR, recorded in `was_biased` so a cancel can
    /// restore it), and each poll scans the table once waiting for the
    /// published readers to drain.
    Revoking {
        /// The inner lock's write token, held across polls.
        token: T,
        /// Whether this passage cleared the bias (and must restore it on
        /// cancel / count the revocation on grant).
        was_biased: bool,
    },
}

impl<D, T> fmt::Debug for BravoDoorway<D, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Inner(_) => f.debug_struct("BravoDoorway::Inner").finish_non_exhaustive(),
            Self::Revoking { was_biased, .. } => f
                .debug_struct("BravoDoorway::Revoking")
                .field("was_biased", was_biased)
                .finish_non_exhaustive(),
        }
    }
}

// SAFETY: a granted poll holds the inner lock's own write token *and* has
// observed an all-empty table after clearing the bias — exactly the
// exclusion proof of `write_lock` (inner grant, then revocation), just
// staged across bounded polls. `cancel_write` unwinds precisely like
// `try_write_lock`'s failure path: restore the bias it cleared (sound —
// the inner write lock is still held), then release the inner lock.
unsafe impl<L: RawParkedWaiters, B: Backend, R: Recorder> RawParkedWaiters for Bravo<L, B, R> {
    /// **Advisory for fairness purposes** even when `L` is queued: while
    /// the bias is on, fast readers enter through the table without ever
    /// consulting the inner lock, so a doorway parked in `Inner` stage
    /// has **no bypass bound** — arbitrarily many biased readers can
    /// stream past before the inner grant. (Once the inner lock grants,
    /// the bias clear closes admission and the drain is bounded by the
    /// in-flight readers — but a static `QUEUED = true` would promise the
    /// bound from token time, which the biased window breaks.) This is
    /// BRAVO's deliberate trade: reader throughput over writer latency.
    const QUEUED: bool = false;
    type WriteDoorway = BravoDoorway<L::WriteDoorway, L::WriteToken>;

    fn start_write(&self, pid: Pid) -> Self::WriteDoorway {
        BravoDoorway::Inner(self.inner.start_write(pid))
    }

    fn poll_write(
        &self,
        pid: Pid,
        doorway: Self::WriteDoorway,
    ) -> Result<Self::WriteToken, Self::WriteDoorway> {
        let (token, was_biased) = match doorway {
            BravoDoorway::Inner(inner) => match self.inner.poll_write(pid, inner) {
                Ok(token) => {
                    // Inner write lock granted: run the revocation's first
                    // half now, while we are here. Relaxed pre-check and
                    // SeqCst clear exactly as in `revoke` — we hold the
                    // inner write lock, so the same arguments apply.
                    let was_biased = self.rbias.load(MemOrdering::Relaxed);
                    if was_biased {
                        // Site BR-CLEAR (staged variant): SeqCst for the
                        // same SB-square reason as the blocking revocation.
                        self.rbias.store(false, MemOrdering::SeqCst);
                    }
                    (token, was_biased)
                }
                Err(inner) => return Err(BravoDoorway::Inner(inner)),
            },
            BravoDoorway::Revoking { token, was_biased } => (token, was_biased),
        };
        // Site BR-SCAN (staged variant): one bounded pass per poll. An
        // all-empty scan after the clear proves no fast reader can be
        // inside (the one-shot `try_write_lock` argument verbatim); a
        // published slot parks the writer until that reader drains — its
        // unlock is what re-polls us in the async tier.
        if self.slots.iter().any(|slot| slot.load(MemOrdering::SeqCst) != EMPTY) {
            return Err(BravoDoorway::Revoking { token, was_biased });
        }
        if was_biased {
            // Diagnostics only, as in `revoke`.
            self.revocations.fetch_add(1, MemOrdering::Relaxed);
            if R::ENABLED {
                self.recorder.count(pid.index(), Event::BravoRevoke);
            }
        }
        Ok(token)
    }

    fn cancel_write(&self, pid: Pid, doorway: Self::WriteDoorway) {
        match doorway {
            BravoDoorway::Inner(inner) => self.inner.cancel_write(pid, inner),
            BravoDoorway::Revoking { token, was_biased } => {
                // The `try_write_lock` failure path: un-clear the bias
                // first (we hold the inner write lock, so no revocation
                // or re-bias can race this store), then release. Leaving
                // the bias cleared with readers still published would let
                // a later blocking writer skip its scan — see the try
                // tier's comment.
                if was_biased {
                    self.rbias.store(true, MemOrdering::Relaxed);
                }
                self.inner.write_unlock(pid, token);
            }
        }
    }
}

impl<L: RawRwLock, B: Backend, R: Recorder> fmt::Debug for Bravo<L, B, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bravo")
            .field("bias", &self.bias())
            .field("published", &self.published())
            .field("table_slots", &self.table_slots())
            .field("revocations", &self.revocations())
            .field("rebias_after", &self.rebias_after)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_baselines::TicketRwLock;
    use rmr_core::mwmr::MwmrStarvationFree;
    use rmr_core::RwLock;
    use rmr_mutex::mem::{self, Counting};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn fast_path_publishes_and_retracts() {
        let lock = Bravo::new(TicketRwLock::new(4));
        assert!(lock.bias());
        let t = lock.read_lock(pid(0));
        assert!(t.is_fast());
        assert_eq!(lock.published(), 1);
        assert!(!lock.is_quiescent());
        lock.read_unlock(pid(0), t);
        assert_eq!(lock.published(), 0);
        assert!(lock.is_quiescent());
    }

    #[test]
    fn collision_falls_back_to_the_slow_path() {
        // One slot: every pid hashes to it, so a second concurrent reader
        // must go through the inner lock.
        let cfg = BravoConfig { table_slots: 1, ..BravoConfig::default() };
        let lock = Bravo::with_config(TicketRwLock::new(4), cfg);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(1));
        assert!(a.is_fast());
        assert!(!b.is_fast(), "colliding reader must not share the slot");
        lock.read_unlock(pid(1), b);
        lock.read_unlock(pid(0), a);
        assert!(lock.is_quiescent());
    }

    #[test]
    fn writer_revokes_and_waits_for_published_readers() {
        let lock = Arc::new(Bravo::new(TicketRwLock::new(4)));
        let t = lock.read_lock(pid(0));
        assert!(t.is_fast());

        let w_in = Arc::new(AtomicBool::new(false));
        let l2 = Arc::clone(&lock);
        let w_in2 = Arc::clone(&w_in);
        let w = std::thread::spawn(move || {
            let () = l2.write_lock(pid(1));
            w_in2.store(true, Ordering::SeqCst);
            l2.write_unlock(pid(1), ());
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!w_in.load(Ordering::SeqCst), "writer entered over a published fast reader");
        assert!(!lock.bias(), "revocation must clear the bias before the scan");

        lock.read_unlock(pid(0), t);
        w.join().unwrap();
        assert!(w_in.load(Ordering::SeqCst));
        assert_eq!(lock.revocations(), 1);
    }

    #[test]
    fn readers_after_revocation_take_the_slow_path() {
        let lock = Bravo::new(TicketRwLock::new(4));
        let () = lock.write_lock(pid(0));
        lock.write_unlock(pid(0), ());
        assert!(!lock.bias());
        let t = lock.read_lock(pid(1));
        assert!(!t.is_fast());
        lock.read_unlock(pid(1), t);
    }

    #[test]
    fn counter_policy_rebiases_after_n_slow_reads() {
        let cfg = BravoConfig { rebias_after: 3, ..BravoConfig::default() };
        let lock = Bravo::with_config(TicketRwLock::new(4), cfg);
        let () = lock.write_lock(pid(0));
        lock.write_unlock(pid(0), ());
        assert!(!lock.bias());
        for i in 0..3 {
            assert!(!lock.bias(), "rebias fired early, after {i} slow reads");
            let t = lock.read_lock(pid(1));
            assert!(!t.is_fast());
            lock.read_unlock(pid(1), t);
        }
        assert!(lock.bias(), "3 slow reads must restore the bias");
        let t = lock.read_lock(pid(1));
        assert!(t.is_fast());
        lock.read_unlock(pid(1), t);
    }

    #[test]
    fn rebias_zero_disables_the_policy() {
        let cfg = BravoConfig { rebias_after: 0, ..BravoConfig::default() };
        let lock = Bravo::with_config(TicketRwLock::new(4), cfg);
        let () = lock.write_lock(pid(0));
        lock.write_unlock(pid(0), ());
        for _ in 0..100 {
            let t = lock.read_lock(pid(1));
            assert!(!t.is_fast());
            lock.read_unlock(pid(1), t);
        }
        assert!(!lock.bias());
    }

    #[test]
    fn try_read_uses_the_fast_path() {
        let lock = Bravo::new(TicketRwLock::new(4));
        let t = lock.try_read_lock(pid(0)).expect("biased try_read");
        assert!(t.is_fast());
        lock.read_unlock(pid(0), t);
    }

    #[test]
    fn try_write_revokes_once_and_stays_bounded() {
        let lock = Bravo::new(TicketRwLock::new(4));
        // Uncontended: the one-shot revocation finds an empty table.
        lock.try_write_lock(pid(0)).expect("uncontended try_write");
        lock.write_unlock(pid(0), ());
        assert!(!lock.bias());

        // A published fast reader bounds the next attempt to a failure —
        // and the failure must restore the bias it cleared (leaving it
        // revoked would desynchronize the bias word from the table; see
        // the regression test below).
        let cfg = BravoConfig::default();
        let lock = Bravo::with_config(TicketRwLock::new(4), cfg);
        let rt = lock.read_lock(pid(1));
        assert!(rt.is_fast());
        assert!(lock.try_write_lock(pid(0)).is_none(), "must fail, not wait");
        assert!(lock.bias(), "failed try_write must restore the bias");
        lock.read_unlock(pid(1), rt);
        lock.try_write_lock(pid(0)).expect("drained table");
        lock.write_unlock(pid(0), ());
    }

    #[test]
    fn blocking_writer_after_failed_try_write_still_waits_for_fast_reader() {
        // Regression: a failed try_write clears the bias to scan, and
        // must NOT leave it cleared — revoke() keys its scan off the bias
        // word, so a later blocking writer would skip the scan and enter
        // the critical section over the still-published fast reader.
        let lock = Arc::new(Bravo::new(TicketRwLock::new(4)));
        let rt = lock.read_lock(pid(0));
        assert!(rt.is_fast());
        assert!(lock.try_write_lock(pid(1)).is_none());

        let w_in = Arc::new(AtomicBool::new(false));
        let l2 = Arc::clone(&lock);
        let w_in2 = Arc::clone(&w_in);
        let w = std::thread::spawn(move || {
            let () = l2.write_lock(pid(2));
            w_in2.store(true, Ordering::SeqCst);
            l2.write_unlock(pid(2), ());
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !w_in.load(Ordering::SeqCst),
            "writer entered the CS over a published fast reader (bias/table desync)"
        );
        lock.read_unlock(pid(0), rt);
        w.join().unwrap();
        assert!(w_in.load(Ordering::SeqCst));
        assert!(lock.is_quiescent());
    }

    #[test]
    fn table_slots_round_up_to_powers_of_two() {
        let cfg = BravoConfig { table_slots: 5, ..BravoConfig::default() };
        let lock = Bravo::with_config(TicketRwLock::new(4), cfg);
        assert_eq!(lock.table_slots(), 8);
        let cfg = BravoConfig { table_slots: 0, ..BravoConfig::default() };
        let lock = Bravo::with_config(TicketRwLock::new(4), cfg);
        assert_eq!(lock.table_slots(), 1);
        // slot_index stays in range even for the 1-slot table.
        assert_eq!(lock.slot_index(pid(7)), 0);
    }

    #[test]
    fn biased_steady_state_performs_zero_inner_lock_ops() {
        // The acceptance criterion of the subsystem: inner lock over
        // `Counting`, wrapper over `Native` — the thread tally then counts
        // *only* inner-lock operations, and a biased read passage must
        // score zero.
        let lock: Bravo<TicketRwLock<Counting>, Native> =
            Bravo::new_in(TicketRwLock::new_in(4, Counting), BravoConfig::default(), Native);
        mem::set_thread_slot(1);
        // Warm-up (still fast: the CAS/store hit only Native table slots).
        let t = lock.read_lock(pid(0));
        assert!(t.is_fast());
        lock.read_unlock(pid(0), t);

        mem::reset_thread_tally();
        for _ in 0..100 {
            let t = lock.read_lock(pid(0));
            lock.read_unlock(pid(0), t);
        }
        let tally = mem::thread_tally();
        assert_eq!(tally.ops, 0, "biased read passages touched the inner lock: {tally:?}");

        // Contrast: after a revocation the slow path pays the inner cost.
        let () = lock.write_lock(pid(1));
        lock.write_unlock(pid(1), ());
        mem::reset_thread_tally();
        let t = lock.read_lock(pid(0));
        lock.read_unlock(pid(0), t);
        assert!(mem::thread_tally().ops > 0, "slow path must go through the inner lock");
    }

    #[test]
    fn instrumented_steady_state_still_performs_zero_inner_lock_ops() {
        // Tentpole acceptance criterion: attach a live StatsRecorder and
        // the biased read passage must STILL score zero inner-lock
        // operations (and zero CC RMRs) — the recorder writes only to the
        // calling pid's own cache-padded slot via plain std atomics,
        // which the Counting backend does not (and must not) see.
        use rmr_obs::StatsRecorder;
        let rec = Arc::new(StatsRecorder::new(8));
        let lock: Bravo<TicketRwLock<Counting>, Native, Arc<StatsRecorder>> =
            Bravo::new_in(TicketRwLock::new_in(4, Counting), BravoConfig::default(), Native)
                .with_recorder(Arc::clone(&rec));
        mem::set_thread_slot(1);
        let t = lock.read_lock(pid(0));
        assert!(t.is_fast());
        lock.read_unlock(pid(0), t);

        mem::reset_thread_tally();
        for _ in 0..100 {
            let t = lock.read_lock(pid(0));
            lock.read_unlock(pid(0), t);
        }
        let tally = mem::thread_tally();
        assert_eq!(tally.ops, 0, "instrumentation leaked onto the inner lock: {tally:?}");
        assert_eq!(tally.cc, 0, "instrumentation cost CC RMRs: {tally:?}");
        assert_eq!(rec.counter(Event::BravoFastRead), 101);
        assert_eq!(rec.counter(Event::BravoSlowRead), 0);
    }

    #[test]
    fn recorder_sees_path_split_revocation_and_rebias() {
        use rmr_obs::StatsRecorder;
        let rec = Arc::new(StatsRecorder::new(8));
        let cfg = BravoConfig { rebias_after: 2, ..BravoConfig::default() };
        let lock = Bravo::with_config(TicketRwLock::new(4), cfg).with_recorder(Arc::clone(&rec));

        let t = lock.read_lock(pid(0));
        assert!(t.is_fast());
        lock.read_unlock(pid(0), t);
        let () = lock.write_lock(pid(1));
        lock.write_unlock(pid(1), ());
        assert_eq!(rec.counter(Event::BravoRevoke), 1);

        // Two slow reads: the second restores the bias.
        for _ in 0..2 {
            let t = lock.read_lock(pid(0));
            assert!(!t.is_fast());
            lock.read_unlock(pid(0), t);
        }
        assert_eq!(rec.counter(Event::BravoSlowRead), 2);
        assert_eq!(rec.counter(Event::BravoRebias), 1);
        let t = lock.read_lock(pid(0));
        assert!(t.is_fast());
        lock.read_unlock(pid(0), t);
        assert_eq!(rec.counter(Event::BravoFastRead), 2);
    }

    #[test]
    fn typed_rwlock_front_end_compiles_and_works() {
        let lock = RwLock::with_raw(vec![1u8], Bravo::new(MwmrStarvationFree::new(4)));
        lock.write().push(2);
        assert_eq!(*lock.read(), vec![1, 2]);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn typed_concurrent_increments_are_not_lost() {
        let lock = Arc::new(RwLock::with_raw(0u64, Bravo::new(TicketRwLock::new(8))));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            threads.push(std::thread::spawn(move || {
                for i in 0..200 {
                    if i % 4 == 0 {
                        *lock.write() += 1;
                    } else {
                        let _ = *lock.read();
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lock.read(), 200);
        assert!(lock.raw().is_quiescent());
    }

    #[test]
    fn raw_exclusion_stress() {
        // Readers hammer the fast path while writers revoke and re-bias
        // churns: the protected pair must never tear.
        let lock = Arc::new(Bravo::with_config(
            TicketRwLock::new(8),
            BravoConfig { table_slots: 8, rebias_after: 4, initial_bias: true },
        ));
        let cell = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut threads = Vec::new();
        for t in 0..4 {
            let lock = Arc::clone(&lock);
            let cell = Arc::clone(&cell);
            threads.push(std::thread::spawn(move || {
                for i in 0..500 {
                    if (t + i) % 5 == 0 {
                        let () = lock.write_lock(pid(t));
                        let v = cell.load(Ordering::SeqCst);
                        cell.store(v + 1, Ordering::SeqCst);
                        lock.write_unlock(pid(t), ());
                    } else {
                        let tok = lock.read_lock(pid(t));
                        let _ = cell.load(Ordering::SeqCst);
                        lock.read_unlock(pid(t), tok);
                    }
                }
            }));
        }
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(cell.load(Ordering::SeqCst), 400, "lost update: exclusion broke");
        assert!(lock.is_quiescent());
    }

    #[test]
    fn debug_formats() {
        let lock = Bravo::new(TicketRwLock::new(2));
        let s = format!("{lock:?}");
        assert!(s.contains("Bravo") && s.contains("bias"), "{s}");
        let t = lock.read_lock(pid(0));
        assert!(format!("{t:?}").contains("Fast"));
        lock.read_unlock(pid(0), t);
    }

    #[test]
    fn doorway_revokes_bias_after_inner_grant() {
        let lock = Bravo::new(TicketRwLock::new(4));
        // A published fast reader holds the passage in the Revoking stage.
        let r = lock.read_lock(pid(0));
        assert!(r.is_fast());
        let d = lock.start_write(pid(1));
        // Inner ticket grants immediately (the fast reader never queued
        // there), so this poll clears the bias and parks on the drain.
        let d = lock.poll_write(pid(1), d).expect_err("published reader still inside");
        assert!(matches!(d, BravoDoorway::Revoking { was_biased: true, .. }));
        assert!(!lock.bias(), "doorway poll must have cleared the bias");
        // A new reader can no longer take the fast path.
        assert!(lock.try_read_lock(pid(2)).is_none(), "inner write held + bias off");
        lock.read_unlock(pid(0), r);
        lock.poll_write(pid(1), d).expect("table drained");
        assert_eq!(lock.revocations(), 1);
        lock.write_unlock(pid(1), ());
        assert!(lock.is_quiescent());
    }

    #[test]
    fn cancel_in_revoking_stage_restores_bias_and_releases_inner() {
        let lock = Bravo::new(TicketRwLock::new(4));
        let r = lock.read_lock(pid(0));
        let d = lock.start_write(pid(1));
        let d = lock.poll_write(pid(1), d).expect_err("fast reader published");
        lock.cancel_write(pid(1), d);
        assert!(lock.bias(), "cancel must restore the bias it cleared");
        // The inner lock was released: both paths admit readers again.
        let r2 = lock.read_lock(pid(2));
        assert!(r2.is_fast(), "bias restored, fast path live again");
        lock.read_unlock(pid(2), r2);
        lock.read_unlock(pid(0), r);
        // And a fresh writer passage completes normally.
        lock.write_lock(pid(3));
        lock.write_unlock(pid(3), ());
        assert!(lock.is_quiescent());
    }

    #[test]
    fn cancel_in_inner_stage_forwards_to_the_inner_doorway() {
        let lock = Bravo::new(TicketRwLock::new(4));
        // Hold the inner lock through a *slow* reader so the inner ticket
        // doorway actually queues.
        let r = lock.try_fast_read(pid(0));
        assert!(r.is_some());
        lock.slots[r.unwrap()].store(EMPTY, MemOrdering::Relaxed); // retract helper probe
        lock.inner.read_lock(pid(0));
        let d = lock.start_write(pid(1));
        let d = lock.poll_write(pid(1), d).expect_err("inner reader ahead in the queue");
        assert!(matches!(d, BravoDoorway::Inner(_)));
        lock.cancel_write(pid(1), d);
        lock.inner.read_unlock(pid(0), ());
        assert!(lock.bias(), "inner-stage cancel never touched the bias");
        lock.write_lock(pid(2));
        lock.write_unlock(pid(2), ());
        assert!(lock.is_quiescent());
    }
}
