//! The paper's single-writer multi-reader algorithms (Figures 1 and 2).
//!
//! These are the building blocks of §3 and §4: at most one thread may play
//! the writer role at a time (the multi-writer constructions in
//! [`crate::mwmr`] serialize that role through a mutex), while readers may
//! be arbitrarily concurrent.

pub mod reader_priority;
pub mod writer_priority;

pub use reader_priority::SwmrReaderPriority;
pub use writer_priority::SwmrWriterPriority;
