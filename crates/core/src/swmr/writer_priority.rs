//! Figure 1: the single-writer multi-reader lock with **starvation freedom
//! and writer priority** (Theorem 1).
//!
//! Every shared variable and every numbered line of the paper's Figure 1 is
//! reproduced one-to-one; comments carry the paper's line numbers so the
//! code can be audited against the figure (and against the Appendix A
//! invariants, which are model-checked in `rmr-sim`).
//!
//! # How it works
//!
//! The writer enters the critical section from alternating *sides* 0 and 1.
//! To attempt from side `currD` it announces `D ← currD` (the doorway), then
//! waits for the readers registered on the previous side to drain
//! (`C[prevD]`, woken through `Permit[prevD]`), closes that side's gate for
//! its *next* attempt, waits for the exit section to drain (`EC` /
//! `ExitPermit`), and enters. Readers bind to the side read from `D`,
//! double-register if they observe `D` change mid-doorway, and wait on
//! `Gate[d]`, which the writer opens when it leaves. Every busy-wait is a
//! local spin on a boolean that changes at most once per wait, which is
//! where the O(1) RMR bound comes from.
//!
//! # Beyond the figure: the revocable doorway
//!
//! [`SwmrWriterPriority::start_write`] / [`SwmrWriterPriority::poll_write`]
//! / [`SwmrWriterPriority::cancel_write`] split `write_lock` at its two
//! waits so an asynchronous writer can park *while still counted by the
//! lock* (the `RawParkedWaiters` capability). The only state Figure 1
//! cannot unwind — an announce on `C[prevD]` with readers still holding
//! the side — is handled by **helping**: the cancel publishes the
//! abandoned passage in a `Zombie` word and the last reader out (the one
//! that observes `[1, 1]`, exactly the reader that would have woken the
//! writer) completes it on the canceller's behalf. See DESIGN.md §15.

use crate::packed::{Packed, PackedFaa};
use crate::raw::{RawParkedWaiters, RawRwLock, RawTryReadLock};
use crate::registry::Pid;
use crate::side::{AtomicSide, Side};
use rmr_mutex::mem::{Backend, Native, Ordering as MemOrdering, SharedBool, SharedWord};
use rmr_mutex::spin_until;
use rmr_mutex::CachePadded;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// `Zombie` encodings: an *abandoned* write passage (cancelled between the
/// doorway and the previous side's drain) that some process must still
/// complete on the canceller's behalf.
const ZOMBIE_NONE: u64 = 0;
/// A helper claimed the abandoned passage and is completing it (a
/// constant-length window: three stores).
const ZOMBIE_BUSY: u64 = 3;

/// Encodes "abandoned passage attempting from side `curr`".
fn zombie_encode(curr: Side) -> u64 {
    1 + curr.index() as u64
}

/// Inverse of [`zombie_encode`].
fn zombie_side(encoded: u64) -> Side {
    debug_assert!(encoded == 1 || encoded == 2);
    Side::from_index(encoded as usize - 1)
}

/// Per-side shared variables: `Gate[d]`, `Permit[d]`, `C[d]`.
struct SideVars<B: Backend> {
    /// `Gate[d]`: readers on side `d` may enter the CS while open. Written
    /// only by the writer role.
    gate: CachePadded<B::Bool>,
    /// `Permit[d]`: the last side-`d` reader out wakes the writer through
    /// this flag.
    permit: CachePadded<B::Bool>,
    /// `C[d] = [writer-waiting, reader-count]` for side `d`.
    count: CachePadded<PackedFaa<B>>,
}

impl<B: Backend> SideVars<B> {
    fn new(gate_open: bool) -> Self {
        Self {
            gate: CachePadded::new(B::Bool::new(gate_open)),
            permit: CachePadded::new(B::Bool::new(false)),
            count: CachePadded::new(PackedFaa::new_in(B::default())),
        }
    }
}

/// The writer's local state after the doorway (Fig. 1 lines 2–3): the side
/// it attempts from and the side it must flush.
#[derive(Debug, Clone, Copy)]
pub struct WriterAttempt {
    curr: Side,
    prev: Side,
}

impl WriterAttempt {
    /// Reconstructs the attempt state from the current side alone
    /// (`prevD = ¬currD`). Used by the Figure 4 multi-writer algorithm,
    /// where the doorway `D ← t` is performed on the writers' behalf.
    pub fn from_current_side(curr: Side) -> Self {
        Self { curr, prev: !curr }
    }

    /// The side this attempt enters from (`currD`).
    pub fn current_side(&self) -> Side {
        self.curr
    }

    /// The side this attempt must drain (`prevD`).
    pub fn previous_side(&self) -> Side {
        self.prev
    }
}

/// A published, not-yet-granted write intent: the state of a write passage
/// between the doorway (Fig. 1 lines 2–5 done) and the grant (line 13).
///
/// Returned by [`SwmrWriterPriority::start_write`], advanced by
/// [`SwmrWriterPriority::poll_write`], revoked by
/// [`SwmrWriterPriority::cancel_write`]. While a doorway is outstanding
/// the reader admission path is closed exactly as for a blocking writer
/// (WP1), which is what makes a parked asynchronous writer count like a
/// queued process.
#[derive(Debug)]
#[must_use = "an abandoned doorway must be cancelled with cancel_write"]
pub struct WriteDoorway {
    curr: Side,
    stage: DoorwayStage,
}

/// Which waiting-room wait the doorway is parked on.
#[derive(Debug, Clone, Copy)]
enum DoorwayStage {
    /// Lines 4–5 done (announced on `C[prevD]`); awaiting `Permit[prevD]`
    /// unless the announce observed `[0, 0]`.
    DrainPrev { must_wait: bool },
    /// Lines 7–10 done (side drained, `Gate[prevD]` closed, announced on
    /// `EC`); awaiting `ExitPermit` unless the announce observed `[0, 0]`.
    DrainExit { must_wait: bool },
}

/// Proof that the writer role holds the critical section; consumed by
/// [`SwmrWriterPriority::writer_exit`].
#[derive(Debug)]
#[must_use = "the write session must be ended with writer_exit/write_unlock"]
pub struct WriteSession {
    curr: Side,
}

impl WriteSession {
    /// The side this session entered from (`currD = D`).
    pub fn current_side(&self) -> Side {
        self.curr
    }

    /// Reconstructs the session token for a still-open SWWP session.
    ///
    /// Used by the Figure 4 multi-writer algorithm, where the writer that
    /// closes a session (its line 20) is generally *not* the writer whose
    /// waiting room opened it — intermediate writers inherit the session
    /// without running the waiting room.
    pub(crate) fn resume(curr: Side) -> Self {
        Self { curr }
    }
}

/// A reader's registration; consumed by
/// [`SwmrWriterPriority::read_unlock`].
#[derive(Debug)]
#[must_use = "the read session must be ended with read_unlock"]
pub struct ReadSession {
    side: Side,
}

impl ReadSession {
    /// The side this reader registered on (its final `d`).
    pub fn side(&self) -> Side {
        self.side
    }
}

/// Figure 1: single-writer multi-reader lock satisfying P1–P7 plus writer
/// priority (WP1) and the unstoppable-writer property (WP2), with O(1) RMR
/// complexity in the CC model (Theorem 1).
///
/// The *writer role* must be exercised by at most one thread at a time
/// (that is the "single-writer" in SWMR); the multi-writer constructions in
/// [`crate::mwmr`] serialize the role through a mutex. Readers may be
/// arbitrarily concurrent.
///
/// Generic over the memory backend `B` ([`Native`] by default; construct
/// with [`SwmrWriterPriority::new_in`] and [`rmr_mutex::Counting`] to
/// measure RMRs on the real implementation, experiment E13).
///
/// # Example
///
/// ```
/// use rmr_core::swmr::SwmrWriterPriority;
///
/// let lock = SwmrWriterPriority::new();
///
/// // Reader side (any number of threads):
/// let r = lock.read_lock();
/// lock.read_unlock(r);
///
/// // Writer side (one thread):
/// let w = lock.write_lock();
/// lock.write_unlock(w);
/// ```
pub struct SwmrWriterPriority<B: Backend = Native> {
    /// `D`: the side the writer is attempting from; written only by the
    /// writer role (Fig. 1 line 3, or Fig. 4 line 8 by proxy).
    d: AtomicSide<B>,
    /// `Gate[d]`, `Permit[d]`, `C[d]` for `d ∈ {0, 1}`.
    sides: [SideVars<B>; 2],
    /// `EC = [writer-waiting, exit-count]`.
    exit_count: CachePadded<PackedFaa<B>>,
    /// `ExitPermit`: the last reader to leave the exit section wakes the
    /// writer through this flag.
    exit_permit: CachePadded<B::Bool>,
    /// `Zombie`: an abandoned write passage awaiting deferred completion
    /// ([`ZOMBIE_NONE`] / [`zombie_encode`] / [`ZOMBIE_BUSY`]). Written by
    /// [`Self::cancel_write`], claimed (CAS) and completed by the last
    /// previous-side reader out or by the next [`Self::start_write`].
    /// Not part of Figure 1; see DESIGN.md §15.
    zombie: CachePadded<B::Word>,
    /// Debug-only discipline check: true between waiting-room completion
    /// and `writer_exit` (the "SWWP session" of Figure 4's commentary).
    /// Not part of the algorithm's shared state, so it stays a plain
    /// `std` atomic and is never RMR-accounted.
    session_active: AtomicBool,
}

impl SwmrWriterPriority {
    /// Creates the lock in the paper's initial configuration:
    /// `D = 0`, `Gate\[0\] = true`, `Gate\[1\] = false`, all counters `\[0, 0\]`.
    pub fn new() -> Self {
        Self::new_in(Native)
    }
}

impl<B: Backend> SwmrWriterPriority<B> {
    /// Creates the lock in the paper's initial configuration over the given
    /// memory backend.
    pub fn new_in(backend: B) -> Self {
        Self {
            d: AtomicSide::new_in(Side::Zero, backend),
            sides: [SideVars::new(true), SideVars::new(false)],
            exit_count: CachePadded::new(PackedFaa::new_in(backend)),
            exit_permit: CachePadded::new(B::Bool::new(false)),
            zombie: CachePadded::new(B::Word::new(ZOMBIE_NONE)),
            session_active: AtomicBool::new(false),
        }
    }

    fn side(&self, d: Side) -> &SideVars<B> {
        &self.sides[d.index()]
    }

    // ------------------------------------------------------------------
    // Writer role (Write-lock(), Fig. 1 lines 2–14)
    // ------------------------------------------------------------------

    /// The writer's bounded doorway (lines 2–3): toggles `D`.
    ///
    /// Once the doorway completes, any reader that starts its own doorway
    /// afterwards is blocked behind this write attempt — that is WP1.
    pub fn writer_doorway(&self) -> WriterAttempt {
        debug_assert!(
            !self.session_active.load(Ordering::SeqCst),
            "writer doorway while a write session is still open"
        );
        // Relaxed: D is written only by the writer role, so this read of
        // our own last store needs no cross-thread ordering.
        let prev = self.d.load(MemOrdering::Relaxed); // line 2: prevD ← D, currD ← ¬prevD
        let curr = !prev;
        // Relaxed: the announce's visibility is carried by the SeqCst F&A
        // on C[prevD] at line 5 — any reader whose registration F&A
        // follows it inherits this store via the RMW release chain and
        // re-reads D at its line 18; any reader registered before it is
        // drained at line 6. (See DESIGN.md §13, site F1-L3.)
        self.d.store(curr, MemOrdering::Relaxed); // line 3: D ← currD
        WriterAttempt { curr, prev }
    }

    /// Lines 4–5: reset `Permit[prevD]` and announce on `C[prevD]`.
    /// Returns whether the drain must be waited for (line 6's condition).
    fn announce_on_prev(&self, curr: Side) -> bool {
        let prev = self.side(!curr);
        // Relaxed reset: sequenced before the SeqCst F&A at line 5, and a
        // reader sets Permit[prevD] only after observing that F&A's writer
        // bit (line 22/28), so the RMW chain already orders reset-then-set.
        prev.permit.store(false, MemOrdering::Relaxed); // line 4: Permit[prevD] ← false
                                                        // SeqCst: the paper's announce-then-wait F&A — its place in the
                                                        // single total order versus the readers' registration F&As (line
                                                        // 17) is what makes "every reader is either waited for here or
                                                        // diverted at its line 18" exhaustive.
        let old = prev.count.add_writer(MemOrdering::SeqCst); // line 5: F&A(C[prevD], [1, 0])
        debug_assert!(!old.writer_waiting(), "writer-waiting flag already set on C[prevD]");
        old != Packed::ZERO
    }

    /// Lines 7–10: retire the previous side's announce, close its gate,
    /// and announce on the exit section. Returns whether the exit drain
    /// must be waited for (line 11's condition).
    fn close_prev_and_announce_exit(&self, curr: Side) -> bool {
        let prev = self.side(!curr);
        // SeqCst: the release half of the RMW chain that hands the
        // writer's D announce to late registrants (see line 3).
        let old = prev.count.sub_writer(MemOrdering::SeqCst); // line 7: F&A(C[prevD], [-1, 0])
        debug_assert!(old.writer_waiting());

        // Release: conservatively keeps the close ordered after the side
        // drain above. (Late side-prevD registrants are diverted by their
        // line-18 re-check, which would license Relaxed, but the close is
        // writer-slow-path code where Release is free.)
        prev.gate.store(false, MemOrdering::Release); // line 8: Gate[prevD] ← false

        // Relaxed reset: same argument as line 4, via the line-10 F&A and
        // the readers' line 29/30.
        self.exit_permit.store(false, MemOrdering::Relaxed); // line 9: ExitPermit ← false
                                                             // SeqCst: announce-then-wait on the exit section, as at line 5.
        let old = self.exit_count.add_writer(MemOrdering::SeqCst); // line 10: F&A(EC, [1, 0])
        debug_assert!(!old.writer_waiting());
        old != Packed::ZERO
    }

    /// Line 12 and the session open: retire the exit-section announce and
    /// grant the critical section.
    fn grant(&self, curr: Side) -> WriteSession {
        let old = self.exit_count.sub_writer(MemOrdering::SeqCst); // line 12: F&A(EC, [-1, 0])
        debug_assert!(old.writer_waiting());

        let was = self.session_active.swap(true, Ordering::SeqCst);
        debug_assert!(!was, "two write sessions open at once");
        WriteSession { curr } // line 13: CRITICAL SECTION
    }

    /// The writer's waiting room (lines 4–12): drains the previous side's
    /// readers and the exit section, then grants the critical section.
    pub fn writer_waiting_room(&self, attempt: WriterAttempt) -> WriteSession {
        if self.announce_on_prev(attempt.curr) {
            // line 6: wait till Permit[prevD]. Acquire pairs with the last
            // reader's Release store (line 28) so its exit is visible.
            spin_until(|| self.side(attempt.prev).permit.load(MemOrdering::Acquire));
        }
        if self.close_prev_and_announce_exit(attempt.curr) {
            // line 11: wait till ExitPermit. Acquire pairs with line 30.
            spin_until(|| self.exit_permit.load(MemOrdering::Acquire));
        }
        self.grant(attempt.curr)
    }

    /// The writer's whole try section: doorway + waiting room. Resolves an
    /// abandoned asynchronous passage first (see [`Self::start_write`]).
    pub fn write_lock(&self) -> WriteSession {
        let doorway = self.start_write();
        self.finish_write(doorway)
    }

    /// Spins a doorway through its waiting-room waits to the grant — the
    /// blocking tail of `write_lock`, shared with doorway adoption.
    fn finish_write(&self, doorway: WriteDoorway) -> WriteSession {
        let curr = doorway.curr;
        let exit_wait = match doorway.stage {
            DoorwayStage::DrainPrev { must_wait } => {
                if must_wait {
                    // line 6, as in writer_waiting_room.
                    spin_until(|| self.side(!curr).permit.load(MemOrdering::Acquire));
                }
                self.close_prev_and_announce_exit(curr)
            }
            DoorwayStage::DrainExit { must_wait } => must_wait,
        };
        if exit_wait {
            // line 11, as in writer_waiting_room.
            spin_until(|| self.exit_permit.load(MemOrdering::Acquire));
        }
        self.grant(curr)
    }

    // ------------------------------------------------------------------
    // The revocable doorway (RawParkedWaiters): start / poll / cancel
    // ------------------------------------------------------------------

    /// Starts a write passage and returns without waiting: the doorway
    /// (lines 2–3) plus the previous side's announce (lines 4–5), so the
    /// caller is *counted* — WP1 applies from this moment, readers that
    /// start their doorway afterwards wait behind the returned token.
    ///
    /// If the previous passage was cancelled and is still awaiting its
    /// deferred completion, this call **adopts** it instead — resuming the
    /// abandoned passage's queue position rather than opening a new one —
    /// or, if a helper is mid-completion (a three-store window), waits it
    /// out. Apart from that window the call is bounded.
    pub fn start_write(&self) -> WriteDoorway {
        // Resolve any abandoned predecessor before toggling `D` — its
        // completion rewrites the gates this passage is about to reason
        // about. Site F1-ZADOPT (SeqCst: the claim CAS must be totally
        // ordered against the helper's claim, see `help_abandoned`).
        loop {
            let z = self.zombie.load(MemOrdering::SeqCst);
            if z == ZOMBIE_NONE {
                break;
            }
            if z == ZOMBIE_BUSY {
                // A helper is completing the abandoned passage (three
                // stores); wait it out, then start fresh.
                spin_until(|| self.zombie.load(MemOrdering::SeqCst) != ZOMBIE_BUSY);
                continue;
            }
            if self
                .zombie
                .compare_exchange(z, ZOMBIE_NONE, MemOrdering::SeqCst, MemOrdering::SeqCst)
                .is_ok()
            {
                // Adopted: the abandoned doorway already toggled `D` and
                // announced on `C[prevD]`; resume its waiting room. The
                // permit may already be up (the side may even have drained
                // while abandoned) — the first poll will observe that.
                let curr = zombie_side(z);
                debug_assert!(
                    !self.session_active.load(Ordering::SeqCst),
                    "adopting a doorway while a write session is still open"
                );
                debug_assert_eq!(self.d.load(MemOrdering::Relaxed), curr);
                return WriteDoorway { curr, stage: DoorwayStage::DrainPrev { must_wait: true } };
            }
        }
        let attempt = self.writer_doorway(); // lines 2–3
        let must_wait = self.announce_on_prev(attempt.curr); // lines 4–5
        WriteDoorway { curr: attempt.curr, stage: DoorwayStage::DrainPrev { must_wait } }
    }

    /// Advances the doorway by at most one waiting-room stage, testing
    /// each wait condition **once** (bounded, never spins): `Ok` grants
    /// the critical section, `Err` hands the doorway back to park on.
    pub fn poll_write(&self, mut doorway: WriteDoorway) -> Result<WriteSession, WriteDoorway> {
        let curr = doorway.curr;
        if let DoorwayStage::DrainPrev { must_wait } = doorway.stage {
            // line 6's condition, tested once. Acquire as in the spin.
            if must_wait && !self.side(!curr).permit.load(MemOrdering::Acquire) {
                return Err(doorway);
            }
            let must_wait = self.close_prev_and_announce_exit(curr); // lines 7–10
            doorway.stage = DoorwayStage::DrainExit { must_wait };
        }
        let DoorwayStage::DrainExit { must_wait } = doorway.stage else { unreachable!() };
        // line 11's condition, tested once. Acquire as in the spin.
        if must_wait && !self.exit_permit.load(MemOrdering::Acquire) {
            return Err(doorway);
        }
        Ok(self.grant(curr))
    }

    /// Revokes a not-yet-granted doorway in a bounded number of steps.
    ///
    /// Past the previous side's drain (`DrainExit`), the passage unwinds
    /// inline: the exit-section announce is retired (the `EC` drain only
    /// protects the critical section this passage will not enter; a stale
    /// `ExitPermit` is reset by the next passage's line 9) and `Gate[currD]`
    /// reopens, leaving exactly the configuration an empty write session
    /// would have left.
    ///
    /// Before the drain (`DrainPrev`) the announce on `C[prevD]` cannot be
    /// retired while readers still hold the side — the last one out must
    /// observe `[1, 1]` and that observation is how the protocol elects a
    /// unique completer. So the cancel *publishes* the abandoned passage in
    /// `Zombie` (site F1-ZPUB) and re-checks the side's count (site
    /// F1-ZSCAN): if the side has drained, it claims the passage back and
    /// completes inline; otherwise the last reader out finds the zombie
    /// (site F1-ZHELP in the exit section) and completes on our behalf.
    /// Both checks are SeqCst, so in the total order either our scan sees
    /// the last reader's decrement or that reader's zombie load sees our
    /// publish — the classic store-buffer square, pinned exactly like the
    /// permit handshake it shadows (DESIGN.md §13, §15).
    pub fn cancel_write(&self, doorway: WriteDoorway) {
        let curr = doorway.curr;
        match doorway.stage {
            DoorwayStage::DrainExit { .. } => {
                let old = self.exit_count.sub_writer(MemOrdering::SeqCst); // undo line 10
                debug_assert!(old.writer_waiting());
                // Empty passage's line 14: reopen our side.
                self.side(curr).gate.store(true, MemOrdering::Release);
            }
            DoorwayStage::DrainPrev { must_wait: false } => {
                // The announce observed [0, 0]: the side was already
                // drained and no reader can register on it anew (readers
                // bind to `D = currD`; double-registrants retire without
                // waiting). Complete inline.
                self.complete_abandoned(curr);
            }
            DoorwayStage::DrainPrev { must_wait: true } => {
                // Site F1-ZPUB: publish the abandoned passage...
                self.zombie.store(zombie_encode(curr), MemOrdering::SeqCst);
                // ...then re-check the drain (site F1-ZSCAN). A reader
                // count of zero here proves every remaining reader's
                // line-27 decrement precedes this load in the total order,
                // so none of them can have seen the zombie — we must
                // complete. A nonzero count proves the decrement to zero
                // follows our publish, so that reader's zombie load (site
                // F1-ZHELP) sees it — it will complete.
                if self.side(!curr).count.load(MemOrdering::SeqCst).reader_count() == 0 {
                    let z = zombie_encode(curr);
                    if self
                        .zombie
                        .compare_exchange(z, ZOMBIE_NONE, MemOrdering::SeqCst, MemOrdering::SeqCst)
                        .is_ok()
                    {
                        self.complete_abandoned(curr);
                    }
                    // CAS failure: a last-reader helper (or an adopting
                    // writer, had the claim discipline allowed one) got
                    // there first; the passage is theirs now.
                }
            }
        }
    }

    /// Completes an abandoned write passage whose previous side has
    /// drained: retire the announce (line 7), close the drained side's
    /// gate (line 8), and reopen the current side's (line 14) — the
    /// shared-memory effect of an empty write session, skipping the
    /// exit-section handshake it never announced on.
    fn complete_abandoned(&self, curr: Side) {
        let prev = self.side(!curr);
        let old = prev.count.sub_writer(MemOrdering::SeqCst); // line 7
        debug_assert!(old.writer_waiting());
        prev.gate.store(false, MemOrdering::Release); // line 8
                                                      // Empty passage's line 14: readers parked on `Gate[currD]` during
                                                      // the abandoned passage resume here. Release pairs with their
                                                      // Acquire gate spin.
        self.side(curr).gate.store(true, MemOrdering::Release);
    }

    /// The reader half of the deferred cancellation: called by the reader
    /// whose decrement observed `[1, 1]` (it just retired the last reader
    /// of `drained` while a writer-waiting flag was up). If that waiting
    /// writer is an abandoned doorway, claim it (site F1-ZHELP /
    /// F1-ZCLAIM) and complete it on the canceller's behalf. `ZOMBIE_BUSY`
    /// parks concurrent `start_write` callers for the three-store window,
    /// keeping a fresh doorway from interleaving with the gate rewrites.
    fn help_abandoned(&self, drained: Side) {
        // Site F1-ZHELP: SeqCst — the other half of cancel_write's square.
        let z = self.zombie.load(MemOrdering::SeqCst);
        if z == ZOMBIE_NONE || z == ZOMBIE_BUSY {
            return;
        }
        let curr = zombie_side(z);
        debug_assert_eq!(drained, !curr, "zombie announce is always on the previous side");
        if self
            .zombie
            .compare_exchange(z, ZOMBIE_BUSY, MemOrdering::SeqCst, MemOrdering::SeqCst)
            .is_ok()
        {
            self.complete_abandoned(curr);
            self.zombie.store(ZOMBIE_NONE, MemOrdering::SeqCst);
        }
    }

    /// The writer's exit section (line 14): opens the gate of the session's
    /// side, releasing every reader parked there. Bounded (single step).
    pub fn writer_exit(&self, session: WriteSession) {
        let was = self.session_active.swap(false, Ordering::SeqCst);
        debug_assert!(was, "writer_exit without an open write session");
        // line 14: Gate[D] ← true (D still equals the session's currD).
        // Release: hands the write session's CS writes to every reader
        // whose Acquire gate spin (line 24) observes the open.
        self.side(session.curr).gate.store(true, MemOrdering::Release);
    }

    /// Alias for [`Self::writer_exit`], for symmetry with `write_lock`.
    pub fn write_unlock(&self, session: WriteSession) {
        self.writer_exit(session);
    }

    // ------------------------------------------------------------------
    // Reader side (Read-lock(), Fig. 1 lines 16–30)
    // ------------------------------------------------------------------

    /// A reader's doorway (lines 16–23): registers on the side announced
    /// in `D`, re-registering if the writer toggled `D` mid-doorway.
    /// Bounded; the returned side is the one whose gate admits this reader.
    fn reader_doorway(&self) -> Side {
        // Relaxed: a stale D here only picks the wrong side provisionally;
        // the SeqCst F&A at line 17 and the re-check at line 18 divert us.
        let mut d = self.d.load(MemOrdering::Relaxed); // line 16: d ← D
                                                       // SeqCst: the registration F&A — its order against the writer's
                                                       // line 5/7 F&As decides "waited for" vs "diverted", and reading
                                                       // the writer's release RMW carries the writer's D announce into
                                                       // the re-check below.
        self.side(d).count.add_reader(MemOrdering::SeqCst); // line 17: F&A(C[d], [0, 1])
                                                            // Relaxed: freshness is inherited from the line-17 F&A (see above);
                                                            // no further ordering is needed on the load itself.
        let d2 = self.d.load(MemOrdering::Relaxed); // line 18: d′ ← D
        if d != d2 {
            // line 19: if (d ≠ d′)
            self.side(d2).count.add_reader(MemOrdering::SeqCst); // line 20: F&A(C[d′], [0, 1])
            d = self.d.load(MemOrdering::Relaxed); // line 21: d ← D
                                                   // Registered on both sides; retire from the one we don't belong
                                                   // to (d̄, the complement of the side just re-read).
            let other = !d;
            let old = self.side(other).count.sub_reader(MemOrdering::SeqCst); // line 22: F&A(C[d̄], [0, -1])
            if old == Packed::ONE_ONE {
                // line 23: Permit[d̄] ← true — we were the last side-d̄
                // reader and the writer is waiting on that side. Release
                // pairs with the writer's Acquire spin at line 6.
                self.side(other).permit.store(true, MemOrdering::Release);
                // If that waiting writer was cancelled, nobody is spinning
                // on the permit: complete its passage on its behalf.
                self.help_abandoned(other);
            }
        }
        d
    }

    /// A reader's try section (lines 16–24).
    ///
    /// Satisfies concurrent entering (P5): when the writer role is in the
    /// remainder section, `Gate[D]` is open and the reader passes straight
    /// through in a bounded number of steps.
    pub fn read_lock(&self) -> ReadSession {
        let d = self.reader_doorway();
        // line 24: wait till Gate[d]. Acquire pairs with the writer's
        // Release open (line 14), making the write session's data visible.
        spin_until(|| self.side(d).gate.load(MemOrdering::Acquire));
        ReadSession { side: d } // line 25: CRITICAL SECTION
    }

    /// A **bounded** read attempt: the doorway, one gate test, and — on a
    /// closed gate — retirement through the ordinary exit section.
    ///
    /// The abort path is sound because a registered reader that runs lines
    /// 26–30 without entering the critical section is indistinguishable,
    /// to every counter (`C[d]`, `EC`) and permit, from a reader whose
    /// read session was empty; and the entry path is the normal one (the
    /// gate was observed open), so P1 and WP1 are untouched.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::swmr::SwmrWriterPriority;
    ///
    /// let lock = SwmrWriterPriority::new();
    /// let r = lock.try_read_lock().expect("no writer active");
    /// lock.read_unlock(r);
    ///
    /// let w = lock.write_lock();
    /// assert!(lock.try_read_lock().is_none(), "writer holds the CS");
    /// lock.write_unlock(w);
    /// ```
    pub fn try_read_lock(&self) -> Option<ReadSession> {
        let d = self.reader_doorway();
        // Acquire: an open gate admits us exactly as at line 24.
        if self.side(d).gate.load(MemOrdering::Acquire) {
            Some(ReadSession { side: d })
        } else {
            // Writer active on our side: retire through the exit section.
            self.read_unlock(ReadSession { side: d });
            None
        }
    }

    /// A reader's exit section (lines 26–30). Bounded (P2): at most four
    /// shared-memory operations, no waiting.
    pub fn read_unlock(&self, session: ReadSession) {
        let d = session.side;
        // SeqCst F&As: the exit-section counters run the same
        // announce-then-wake protocol as the try section; their place in
        // the total order against the writer's line 10/12 is load-bearing.
        self.exit_count.add_reader(MemOrdering::SeqCst); // line 26: F&A(EC, [0, 1])
        let old = self.side(d).count.sub_reader(MemOrdering::SeqCst); // line 27: F&A(C[d], [0, -1])
        if old == Packed::ONE_ONE {
            // Release pairs with the writer's Acquire spin at line 6.
            self.side(d).permit.store(true, MemOrdering::Release); // line 28
                                                                   // If the waiting writer was cancelled, nobody is spinning on
                                                                   // the permit we just raised: complete its abandoned passage
                                                                   // (site F1-ZHELP; see cancel_write).
            self.help_abandoned(d);
        }
        let old = self.exit_count.sub_reader(MemOrdering::SeqCst); // line 29: F&A(EC, [0, -1])
        if old == Packed::ONE_ONE {
            // Release pairs with the writer's Acquire spin at line 11.
            self.exit_permit.store(true, MemOrdering::Release); // line 30
        }
    }

    // ------------------------------------------------------------------
    // Figure 4 plumbing (the SWWP pieces its multi-writer protocol drives)
    // ------------------------------------------------------------------

    /// Reads `D` (Fig. 4 line 10 reads `currD ← D`).
    pub fn direction(&self) -> Side {
        // Acquire: Fig. 4 readers call this after their registration F&A
        // and writers under lock M; Acquire is already stronger than
        // either caller needs, and keeps the helper caller-agnostic.
        self.d.load(MemOrdering::Acquire)
    }

    /// Writes `D ← side` — the doorway performed *on the writers' behalf*
    /// by Figure 4 line 8. Concurrent callers always write the same value
    /// (see the Fig. 4 analysis in DESIGN.md), so the store is idempotent.
    pub fn set_direction(&self, side: Side) {
        // SeqCst: Fig. 4's proxy doorway (its line 8) is a cross-writer
        // announce whose total-order position against the readers'
        // registration F&As the Fig. 4 proof uses directly; unlike the
        // single-writer line 3 there is no adjacent same-thread RMW on the
        // partner variable to carry a weaker store.
        self.d.store(side, MemOrdering::SeqCst);
    }

    /// Whether `Gate[side]` is open (Fig. 4 line 12 waits on this).
    pub fn gate_is_open(&self, side: Side) -> bool {
        // Acquire: doubles as Fig. 4's line-12 wait predicate, pairing
        // with the Release open at line 14.
        self.side(side).gate.load(MemOrdering::Acquire)
    }

    /// Diagnostic snapshot `(C\[0\], C\[1\], EC)`; values may be stale.
    pub fn counters(&self) -> (Packed, Packed, Packed) {
        // Relaxed: diagnostic/at-rest reads; the quiescence oracle runs
        // after the worker threads have been joined, and a join is already
        // a synchronization point.
        (
            self.sides[0].count.load(MemOrdering::Relaxed),
            self.sides[1].count.load(MemOrdering::Relaxed),
            self.exit_count.load(MemOrdering::Relaxed),
        )
    }

    /// True when the lock is at rest: every counter (`C\[0\]`, `C\[1\]`,
    /// `EC`) is zero and the gates sit in the canonical idle configuration
    /// (`Gate[D]` open, `Gate[D̄]` closed). Checker entry point: after a
    /// clean run every passage must have unwound completely, so the
    /// real-code checker (`rmr-check`) asserts this at teardown. Only
    /// meaningful while no attempt is in flight.
    pub fn is_quiescent(&self) -> bool {
        let (c0, c1, ec) = self.counters();
        // Relaxed: at-rest read, see `counters`.
        let d = self.d.load(MemOrdering::Relaxed);
        c0 == Packed::ZERO
            && c1 == Packed::ZERO
            && ec == Packed::ZERO
            && self.gate_is_open(d)
            && !self.gate_is_open(!d)
            // No abandoned passage awaiting deferred completion.
            && self.zombie.load(MemOrdering::Relaxed) == ZOMBIE_NONE
    }
}

impl<B: Backend> Default for SwmrWriterPriority<B> {
    fn default() -> Self {
        Self::new_in(B::default())
    }
}

impl<B: Backend> fmt::Debug for SwmrWriterPriority<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (c0, c1, ec) = self.counters();
        f.debug_struct("SwmrWriterPriority")
            .field("d", &self.d.load(MemOrdering::Relaxed))
            .field("c0", &c0)
            .field("c1", &c1)
            .field("ec", &ec)
            .field("gate0", &self.gate_is_open(Side::Zero))
            .field("gate1", &self.gate_is_open(Side::One))
            .finish()
    }
}

/// [`RawRwLock`] adapter so the typed front end (and the SWMR wrapper in
/// [`crate::swmr_rwlock`]) can drive Figure 1 through the common interface.
///
/// Figure 1 names no processes — pids are accepted and ignored — and it
/// supports any number of readers, so `max_processes` reports "unbounded"
/// (`usize::MAX`); size the registry explicitly with
/// [`RwLock::with_raw_and_capacity`](crate::rwlock::RwLock::with_raw_and_capacity).
///
/// **Contract beyond [`RawRwLock`]'s:** at most one process may exercise
/// the writer role at a time (this is the "single writer" of Theorem 1).
/// The typed [`SwmrRwLock`](crate::swmr_rwlock::SwmrRwLock) enforces that
/// statically; going through this impl directly, it is the caller's
/// obligation (debug builds assert it).
impl<B: Backend> RawRwLock for SwmrWriterPriority<B> {
    type ReadToken = ReadSession;
    type WriteToken = WriteSession;

    fn read_lock(&self, _pid: Pid) -> ReadSession {
        SwmrWriterPriority::read_lock(self)
    }

    fn read_unlock(&self, _pid: Pid, token: ReadSession) {
        SwmrWriterPriority::read_unlock(self, token);
    }

    fn write_lock(&self, _pid: Pid) -> WriteSession {
        SwmrWriterPriority::write_lock(self)
    }

    fn write_unlock(&self, _pid: Pid, token: WriteSession) {
        SwmrWriterPriority::write_unlock(self, token);
    }

    fn max_processes(&self) -> usize {
        usize::MAX
    }
}

impl<B: Backend> RawTryReadLock for SwmrWriterPriority<B> {
    fn try_read_lock(&self, _pid: Pid) -> Option<ReadSession> {
        SwmrWriterPriority::try_read_lock(self)
    }
}

// SAFETY: `poll_write` only returns `Ok` after the full waiting room
// (lines 6–12) has been observed complete, so the token carries exactly
// `write_lock`'s exclusion. The one-doorway-at-a-time contract is the
// single-writer-role contract this lock already imposes.
unsafe impl<B: Backend> RawParkedWaiters for SwmrWriterPriority<B> {
    /// Queued: `start_write` runs the doorway (lines 2–5), so WP1 closes
    /// the reader admission path while the token is parked — a reader that
    /// starts its doorway after `start_write` returns waits behind it.
    const QUEUED: bool = true;

    type WriteDoorway = WriteDoorway;

    fn start_write(&self, _pid: Pid) -> WriteDoorway {
        SwmrWriterPriority::start_write(self)
    }

    fn poll_write(&self, _pid: Pid, doorway: WriteDoorway) -> Result<WriteSession, WriteDoorway> {
        SwmrWriterPriority::poll_write(self, doorway)
    }

    fn cancel_write(&self, _pid: Pid, doorway: WriteDoorway) {
        SwmrWriterPriority::cancel_write(self, doorway)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn initial_configuration_matches_paper() {
        let lock = SwmrWriterPriority::new();
        assert_eq!(lock.direction(), Side::Zero);
        assert!(lock.gate_is_open(Side::Zero));
        assert!(!lock.gate_is_open(Side::One));
        let (c0, c1, ec) = lock.counters();
        assert_eq!((c0, c1, ec), (Packed::ZERO, Packed::ZERO, Packed::ZERO));
    }

    #[test]
    fn reader_alone_enters_in_bounded_steps() {
        // Concurrent entering (P5): no writer active, so read_lock must not
        // block; if it spun, this test would hang.
        let lock = SwmrWriterPriority::new();
        for _ in 0..100 {
            let r = lock.read_lock();
            assert_eq!(r.side(), Side::Zero);
            lock.read_unlock(r);
        }
    }

    #[test]
    fn writer_alone_cycles_and_alternates_sides() {
        let lock = SwmrWriterPriority::new();
        let mut expected = Side::One; // first attempt toggles 0 → 1
        for _ in 0..10 {
            let w = lock.write_lock();
            assert_eq!(w.current_side(), expected);
            assert_eq!(lock.direction(), expected);
            lock.write_unlock(w);
            expected = !expected;
        }
    }

    #[test]
    fn readers_after_writer_session_use_new_side() {
        let lock = SwmrWriterPriority::new();
        let w = lock.write_lock();
        lock.write_unlock(w);
        // Writer used side 1 and opened Gate[1]; a new reader binds to D=1.
        let r = lock.read_lock();
        assert_eq!(r.side(), Side::One);
        lock.read_unlock(r);
    }

    #[test]
    fn writer_doorway_blocks_new_readers_until_exit() {
        let lock = Arc::new(SwmrWriterPriority::new());
        let w = lock.write_lock();

        let entered = Arc::new(AtomicBool::new(false));
        let l2 = Arc::clone(&lock);
        let e2 = Arc::clone(&entered);
        let reader = std::thread::spawn(move || {
            let r = l2.read_lock();
            e2.store(true, Ordering::SeqCst);
            l2.read_unlock(r);
        });

        // WP1: the reader started after the writer's doorway, so it must not
        // enter while the writer holds the CS.
        std::thread::sleep(Duration::from_millis(50));
        assert!(!entered.load(Ordering::SeqCst), "reader overtook the writer");

        lock.write_unlock(w);
        reader.join().unwrap();
        assert!(entered.load(Ordering::SeqCst));
    }

    #[test]
    fn writer_waits_for_registered_reader() {
        let lock = Arc::new(SwmrWriterPriority::new());
        let r = lock.read_lock(); // reader in CS on side 0

        let writer_in = Arc::new(AtomicBool::new(false));
        let l2 = Arc::clone(&lock);
        let w2 = Arc::clone(&writer_in);
        let writer = std::thread::spawn(move || {
            let w = l2.write_lock();
            w2.store(true, Ordering::SeqCst);
            l2.write_unlock(w);
        });

        std::thread::sleep(Duration::from_millis(50));
        assert!(!writer_in.load(Ordering::SeqCst), "writer entered over a live reader");

        lock.read_unlock(r);
        writer.join().unwrap();
        assert!(writer_in.load(Ordering::SeqCst));
    }

    #[test]
    fn mutual_exclusion_stress() {
        let lock = Arc::new(SwmrWriterPriority::new());
        let readers_in = Arc::new(AtomicUsize::new(0));
        let writer_in = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();

        // One writer thread (single-writer algorithm).
        {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writer_in = Arc::clone(&writer_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let w = lock.write_lock();
                    writer_in.store(true, Ordering::SeqCst);
                    assert_eq!(
                        readers_in.load(Ordering::SeqCst),
                        0,
                        "P1 violated: reader with writer"
                    );
                    writer_in.store(false, Ordering::SeqCst);
                    lock.write_unlock(w);
                }
            }));
        }
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writer_in = Arc::clone(&writer_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let r = lock.read_lock();
                    readers_in.fetch_add(1, Ordering::SeqCst);
                    assert!(!writer_in.load(Ordering::SeqCst), "P1 violated: writer with reader");
                    readers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.read_unlock(r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (c0, c1, ec) = lock.counters();
        assert_eq!((c0, c1, ec), (Packed::ZERO, Packed::ZERO, Packed::ZERO));
    }

    #[test]
    fn many_readers_share_the_cs() {
        // Readers must be able to co-occupy the CS (this also exercises the
        // FIFE-friendly gate: all of them park on the same side).
        let lock = Arc::new(SwmrWriterPriority::new());
        let sessions: Vec<_> = (0..8).map(|_| lock.read_lock()).collect();
        for s in sessions {
            lock.read_unlock(s);
        }
    }

    #[test]
    fn doorway_grants_uncontended_in_one_poll() {
        let lock = SwmrWriterPriority::new();
        let d = lock.start_write();
        let w = lock.poll_write(d).expect("uncontended doorway grants on the first poll");
        lock.write_unlock(w);
        assert!(lock.is_quiescent());
    }

    #[test]
    fn doorway_closes_reader_admission_while_parked() {
        // WP1 through the token: a reader arriving after start_write must
        // not be admitted until the doorway is granted-and-released.
        let lock = SwmrWriterPriority::new();
        let d = lock.start_write();
        assert!(lock.try_read_lock().is_none(), "reader overtook a parked doorway");
        let w = lock.poll_write(d).expect("no readers to drain");
        lock.write_unlock(w);
        assert!(lock.try_read_lock().is_some());
        let r = lock.read_lock();
        lock.read_unlock(r);
    }

    #[test]
    fn cancel_uncontended_doorway_restores_rest_state() {
        let lock = SwmrWriterPriority::new();
        for _ in 0..4 {
            let d = lock.start_write();
            lock.cancel_write(d);
            assert!(lock.is_quiescent(), "cancel must leave an empty-passage configuration");
            // Readers pass again immediately.
            let r = lock.try_read_lock().expect("gate reopened after cancel");
            lock.read_unlock(r);
        }
    }

    #[test]
    fn cancel_behind_live_reader_defers_to_helper() {
        let lock = SwmrWriterPriority::new();
        let r = lock.read_lock(); // reader holds side 0
        let d = lock.start_write(); // doorway announces on C[0], waits
        let d = lock.poll_write(d).expect_err("reader still registered");
        lock.cancel_write(d);
        // The zombie is pending: the lock is not yet quiescent, and the
        // reader's exit must complete the abandoned passage.
        assert!(!lock.is_quiescent());
        lock.read_unlock(r);
        assert!(lock.is_quiescent(), "last reader out must finish the cancelled passage");
        let r = lock.try_read_lock().expect("admission reopened by the helper");
        lock.read_unlock(r);
    }

    #[test]
    fn cancel_after_prev_drain_unwinds_inline() {
        let lock = SwmrWriterPriority::new();
        let r = lock.read_lock();
        let d = lock.start_write();
        let d = lock.poll_write(d).expect_err("reader still registered");
        lock.read_unlock(r); // permit raised; doorway advances next poll
        let d = match lock.poll_write(d) {
            // Depending on exit-section timing the second poll may already
            // grant; either way the passage must unwind cleanly.
            Ok(w) => {
                lock.write_unlock(w);
                assert!(lock.is_quiescent());
                return;
            }
            Err(d) => d,
        };
        lock.cancel_write(d);
        assert!(lock.is_quiescent());
    }

    #[test]
    fn start_write_adopts_an_abandoned_passage() {
        let lock = SwmrWriterPriority::new();
        let r = lock.read_lock(); // pin side 0 so the cancel must defer
        let d = lock.start_write();
        let expected_side = lock.direction();
        let d = lock.poll_write(d).expect_err("reader still registered");
        lock.cancel_write(d);
        // Adopt the zombie before any reader completes it: the new doorway
        // resumes the same side instead of toggling D again.
        let d2 = lock.start_write();
        assert_eq!(lock.direction(), expected_side, "adoption must not re-toggle D");
        lock.read_unlock(r);
        let w = lock.finish_write(d2);
        assert_eq!(w.current_side(), expected_side);
        lock.write_unlock(w);
        assert!(lock.is_quiescent());
    }

    #[test]
    fn write_lock_after_deferred_cancel_settles() {
        // The next blocking writer must not trip over a helper-completed
        // passage: cancel deferred, reader completes it, write_lock runs.
        let lock = SwmrWriterPriority::new();
        let r = lock.read_lock();
        let d = lock.start_write();
        let d = lock.poll_write(d).expect_err("reader still registered");
        lock.cancel_write(d);
        lock.read_unlock(r); // helper completes the passage
        let w = lock.write_lock();
        lock.write_unlock(w);
        assert!(lock.is_quiescent());
    }

    #[test]
    fn counters_return_to_zero_after_mixed_use() {
        let lock = SwmrWriterPriority::new();
        let r1 = lock.read_lock();
        let r2 = lock.read_lock();
        lock.read_unlock(r1);
        lock.read_unlock(r2);
        let w = lock.write_lock();
        lock.write_unlock(w);
        let (c0, c1, ec) = lock.counters();
        assert_eq!((c0, c1, ec), (Packed::ZERO, Packed::ZERO, Packed::ZERO));
    }
}
