//! Figure 2: the single-writer multi-reader lock with **reader priority**
//! (Theorem 2).
//!
//! Each numbered line of the paper's Figure 2 appears as one operation
//! below, with the paper's line numbers in comments. The two "subtle
//! features" of §4.3 — (A) readers CAS their own pid into `X` during the
//! try section, and (B) `Promote` first CASes its pid into `X` before
//! attempting to CAS `true` — are both present; removing either breaks
//! mutual exclusion (the `rmr-sim` model checker demonstrates this).
//!
//! # How it works
//!
//! `X` holds either a process id or the sentinel `true`; `X = true` means
//! the writer owns the critical section. Readers increment the count `C`,
//! stamp `X` with their pid (feature A), and enter directly unless they see
//! `X = true`, in which case they park on `Gate[d]`. The writer sets
//! `Permit ← false` and runs [`Promote`](SwmrReaderPriority): whoever later
//! observes `C = 0` promotes the writer by CASing `X` from its own pid to
//! `true` (feature B) and raising `Permit`. Readers can keep the writer out
//! forever — that is reader priority working as specified.

use crate::raw::{RawRwLock, RawTryReadLock};
use crate::registry::Pid;
use crate::side::{AtomicSide, Side};
use rmr_mutex::mem::{Backend, Native, Ordering as MemOrdering, SharedBool, SharedWord};
use rmr_mutex::spin_until;
use rmr_mutex::CachePadded;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Encoding of `X ∈ PID ∪ {true}`: pids are their integer value, `true` is
/// the reserved top value.
const X_TRUE: u64 = u64::MAX;

fn encode_pid(pid: Pid) -> u64 {
    pid.index() as u64
}

/// Proof that the writer role holds the critical section.
#[derive(Debug)]
#[must_use = "the write session must be ended with write_unlock"]
pub struct WriteSession {
    d: Side,
}

impl WriteSession {
    /// The side (`D`) of this write attempt.
    pub fn current_side(&self) -> Side {
        self.d
    }
}

/// A reader's registration.
#[derive(Debug)]
#[must_use = "the read session must be ended with read_unlock"]
pub struct ReadSession {
    d: Side,
}

impl ReadSession {
    /// The side (`d ← D`) this reader observed in its doorway.
    pub fn side(&self) -> Side {
        self.d
    }
}

/// Figure 2: single-writer multi-reader lock satisfying P1–P6 plus reader
/// priority (RP1) and the unstoppable-reader property (RP2), with O(1) RMR
/// complexity in the CC model (Theorem 2).
///
/// Unlike Figure 1 this algorithm needs process identifiers: every
/// participant (readers *and* the writer) must call the lock with a [`Pid`]
/// that is unique among concurrently active processes — the typed front end
/// in [`crate::rwlock`] handles that via [`crate::registry::PidRegistry`].
///
/// Generic over the memory backend `B` ([`Native`] by default; construct
/// with [`SwmrReaderPriority::new_in`] and [`rmr_mutex::Counting`] to
/// measure RMRs on the real implementation, experiment E13).
///
/// # Example
///
/// ```
/// use rmr_core::registry::Pid;
/// use rmr_core::swmr::SwmrReaderPriority;
///
/// let lock = SwmrReaderPriority::new();
/// let reader = Pid::from_index(0);
/// let writer = Pid::from_index(1);
///
/// let r = lock.read_lock(reader);
/// lock.read_unlock(reader, r);
///
/// let w = lock.write_lock(writer);
/// lock.write_unlock(writer, w);
/// ```
pub struct SwmrReaderPriority<B: Backend = Native> {
    /// `D`: the side of the writer's current attempt; written only by the
    /// writer role.
    d: AtomicSide<B>,
    /// `Gate[d]`: parks readers while the writer owns the CS.
    gates: [CachePadded<B::Bool>; 2],
    /// `X ∈ PID ∪ {true}` (CAS variable).
    x: CachePadded<B::Word>,
    /// `Permit`: raised by whoever promotes the writer.
    permit: CachePadded<B::Bool>,
    /// `C`: number of readers between their doorway and exit decrement.
    count: CachePadded<B::Word>,
    /// Debug-only discipline check for the single writer role; plain `std`
    /// atomic, never RMR-accounted.
    session_active: AtomicBool,
}

impl SwmrReaderPriority {
    /// Creates the lock in the paper's initial configuration: `D = 0`,
    /// `Gate\[0\] = true`, `Gate\[1\] = false`, `X` = some pid (we use 0),
    /// `Permit = true`, `C = 0`.
    pub fn new() -> Self {
        Self::new_in(Native)
    }
}

impl<B: Backend> SwmrReaderPriority<B> {
    /// Creates the lock in the paper's initial configuration over the given
    /// memory backend.
    pub fn new_in(backend: B) -> Self {
        Self {
            d: AtomicSide::new_in(Side::Zero, backend),
            gates: [CachePadded::new(B::Bool::new(true)), CachePadded::new(B::Bool::new(false))],
            x: CachePadded::new(B::Word::new(0)),
            permit: CachePadded::new(B::Bool::new(true)),
            count: CachePadded::new(B::Word::new(0)),
            session_active: AtomicBool::new(false),
        }
    }

    fn gate(&self, d: Side) -> &B::Bool {
        &self.gates[d.index()]
    }

    /// The `Promote` procedure (lines 10–16), executed by the writer in its
    /// try section and by every reader in its exit section.
    ///
    /// Promotes the writer (sets `X ← true` and raises `Permit`) iff no
    /// reader is registered. The pid-stamping CAS on line 12 is subtle
    /// feature (B): it guarantees that the line-15 CAS can only succeed if
    /// `X` was untouched since *this* invocation stamped it, which is what
    /// makes the `C = 0` observation trustworthy.
    // The nested `if`s deliberately mirror the paper's lines 10-16.
    #[allow(clippy::collapsible_if)]
    pub fn promote(&self, pid: Pid) {
        // X is the CAS linchpin of §4.3's subtle features (A) and (B);
        // the C = 0 trustworthiness argument totally orders X's accesses
        // against the F&As on C and the Permit flag, so every access to X
        // stays SeqCst (DESIGN.md §13, site F2-X).
        let x = self.x.load(MemOrdering::SeqCst); // line 10: x ← X
        if x != X_TRUE {
            // line 11: if (x ≠ true)
            let stamped = self
                .x
                .compare_exchange(x, encode_pid(pid), MemOrdering::SeqCst, MemOrdering::SeqCst)
                .is_ok(); // line 12: if (CAS(X, x, i))
            if stamped {
                // Dekker-style pattern: the writer stores Permit ← false and
                // then reads C; promoters F&A C and then read Permit. Both
                // halves stay SeqCst (DESIGN.md §13, site F2-PERMIT).
                if !self.permit.load(MemOrdering::SeqCst) {
                    // line 13: if (¬Permit)
                    // Load half of the store-buffering pattern with the
                    // writer's Permit ← false: must be SeqCst so that a
                    // reader whose F&A(C) preceded the writer's D/Permit
                    // stores is guaranteed visible here.
                    if self.count.load(MemOrdering::SeqCst) == 0 {
                        // line 14: if (C = 0)
                        let promoted = self
                            .x
                            .compare_exchange(
                                encode_pid(pid),
                                X_TRUE,
                                MemOrdering::SeqCst,
                                MemOrdering::SeqCst,
                            )
                            .is_ok(); // line 15: if (CAS(X, i, true))
                        if promoted {
                            // Handoff: wakes the writer spinning on line 5.
                            // Release publishes the promotion (X = true) and
                            // everything before it to the writer's Acquire
                            // spin; uniqueness is enforced by the line-15 CAS,
                            // not by this store's ordering.
                            self.permit.store(true, MemOrdering::Release); // line 16
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Writer role (Write-lock_i(), lines 2–9)
    // ------------------------------------------------------------------

    /// The writer's try section (lines 2–5).
    ///
    /// Blocks until every registered reader has left; new readers may keep
    /// arriving and overtake the writer indefinitely (reader priority).
    pub fn write_lock(&self, pid: Pid) -> WriteSession {
        debug_assert!(
            !self.session_active.load(Ordering::SeqCst),
            "second writer entered the single-writer role"
        );
        // Only the (unique) writer role writes D, so its own read-back is
        // Relaxed; the store must be SeqCst: the proof's stale-direction
        // argument orders a reader's line-19 load of D against this store
        // *and* that reader's earlier F&A(C) against the line-14 scan, an
        // IRIW-style appeal to the single total order (DESIGN.md §13,
        // site F2-D).
        let d = !self.d.load(MemOrdering::Relaxed); // line 2: D ← ¬D
        self.d.store(d, MemOrdering::SeqCst);
        // Store half of the Dekker pattern with C (see promote, line 14):
        // must be SeqCst so no promoter can read a stale Permit = true after
        // its F&A(C) was counted (DESIGN.md §13, site F2-PERMIT).
        self.permit.store(false, MemOrdering::SeqCst); // line 3: Permit ← false
        self.promote(pid); // line 4: Promote()
                           // Acquire pairs with the promoter's Release store on line 16.
        spin_until(|| self.permit.load(MemOrdering::Acquire)); // line 5: wait till Permit
        let was = self.session_active.swap(true, Ordering::SeqCst);
        debug_assert!(!was);
        WriteSession { d } // line 6: CRITICAL SECTION
    }

    /// The writer's exit section (lines 7–9). Bounded: three stores.
    pub fn write_unlock(&self, pid: Pid, session: WriteSession) {
        let was = self.session_active.swap(false, Ordering::SeqCst);
        debug_assert!(was, "write_unlock without an open write session");
        let d = session.d;
        // Relaxed: this close must be visible before X can next become
        // true, and it is — it is sequenced before the line-9 SeqCst store
        // of X, and any later promotion reaches parked readers through the
        // SeqCst/Release chain on Permit and X, which carries this store
        // with it (DESIGN.md §13, site F2-GATE).
        self.gate(!d).store(false, MemOrdering::Relaxed); // line 7: Gate[D̄] ← false
                                                          // Handoff releasing the readers parked on line 24 (Acquire spin).
        self.gate(d).store(true, MemOrdering::Release); // line 8: Gate[D] ← true
        self.x.store(encode_pid(pid), MemOrdering::SeqCst); // line 9: X ← i (site F2-X)
    }

    // ------------------------------------------------------------------
    // Reader side (Read-lock_i(), lines 18–27)
    // ------------------------------------------------------------------

    /// A reader's try section (lines 18–24).
    ///
    /// The pid-stamping CAS on line 22 is subtle feature (A): it invalidates
    /// any in-flight line-15 promotion that observed `C = 0` before this
    /// reader registered, preserving mutual exclusion.
    pub fn read_lock(&self, pid: Pid) -> ReadSession {
        // SeqCst F&A: the registration must be totally ordered against the
        // writer's Permit ← false / C scan (site F2-PERMIT).
        self.count.fetch_add(1, MemOrdering::SeqCst); // line 18: F&A(C, 1)
                                                      // SeqCst: a reader that misses the writer's store of D here must be
                                                      // unable to observe X = true on line 23 — that implication is the
                                                      // IRIW-style appeal of site F2-D and needs both accesses in the
                                                      // single total order.
        let d = self.d.load(MemOrdering::SeqCst); // line 19: d ← D
        let x = self.x.load(MemOrdering::SeqCst); // line 20: x ← X (site F2-X)
        if x != X_TRUE {
            // line 21: if (x ∈ PID)
            // line 22: CAS(X, x, i) — outcome deliberately ignored.
            let _ = self.x.compare_exchange(
                x,
                encode_pid(pid),
                MemOrdering::SeqCst,
                MemOrdering::SeqCst,
            );
        }
        if self.x.load(MemOrdering::SeqCst) == X_TRUE {
            // line 23: if (X = true) — site F2-X
            // Acquire pairs with the Release gate-open on line 8.
            spin_until(|| self.gate(d).load(MemOrdering::Acquire)); // line 24
        }
        ReadSession { d } // line 25: CRITICAL SECTION
    }

    /// A **bounded** read attempt: the reader doorway (lines 18–22), one
    /// test of `X`, and — if the writer owns the critical section — an
    /// abort through the ordinary exit section (lines 26–27).
    ///
    /// Sound because a registered reader that decrements `C` and runs
    /// `Promote` without entering the critical section is exactly a reader
    /// whose read session was empty; and the entry path is the normal
    /// "X ≠ true" fall-through, so RP1 and P1 are untouched.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::registry::Pid;
    /// use rmr_core::swmr::SwmrReaderPriority;
    ///
    /// let lock = SwmrReaderPriority::new();
    /// let reader = Pid::from_index(0);
    /// let writer = Pid::from_index(1);
    ///
    /// let r = lock.try_read_lock(reader).expect("no writer active");
    /// lock.read_unlock(reader, r);
    ///
    /// let w = lock.write_lock(writer);
    /// assert!(lock.try_read_lock(reader).is_none(), "writer holds the CS");
    /// lock.write_unlock(writer, w);
    /// ```
    pub fn try_read_lock(&self, pid: Pid) -> Option<ReadSession> {
        // Orderings as in `read_lock`; see the annotations there.
        self.count.fetch_add(1, MemOrdering::SeqCst); // line 18: F&A(C, 1)
        let d = self.d.load(MemOrdering::SeqCst); // line 19: d ← D
        let x = self.x.load(MemOrdering::SeqCst); // line 20: x ← X
        if x != X_TRUE {
            // line 21–22: stamp our pid (subtle feature A), as in read_lock.
            let _ = self.x.compare_exchange(
                x,
                encode_pid(pid),
                MemOrdering::SeqCst,
                MemOrdering::SeqCst,
            );
        }
        if self.x.load(MemOrdering::SeqCst) == X_TRUE {
            // Would park on Gate[d]: abort through the exit section.
            self.count.fetch_sub(1, MemOrdering::SeqCst); // line 26
            self.promote(pid); // line 27
            None
        } else {
            Some(ReadSession { d })
        }
    }

    /// A reader's exit section (lines 26–27). Bounded: the decrement plus
    /// one `Promote` (at most three more shared-memory operations).
    pub fn read_unlock(&self, pid: Pid, session: ReadSession) {
        let _ = session;
        // SeqCst: the retirement is the F&A half of site F2-PERMIT — a
        // promoter's subsequent Permit/C reads must be ordered after it.
        self.count.fetch_sub(1, MemOrdering::SeqCst); // line 26: F&A(C, -1)
        self.promote(pid); // line 27: Promote()
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Current value of `D`.
    pub fn direction(&self) -> Side {
        self.d.load(MemOrdering::Relaxed)
    }

    /// Whether `Gate[side]` is open. Diagnostic; may be stale.
    pub fn gate_is_open(&self, side: Side) -> bool {
        self.gate(side).load(MemOrdering::Relaxed)
    }

    /// Number of registered readers (`C`). Diagnostic; may be stale.
    pub fn reader_count(&self) -> u64 {
        self.count.load(MemOrdering::Relaxed)
    }

    /// Whether `X = true` (the writer owns or is entering the CS).
    pub fn writer_promoted(&self) -> bool {
        self.x.load(MemOrdering::Relaxed) == X_TRUE
    }

    /// True when the lock is at rest: no registered reader (`C = 0`), no
    /// promoted writer (`X ≠ true`), and the gates in the canonical idle
    /// configuration (`Gate[D]` open, `Gate[D̄]` closed). Checker entry
    /// point asserted by `rmr-check` at teardown; only meaningful while no
    /// attempt is in flight.
    pub fn is_quiescent(&self) -> bool {
        let d = self.direction();
        self.reader_count() == 0
            && !self.writer_promoted()
            && self.gate_is_open(d)
            && !self.gate_is_open(!d)
    }
}

impl<B: Backend> Default for SwmrReaderPriority<B> {
    fn default() -> Self {
        Self::new_in(B::default())
    }
}

impl<B: Backend> fmt::Debug for SwmrReaderPriority<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrReaderPriority")
            .field("d", &self.direction())
            .field("c", &self.reader_count())
            .field("x_is_true", &self.writer_promoted())
            .field("permit", &self.permit.load(MemOrdering::Relaxed))
            .finish()
    }
}

/// [`RawRwLock`] adapter so the typed front end (and the SWMR wrapper in
/// [`crate::swmr_rwlock`]) can drive Figure 2 through the common interface.
///
/// Figure 2 uses pids (readers and the writer stamp them into `X`), but has
/// no per-process storage, so `max_processes` reports "unbounded"
/// (`usize::MAX`); size the registry explicitly with
/// [`RwLock::with_raw_and_capacity`](crate::rwlock::RwLock::with_raw_and_capacity).
///
/// **Contract beyond [`RawRwLock`]'s:** at most one process may exercise
/// the writer role at a time. The typed
/// [`SwmrRwLock`](crate::swmr_rwlock::SwmrRwLock) enforces that statically.
impl<B: Backend> RawRwLock for SwmrReaderPriority<B> {
    type ReadToken = ReadSession;
    type WriteToken = WriteSession;

    fn read_lock(&self, pid: Pid) -> ReadSession {
        SwmrReaderPriority::read_lock(self, pid)
    }

    fn read_unlock(&self, pid: Pid, token: ReadSession) {
        SwmrReaderPriority::read_unlock(self, pid, token);
    }

    fn write_lock(&self, pid: Pid) -> WriteSession {
        SwmrReaderPriority::write_lock(self, pid)
    }

    fn write_unlock(&self, pid: Pid, token: WriteSession) {
        SwmrReaderPriority::write_unlock(self, pid, token);
    }

    fn max_processes(&self) -> usize {
        usize::MAX
    }
}

impl<B: Backend> RawTryReadLock for SwmrReaderPriority<B> {
    fn try_read_lock(&self, pid: Pid) -> Option<ReadSession> {
        SwmrReaderPriority::try_read_lock(self, pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn initial_configuration_matches_paper() {
        let lock = SwmrReaderPriority::new();
        assert_eq!(lock.direction(), Side::Zero);
        assert!(lock.gate_is_open(Side::Zero));
        assert!(!lock.gate_is_open(Side::One));
        assert_eq!(lock.reader_count(), 0);
        assert!(!lock.writer_promoted());
    }

    #[test]
    fn reader_alone_never_waits() {
        let lock = SwmrReaderPriority::new();
        for _ in 0..100 {
            let r = lock.read_lock(pid(1));
            lock.read_unlock(pid(1), r);
        }
        assert_eq!(lock.reader_count(), 0);
    }

    #[test]
    fn writer_alone_promotes_itself() {
        let lock = SwmrReaderPriority::new();
        for _ in 0..10 {
            let w = lock.write_lock(pid(0));
            assert!(lock.writer_promoted());
            lock.write_unlock(pid(0), w);
            assert!(!lock.writer_promoted());
        }
    }

    #[test]
    fn writer_toggles_side_each_attempt() {
        let lock = SwmrReaderPriority::new();
        let w = lock.write_lock(pid(0));
        assert_eq!(w.current_side(), Side::One);
        lock.write_unlock(pid(0), w);
        let w = lock.write_lock(pid(0));
        assert_eq!(w.current_side(), Side::Zero);
        lock.write_unlock(pid(0), w);
    }

    #[test]
    fn reader_blocks_writer_until_it_exits() {
        let lock = Arc::new(SwmrReaderPriority::new());
        let r = lock.read_lock(pid(1));

        let writer_in = Arc::new(AtomicBool::new(false));
        let l2 = Arc::clone(&lock);
        let w2 = Arc::clone(&writer_in);
        let writer = std::thread::spawn(move || {
            let w = l2.write_lock(pid(0));
            w2.store(true, Ordering::SeqCst);
            l2.write_unlock(pid(0), w);
        });

        std::thread::sleep(Duration::from_millis(50));
        assert!(!writer_in.load(Ordering::SeqCst), "writer entered over a live reader");

        lock.read_unlock(pid(1), r);
        writer.join().unwrap();
        assert!(writer_in.load(Ordering::SeqCst));
    }

    #[test]
    fn new_readers_overtake_a_waiting_writer() {
        // RP1 in action: while the writer is parked behind one reader, a
        // brand-new reader must still enter without blocking.
        let lock = Arc::new(SwmrReaderPriority::new());
        let r1 = lock.read_lock(pid(1));

        let l2 = Arc::clone(&lock);
        let writer = std::thread::spawn(move || {
            let w = l2.write_lock(pid(0));
            l2.write_unlock(pid(0), w);
        });

        // Let the writer reach its waiting loop.
        std::thread::sleep(Duration::from_millis(50));

        // This would hang if readers could not overtake the waiting writer.
        let r2 = lock.read_lock(pid(2));
        lock.read_unlock(pid(2), r2);

        lock.read_unlock(pid(1), r1);
        writer.join().unwrap();
    }

    #[test]
    fn readers_parked_during_write_session_are_released() {
        let lock = Arc::new(SwmrReaderPriority::new());
        let w = lock.write_lock(pid(0));

        let entered = Arc::new(AtomicUsize::new(0));
        let mut readers = Vec::new();
        for i in 1..4 {
            let lock = Arc::clone(&lock);
            let entered = Arc::clone(&entered);
            readers.push(std::thread::spawn(move || {
                let r = lock.read_lock(pid(i));
                entered.fetch_add(1, Ordering::SeqCst);
                lock.read_unlock(pid(i), r);
            }));
        }

        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "reader entered during write session");

        lock.write_unlock(pid(0), w);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(entered.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn mutual_exclusion_stress() {
        let lock = Arc::new(SwmrReaderPriority::new());
        let readers_in = Arc::new(AtomicUsize::new(0));
        let writer_in = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();

        {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writer_in = Arc::clone(&writer_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let w = lock.write_lock(pid(0));
                    writer_in.store(true, Ordering::SeqCst);
                    assert_eq!(readers_in.load(Ordering::SeqCst), 0, "P1 violated");
                    writer_in.store(false, Ordering::SeqCst);
                    lock.write_unlock(pid(0), w);
                }
            }));
        }
        for i in 1..5 {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writer_in = Arc::clone(&writer_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let r = lock.read_lock(pid(i));
                    readers_in.fetch_add(1, Ordering::SeqCst);
                    assert!(!writer_in.load(Ordering::SeqCst), "P1 violated");
                    readers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.read_unlock(pid(i), r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.reader_count(), 0);
    }
}
