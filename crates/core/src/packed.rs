//! The paper's two-component fetch&add variables.
//!
//! Figures 1 and 4 use fetch&add variables with two components
//! `[writer-waiting ∈ {0,1}, reader-count ∈ ℕ]` and operations like
//! `F&A(C[d], \[1, 0\])` (set the writer-waiting flag) or `F&A(C[d], [0, -1])`
//! (retire one reader). We pack both components into a single `AtomicU64`:
//! bit 63 is the writer-waiting flag, bits 0–62 the reader count. Because
//! the flag is added/removed at most once at a time by the unique writer
//! role and the reader count is bounded by the registry capacity (≪ 2^62),
//! the two fields can never carry into each other, so one hardware
//! `fetch_add` implements the paper's componentwise `F&A` exactly.

use rmr_mutex::mem::{Backend, Native, Ordering, SharedWord};
use std::fmt;

/// Bit used for the `writer-waiting` component.
const WRITER_BIT: u64 = 1 << 63;

/// A snapshot of a two-component fetch&add variable, as *returned* by the
/// F&A operations (i.e. the value **before** the update, matching the
/// paper's `if (F&A(...) = \[1, 1\])` tests).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packed(u64);

impl Packed {
    /// The value `\[0, 0\]`: no writer waiting, no readers registered.
    pub const ZERO: Packed = Packed(0);

    /// The value `\[1, 1\]`: writer waiting and exactly one reader registered —
    /// the "last reader out must wake the writer" test of Fig. 1
    /// lines 22, 27, 29.
    pub const ONE_ONE: Packed = Packed(WRITER_BIT | 1);

    /// Builds a snapshot from components (used by tests and the simulator).
    pub fn new(writer_waiting: bool, reader_count: u64) -> Self {
        debug_assert!(reader_count < WRITER_BIT);
        Packed(if writer_waiting { WRITER_BIT | reader_count } else { reader_count })
    }

    /// The `writer-waiting` component.
    pub fn writer_waiting(self) -> bool {
        self.0 & WRITER_BIT != 0
    }

    /// The `reader-count` component.
    pub fn reader_count(self) -> u64 {
        self.0 & !WRITER_BIT
    }

    /// Raw encoded value.
    pub fn into_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Packed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.writer_waiting() as u8, self.reader_count())
    }
}

/// A two-component `[writer-waiting, reader-count]` fetch&add variable
/// (the paper's `C\[0\]`, `C\[1\]`, and `EC`), generic over the memory
/// backend (`Native` by default, so existing code sees plain `PackedFaa`).
///
/// All operations return the **previous** value, exactly like the paper's
/// `F&A`. Methods are named after the componentwise increments they apply.
///
/// # Example
///
/// ```
/// use rmr_core::packed::{Packed, PackedFaa};
/// use rmr_mutex::mem::Ordering::SeqCst;
///
/// let c = PackedFaa::new();
/// assert_eq!(c.add_reader(SeqCst), Packed::ZERO);      // F&A(C, [0, 1])  -> old [0,0]
/// assert_eq!(c.add_writer(SeqCst), Packed::new(false, 1)); // F&A(C, [1, 0])
/// assert_eq!(c.sub_reader(SeqCst), Packed::ONE_ONE);   // F&A(C, [0,-1]) -> old [1,1]
/// assert_eq!(c.sub_writer(SeqCst), Packed::new(true, 0));
/// assert_eq!(c.load(SeqCst), Packed::ZERO);
/// ```
pub struct PackedFaa<B: Backend = Native>(B::Word);

impl PackedFaa {
    /// Creates the variable initialized to `\[0, 0\]`.
    pub fn new() -> Self {
        Self::new_in(Native)
    }
}

impl<B: Backend> PackedFaa<B> {
    /// Creates the variable initialized to `\[0, 0\]` over the given
    /// memory backend.
    pub fn new_in(_backend: B) -> Self {
        Self(B::Word::new(0))
    }

    /// `F&A(·, \[1, 0\])`: sets the writer-waiting flag. Returns the old value.
    ///
    /// Caller contract (upheld by the algorithms): the flag is currently 0.
    pub fn add_writer(&self, order: Ordering) -> Packed {
        Packed(self.0.fetch_add(WRITER_BIT, order))
    }

    /// `F&A(·, [-1, 0])`: clears the writer-waiting flag. Returns the old value.
    ///
    /// Caller contract: the flag is currently 1.
    pub fn sub_writer(&self, order: Ordering) -> Packed {
        Packed(self.0.fetch_sub(WRITER_BIT, order))
    }

    /// `F&A(·, \[0, 1\])`: registers one reader. Returns the old value.
    pub fn add_reader(&self, order: Ordering) -> Packed {
        Packed(self.0.fetch_add(1, order))
    }

    /// `F&A(·, [0, -1])`: retires one reader. Returns the old value.
    ///
    /// Caller contract: the reader count is currently ≥ 1.
    pub fn sub_reader(&self, order: Ordering) -> Packed {
        Packed(self.0.fetch_sub(1, order))
    }

    /// Atomic read of the current value.
    pub fn load(&self, order: Ordering) -> Packed {
        Packed(self.0.load(order))
    }
}

impl<B: Backend> Default for PackedFaa<B> {
    fn default() -> Self {
        Self::new_in(B::default())
    }
}

impl<B: Backend> fmt::Debug for PackedFaa<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Diagnostic snapshot only; no synchronization rides on it.
        write!(f, "PackedFaa({:?})", self.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_round_trip() {
        for ww in [false, true] {
            for rc in [0u64, 1, 2, 41, 1 << 40] {
                let p = Packed::new(ww, rc);
                assert_eq!(p.writer_waiting(), ww);
                assert_eq!(p.reader_count(), rc);
            }
        }
    }

    use Ordering::SeqCst;

    #[test]
    fn faa_returns_previous_value() {
        let v = PackedFaa::new();
        assert_eq!(v.add_reader(SeqCst), Packed::ZERO);
        assert_eq!(v.add_reader(SeqCst), Packed::new(false, 1));
        assert_eq!(v.add_writer(SeqCst), Packed::new(false, 2));
        assert_eq!(v.load(SeqCst), Packed::new(true, 2));
        assert_eq!(v.sub_reader(SeqCst), Packed::new(true, 2));
        assert_eq!(v.sub_reader(SeqCst), Packed::ONE_ONE);
        assert_eq!(v.sub_writer(SeqCst), Packed::new(true, 0));
        assert_eq!(v.load(SeqCst), Packed::ZERO);
    }

    #[test]
    fn one_one_is_the_wakeup_test_value() {
        let v = PackedFaa::new();
        v.add_reader(SeqCst);
        v.add_writer(SeqCst);
        // The last reader out observes [1, 1] and must wake the writer.
        assert_eq!(v.sub_reader(SeqCst), Packed::ONE_ONE);
        assert!(v.sub_writer(SeqCst).writer_waiting());
    }

    #[test]
    fn fields_do_not_interfere() {
        let v = PackedFaa::new();
        for _ in 0..1000 {
            v.add_reader(SeqCst);
        }
        v.add_writer(SeqCst);
        assert_eq!(v.load(SeqCst), Packed::new(true, 1000));
        v.sub_writer(SeqCst);
        assert_eq!(v.load(SeqCst), Packed::new(false, 1000));
        for _ in 0..1000 {
            v.sub_reader(SeqCst);
        }
        assert_eq!(v.load(SeqCst), Packed::ZERO);
    }

    #[test]
    fn debug_formats_as_pair() {
        assert_eq!(format!("{:?}", Packed::ONE_ONE), "[1, 1]");
        assert_eq!(format!("{:?}", Packed::ZERO), "[0, 0]");
    }
}
