//! [`Observed`] — a capability-preserving raw-lock wrapper that reports
//! every passage to an [`rmr_obs::Recorder`].
//!
//! This is the instrumentation story for code that works at the *raw*
//! tier (the bench workload drivers, compositions like
//! `Observed<Bravo<…>>`): wrap any [`RawRwLock`] and every acquire,
//! release and bounded attempt is counted, classified
//! contended-vs-uncontended, and latency-histogrammed — while the
//! wrapper forwards each optional capability exactly like `rmr-bravo`'s
//! reference wrapper ([`RawTryReadLock`] where the inner lock has it,
//! [`RawMultiWriter`] **only** where the inner lock is one, so the typed
//! front end's `&mut T` safety gating survives the wrap).
//!
//! # Why the hooks preserve the paper's cost claims
//!
//! With the default [`NoopRecorder`](rmr_obs::NoopRecorder) every hook
//! is behind `if R::ENABLED { … }` with `ENABLED = false`: the branch
//! const-folds and the wrapper monomorphizes to plain forwarding — the
//! acceptance test below proves the `Counting` tally is identical op
//! for op. With a live [`StatsRecorder`](rmr_obs::StatsRecorder), each
//! hook performs a handful of `Relaxed` writes to the calling pid's own
//! cache-padded slot: local-slot operations, free under the CC cost
//! model and invisible to the `Counting` backend (the recorder
//! deliberately uses plain `std` atomics, never `B`-typed ones) — so an
//! instrumented passage still performs O(1) RMRs, and an instrumented
//! Bravo fast read still performs zero inner-lock operations.
//!
//! Contention is classified through the spin seam
//! ([`rmr_mutex::spin::thread_spin_tally`]): an acquisition that burned
//! at least one futile spin iteration is contended. The bounded try
//! tier gives the second contention signal ([`Event::TryReadFail`] /
//! [`Event::TryWriteFail`] rates).

use crate::raw::{RawMultiWriter, RawRwLock, RawTryReadLock, RawTryRwLock};
use crate::registry::Pid;
use rmr_mutex::spin;
use rmr_obs::{Event, Metric, Recorder};
use std::fmt;

/// Begin-of-acquisition sample: recorder clock + this thread's spin
/// tally. Only taken when `R::ENABLED`.
pub(crate) struct AcquireSample {
    t0: u64,
    spins0: u64,
}

/// Samples the clock and spin tally before a blocking acquisition.
pub(crate) fn acquire_begin<R: Recorder>(rec: &R) -> AcquireSample {
    AcquireSample { t0: rec.now(), spins0: spin::thread_spin_tally() }
}

/// Records one completed blocking acquisition: the acquire event, the
/// contended classification + spin count (when any iteration was
/// futile), and the latency sample.
pub(crate) fn acquire_end<R: Recorder>(rec: &R, pid: usize, write: bool, s: AcquireSample) {
    let spun = spin::thread_spin_tally().saturating_sub(s.spins0);
    rec.count(pid, if write { Event::WriteAcquire } else { Event::ReadAcquire });
    if spun > 0 {
        rec.count(pid, if write { Event::WriteContended } else { Event::ReadContended });
        rec.add(pid, Event::SpinSteps, spun);
    }
    let metric = if write { Metric::WriteAcquireNs } else { Metric::ReadAcquireNs };
    rec.record(pid, metric, rec.now().saturating_sub(s.t0));
}

/// Any raw lock, with every passage reported to a [`Recorder`].
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrStarvationFree;
/// use rmr_core::{Observed, RwLock};
/// use rmr_obs::{Event, StatsRecorder};
/// use std::sync::Arc;
///
/// let rec = Arc::new(StatsRecorder::new(4));
/// let lock = RwLock::with_raw((), Observed::new(MwmrStarvationFree::new(4), Arc::clone(&rec)));
/// drop(lock.read());
/// assert_eq!(rec.counter(Event::ReadAcquire), 1);
/// assert_eq!(rec.counter(Event::ReadRelease), 1);
/// ```
pub struct Observed<L, R> {
    inner: L,
    recorder: R,
}

impl<L: RawRwLock, R: Recorder> Observed<L, R> {
    /// Wraps `inner`, reporting every passage to `recorder` (commonly an
    /// `Arc<StatsRecorder>` so the caller keeps a reading handle).
    pub fn new(inner: L, recorder: R) -> Self {
        Self { inner, recorder }
    }

    /// The wrapped lock.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// The recorder passages are reported to.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Unwraps into the inner lock and the recorder.
    pub fn into_parts(self) -> (L, R) {
        (self.inner, self.recorder)
    }
}

impl<L: RawRwLock, R: Recorder> RawRwLock for Observed<L, R> {
    type ReadToken = L::ReadToken;
    type WriteToken = L::WriteToken;

    fn read_lock(&self, pid: Pid) -> Self::ReadToken {
        if R::ENABLED {
            let s = acquire_begin(&self.recorder);
            let token = self.inner.read_lock(pid);
            acquire_end(&self.recorder, pid.index(), false, s);
            token
        } else {
            self.inner.read_lock(pid)
        }
    }

    fn read_unlock(&self, pid: Pid, token: Self::ReadToken) {
        self.inner.read_unlock(pid, token);
        if R::ENABLED {
            self.recorder.count(pid.index(), Event::ReadRelease);
        }
    }

    fn write_lock(&self, pid: Pid) -> Self::WriteToken {
        if R::ENABLED {
            let s = acquire_begin(&self.recorder);
            let token = self.inner.write_lock(pid);
            acquire_end(&self.recorder, pid.index(), true, s);
            token
        } else {
            self.inner.write_lock(pid)
        }
    }

    fn write_unlock(&self, pid: Pid, token: Self::WriteToken) {
        self.inner.write_unlock(pid, token);
        if R::ENABLED {
            self.recorder.count(pid.index(), Event::WriteRelease);
        }
    }

    fn max_processes(&self) -> usize {
        self.inner.max_processes()
    }
}

impl<L: RawTryReadLock, R: Recorder> RawTryReadLock for Observed<L, R> {
    fn try_read_lock(&self, pid: Pid) -> Option<Self::ReadToken> {
        let token = self.inner.try_read_lock(pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryReadOk } else { Event::TryReadFail };
            self.recorder.count(pid.index(), ev);
        }
        token
    }
}

impl<L: RawTryRwLock, R: Recorder> RawTryRwLock for Observed<L, R> {
    fn try_write_lock(&self, pid: Pid) -> Option<Self::WriteToken> {
        let token = self.inner.try_write_lock(pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryWriteOk } else { Event::TryWriteFail };
            self.recorder.count(pid.index(), ev);
        }
        token
    }
}

// SAFETY: pure forwarding — writer-writer exclusion is exactly the inner
// lock's, and the marker is only claimed where the inner lock claims it.
unsafe impl<L: RawMultiWriter, R: Recorder> RawMultiWriter for Observed<L, R> {}

// SAFETY: pure forwarding — a granted poll carries exactly the inner
// doorway's exclusion, and the queued/advisory classification is inherited.
unsafe impl<L: crate::raw::RawParkedWaiters, R: Recorder> crate::raw::RawParkedWaiters
    for Observed<L, R>
{
    const QUEUED: bool = L::QUEUED;
    type WriteDoorway = L::WriteDoorway;

    fn start_write(&self, pid: Pid) -> Self::WriteDoorway {
        self.inner.start_write(pid)
    }

    fn poll_write(
        &self,
        pid: Pid,
        doorway: Self::WriteDoorway,
    ) -> Result<Self::WriteToken, Self::WriteDoorway> {
        let result = self.inner.poll_write(pid, doorway);
        if R::ENABLED && result.is_ok() {
            self.recorder.count(pid.index(), Event::WriteAcquire);
        }
        result
    }

    fn cancel_write(&self, pid: Pid, doorway: Self::WriteDoorway) {
        self.inner.cancel_write(pid, doorway);
    }
}

impl<L, R> fmt::Debug for Observed<L, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Observed").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwmr::MwmrStarvationFree;
    use rmr_obs::{NoopRecorder, StatsRecorder};
    use std::sync::Arc;

    #[test]
    fn counts_acquires_releases_and_try_attempts() {
        let rec = Arc::new(StatsRecorder::new(4));
        let lock = Observed::new(MwmrStarvationFree::new(4), Arc::clone(&rec));
        let me = Pid::from_index(0);

        let t = lock.read_lock(me);
        lock.read_unlock(me, t);
        let t = lock.write_lock(me);
        lock.write_unlock(me, t);
        let t = lock.try_read_lock(me).expect("uncontended");
        lock.read_unlock(me, t);

        assert_eq!(rec.counter(Event::ReadAcquire), 1);
        assert_eq!(rec.counter(Event::ReadRelease), 2);
        assert_eq!(rec.counter(Event::WriteAcquire), 1);
        assert_eq!(rec.counter(Event::WriteRelease), 1);
        assert_eq!(rec.counter(Event::TryReadOk), 1);
        assert_eq!(rec.samples(Metric::ReadAcquireNs), 1);
        assert_eq!(rec.samples(Metric::WriteAcquireNs), 1);
    }

    #[test]
    fn contended_write_is_classified_and_spin_counted() {
        let rec = Arc::new(StatsRecorder::new(4));
        let lock = Arc::new(Observed::new(MwmrStarvationFree::new(4), Arc::clone(&rec)));
        let reader = Pid::from_index(0);
        let t = lock.read_lock(reader);
        let l2 = Arc::clone(&lock);
        let writer = std::thread::spawn(move || {
            let w = Pid::from_index(1);
            let t = l2.write_lock(w); // must spin behind the held read
            l2.write_unlock(w, t);
        });
        // SpinSteps is recorded only once the acquisition completes, so
        // hold the read long enough for the writer to demonstrably spin,
        // then release and let it finish.
        std::thread::sleep(std::time::Duration::from_millis(50));
        lock.read_unlock(reader, t);
        writer.join().unwrap();
        assert_eq!(rec.counter(Event::WriteContended), 1);
        assert!(rec.counter(Event::SpinSteps) > 0);
    }

    #[test]
    fn noop_observed_forwards_transparently() {
        let lock = Observed::new(MwmrStarvationFree::new(2), NoopRecorder);
        let me = Pid::from_index(0);
        let t = lock.read_lock(me);
        lock.read_unlock(me, t);
        let t = lock.try_read_lock(me).expect("uncontended");
        lock.read_unlock(me, t);
        assert_eq!(lock.max_processes(), 2);
    }
}
