//! The raw reader-writer lock interface, plus the optional non-blocking
//! capability tier.
//!
//! Three traits form the surface every lock in the workspace implements:
//!
//! * [`RawRwLock`] — blocking acquire/release with explicit pids; mandatory.
//! * [`RawTryReadLock`] — adds a bounded (non-blocking) read attempt. All
//!   five of the paper's locks implement this: their reader try sections are
//!   *abortable* (a registered reader can retire through the ordinary exit
//!   section without ever entering the critical section).
//! * [`RawTryRwLock`] — adds a bounded write attempt on top. Only locks
//!   whose write path can be revoked implement this (the baselines); the
//!   paper's writer doorway irrevocably toggles the shared side variable
//!   `D`, so the core locks deliberately do **not** claim this capability.
//!
//! The typed front end ([`RwLock`](crate::rwlock::RwLock)) surfaces
//! `try_read` only where `L: RawTryReadLock` and `try_write` only where
//! `L: RawTryRwLock`, so "does this policy support try?" is a compile-time
//! question.
//!
//! The tier also composes: a *wrapper* lock can implement [`RawRwLock`]
//! around another [`RawRwLock`] and conditionally forward each capability
//! (`RawTryReadLock where L: RawTryReadLock`, and — because it is the
//! marker `&mut T` safety hangs on — [`RawMultiWriter`] **only** where the
//! inner lock is one). `rmr-bravo`'s `Bravo<L>` reader-biased fast path is
//! the workspace's reference wrapper: wrapping a single-writer algorithm
//! keeps the typed `write()` path a compile error, exactly as for the bare
//! lock.
//!
//! The capability tier is also what powers the **async front end**
//! (`rmr-async`): `AsyncRwLock::read().await` is gated on
//! [`RawTryReadLock`] and `write().await` on [`RawTryRwLock`] +
//! [`RawMultiWriter`], because a pending future must hold *no* lock state
//! between polls — exactly the guarantee the bounded, abortable attempts
//! provide. Locks whose writer doorway is irrevocable (the paper's core
//! locks) therefore get async reads plus a blocking writer endpoint, with
//! the same compile-time gating as the sync front end.

use crate::registry::Pid;

/// A raw reader-writer lock usable by any number of readers and writers.
///
/// This is the common interface over the paper's three multi-writer
/// algorithms (Theorems 3–5), the two single-writer algorithms (whose
/// writer role must additionally be confined to one process at a time — see
/// [`crate::swmr_rwlock`] for the typed enforcement), and the baselines in
/// `rmr-baselines`; the typed [`RwLock`](crate::rwlock::RwLock) front end,
/// the examples and the benchmark harness are all generic over it.
///
/// # Contract
///
/// * `pid` values of concurrently active processes must be distinct and in
///   `0..max_processes()` (use [`PidRegistry`](crate::registry::PidRegistry)).
/// * A process performs one attempt at a time: `read_lock` must be matched
///   by `read_unlock` with the returned token before the same pid starts
///   another attempt, and likewise for writes.
/// * Tokens must be returned to the lock they came from, from any thread
///   that currently *is* that pid (the typed layer pins a guard — and hence
///   the pid — to one thread for exactly this reason).
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrStarvationFree;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrStarvationFree::new(4);
/// let me = Pid::from_index(0);
/// let t = lock.read_lock(me);
/// lock.read_unlock(me, t);
/// let t = lock.write_lock(me);
/// lock.write_unlock(me, t);
/// ```
pub trait RawRwLock: Send + Sync {
    /// Proof of a held read lock.
    type ReadToken;
    /// Proof of a held write lock.
    type WriteToken;

    /// Acquires the lock for reading; blocks (spins) until granted.
    fn read_lock(&self, pid: Pid) -> Self::ReadToken;

    /// Releases a read lock. Bounded: completes in O(1) steps.
    fn read_unlock(&self, pid: Pid, token: Self::ReadToken);

    /// Acquires the lock for writing; blocks (spins) until granted.
    fn write_lock(&self, pid: Pid) -> Self::WriteToken;

    /// Releases a write lock. Bounded: completes in O(1) steps.
    fn write_unlock(&self, pid: Pid, token: Self::WriteToken);

    /// Number of pids supported (the `n` of the theorems).
    ///
    /// Locks with no per-process state may return `usize::MAX` to mean
    /// "unbounded"; the typed front end then requires an explicit capacity
    /// (see [`RwLock::with_raw_and_capacity`](crate::rwlock::RwLock::with_raw_and_capacity)).
    fn max_processes(&self) -> usize;
}

/// Capability marker: **any number of processes may concurrently exercise
/// the writer role.**
///
/// The typed front end's leased/handle write paths
/// ([`RwLock::write`](crate::rwlock::RwLock::write),
/// [`RwLock::try_write`](crate::rwlock::RwLock::try_write),
/// `LockHandle::write`) require this bound: they hand out `&mut T` on the
/// strength of the raw lock's writer exclusion, and the single-writer
/// algorithms (Figures 1–2) only exclude a writer from *readers*, not from
/// a second concurrent writer. Those types therefore do **not** implement
/// this trait — their unique writer endpoint is
/// [`SwmrWriter`](crate::swmr_rwlock::SwmrWriter), which enforces the
/// single writer statically — and `RwLock<_, SwmrWriterPriority>::write()`
/// is a compile error rather than undefined behavior.
///
/// # Safety
///
/// Implementors must guarantee mutual exclusion among arbitrarily many
/// concurrent `write_lock` callers (distinct pids), not merely between the
/// writer role and readers. The typed layer's `unsafe impl Sync` relies on
/// it.
pub unsafe trait RawMultiWriter: RawRwLock {}

/// Capability marker: the lock supports a **bounded read attempt**.
///
/// `try_read_lock` performs the reader doorway, tests the entry condition
/// a bounded number of times, and on failure retires through the ordinary
/// reader exit section — it never waits on another process. For the
/// paper's locks this is sound because an aborting reader is
/// indistinguishable (to every counter and permit) from a reader whose
/// read session was empty.
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrStarvationFree;
/// use rmr_core::raw::{RawRwLock, RawTryReadLock};
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrStarvationFree::new(4);
/// let me = Pid::from_index(0);
/// let t = lock.try_read_lock(me).expect("uncontended try_read succeeds");
/// lock.read_unlock(me, t);
/// ```
pub trait RawTryReadLock: RawRwLock {
    /// Attempts to acquire the lock for reading without blocking.
    ///
    /// Returns `None` if the lock could not be acquired in a bounded number
    /// of steps (a writer holds or is entering the critical section). The
    /// attempt may fail spuriously under contention; it never blocks.
    fn try_read_lock(&self, pid: Pid) -> Option<Self::ReadToken>;
}

/// Capability marker: the lock additionally supports a **bounded write
/// attempt** — the full non-blocking tier.
///
/// The paper's core locks do not implement this: their writer doorway
/// (Fig. 1 line 3 / Fig. 2 line 2 / Fig. 4 line 8) irrevocably publishes
/// the new side in `D`, and aborting after it would strand readers parked
/// on the still-closed gate. The baselines, whose write paths are built
/// from mutexes and counters, revoke cleanly.
///
/// # Example
///
/// ```
/// use rmr_baselines::StdRwLock;
/// use rmr_core::raw::{RawRwLock, RawTryRwLock};
/// use rmr_core::registry::Pid;
///
/// let lock = StdRwLock::new(4);
/// let me = Pid::from_index(0);
/// let t = lock.try_write_lock(me).expect("uncontended try_write succeeds");
/// lock.write_unlock(me, t);
/// ```
pub trait RawTryRwLock: RawTryReadLock {
    /// Attempts to acquire the lock for writing without blocking.
    ///
    /// Returns `None` if the lock could not be acquired in a bounded number
    /// of steps. The attempt may fail spuriously under contention; it never
    /// blocks.
    fn try_write_lock(&self, pid: Pid) -> Option<Self::WriteToken>;
}
