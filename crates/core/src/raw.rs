//! The raw multi-writer multi-reader lock interface.

use crate::registry::Pid;

/// A raw reader-writer lock usable by any number of readers and writers.
///
/// This is the common interface over the paper's three multi-writer
/// algorithms (Theorems 3–5) and over the baselines in `rmr-baselines`;
/// the typed [`RwLock`](crate::rwlock::RwLock) front end, the examples and
/// the benchmark harness are all generic over it.
///
/// # Contract
///
/// * `pid` values of concurrently active processes must be distinct and in
///   `0..max_processes()` (use [`PidRegistry`](crate::registry::PidRegistry)).
/// * A process performs one attempt at a time: `read_lock` must be matched
///   by `read_unlock` with the returned token before the same pid starts
///   another attempt, and likewise for writes.
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrStarvationFree;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrStarvationFree::new(4);
/// let me = Pid::from_index(0);
/// let t = lock.read_lock(me);
/// lock.read_unlock(me, t);
/// let t = lock.write_lock(me);
/// lock.write_unlock(me, t);
/// ```
pub trait RawRwLock: Send + Sync {
    /// Proof of a held read lock.
    type ReadToken;
    /// Proof of a held write lock.
    type WriteToken;

    /// Acquires the lock for reading; blocks (spins) until granted.
    fn read_lock(&self, pid: Pid) -> Self::ReadToken;

    /// Releases a read lock. Bounded: completes in O(1) steps.
    fn read_unlock(&self, pid: Pid, token: Self::ReadToken);

    /// Acquires the lock for writing; blocks (spins) until granted.
    fn write_lock(&self, pid: Pid) -> Self::WriteToken;

    /// Releases a write lock. Bounded: completes in O(1) steps.
    fn write_unlock(&self, pid: Pid, token: Self::WriteToken);

    /// Number of pids supported (the `n` of the theorems).
    fn max_processes(&self) -> usize;
}
