//! The raw reader-writer lock interface and its capability ladder.
//!
//! Five traits form the surface every lock in the workspace implements
//! some prefix of — one mandatory base plus four opt-in capabilities:
//!
//! * [`RawRwLock`] — blocking acquire/release with explicit pids; mandatory.
//! * [`RawTryReadLock`] — adds a bounded (non-blocking) read attempt. All
//!   five of the paper's locks implement this: their reader try sections are
//!   *abortable* (a registered reader can retire through the ordinary exit
//!   section without ever entering the critical section).
//! * [`RawTryRwLock`] — adds a bounded write attempt on top. Only locks
//!   whose write path can be revoked implement this (the baselines); the
//!   paper's writer doorway irrevocably toggles the shared side variable
//!   `D`, so the core locks deliberately do **not** claim this capability.
//! * [`RawMultiWriter`] — the `&mut T` safety marker: arbitrarily many
//!   concurrent processes may exercise the writer role.
//! * [`RawParkedWaiters`] — a **revocable, pollable writer doorway**
//!   (`start_write` / `poll_write` / `cancel_write`): a parked asynchronous
//!   writer holds a *waiter token* the lock counts like a queued process,
//!   so `write().await` works even where the write attempt cannot be made
//!   bounded-and-abortable ([`RawTryRwLock`]) — in particular on the
//!   paper's core single-writer locks.
//!
//! # Capability matrix
//!
//! | lock | [`RawRwLock`] | [`RawTryReadLock`] | [`RawTryRwLock`] | [`RawMultiWriter`] | [`RawParkedWaiters`] |
//! |---|---|---|---|---|---|
//! | `SwmrWriterPriority` (Fig. 1) | ✓ | ✓ | — irrevocable doorway | — single writer | ✓ queued (doorway + helper cancel) |
//! | `SwmrReaderPriority` (Fig. 2) | ✓ | ✓ | — irrevocable doorway | — single writer | — readers overtake by design |
//! | `MwmrStarvationFree` (Fig. 3) | ✓ | ✓ | — irrevocable doorway | ✓ | — writer role queues in the mutex |
//! | `MwmrWriterPriority` (Fig. 4) | ✓ | ✓ | — irrevocable doorway | ✓ | — writer role queues in the mutex |
//! | `MwmrReaderPriority` (Fig. 5) | ✓ | ✓ | — irrevocable doorway | ✓ | — readers overtake by design |
//! | `TicketRwLock` | ✓ | ✓ | ✓ | ✓ | ✓ queued (real FIFO ticket) |
//! | `StdRwLock`, `CentralizedRwLock`, `DistributedFlagRwLock`, `TournamentRwLock` | ✓ | ✓ | ✓ | ✓ | ✓ advisory (`QUEUED = false`) |
//! | `Bravo<L>` | ✓ | where `L` is | where `L` is | where `L` is | where `L` is (+ revocation stage) |
//!
//! "Queued" vs. "advisory" is the fairness distinction
//! ([`RawParkedWaiters::QUEUED`]): a queued doorway closes the reader
//! admission path the moment `start_write` returns — exactly like a
//! blocking writer in the protocol — so a parked writer is bypassed by at
//! most the readers already in flight. An advisory doorway (`poll` =
//! `try_write_lock`) grants eventually but promises no bypass bound.
//!
//! The typed front end ([`RwLock`](crate::rwlock::RwLock)) surfaces
//! `try_read` only where `L: RawTryReadLock` and `try_write` only where
//! `L: RawTryRwLock`, so "does this policy support try?" is a compile-time
//! question.
//!
//! The ladder also composes: a *wrapper* lock can implement [`RawRwLock`]
//! around another [`RawRwLock`] and conditionally forward each capability
//! (`RawTryReadLock where L: RawTryReadLock`, and — because it is the
//! marker `&mut T` safety hangs on — [`RawMultiWriter`] **only** where the
//! inner lock is one). `rmr-bravo`'s `Bravo<L>` reader-biased fast path is
//! the workspace's reference wrapper: wrapping a single-writer algorithm
//! keeps the typed `write()` path a compile error, exactly as for the bare
//! lock.
//!
//! The ladder is also what powers the **async front end** (`rmr-async`):
//! `AsyncRwLock::read().await` is gated on [`RawTryReadLock`] (a pending
//! *read* future holds no lock state between polls), while
//! `write().await` is gated on [`RawParkedWaiters`] — the awaiting writer
//! holds a doorway between polls, so the lock counts it like a queued
//! process and continuously overlapping readers cannot starve it. The
//! historical `RawMultiWriter`-gated `write_blocking` endpoint survives
//! only as a deprecated escape hatch for the Fig. 3–5 multi-writer locks,
//! whose writer role queues inside an embedded mutex.

use crate::registry::Pid;

/// A raw reader-writer lock usable by any number of readers and writers.
///
/// This is the common interface over the paper's three multi-writer
/// algorithms (Theorems 3–5), the two single-writer algorithms (whose
/// writer role must additionally be confined to one process at a time — see
/// [`crate::swmr_rwlock`] for the typed enforcement), and the baselines in
/// `rmr-baselines`; the typed [`RwLock`](crate::rwlock::RwLock) front end,
/// the examples and the benchmark harness are all generic over it.
///
/// # Contract
///
/// * `pid` values of concurrently active processes must be distinct and in
///   `0..max_processes()` (use [`PidRegistry`](crate::registry::PidRegistry)).
/// * A process performs one attempt at a time: `read_lock` must be matched
///   by `read_unlock` with the returned token before the same pid starts
///   another attempt, and likewise for writes.
/// * Tokens must be returned to the lock they came from, from any thread
///   that currently *is* that pid (the typed layer pins a guard — and hence
///   the pid — to one thread for exactly this reason).
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrStarvationFree;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrStarvationFree::new(4);
/// let me = Pid::from_index(0);
/// let t = lock.read_lock(me);
/// lock.read_unlock(me, t);
/// let t = lock.write_lock(me);
/// lock.write_unlock(me, t);
/// ```
pub trait RawRwLock: Send + Sync {
    /// Proof of a held read lock.
    type ReadToken;
    /// Proof of a held write lock.
    type WriteToken;

    /// Acquires the lock for reading; blocks (spins) until granted.
    fn read_lock(&self, pid: Pid) -> Self::ReadToken;

    /// Releases a read lock. Bounded: completes in O(1) steps.
    fn read_unlock(&self, pid: Pid, token: Self::ReadToken);

    /// Acquires the lock for writing; blocks (spins) until granted.
    fn write_lock(&self, pid: Pid) -> Self::WriteToken;

    /// Releases a write lock. Bounded: completes in O(1) steps.
    fn write_unlock(&self, pid: Pid, token: Self::WriteToken);

    /// Number of pids supported (the `n` of the theorems).
    ///
    /// Locks with no per-process state may return `usize::MAX` to mean
    /// "unbounded"; the typed front end then requires an explicit capacity
    /// (see [`RwLock::with_raw_and_capacity`](crate::rwlock::RwLock::with_raw_and_capacity)).
    fn max_processes(&self) -> usize;
}

/// Capability marker: **any number of processes may concurrently exercise
/// the writer role.**
///
/// The typed front end's leased/handle write paths
/// ([`RwLock::write`](crate::rwlock::RwLock::write),
/// [`RwLock::try_write`](crate::rwlock::RwLock::try_write),
/// `LockHandle::write`) require this bound: they hand out `&mut T` on the
/// strength of the raw lock's writer exclusion, and the single-writer
/// algorithms (Figures 1–2) only exclude a writer from *readers*, not from
/// a second concurrent writer. Those types therefore do **not** implement
/// this trait — their unique writer endpoint is
/// [`SwmrWriter`](crate::swmr_rwlock::SwmrWriter), which enforces the
/// single writer statically — and `RwLock<_, SwmrWriterPriority>::write()`
/// is a compile error rather than undefined behavior.
///
/// # Safety
///
/// Implementors must guarantee mutual exclusion among arbitrarily many
/// concurrent `write_lock` callers (distinct pids), not merely between the
/// writer role and readers. The typed layer's `unsafe impl Sync` relies on
/// it.
pub unsafe trait RawMultiWriter: RawRwLock {}

/// Capability marker: the lock supports a **bounded read attempt**.
///
/// `try_read_lock` performs the reader doorway, tests the entry condition
/// a bounded number of times, and on failure retires through the ordinary
/// reader exit section — it never waits on another process. For the
/// paper's locks this is sound because an aborting reader is
/// indistinguishable (to every counter and permit) from a reader whose
/// read session was empty.
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrStarvationFree;
/// use rmr_core::raw::{RawRwLock, RawTryReadLock};
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrStarvationFree::new(4);
/// let me = Pid::from_index(0);
/// let t = lock.try_read_lock(me).expect("uncontended try_read succeeds");
/// lock.read_unlock(me, t);
/// ```
pub trait RawTryReadLock: RawRwLock {
    /// Attempts to acquire the lock for reading without blocking.
    ///
    /// Returns `None` if the lock could not be acquired in a bounded number
    /// of steps (a writer holds or is entering the critical section). The
    /// attempt may fail spuriously under contention; it never blocks.
    fn try_read_lock(&self, pid: Pid) -> Option<Self::ReadToken>;
}

/// Capability marker: the lock additionally supports a **bounded write
/// attempt** — the full non-blocking tier.
///
/// The paper's core locks do not implement this: their writer doorway
/// (Fig. 1 line 3 / Fig. 2 line 2 / Fig. 4 line 8) irrevocably publishes
/// the new side in `D`, and aborting after it would strand readers parked
/// on the still-closed gate. The baselines, whose write paths are built
/// from mutexes and counters, revoke cleanly.
///
/// # Example
///
/// ```
/// use rmr_baselines::StdRwLock;
/// use rmr_core::raw::{RawRwLock, RawTryRwLock};
/// use rmr_core::registry::Pid;
///
/// let lock = StdRwLock::new(4);
/// let me = Pid::from_index(0);
/// let t = lock.try_write_lock(me).expect("uncontended try_write succeeds");
/// lock.write_unlock(me, t);
/// ```
pub trait RawTryRwLock: RawTryReadLock {
    /// Attempts to acquire the lock for writing without blocking.
    ///
    /// Returns `None` if the lock could not be acquired in a bounded number
    /// of steps. The attempt may fail spuriously under contention; it never
    /// blocks.
    fn try_write_lock(&self, pid: Pid) -> Option<Self::WriteToken>;
}

/// Capability: a **revocable, pollable writer doorway** — the parked-waiter
/// token that makes `write().await` work on locks whose write attempt
/// cannot be made bounded-and-abortable.
///
/// The blocking `write_lock` is, conceptually, three phases: a bounded
/// *doorway* that publishes the writer's intent (Fig. 1 lines 2–5: toggle
/// `D`, announce on `C`), an unbounded *waiting room* (spin until the
/// displaced readers drain), and the grant. This trait splits those phases
/// so an asynchronous caller can run the doorway eagerly, **park between
/// bounded polls while still counted by the lock**, and — the hard part —
/// revoke the intent if the future is dropped:
///
/// * [`start_write`](Self::start_write) runs the doorway and returns a
///   [`WriteDoorway`](Self::WriteDoorway) token. For a *queued*
///   implementation ([`QUEUED`](Self::QUEUED) = `true`) the lock now
///   counts the caller like a blocked writer: the reader admission path is
///   closed, so later readers wait behind the token.
/// * [`poll_write`](Self::poll_write) tests the waiting-room condition a
///   bounded number of times: `Ok(token)` grants the write lock,
///   `Err(doorway)` hands the token back to park on.
/// * [`cancel_write`](Self::cancel_write) revokes a not-yet-granted
///   doorway in a bounded number of steps. Where the protocol's state
///   cannot be unwound inline (the paper's doorway has irrevocably
///   published the new side in `D`), the implementation *defers*: it marks
///   the passage abandoned and the next process through the relevant exit
///   path completes it on the canceller's behalf (helping), restoring the
///   lock to a state indistinguishable from an empty write passage.
///
/// # Contract
///
/// * **One doorway at a time.** At most one doorway may be outstanding per
///   lock; `start_write` must not be called again until the previous
///   doorway was granted-and-released (`write_unlock`) or cancelled. The
///   async front end enforces this with a writer-claim word; other callers
///   must serialize the same way. (Blocking `write_lock`/`try_write_lock`
///   calls by *other* pids remain allowed exactly where the lock's own
///   contract allows them — for single-writer locks they are not.)
/// * A granted `Ok` token is released with the ordinary
///   [`write_unlock`](RawRwLock::write_unlock).
/// * `poll_write` and `cancel_write` must be passed the pid that called
///   `start_write`.
///
/// # Safety
///
/// Implementors must guarantee that a token returned by `poll_write`
/// confers exactly the exclusion of [`write_lock`](RawRwLock::write_lock)
/// — no reader and no other writer is in the critical section — provided
/// the one-doorway-at-a-time contract above holds. The async front end
/// hands out `&mut T` on the strength of this guarantee (its claim word
/// supplies the serialization), which is what lifts the historical
/// `RawMultiWriter`-only gate on async writes.
pub unsafe trait RawParkedWaiters: RawRwLock {
    /// Whether the doorway is **queued** (fairness teeth): once
    /// `start_write` returns, the lock admits no new readers until the
    /// doorway is granted or cancelled, so a parked writer is bypassed by
    /// at most the readers already past the admission point. Advisory
    /// implementations (`false`) poll an ordinary revocable try attempt
    /// and promise no bypass bound — the bounded-bypass oracle in
    /// `rmr-check` only applies where this is `true`.
    const QUEUED: bool;

    /// Proof of a published, not-yet-granted write intent.
    type WriteDoorway;

    /// Runs the writer doorway: bounded, never waits on another process.
    fn start_write(&self, pid: Pid) -> Self::WriteDoorway;

    /// Tests whether the doorway's waiting-room condition has been met, in
    /// a bounded number of steps. `Ok` grants the write lock; `Err`
    /// returns the doorway token unchanged in meaning (park and re-poll
    /// after the lock's release paths make progress).
    fn poll_write(
        &self,
        pid: Pid,
        doorway: Self::WriteDoorway,
    ) -> Result<Self::WriteToken, Self::WriteDoorway>;

    /// Revokes a not-yet-granted doorway. Bounded; may defer completion to
    /// the next exiting process (helping) where the protocol state cannot
    /// be unwound inline. After the cancellation *settles* (all in-flight
    /// passages drain), the lock is indistinguishable from one that served
    /// an empty write passage.
    fn cancel_write(&self, pid: Pid, doorway: Self::WriteDoorway);
}

/// Implements an **advisory** [`RawParkedWaiters`] doorway (`QUEUED =
/// false`) for a type that already implements
/// [`RawTryRwLock`](crate::raw::RawTryRwLock): `start_write` publishes
/// nothing, `poll_write` forwards to `try_write_lock`, `cancel_write` is a
/// no-op. This keeps `write().await` available on every full-try-tier
/// baseline without promising the bypass bound the queued doorways carry.
#[macro_export]
macro_rules! advisory_parked_waiters {
    ($(#[$attr:meta])* impl[$($gen:tt)*] RawParkedWaiters for $ty:ty) => {
        // SAFETY: `poll_write` only succeeds when `try_write_lock` grants,
        // which carries the full write exclusion of the underlying lock.
        $(#[$attr])*
        unsafe impl<$($gen)*> $crate::raw::RawParkedWaiters for $ty {
            const QUEUED: bool = false;
            type WriteDoorway = ();

            fn start_write(&self, _pid: $crate::registry::Pid) {}

            fn poll_write(
                &self,
                pid: $crate::registry::Pid,
                (): (),
            ) -> Result<Self::WriteToken, ()> {
                $crate::raw::RawTryRwLock::try_write_lock(self, pid).ok_or(())
            }

            fn cancel_write(&self, _pid: $crate::registry::Pid, (): ()) {}
        }
    };
}
