//! Figure 3 over Figure 2: the multi-writer multi-reader lock with
//! **reader priority** (Theorem 4).
//!
//! Same transformation `T` as [`super::MwmrStarvationFree`], instantiated
//! with the Figure 2 reader-priority single-writer lock: writers serialize
//! through `M` and then play the single writer of Figure 2; readers run
//! Figure 2's reader protocol unchanged. RP1/RP2 lift to the multi-writer
//! setting because readers never interact with `M` at all — a reader that
//! outranks every active writer (in the `>rp` relation) finds the inner
//! lock's `X ≠ true` or an open gate exactly as in the single-writer proof.

use crate::raw::{RawMultiWriter, RawRwLock, RawTryReadLock};
use crate::registry::Pid;
use crate::swmr::reader_priority::{ReadSession, SwmrReaderPriority, WriteSession};
use rmr_mutex::mem::{Backend, Native};
use rmr_mutex::{AndersonLock, RawMutex};
use std::fmt;

/// Proof of a held write lock: the inner write session plus the `M` token.
#[derive(Debug)]
#[must_use = "the write lock must be released with write_unlock"]
pub struct WriteToken<M: RawMutex> {
    session: WriteSession,
    mutex_token: M::Token,
}

/// Figure 3 instantiated with Figure 2: multi-writer multi-reader lock
/// satisfying P1–P6 plus RP1 (reader priority) and RP2 (unstoppable
/// readers), with O(1) RMR complexity in the CC model (Theorem 4).
///
/// Writers may starve under a continuous stream of readers — by design;
/// use [`super::MwmrStarvationFree`] when no class may starve.
///
/// Generic over the writer-side mutex `M` and the memory backend `B`
/// ([`Native`] by default; use [`MwmrReaderPriority::new_in`] with
/// [`rmr_mutex::Counting`] to measure RMRs on the real implementation).
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrReaderPriority;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrReaderPriority::new(8);
/// let r = lock.read_lock(Pid::from_index(0));
/// lock.read_unlock(Pid::from_index(0), r);
/// ```
pub struct MwmrReaderPriority<M: RawMutex = AndersonLock, B: Backend = Native> {
    swmr: SwmrReaderPriority<B>,
    mutex: M,
    max_processes: usize,
}

impl MwmrReaderPriority<AndersonLock> {
    /// Creates a lock for up to `max_processes` concurrently registered
    /// processes, using an [`AndersonLock`] sized accordingly as `M`.
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0`.
    pub fn new(max_processes: usize) -> Self {
        Self::with_mutex(AndersonLock::new(max_processes), max_processes)
    }
}

impl<B: Backend> MwmrReaderPriority<AndersonLock<B>, B> {
    /// Creates a lock for up to `max_processes` processes over the given
    /// memory backend, with a matching-backend [`AndersonLock`] as `M`.
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0`.
    pub fn new_in(max_processes: usize, backend: B) -> Self {
        Self::with_mutex_in(AndersonLock::new_in(max_processes, backend), max_processes, backend)
    }
}

impl<M: RawMutex> MwmrReaderPriority<M> {
    /// Creates the lock over a caller-supplied mutex `M` (see
    /// [`super::MwmrStarvationFree::with_mutex`] for the requirements).
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0` or exceeds the mutex capacity.
    pub fn with_mutex(mutex: M, max_processes: usize) -> Self {
        Self::with_mutex_in(mutex, max_processes, Native)
    }
}

impl<M: RawMutex, B: Backend> MwmrReaderPriority<M, B> {
    /// Creates the lock over a caller-supplied mutex `M` and memory
    /// backend (see [`super::MwmrStarvationFree::with_mutex_in`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0` or exceeds the mutex capacity.
    pub fn with_mutex_in(mutex: M, max_processes: usize, _backend: B) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        if let Some(cap) = mutex.capacity() {
            assert!(
                cap >= max_processes,
                "mutex capacity {cap} below max_processes {max_processes}"
            );
        }
        Self { swmr: SwmrReaderPriority::new_in(B::default()), mutex, max_processes }
    }

    /// The inner single-writer lock (for diagnostics and tests).
    pub fn inner(&self) -> &SwmrReaderPriority<B> {
        &self.swmr
    }

    /// True when the construction is at rest (the inner Figure 2 instance
    /// is quiescent). Checker entry point asserted by `rmr-check` at
    /// teardown; only meaningful while no attempt is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.swmr.is_quiescent()
    }
}

impl<M: RawMutex, B: Backend> RawRwLock for MwmrReaderPriority<M, B> {
    type ReadToken = ReadSession;
    type WriteToken = WriteToken<M>;

    fn read_lock(&self, pid: Pid) -> ReadSession {
        self.swmr.read_lock(pid)
    }

    fn read_unlock(&self, pid: Pid, token: ReadSession) {
        self.swmr.read_unlock(pid, token);
    }

    fn write_lock(&self, pid: Pid) -> WriteToken<M> {
        let mutex_token = self.mutex.lock(); // T line 2: acquire(M)
        let session = self.swmr.write_lock(pid); // T line 3: SW-Write-try()
        WriteToken { session, mutex_token }
    }

    fn write_unlock(&self, pid: Pid, token: WriteToken<M>) {
        self.swmr.write_unlock(pid, token.session); // T line 5
        self.mutex.unlock(token.mutex_token); // T line 6
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

/// Readers run Figure 2's protocol unchanged, so its bounded read attempt
/// carries over verbatim. No `RawTryRwLock`: the writer path blocks on `M`
/// and on the inner Figure 2 promotion wait.
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrReaderPriority;
/// use rmr_core::raw::{RawRwLock, RawTryReadLock};
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrReaderPriority::new(4);
/// let r = lock.try_read_lock(Pid::from_index(0)).expect("no writer");
/// lock.read_unlock(Pid::from_index(0), r);
/// ```
impl<M: RawMutex, B: Backend> RawTryReadLock for MwmrReaderPriority<M, B> {
    fn try_read_lock(&self, pid: Pid) -> Option<ReadSession> {
        self.swmr.try_read_lock(pid)
    }
}

// SAFETY: writers serialize through the mutex `M` before entering the
// Figure 2 writer protocol, so any number of concurrent write_lock callers
// are mutually excluded (Theorem 4).
unsafe impl<M: RawMutex, B: Backend> RawMultiWriter for MwmrReaderPriority<M, B> {}

impl<M: RawMutex, B: Backend> fmt::Debug for MwmrReaderPriority<M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MwmrReaderPriority")
            .field("max_processes", &self.max_processes)
            .field("inner", &self.swmr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn single_thread_cycles() {
        let lock = MwmrReaderPriority::new(4);
        for _ in 0..50 {
            let r = lock.read_lock(pid(0));
            lock.read_unlock(pid(0), r);
            let w = lock.write_lock(pid(0));
            lock.write_unlock(pid(0), w);
        }
    }

    #[test]
    fn two_writers_take_turns() {
        let lock = Arc::new(MwmrReaderPriority::new(4));
        let mut handles = Vec::new();
        for i in 0..2 {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let w = lock.write_lock(pid(i));
                    lock.write_unlock(pid(i), w);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn readers_overtake_waiting_writers() {
        // RP1: with a reader pinning the CS and a writer queued, a brand-new
        // reader must still enter without blocking.
        let lock = Arc::new(MwmrReaderPriority::new(4));
        let r1 = lock.read_lock(pid(2));

        let lw = Arc::clone(&lock);
        let writer = std::thread::spawn(move || {
            let w = lw.write_lock(pid(0));
            lw.write_unlock(pid(0), w);
        });
        std::thread::sleep(Duration::from_millis(50));

        let r2 = lock.read_lock(pid(3)); // must not block
        lock.read_unlock(pid(3), r2);

        lock.read_unlock(pid(2), r1);
        writer.join().unwrap();
    }

    #[test]
    fn exclusion_stress() {
        let lock = Arc::new(MwmrReaderPriority::new(8));
        let readers_in = Arc::new(AtomicUsize::new(0));
        let writers_in = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..2 {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writers_in = Arc::clone(&writers_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let w = lock.write_lock(pid(i));
                    assert_eq!(writers_in.fetch_add(1, Ordering::SeqCst), 0, "two writers in CS");
                    assert_eq!(readers_in.load(Ordering::SeqCst), 0, "reader with writer in CS");
                    writers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.write_unlock(pid(i), w);
                }
            }));
        }
        for i in 2..6 {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writers_in = Arc::clone(&writers_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let r = lock.read_lock(pid(i));
                    readers_in.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(writers_in.load(Ordering::SeqCst), 0, "writer with reader in CS");
                    readers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.read_unlock(pid(i), r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.inner().reader_count(), 0);
    }

    #[test]
    fn writer_completes_once_readers_pause() {
        // Not starvation freedom (readers *may* starve writers here), but
        // the writer must finish when the reader stream stops (P6).
        let lock = Arc::new(MwmrReaderPriority::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let lr = Arc::clone(&lock);
        let sr = Arc::clone(&stop);
        let reader = std::thread::spawn(move || {
            while !sr.load(Ordering::SeqCst) {
                let r = lr.read_lock(pid(1));
                lr.read_unlock(pid(1), r);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::SeqCst);
        let w = lock.write_lock(pid(0));
        lock.write_unlock(pid(0), w);
        reader.join().unwrap();
    }
}
