//! The paper's multi-writer multi-reader locks (§5, Theorems 3–5).
//!
//! | Type | Paper artifact | Guarantees |
//! |---|---|---|
//! | [`MwmrStarvationFree`] | Fig. 3 over Fig. 1 | P1–P7 (no priority, nobody starves) |
//! | [`MwmrReaderPriority`] | Fig. 3 over Fig. 2 | P1–P6, RP1, RP2 (writers may starve) |
//! | [`MwmrWriterPriority`] | Fig. 4 | P1–P6, WP1, WP2 (readers may starve) |
//!
//! All three have O(1) RMR complexity in the CC model and O(n) shared
//! variables, where n is the process capacity.

pub mod reader_priority;
pub mod starvation_free;
pub mod writer_priority;

pub use reader_priority::MwmrReaderPriority;
pub use starvation_free::MwmrStarvationFree;
pub use writer_priority::MwmrWriterPriority;
