//! Figure 3 over Figure 1: the multi-writer multi-reader lock with
//! **starvation freedom and no priority** (Theorem 3).
//!
//! The transformation `T` is exactly the paper's: writers serialize through
//! a mutual-exclusion lock `M` (Anderson's array lock by default) and then
//! run the single-writer algorithm's writer protocol; readers run the
//! single-writer reader protocol untouched.
//!
//! ```text
//! procedure Write-lock()            procedure Read-lock()
//! 2. acquire(M)                     8. SW-Read-try()
//! 3. SW-Write-try()                 9. CRITICAL SECTION
//! 4. CRITICAL SECTION              10. SW-Read-exit()
//! 5. SW-Write-exit()
//! 6. release(M)
//! ```
//!
//! Because `M` is FCFS and starvation free and the inner Figure 1 lock is
//! starvation free in both roles, every property of Theorem 1 lifts to the
//! multi-writer setting: P1–P7 with O(1) RMR complexity (Theorem 3).

use crate::raw::{RawMultiWriter, RawRwLock, RawTryReadLock};
use crate::registry::Pid;
use crate::swmr::writer_priority::{ReadSession, SwmrWriterPriority, WriteSession};
use rmr_mutex::mem::{Backend, Native};
use rmr_mutex::{AndersonLock, RawMutex};
use std::fmt;

/// Proof of a held write lock: the inner write session plus the `M` token.
#[derive(Debug)]
#[must_use = "the write lock must be released with write_unlock"]
pub struct WriteToken<M: RawMutex> {
    session: WriteSession,
    mutex_token: M::Token,
}

/// Figure 3 instantiated with Figure 1: multi-writer multi-reader lock
/// satisfying P1–P7 (mutual exclusion, bounded exit, FCFS writers, FIFE
/// readers, concurrent entering, livelock freedom, starvation freedom) with
/// O(1) RMR complexity in the CC model (Theorem 3).
///
/// Generic over the writer-side mutex `M` (default [`AndersonLock`], the
/// lock the paper names; [`rmr_mutex::McsLock`] is a drop-in alternative
/// exercised by the test suite) and the memory backend `B` ([`Native`] by
/// default; use [`MwmrStarvationFree::new_in`] with
/// [`rmr_mutex::Counting`] to measure RMRs on the real implementation).
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrStarvationFree;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrStarvationFree::new(8);
/// let w = lock.write_lock(Pid::from_index(3));
/// lock.write_unlock(Pid::from_index(3), w);
/// ```
pub struct MwmrStarvationFree<M: RawMutex = AndersonLock, B: Backend = Native> {
    swmr: SwmrWriterPriority<B>,
    mutex: M,
    max_processes: usize,
}

impl MwmrStarvationFree<AndersonLock> {
    /// Creates a lock for up to `max_processes` concurrently registered
    /// processes, using an [`AndersonLock`] sized accordingly as `M`.
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0`.
    pub fn new(max_processes: usize) -> Self {
        Self::with_mutex(AndersonLock::new(max_processes), max_processes)
    }
}

impl<B: Backend> MwmrStarvationFree<AndersonLock<B>, B> {
    /// Creates a lock for up to `max_processes` processes over the given
    /// memory backend, with a matching-backend [`AndersonLock`] as `M` —
    /// the whole construction (inner Figure 1 *and* the mutex) is then
    /// measured when `B` is [`rmr_mutex::Counting`].
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0`.
    pub fn new_in(max_processes: usize, backend: B) -> Self {
        Self::with_mutex_in(AndersonLock::new_in(max_processes, backend), max_processes, backend)
    }
}

impl<M: RawMutex> MwmrStarvationFree<M> {
    /// Creates the lock over a caller-supplied mutex `M`.
    ///
    /// `M` must be starvation free with a bounded doorway (the paper's
    /// requirements on `M`); `mutex.capacity()`, if bounded, must be at
    /// least `max_processes`.
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0` or exceeds the mutex capacity.
    pub fn with_mutex(mutex: M, max_processes: usize) -> Self {
        Self::with_mutex_in(mutex, max_processes, Native)
    }
}

impl<M: RawMutex, B: Backend> MwmrStarvationFree<M, B> {
    /// Creates the lock over a caller-supplied mutex `M` and memory backend
    /// (same contract as [`MwmrStarvationFree::with_mutex`]; the mutex may
    /// use a different backend than the inner Figure 1 state).
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0` or exceeds the mutex capacity.
    pub fn with_mutex_in(mutex: M, max_processes: usize, _backend: B) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        if let Some(cap) = mutex.capacity() {
            assert!(
                cap >= max_processes,
                "mutex capacity {cap} below max_processes {max_processes}"
            );
        }
        Self { swmr: SwmrWriterPriority::new_in(B::default()), mutex, max_processes }
    }

    /// The inner single-writer lock (for diagnostics and tests).
    pub fn inner(&self) -> &SwmrWriterPriority<B> {
        &self.swmr
    }

    /// True when the construction is at rest: the inner Figure 1 instance
    /// is quiescent (the mutex `M` offers no generic freeness query, but a
    /// held `M` implies a non-quiescent inner lock once the holder
    /// proceeds). Checker entry point asserted by `rmr-check` at teardown;
    /// only meaningful while no attempt is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.swmr.is_quiescent()
    }
}

impl<M: RawMutex, B: Backend> RawRwLock for MwmrStarvationFree<M, B> {
    type ReadToken = ReadSession;
    type WriteToken = WriteToken<M>;

    /// `T` line 8: readers run the Figure 1 reader protocol unchanged.
    fn read_lock(&self, _pid: Pid) -> ReadSession {
        self.swmr.read_lock()
    }

    /// `T` line 10.
    fn read_unlock(&self, _pid: Pid, token: ReadSession) {
        self.swmr.read_unlock(token);
    }

    /// `T` lines 2–3: acquire `M`, then the Figure 1 writer try section.
    fn write_lock(&self, _pid: Pid) -> WriteToken<M> {
        let mutex_token = self.mutex.lock(); // line 2: acquire(M)
        let session = self.swmr.write_lock(); // line 3: SW-Write-try()
        WriteToken { session, mutex_token }
    }

    /// `T` lines 5–6: the Figure 1 writer exit, then release `M`.
    fn write_unlock(&self, _pid: Pid, token: WriteToken<M>) {
        self.swmr.write_unlock(token.session); // line 5: SW-Write-exit()
        self.mutex.unlock(token.mutex_token); // line 6: release(M)
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

/// Readers run Figure 1's protocol unchanged, so its bounded read attempt
/// carries over verbatim. No `RawTryRwLock`: the writer path blocks on `M`
/// and on the inner irrevocable Figure 1 doorway.
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrStarvationFree;
/// use rmr_core::raw::{RawRwLock, RawTryReadLock};
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrStarvationFree::new(4);
/// let w = lock.write_lock(Pid::from_index(0));
/// assert!(lock.try_read_lock(Pid::from_index(1)).is_none());
/// lock.write_unlock(Pid::from_index(0), w);
/// assert!(lock.try_read_lock(Pid::from_index(1)).is_some());
/// ```
impl<M: RawMutex, B: Backend> RawTryReadLock for MwmrStarvationFree<M, B> {
    fn try_read_lock(&self, _pid: Pid) -> Option<ReadSession> {
        self.swmr.try_read_lock()
    }
}

// SAFETY: writers serialize through the mutex `M` before entering the
// Figure 1 writer protocol, so any number of concurrent write_lock callers
// are mutually excluded (Theorem 3).
unsafe impl<M: RawMutex, B: Backend> RawMultiWriter for MwmrStarvationFree<M, B> {}

impl<M: RawMutex, B: Backend> fmt::Debug for MwmrStarvationFree<M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MwmrStarvationFree")
            .field("max_processes", &self.max_processes)
            .field("inner", &self.swmr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_mutex::McsLock;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn single_thread_read_write_cycles() {
        let lock = MwmrStarvationFree::new(4);
        for _ in 0..50 {
            let r = lock.read_lock(pid(0));
            lock.read_unlock(pid(0), r);
            let w = lock.write_lock(pid(0));
            lock.write_unlock(pid(0), w);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_processes_panics() {
        let _ = MwmrStarvationFree::new(0);
    }

    #[test]
    fn works_over_mcs_mutex_too() {
        let lock = MwmrStarvationFree::with_mutex(McsLock::new(), 4);
        let w = lock.write_lock(pid(1));
        lock.write_unlock(pid(1), w);
        let r = lock.read_lock(pid(2));
        lock.read_unlock(pid(2), r);
    }

    fn exclusion_stress<M: RawMutex + 'static>(lock: MwmrStarvationFree<M>) {
        let lock = Arc::new(lock);
        let readers_in = Arc::new(AtomicUsize::new(0));
        let writers_in = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..2 {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writers_in = Arc::clone(&writers_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let w = lock.write_lock(pid(i));
                    assert_eq!(writers_in.fetch_add(1, Ordering::SeqCst), 0, "two writers in CS");
                    assert_eq!(readers_in.load(Ordering::SeqCst), 0, "reader with writer in CS");
                    writers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.write_unlock(pid(i), w);
                }
            }));
        }
        for i in 2..6 {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writers_in = Arc::clone(&writers_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let r = lock.read_lock(pid(i));
                    readers_in.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(writers_in.load(Ordering::SeqCst), 0, "writer with reader in CS");
                    readers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.read_unlock(pid(i), r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn exclusion_stress_anderson() {
        exclusion_stress(MwmrStarvationFree::new(8));
    }

    #[test]
    fn exclusion_stress_mcs() {
        exclusion_stress(MwmrStarvationFree::with_mutex(McsLock::new(), 8));
    }

    #[test]
    fn writers_queue_fcfs_behind_holder() {
        // FCFS smoke test: writer A holds; B then C queue (with sequencing
        // sleeps); releases must grant in order B, C.
        let lock = Arc::new(MwmrStarvationFree::new(4));
        let wa = lock.write_lock(pid(0));
        let order = Arc::new(AtomicUsize::new(0));

        let lb = Arc::clone(&lock);
        let ob = Arc::clone(&order);
        let b = std::thread::spawn(move || {
            let w = lb.write_lock(pid(1));
            let slot = ob.fetch_add(1, Ordering::SeqCst);
            lb.write_unlock(pid(1), w);
            slot
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        let lc = Arc::clone(&lock);
        let oc = Arc::clone(&order);
        let c = std::thread::spawn(move || {
            let w = lc.write_lock(pid(2));
            let slot = oc.fetch_add(1, Ordering::SeqCst);
            lc.write_unlock(pid(2), w);
            slot
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        lock.write_unlock(pid(0), wa);
        let slot_b = b.join().unwrap();
        let slot_c = c.join().unwrap();
        assert!(slot_b < slot_c, "FCFS violated: B entered the doorway first");
    }

    #[test]
    fn readers_do_not_starve_writers() {
        // P7 smoke test: a writer must complete even while readers churn.
        let lock = Arc::new(MwmrStarvationFree::new(8));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for i in 1..4 {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let r = lock.read_lock(pid(i));
                    lock.read_unlock(pid(i), r);
                }
            }));
        }
        for _ in 0..10 {
            let w = lock.write_lock(pid(0));
            lock.write_unlock(pid(0), w);
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
    }
}
