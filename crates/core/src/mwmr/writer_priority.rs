//! Figure 4: the multi-writer multi-reader lock with **writer priority**
//! (Theorem 5).
//!
//! The plain transformation `T` does *not* preserve writer priority: when a
//! writer finishes and runs the Figure 1 exit (opening the gate), a reader
//! could slip into the critical section ahead of a writer already waiting
//! on `M`. Figure 4 fixes this by keeping the inner SWWP (single-writer
//! writer-priority) *session open across writer handoffs*: an exiting
//! writer only closes the SWWP session (opens the gate for readers) if it
//! can prove no writer is in the try section, via the `Wcount` counter and
//! a CAS on the `W-token` variable; otherwise the next writer *inherits*
//! the critical section without ever competing with readers.
//!
//! `W-token ∈ PID ∪ {false} ∪ {0, 1}` is the handoff word:
//!
//! * a **pid** means "that writer recently left the CS and may be about to
//!   hand the lock to the readers" — an arriving writer CASes it to `false`
//!   to preempt the handoff (line 5);
//! * **`false`** means the SWWP session is (or will stay) open and the next
//!   `M`-holder inherits it;
//! * a **side `0`/`1`** means the last writer *did* exit SWWP, and records
//!   the side from which the next writer must re-enter — the arriving
//!   writer performs the SWWP doorway `D ← t` on the writers' behalf
//!   (line 8) *before* queueing on `M`, which is what restores WP1.
//!
//! Every numbered line of the paper's Figure 4 appears below with its line
//! number; readers run Figure 1's `Read-lock()` unchanged.

use crate::raw::{RawMultiWriter, RawRwLock, RawTryReadLock};
use crate::registry::Pid;
use crate::side::Side;
use crate::swmr::writer_priority::{ReadSession, SwmrWriterPriority, WriteSession, WriterAttempt};
use rmr_mutex::mem::{Backend, Native, Ordering as MemOrdering, SharedWord};
use rmr_mutex::CachePadded;
use rmr_mutex::{spin_until, AndersonLock, RawMutex};
use std::fmt;

/// Encoding of `W-token ∈ {0, 1} ∪ {false} ∪ PID`:
/// sides map to 0 and 1, `false` to 2, pid `p` to `p + 3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WToken {
    Sde(Side),
    False,
    Process(Pid),
}

const WTOKEN_FALSE: u64 = 2;
const WTOKEN_PID_BASE: u64 = 3;

impl WToken {
    fn encode(self) -> u64 {
        match self {
            WToken::Sde(s) => s.index() as u64,
            WToken::False => WTOKEN_FALSE,
            WToken::Process(p) => p.index() as u64 + WTOKEN_PID_BASE,
        }
    }

    fn decode(raw: u64) -> Self {
        match raw {
            0 => WToken::Sde(Side::Zero),
            1 => WToken::Sde(Side::One),
            WTOKEN_FALSE => WToken::False,
            p => WToken::Process(Pid::from_index((p - WTOKEN_PID_BASE) as usize)),
        }
    }
}

/// Proof of a held write lock.
#[derive(Debug)]
#[must_use = "the write lock must be released with write_unlock"]
pub struct WriteToken<M: RawMutex> {
    mutex_token: M::Token,
    curr_d: Side,
    prev_d: Side,
}

/// Figure 4: multi-writer multi-reader lock satisfying P1–P6 plus WP1
/// (writer priority) and WP2 (unstoppable writers), with O(1) RMR
/// complexity in the CC model (Theorem 5).
///
/// Readers may starve under a continuous stream of writers — by design;
/// use [`super::MwmrStarvationFree`] when no class may starve.
///
/// Generic over the writer-side mutex `M` and the memory backend `B`
/// ([`Native`] by default; use [`MwmrWriterPriority::new_in`] with
/// [`rmr_mutex::Counting`] to measure RMRs on the real implementation).
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrWriterPriority;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrWriterPriority::new(8);
/// let w = lock.write_lock(Pid::from_index(0));
/// lock.write_unlock(Pid::from_index(0), w);
/// let r = lock.read_lock(Pid::from_index(1));
/// lock.read_unlock(Pid::from_index(1), r);
/// ```
pub struct MwmrWriterPriority<M: RawMutex = AndersonLock, B: Backend = Native> {
    /// The SWWP instance whose writer role the writers take turns playing.
    swmr: SwmrWriterPriority<B>,
    /// The writers' mutual-exclusion lock `M`.
    mutex: M,
    /// `Wcount`: number of writers between their doorway and exit decrement.
    wcount: CachePadded<B::Word>,
    /// `W-token`: the session-handoff word described in the module docs.
    wtoken: CachePadded<B::Word>,
    max_processes: usize,
}

impl MwmrWriterPriority<AndersonLock> {
    /// Creates a lock for up to `max_processes` concurrently registered
    /// processes, using an [`AndersonLock`] sized accordingly as `M`.
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0`.
    pub fn new(max_processes: usize) -> Self {
        Self::with_mutex(AndersonLock::new(max_processes), max_processes)
    }
}

impl<B: Backend> MwmrWriterPriority<AndersonLock<B>, B> {
    /// Creates a lock for up to `max_processes` processes over the given
    /// memory backend, with a matching-backend [`AndersonLock`] as `M`.
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0`.
    pub fn new_in(max_processes: usize, backend: B) -> Self {
        Self::with_mutex_in(AndersonLock::new_in(max_processes, backend), max_processes, backend)
    }
}

impl<M: RawMutex> MwmrWriterPriority<M> {
    /// Creates the lock over a caller-supplied mutex `M` (same requirements
    /// as [`super::MwmrStarvationFree::with_mutex`]).
    ///
    /// `W-token` starts at side 1 — the complement of the initial `D = 0` —
    /// so the first writer's proxy doorway targets the side whose previous
    /// gate (`Gate\[0\]`) starts open. The paper leaves this initialization
    /// implicit; any other choice deadlocks the first write attempt (see
    /// DESIGN.md §6).
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0` or exceeds the mutex capacity.
    pub fn with_mutex(mutex: M, max_processes: usize) -> Self {
        Self::with_mutex_in(mutex, max_processes, Native)
    }
}

impl<M: RawMutex, B: Backend> MwmrWriterPriority<M, B> {
    /// Creates the lock over a caller-supplied mutex `M` and memory
    /// backend (see [`MwmrWriterPriority::with_mutex`] for the `W-token`
    /// initialization note).
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0` or exceeds the mutex capacity.
    pub fn with_mutex_in(mutex: M, max_processes: usize, _backend: B) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        if let Some(cap) = mutex.capacity() {
            assert!(
                cap >= max_processes,
                "mutex capacity {cap} below max_processes {max_processes}"
            );
        }
        Self {
            swmr: SwmrWriterPriority::new_in(B::default()),
            mutex,
            wcount: CachePadded::new(B::Word::new(0)),
            wtoken: CachePadded::new(B::Word::new(WToken::Sde(Side::One).encode())),
            max_processes,
        }
    }

    /// The inner single-writer lock (for diagnostics and tests).
    pub fn inner(&self) -> &SwmrWriterPriority<B> {
        &self.swmr
    }

    fn load_wtoken(&self, order: MemOrdering) -> WToken {
        WToken::decode(self.wtoken.load(order))
    }

    fn cas_wtoken(&self, from: WToken, to: WToken) -> bool {
        // All CASes on `W-token` stay SeqCst: the token is one corner of the
        // Figure 4 Dekker square (see site F4-TOKEN below) and the handoff
        // CAS on line 19 must be totally ordered against Wcount's F&As.
        self.wtoken
            .compare_exchange(from.encode(), to.encode(), MemOrdering::SeqCst, MemOrdering::SeqCst)
            .is_ok()
    }

    /// Number of writers currently in their try or critical section
    /// (`Wcount`). Diagnostic; may be stale.
    pub fn writers_pending(&self) -> u64 {
        self.wcount.load(MemOrdering::Relaxed)
    }

    /// True when the construction is at rest: no writer between doorway
    /// and exit (`Wcount = 0`) and the inner Figure 1 instance quiescent.
    /// Checker entry point asserted by `rmr-check` at teardown; only
    /// meaningful while no attempt is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.writers_pending() == 0 && self.swmr.is_quiescent()
    }
}

impl<M: RawMutex, B: Backend> RawRwLock for MwmrWriterPriority<M, B> {
    type ReadToken = ReadSession;
    type WriteToken = WriteToken<M>;

    /// Readers run Figure 1's `Read-lock()` unchanged ("the Read-lock()
    /// procedure is same as in Figure 3").
    fn read_lock(&self, _pid: Pid) -> ReadSession {
        self.swmr.read_lock()
    }

    fn read_unlock(&self, _pid: Pid, token: ReadSession) {
        self.swmr.read_unlock(token);
    }

    /// Figure 4 lines 2–14.
    fn write_lock(&self, pid: Pid) -> WriteToken<M> {
        // Site F4-TOKEN, the store-buffering square of Figure 4: an arriving
        // writer F&As Wcount and then reads W-token (lines 2–3); an exiting
        // writer stores W-token ← p and then reads Wcount (lines 15, 18).
        // Sequential consistency of exactly these four accesses is what
        // guarantees "either the arriver sees the pid and preempts the
        // handoff, or the exiter sees Wcount > 0 and leaves the session
        // open" — so all four are SeqCst (DESIGN.md §13).
        self.wcount.fetch_add(1, MemOrdering::SeqCst); // line 2: F&A(Wcount, 1)
        let t = self.load_wtoken(MemOrdering::SeqCst); // line 3: t ← W-token
        if let WToken::Process(_) = t {
            // line 4: if (t ∈ PID)
            // line 5: CAS(W-token, t, false) — preempt a pending handoff to
            // the readers; failure means the race resolved another way.
            let _ = self.cas_wtoken(t, WToken::False);
        }
        let t = self.load_wtoken(MemOrdering::SeqCst); // line 6: t ← W-token (site F4-TOKEN)
        if let WToken::Sde(side) = t {
            // line 7: if (t ∈ {0, 1})
            // line 8: D ← t — the SWWP doorway, executed on the writers'
            // behalf. Concurrent writers here always carry the same side
            // (the token cannot change sides while any writer is in flight),
            // so the store is idempotent.
            self.swmr.set_direction(side);
        }
        let mutex_token = self.mutex.lock(); // line 9: acquire(M)
        let curr_d = self.swmr.direction(); // line 10: currD ← D, prevD ← ¬currD
        let prev_d = !curr_d;
        if let WToken::Sde(_) = self.load_wtoken(MemOrdering::SeqCst) {
            // line 11: if (W-token ∈ {0, 1}) — the previous writer exited
            // SWWP, so we must compete with the readers.
            // line 12: wait till Gate[prevD] — the previous writer may have
            // won its line-19 CAS but not yet executed line 20.
            spin_until(|| self.swmr.gate_is_open(prev_d));
            // line 13: SW-waiting-room() — Fig. 1 lines 4–12.
            let session = self.swmr.writer_waiting_room(WriterAttempt::from_current_side(curr_d));
            // The session token is intentionally discarded: in Figure 4 the
            // SWWP session outlives this writer (successors may inherit it),
            // so the closer reconstructs it in `write_unlock` instead.
            let _ = session;
        }
        // else: the previous writer never exited SWWP — inherit its session
        // and enter the critical section directly.
        let _ = pid;
        WriteToken { mutex_token, curr_d, prev_d } // line 14: CRITICAL SECTION
    }

    /// Figure 4 lines 15–20.
    fn write_unlock(&self, pid: Pid, token: WriteToken<M>) {
        // line 15: W-token ← p (plain write; W-token is a CAS variable but
        // the paper stores here unconditionally).
        // Store half of site F4-TOKEN: SeqCst, not Release — if this store
        // could pass the line-18 load of Wcount, an exiting writer could miss
        // a concurrent arriver *and* that arriver could miss the pid, losing
        // the handoff both ways (readers slip in past a waiting writer,
        // breaking WP1).
        self.wtoken.store(WToken::Process(pid).encode(), MemOrdering::SeqCst);
        self.wcount.fetch_sub(1, MemOrdering::SeqCst); // line 16: F&A(Wcount, -1)
        self.mutex.unlock(token.mutex_token); // line 17: release(M)
                                              // Load half of site F4-TOKEN (see write_lock lines 2–3).
        if self.wcount.load(MemOrdering::SeqCst) == 0 {
            // line 18: if (Wcount = 0)
            // line 19: if (CAS(W-token, p, prevD)) — hand the next session's
            // side to the writers; fails if a newer writer already owns the
            // token or preempted the handoff.
            if self.cas_wtoken(WToken::Process(pid), WToken::Sde(token.prev_d)) {
                // line 20: Gate[currD] ← true — the Fig. 1 writer exit,
                // closing the SWWP session and releasing parked readers.
                self.swmr.writer_exit(WriteSession::resume(token.curr_d));
            }
        }
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

/// Readers run Figure 1's protocol unchanged ("the Read-lock() procedure
/// is same as in Figure 3"), so its bounded read attempt carries over.
/// No `RawTryRwLock`: the Figure 4 writer path publishes `D` (line 8)
/// before acquiring `M` and cannot be revoked.
///
/// # Example
///
/// ```
/// use rmr_core::mwmr::MwmrWriterPriority;
/// use rmr_core::raw::{RawRwLock, RawTryReadLock};
/// use rmr_core::registry::Pid;
///
/// let lock = MwmrWriterPriority::new(4);
/// let w = lock.write_lock(Pid::from_index(0));
/// assert!(lock.try_read_lock(Pid::from_index(1)).is_none());
/// lock.write_unlock(Pid::from_index(0), w);
/// ```
impl<M: RawMutex, B: Backend> RawTryReadLock for MwmrWriterPriority<M, B> {
    fn try_read_lock(&self, _pid: Pid) -> Option<ReadSession> {
        self.swmr.try_read_lock()
    }
}

// SAFETY: writers hold the mutex `M` for the whole critical section
// (Figure 4 releases it only in the exit protocol), so any number of
// concurrent write_lock callers are mutually excluded (Theorem 5).
unsafe impl<M: RawMutex, B: Backend> RawMultiWriter for MwmrWriterPriority<M, B> {}

impl<M: RawMutex, B: Backend> fmt::Debug for MwmrWriterPriority<M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MwmrWriterPriority")
            .field("max_processes", &self.max_processes)
            .field("wcount", &self.wcount.load(MemOrdering::Relaxed))
            .field("wtoken", &self.load_wtoken(MemOrdering::Relaxed))
            .field("inner", &self.swmr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn wtoken_encoding_round_trips() {
        for t in [
            WToken::Sde(Side::Zero),
            WToken::Sde(Side::One),
            WToken::False,
            WToken::Process(pid(0)),
            WToken::Process(pid(41)),
        ] {
            assert_eq!(WToken::decode(t.encode()), t);
        }
    }

    #[test]
    fn single_writer_cycles() {
        let lock = MwmrWriterPriority::new(4);
        for _ in 0..20 {
            let w = lock.write_lock(pid(0));
            lock.write_unlock(pid(0), w);
        }
        // After each solo attempt the handoff CAS succeeds, so the token
        // must hold a side again.
        assert!(matches!(lock.load_wtoken(MemOrdering::SeqCst), WToken::Sde(_)));
    }

    #[test]
    fn first_writer_alternates_sides() {
        let lock = MwmrWriterPriority::new(4);
        let w = lock.write_lock(pid(0));
        assert_eq!(w.curr_d, Side::One); // W-token starts at side 1
        lock.write_unlock(pid(0), w);
        let w = lock.write_lock(pid(0));
        assert_eq!(w.curr_d, Side::Zero);
        lock.write_unlock(pid(0), w);
    }

    #[test]
    fn reader_then_writer_then_reader() {
        let lock = MwmrWriterPriority::new(4);
        let r = lock.read_lock(pid(1));
        lock.read_unlock(pid(1), r);
        let w = lock.write_lock(pid(0));
        lock.write_unlock(pid(0), w);
        let r = lock.read_lock(pid(1));
        lock.read_unlock(pid(1), r);
    }

    #[test]
    fn writer_blocks_new_readers_until_last_writer_exits() {
        let lock = Arc::new(MwmrWriterPriority::new(4));
        let w = lock.write_lock(pid(0));

        let entered = Arc::new(AtomicBool::new(false));
        let lr = Arc::clone(&lock);
        let er = Arc::clone(&entered);
        let reader = std::thread::spawn(move || {
            let r = lr.read_lock(pid(2));
            er.store(true, Ordering::SeqCst);
            lr.read_unlock(pid(2), r);
        });

        std::thread::sleep(Duration::from_millis(50));
        assert!(!entered.load(Ordering::SeqCst), "reader overtook the writer (WP1)");

        lock.write_unlock(pid(0), w);
        reader.join().unwrap();
        assert!(entered.load(Ordering::SeqCst));
    }

    #[test]
    fn writer_handoff_keeps_readers_out() {
        // Writer A holds the CS; writer B queues; a reader queues. When A
        // exits, B must inherit the session and the reader must stay out
        // until B also exits (writer priority across handoffs).
        let lock = Arc::new(MwmrWriterPriority::new(4));
        let wa = lock.write_lock(pid(0));

        let b_in = Arc::new(AtomicBool::new(false));
        let b_release = Arc::new(AtomicBool::new(false));
        let lb = Arc::clone(&lock);
        let b_in2 = Arc::clone(&b_in);
        let b_rel2 = Arc::clone(&b_release);
        let writer_b = std::thread::spawn(move || {
            let w = lb.write_lock(pid(1));
            b_in2.store(true, Ordering::SeqCst);
            spin_until(|| b_rel2.load(Ordering::SeqCst));
            lb.write_unlock(pid(1), w);
        });

        let r_in = Arc::new(AtomicBool::new(false));
        let lr = Arc::clone(&lock);
        let r_in2 = Arc::clone(&r_in);
        let reader = std::thread::spawn(move || {
            let r = lr.read_lock(pid(2));
            r_in2.store(true, Ordering::SeqCst);
            lr.read_unlock(pid(2), r);
        });

        std::thread::sleep(Duration::from_millis(50));
        assert!(!b_in.load(Ordering::SeqCst));
        assert!(!r_in.load(Ordering::SeqCst));

        // A exits; B should inherit while the reader stays parked.
        lock.write_unlock(pid(0), wa);
        spin_until(|| b_in.load(Ordering::SeqCst));
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !r_in.load(Ordering::SeqCst),
            "reader entered between writer handoffs (WP violated)"
        );

        b_release.store(true, Ordering::SeqCst);
        writer_b.join().unwrap();
        reader.join().unwrap();
        assert!(r_in.load(Ordering::SeqCst));
    }

    #[test]
    fn exclusion_stress() {
        let lock = Arc::new(MwmrWriterPriority::new(8));
        let readers_in = Arc::new(AtomicUsize::new(0));
        let writers_in = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..2 {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writers_in = Arc::clone(&writers_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let w = lock.write_lock(pid(i));
                    assert_eq!(writers_in.fetch_add(1, Ordering::SeqCst), 0, "two writers in CS");
                    assert_eq!(readers_in.load(Ordering::SeqCst), 0, "reader with writer in CS");
                    writers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.write_unlock(pid(i), w);
                }
            }));
        }
        for i in 2..6 {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writers_in = Arc::clone(&writers_in);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let r = lock.read_lock(pid(i));
                    readers_in.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(writers_in.load(Ordering::SeqCst), 0, "writer with reader in CS");
                    readers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.read_unlock(pid(i), r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.writers_pending(), 0);
    }

    #[test]
    fn writers_do_not_starve_under_read_churn() {
        // WP means writers get through even while readers keep arriving.
        let lock = Arc::new(MwmrWriterPriority::new(8));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for i in 2..5 {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let r = lock.read_lock(pid(i));
                    lock.read_unlock(pid(i), r);
                }
            }));
        }
        for _ in 0..20 {
            let w = lock.write_lock(pid(0));
            lock.write_unlock(pid(0), w);
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
    }
}
