//! Constant-RMR reader-writer locks — a faithful implementation of
//! Bhatt & Jayanti, *"Constant RMR Solutions to Reader Writer
//! Synchronization"* (Dartmouth TR2010-662 / PODC 2010).
//!
//! The paper gives the first reader-writer exclusion algorithms whose RMR
//! (remote memory reference) complexity on cache-coherent machines is O(1)
//! — independent of the number of contending processes — for all three
//! priority disciplines. This crate implements all of them on real
//! `std::sync::atomic` primitives:
//!
//! | Type | Paper artifact | Discipline |
//! |---|---|---|
//! | [`swmr::SwmrWriterPriority`] | Figure 1, Theorem 1 | single writer, writer priority + starvation freedom |
//! | [`swmr::SwmrReaderPriority`] | Figure 2, Theorem 2 | single writer, reader priority |
//! | [`mwmr::MwmrStarvationFree`] | Figure 3 ∘ Figure 1, Theorem 3 | multi writer, no priority, nobody starves |
//! | [`mwmr::MwmrReaderPriority`] | Figure 3 ∘ Figure 2, Theorem 4 | multi writer, reader priority |
//! | [`mwmr::MwmrWriterPriority`] | Figure 4, Theorem 5 | multi writer, writer priority |
//!
//! Every lock implements [`raw::RawRwLock`] and plugs into the unified
//! RAII front end [`rwlock::RwLock`], which works like `std::sync::RwLock`
//! — no registration ceremony; pids are leased per thread behind the
//! scenes:
//!
//! ```
//! use rmr_core::RwLock;
//!
//! let lock = RwLock::writer_priority(vec![0u8; 4], 16);
//! lock.write().push(9);
//! assert_eq!(lock.read().len(), 5);
//! ```
//!
//! Where the algorithm admits a bounded attempt, the non-blocking tier is
//! available too ([`raw::RawTryReadLock`] / [`raw::RawTryRwLock`]):
//!
//! ```
//! use rmr_core::RwLock;
//!
//! let lock = RwLock::starvation_free(0u32, 4);
//! let g = lock.try_read().expect("no writer active");
//! assert_eq!(*g, 0);
//! ```
//!
//! # Verification
//!
//! The sibling crate `rmr-sim` re-encodes every algorithm at the paper's
//! line-level atomicity and model-checks the claimed properties (P1–P7,
//! RP1/RP2, WP1/WP2, plus the Appendix A invariants) exhaustively for small
//! configurations, and measures RMR counts under the paper's CC and DSM
//! cost models. The `rmr-check` crate goes one step further and
//! model-checks the *implementations in this crate* directly: instantiated
//! over the [`mem::Sched`](rmr_mutex::sched::Sched) backend, every lock
//! here runs under a deterministic scheduler through PCT-style randomized
//! and bounded-exhaustive schedule exploration, with exclusion, deadlock
//! and quiescence oracles (the `is_quiescent` entry points below). See
//! DESIGN.md §9 and EXPERIMENTS.md E14 at the workspace root.
//!
//! # Memory ordering
//!
//! The paper assumes sequential consistency; every atomic here uses
//! `SeqCst`. See `rmr-mutex`'s crate docs for the rationale.
//!
//! # Memory backends
//!
//! Every lock is generic over a memory backend (re-exported here as
//! [`mem`]), defaulted to [`mem::Native`] so the API above is what you see.
//! Instantiating a lock with [`mem::Counting`] (via the `new_in`
//! constructors) runs the *identical* algorithm code with every shared
//! access tallied under the paper's CC and DSM cost models — experiment
//! E13 (`real_rmr_table` in `rmr-bench`) verifies the O(1) claim on these
//! real implementations, not just on `rmr-sim`'s line-level models.
//!
//! # Composing locks
//!
//! Everything above is stated against [`raw::RawRwLock`], so capability-
//! preserving wrappers compose with the whole stack. The `rmr-bravo`
//! crate layers a BRAVO-style reader-biased fast path over any of these
//! locks (`Bravo<L>`), and plugs into [`RwLock`], the RMR accounting and
//! the `rmr-check` schedule explorer unchanged. [`observed::Observed`]
//! does the same for observability: it reports every passage of any raw
//! lock to an `rmr-obs` recorder, and the typed front end carries the
//! same hooks directly ([`RwLock::with_recorder`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod mwmr;
pub mod observed;
pub mod packed;
pub mod raw;
pub mod registry;
pub mod rwlock;
mod side;
pub mod swmr;
pub mod swmr_rwlock;

pub use rmr_mutex::mem;

pub use observed::Observed;
pub use raw::{RawMultiWriter, RawRwLock, RawTryReadLock, RawTryRwLock};
pub use registry::{Pid, PidRegistry, RegistryFull};
pub use rwlock::{
    lease_pid, release_pid, LockHandle, PidSource, ReadGuard, ReaderPriorityRwLock, RwLock,
    StarvationFreeRwLock, WriteGuard, WriterPriorityRwLock,
};
pub use side::{AtomicSide, Side};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<swmr::SwmrWriterPriority>();
        assert_send_sync::<swmr::SwmrReaderPriority>();
        assert_send_sync::<mwmr::MwmrStarvationFree>();
        assert_send_sync::<mwmr::MwmrReaderPriority>();
        assert_send_sync::<mwmr::MwmrWriterPriority>();
        assert_send_sync::<RwLock<Vec<u8>, mwmr::MwmrStarvationFree>>();
    }
}
