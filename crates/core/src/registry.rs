//! Process-identifier allocation.
//!
//! The paper's algorithms name processes by PIDs drawn from a finite set
//! (`X ∈ PID ∪ {true}` in Fig. 2, `W-token ∈ PID ∪ {false} ∪ {0,1}` in
//! Fig. 4). The typed lock front end hands each participating thread a
//! [`Pid`] from a fixed-capacity [`PidRegistry`]; the registry capacity is
//! the `n` of the theorems ("O(n) shared variables", Anderson-lock slots).

use rmr_mutex::mem::{Backend, Native, Ordering, SharedBool, SharedWord};
use rmr_mutex::CachePadded;
use std::fmt;

/// Sentinel stored in an epoch slot that has nothing published. Epoch
/// counters start at 1 precisely so 0 can mean "empty".
const EPOCH_EMPTY: u64 = 0;

/// A process identifier: a small dense integer in `0..capacity`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub(crate) u32);

impl Pid {
    /// The integer value of the pid.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a pid from a raw index. Intended for the simulator and tests;
    /// the typed API always allocates pids through [`PidRegistry`].
    pub fn from_index(index: usize) -> Self {
        Pid(u32::try_from(index).expect("pid out of range"))
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Error returned when a lock already has `capacity` registered processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryFull {
    capacity: usize,
}

impl RegistryFull {
    /// The capacity that was exhausted.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl fmt::Display for RegistryFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all {} process slots are registered", self.capacity)
    }
}

impl std::error::Error for RegistryFull {}

/// Fixed-capacity pid allocator, generic over the memory backend
/// (`Native` by default).
///
/// Allocation is O(capacity) (a scan with one CAS per probed slot) — pids
/// are allocated at registration time, never on the lock fast path.
///
/// # The epoch table
///
/// Alongside the `in_use` bitmap, the registry carries one cache-padded
/// *epoch slot* per pid. The `rmr-swap` snapshot tier uses it as the
/// reader epoch table: a reader publishes the global epoch it is reading
/// under ([`PidRegistry::publish_epoch`]) before loading the payload
/// pointer, and clears the slot ([`PidRegistry::clear_epoch`]) when its
/// guard drops. A writer's grace-period scan ranges over
/// [`PidRegistry::min_published_epoch`]. The table lives here rather than
/// in `rmr-swap` because the hard part — lease/churn/leak semantics of
/// *who owns a slot* — is exactly what the registry already solves: a
/// leaked guard keeps its pid reserved, and a reserved pid keeps its
/// published epoch pinned.
///
/// Each slot is padded to its own cache line so a reader's publish/clear
/// stores never contend with a neighbor's — the stores stay local (zero
/// cache-coherence RMRs in steady state), which is the whole point of the
/// snapshot tier.
///
/// # Example
///
/// ```
/// use rmr_core::registry::PidRegistry;
///
/// let reg = PidRegistry::new(2);
/// let a = reg.allocate().unwrap();
/// let b = reg.allocate().unwrap();
/// assert!(reg.allocate().is_err());
/// reg.release(a);
/// assert!(reg.allocate().is_ok());
/// # let _ = b;
/// ```
pub struct PidRegistry<B: Backend = Native> {
    in_use: Box<[B::Bool]>,
    epochs: Box<[CachePadded<B::Word>]>,
}

impl PidRegistry {
    /// Creates a registry with `capacity` pids (`0..capacity`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `u32::MAX`.
    pub fn new(capacity: usize) -> Self {
        Self::new_in(capacity, Native)
    }
}

impl<B: Backend> PidRegistry<B> {
    /// Creates a registry with `capacity` pids over the given memory
    /// backend (same contract as [`PidRegistry::new`]).
    pub fn new_in(capacity: usize, _backend: B) -> Self {
        assert!(capacity > 0, "registry capacity must be positive");
        assert!(u32::try_from(capacity).is_ok(), "registry capacity too large");
        Self {
            in_use: (0..capacity).map(|_| B::Bool::new(false)).collect(),
            epochs: (0..capacity).map(|_| CachePadded::new(B::Word::new(EPOCH_EMPTY))).collect(),
        }
    }

    /// Number of pids this registry manages.
    pub fn capacity(&self) -> usize {
        self.in_use.len()
    }

    /// Number of pids currently allocated (approximate under concurrency).
    pub fn allocated(&self) -> usize {
        // Diagnostic snapshot only; no synchronization rides on it.
        self.in_use.iter().filter(|b| b.load(Ordering::Relaxed)).count()
    }

    /// Claims a free pid.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] if every pid is in use.
    pub fn allocate(&self) -> Result<Pid, RegistryFull> {
        for (i, slot) in self.in_use.iter().enumerate() {
            // Acquire on success: taking the slot synchronizes with the
            // previous holder's Release in `release`, so the new holder
            // inherits a quiesced pid (epoch slot seen cleared). Relaxed
            // on failure: a taken slot is just skipped.
            if slot.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok() {
                return Ok(Pid(i as u32));
            }
        }
        Err(RegistryFull { capacity: self.capacity() })
    }

    /// Returns a pid to the free pool.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the pid was not allocated, which indicates
    /// a double release — or if the pid still has a published epoch, which
    /// indicates a snapshot guard was dropped out of order (the epoch must
    /// be cleared before its pid can be re-issued, or the next holder would
    /// inherit a stale pin).
    pub fn release(&self, pid: Pid) {
        debug_assert_eq!(
            self.epochs[pid.index()].load(Ordering::Relaxed),
            EPOCH_EMPTY,
            "released pid {pid} with a published epoch still pinned"
        );
        // Release: publishes everything this holder did under the pid
        // (in particular its epoch-slot clear) to the next allocator's
        // Acquire CAS. A swap rather than a store only to return the old
        // value for the double-release debug check.
        let was = self.in_use[pid.index()].swap(false, Ordering::Release);
        debug_assert!(was, "released pid {pid} that was not allocated");
    }

    // -----------------------------------------------------------------
    // The reader epoch table (see the type-level docs)
    // -----------------------------------------------------------------

    /// Publishes `epoch` in `pid`'s epoch slot: from this store until
    /// [`PidRegistry::clear_epoch`], every payload retired at an epoch
    /// greater than `epoch` is pinned against reclamation.
    ///
    /// The store targets the pid's own cache-padded slot, so in steady
    /// state (the publisher is the slot's sole cached holder) it costs
    /// zero cache-coherence RMRs.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is 0 (the empty sentinel).
    pub fn publish_epoch(&self, pid: Pid, epoch: u64) {
        assert!(epoch != EPOCH_EMPTY, "epoch 0 is the empty sentinel");
        // SeqCst — this store is one half of a store-buffer pattern and
        // may NOT be demoted: the reader publishes, then re-loads the
        // global epoch/payload; the writer swaps the payload, then scans
        // this table. Only the SC total order makes "writer missed the
        // publication ⇒ reader sees the new payload" exhaustive; with a
        // Release store the publication could sit in a write buffer while
        // the reader pins a payload the writer already freed. Guarded by
        // the `WrongOrdering::DemotePublishEpoch` mutant (DESIGN.md §13).
        self.epochs[pid.index()].store(epoch, Ordering::SeqCst);
    }

    /// Clears `pid`'s epoch slot, releasing whatever its published epoch
    /// pinned. Idempotent.
    pub fn clear_epoch(&self, pid: Pid) {
        // Release: the reader's payload accesses must complete before the
        // unpin becomes visible, or the writer could reclaim under them.
        self.epochs[pid.index()].store(EPOCH_EMPTY, Ordering::Release);
    }

    /// The epoch published in slot `index`, or `None` if the slot is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    pub fn published_epoch(&self, index: usize) -> Option<u64> {
        // SeqCst: the grace-period scan is the load half of the
        // store-buffer pattern described at `publish_epoch` — it must be
        // ordered after the writer's epoch bump in the single total
        // order, or the scan could miss a publication the bump did not
        // forestall.
        match self.epochs[index].load(Ordering::SeqCst) {
            EPOCH_EMPTY => None,
            e => Some(e),
        }
    }

    /// The minimum epoch published across all slots, or `None` if no slot
    /// has anything published. One bounded O(capacity) scan — this is the
    /// grace-period read a retiring writer performs: every retired payload
    /// whose retirement epoch is ≤ the returned minimum is reclaimable.
    pub fn min_published_epoch(&self) -> Option<u64> {
        (0..self.capacity()).filter_map(|i| self.published_epoch(i)).min()
    }

    /// Number of slots with a published epoch (approximate under
    /// concurrency, exact at rest — the quiescence check).
    pub fn published_epochs(&self) -> usize {
        (0..self.capacity()).filter(|&i| self.published_epoch(i).is_some()).count()
    }
}

impl<B: Backend> fmt::Debug for PidRegistry<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PidRegistry")
            .field("capacity", &self.capacity())
            .field("allocated", &self.allocated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn allocates_dense_pids() {
        let reg = PidRegistry::new(3);
        let a = reg.allocate().unwrap();
        let b = reg.allocate().unwrap();
        let c = reg.allocate().unwrap();
        let mut ids = vec![a.index(), b.index(), c.index()];
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn exhaustion_reports_capacity() {
        let reg = PidRegistry::new(1);
        let _a = reg.allocate().unwrap();
        let err = reg.allocate().unwrap_err();
        assert_eq!(err.capacity(), 1);
        assert_eq!(err.to_string(), "all 1 process slots are registered");
    }

    #[test]
    fn release_recycles() {
        let reg = PidRegistry::new(2);
        let a = reg.allocate().unwrap();
        reg.release(a);
        let again = reg.allocate().unwrap();
        assert_eq!(again, a);
    }

    #[test]
    fn concurrent_allocation_is_unique() {
        let reg = Arc::new(PidRegistry::new(16));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || reg.allocate().unwrap()));
        }
        let mut pids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap().index()).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), 16, "duplicate pid handed out");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Pid::from_index(7).to_string(), "p7");
        assert_eq!(format!("{:?}", Pid::from_index(7)), "p7");
    }

    #[test]
    fn concurrent_register_drop_cycles_reuse_without_duplication() {
        // Thread-local leasing churns allocate/release far harder than the
        // old register()-once pattern: every short-lived thread allocates
        // and returns a pid. 8 threads cycle through a 4-slot registry;
        // at no instant may two live holders share a pid.
        use std::sync::atomic::{AtomicU32, Ordering};
        let reg = Arc::new(PidRegistry::new(4));
        let holders: Arc<[AtomicU32; 4]> = Arc::new(Default::default());
        let mut threads = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            let holders = Arc::clone(&holders);
            threads.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    if let Ok(pid) = reg.allocate() {
                        let prev = holders[pid.index()].fetch_add(1, Ordering::SeqCst);
                        assert_eq!(prev, 0, "pid {pid} double-issued");
                        holders[pid.index()].fetch_sub(1, Ordering::SeqCst);
                        reg.release(pid);
                    }
                    // RegistryFull under contention is legal: 8 threads, 4
                    // slots. The next loop iteration retries.
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.allocated(), 0, "every cycle returned its pid");
    }

    #[test]
    fn exhaustion_is_exact_under_concurrency() {
        // 16 threads race for 8 slots; exactly 8 must win, the rest must
        // see RegistryFull (no spurious success past capacity).
        let reg = Arc::new(PidRegistry::new(8));
        let mut threads = Vec::new();
        for _ in 0..16 {
            let reg = Arc::clone(&reg);
            threads.push(std::thread::spawn(move || reg.allocate().ok()));
        }
        let wins: Vec<_> = threads.into_iter().filter_map(|t| t.join().unwrap()).collect();
        assert_eq!(wins.len(), 8);
        assert_eq!(reg.allocated(), 8);
        assert!(reg.allocate().is_err());
        let mut ids: Vec<_> = wins.iter().map(|p| p.index()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "duplicate pid among winners");
    }

    #[test]
    fn epoch_publish_clear_round_trip() {
        let reg = PidRegistry::new(3);
        let pid = reg.allocate().unwrap();
        assert_eq!(reg.published_epoch(pid.index()), None);
        reg.publish_epoch(pid, 7);
        assert_eq!(reg.published_epoch(pid.index()), Some(7));
        reg.publish_epoch(pid, 9); // republish overwrites
        assert_eq!(reg.published_epoch(pid.index()), Some(9));
        reg.clear_epoch(pid);
        assert_eq!(reg.published_epoch(pid.index()), None);
        reg.clear_epoch(pid); // idempotent
        reg.release(pid);
    }

    #[test]
    fn min_published_epoch_scans_all_slots() {
        let reg = PidRegistry::new(4);
        assert_eq!(reg.min_published_epoch(), None);
        assert_eq!(reg.published_epochs(), 0);
        let a = reg.allocate().unwrap();
        let b = reg.allocate().unwrap();
        let c = reg.allocate().unwrap();
        reg.publish_epoch(a, 12);
        reg.publish_epoch(b, 3);
        reg.publish_epoch(c, 44);
        assert_eq!(reg.min_published_epoch(), Some(3));
        assert_eq!(reg.published_epochs(), 3);
        reg.clear_epoch(b);
        assert_eq!(reg.min_published_epoch(), Some(12));
        assert_eq!(reg.published_epochs(), 2);
        for pid in [a, c] {
            reg.clear_epoch(pid);
        }
        assert_eq!(reg.min_published_epoch(), None);
        for pid in [a, b, c] {
            reg.release(pid);
        }
    }

    #[test]
    #[should_panic(expected = "empty sentinel")]
    fn epoch_zero_is_rejected() {
        let reg = PidRegistry::new(1);
        let pid = reg.allocate().unwrap();
        reg.publish_epoch(pid, 0);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert-only oracle")]
    #[should_panic(expected = "published epoch still pinned")]
    fn release_with_published_epoch_is_caught() {
        let reg = PidRegistry::new(1);
        let pid = reg.allocate().unwrap();
        reg.publish_epoch(pid, 1);
        reg.release(pid);
    }
}
