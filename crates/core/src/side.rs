//! The two "sides" of the paper's side-toggling scheme.

use rmr_mutex::mem::{Backend, Native, Ordering, SharedBool};
use std::fmt;
use std::ops::Not;

/// One of the two sides (`D ∈ {0, 1}`) from which the writer attempts the
/// critical section in Figures 1, 2 and 4.
///
/// The writer alternates sides between attempts; readers bind themselves to
/// the side announced in the shared variable `D` and wait on that side's
/// gate. `!side` gives the paper's `d̄`.
///
/// # Example
///
/// ```
/// use rmr_core::Side;
///
/// assert_eq!(!Side::Zero, Side::One);
/// assert_eq!(Side::One.index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Side {
    /// Side 0 (the initial value of `D`).
    #[default]
    Zero,
    /// Side 1.
    One,
}

impl Side {
    /// Index for addressing the per-side arrays `C[d]`, `Gate[d]`,
    /// `Permit[d]`.
    pub fn index(self) -> usize {
        match self {
            Side::Zero => 0,
            Side::One => 1,
        }
    }

    /// Converts from an index in `{0, 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    pub fn from_index(index: usize) -> Self {
        match index {
            0 => Side::Zero,
            1 => Side::One,
            _ => panic!("side index must be 0 or 1, got {index}"),
        }
    }

    /// Both sides, in index order.
    pub const BOTH: [Side; 2] = [Side::Zero, Side::One];
}

impl Not for Side {
    type Output = Side;

    /// The paper's `d̄`.
    fn not(self) -> Side {
        match self {
            Side::Zero => Side::One,
            Side::One => Side::Zero,
        }
    }
}

impl fmt::Debug for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.index())
    }
}

/// An atomic [`Side`] cell (the shared variable `D`), generic over the
/// memory backend (`Native` by default).
pub struct AtomicSide<B: Backend = Native>(B::Bool);

impl AtomicSide {
    /// Creates the cell holding `side`.
    pub fn new(side: Side) -> Self {
        Self::new_in(side, Native)
    }
}

impl<B: Backend> AtomicSide<B> {
    /// Creates the cell holding `side` over the given memory backend.
    pub fn new_in(side: Side, _backend: B) -> Self {
        Self(B::Bool::new(side == Side::One))
    }

    /// Atomic read with the given ordering.
    pub fn load(&self, order: Ordering) -> Side {
        if self.0.load(order) {
            Side::One
        } else {
            Side::Zero
        }
    }

    /// Atomic write with the given ordering.
    pub fn store(&self, side: Side, order: Ordering) {
        self.0.store(side == Side::One, order);
    }
}

impl<B: Backend> Default for AtomicSide<B> {
    fn default() -> Self {
        Self::new_in(Side::Zero, B::default())
    }
}

impl<B: Backend> fmt::Debug for AtomicSide<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Diagnostic snapshot only; no synchronization rides on it.
        write!(f, "AtomicSide({:?})", self.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_flips() {
        assert_eq!(!Side::Zero, Side::One);
        assert_eq!(!Side::One, Side::Zero);
        assert_eq!(!!Side::Zero, Side::Zero);
    }

    #[test]
    fn index_round_trips() {
        for s in Side::BOTH {
            assert_eq!(Side::from_index(s.index()), s);
        }
    }

    #[test]
    #[should_panic(expected = "side index must be 0 or 1")]
    fn bad_index_panics() {
        let _ = Side::from_index(2);
    }

    #[test]
    fn atomic_side_round_trips() {
        let d = AtomicSide::new(Side::Zero);
        assert_eq!(d.load(Ordering::SeqCst), Side::Zero);
        d.store(Side::One, Ordering::SeqCst);
        assert_eq!(d.load(Ordering::SeqCst), Side::One);
        d.store(Side::Zero, Ordering::Release);
        assert_eq!(d.load(Ordering::Acquire), Side::Zero);
    }

    #[test]
    fn default_is_side_zero() {
        assert_eq!(Side::default(), Side::Zero);
        assert_eq!(AtomicSide::<Native>::default().load(Ordering::SeqCst), Side::Zero);
    }
}
