//! Typed front end for the **single-writer** locks (Figures 1 and 2).
//!
//! Unlike the multi-writer [`RwLock`](crate::rwlock::RwLock), the SWMR
//! algorithms admit at most one process in the writer role. This wrapper
//! enforces that statically: [`SwmrRwLock::split`] yields exactly one
//! [`SwmrWriter`] plus a [`SwmrReaders`] factory for reader handles, so a
//! second concurrent writer cannot be constructed without going through
//! the multi-writer transformation (which is what the paper does too).

use crate::registry::{Pid, PidRegistry, RegistryFull};
use crate::swmr::reader_priority::SwmrReaderPriority;
use crate::swmr::writer_priority::SwmrWriterPriority;
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Which single-writer algorithm backs a [`SwmrRwLock`].
pub trait SwmrPolicy: Send + Sync + Sized + fmt::Debug {
    /// Per-read-session token.
    type ReadToken;
    /// Per-write-session token.
    type WriteToken;

    /// Fresh lock state.
    fn new() -> Self;
    /// Reader acquire (with the caller's pid).
    fn read_lock(&self, pid: Pid) -> Self::ReadToken;
    /// Reader release.
    fn read_unlock(&self, pid: Pid, token: Self::ReadToken);
    /// Writer acquire (with the writer's pid).
    fn write_lock(&self, pid: Pid) -> Self::WriteToken;
    /// Writer release.
    fn write_unlock(&self, pid: Pid, token: Self::WriteToken);
}

impl SwmrPolicy for SwmrWriterPriority {
    type ReadToken = crate::swmr::writer_priority::ReadSession;
    type WriteToken = crate::swmr::writer_priority::WriteSession;

    fn new() -> Self {
        SwmrWriterPriority::new()
    }

    fn read_lock(&self, _pid: Pid) -> Self::ReadToken {
        SwmrWriterPriority::read_lock(self)
    }

    fn read_unlock(&self, _pid: Pid, token: Self::ReadToken) {
        SwmrWriterPriority::read_unlock(self, token);
    }

    fn write_lock(&self, _pid: Pid) -> Self::WriteToken {
        SwmrWriterPriority::write_lock(self)
    }

    fn write_unlock(&self, _pid: Pid, token: Self::WriteToken) {
        SwmrWriterPriority::write_unlock(self, token);
    }
}

impl SwmrPolicy for SwmrReaderPriority {
    type ReadToken = crate::swmr::reader_priority::ReadSession;
    type WriteToken = crate::swmr::reader_priority::WriteSession;

    fn new() -> Self {
        SwmrReaderPriority::new()
    }

    fn read_lock(&self, pid: Pid) -> Self::ReadToken {
        SwmrReaderPriority::read_lock(self, pid)
    }

    fn read_unlock(&self, pid: Pid, token: Self::ReadToken) {
        SwmrReaderPriority::read_unlock(self, pid, token);
    }

    fn write_lock(&self, pid: Pid) -> Self::WriteToken {
        SwmrReaderPriority::write_lock(self, pid)
    }

    fn write_unlock(&self, pid: Pid, token: Self::WriteToken) {
        SwmrReaderPriority::write_unlock(self, pid, token);
    }
}

struct Shared<T: ?Sized, P> {
    raw: P,
    registry: PidRegistry,
    data: UnsafeCell<T>,
}

// SAFETY: same argument as for rwlock::RwLock — the algorithms provide the
// exclusion the aliasing below relies on.
unsafe impl<T: ?Sized + Send, P: SwmrPolicy> Send for Shared<T, P> {}
unsafe impl<T: ?Sized + Send + Sync, P: SwmrPolicy> Sync for Shared<T, P> {}

/// A typed single-writer multi-reader lock over the Figure 1 or Figure 2
/// algorithm.
///
/// [`split`](SwmrRwLock::split) consumes the constructor output and
/// produces the unique writer endpoint plus a cloneable reader factory.
///
/// # Example
///
/// ```
/// use rmr_core::swmr_rwlock::SwmrRwLock;
/// use rmr_core::swmr::SwmrWriterPriority;
///
/// let (mut writer, readers) =
///     SwmrRwLock::<u64, SwmrWriterPriority>::new(0, 4).split();
///
/// let mut r1 = readers.reader().unwrap();
/// let handle = std::thread::spawn(move || *r1.read());
///
/// *writer.write() += 7;
/// let seen = handle.join().unwrap();
/// assert!(seen == 0 || seen == 7);
/// assert_eq!(*writer.write(), 7);
/// ```
pub struct SwmrRwLock<T, P: SwmrPolicy> {
    shared: Arc<Shared<T, P>>,
}

/// Figure 1 flavor: writer priority + starvation freedom (Theorem 1).
pub type WriterPrioritySwmr<T> = SwmrRwLock<T, SwmrWriterPriority>;
/// Figure 2 flavor: reader priority (Theorem 2).
pub type ReaderPrioritySwmr<T> = SwmrRwLock<T, SwmrReaderPriority>;

impl<T, P: SwmrPolicy> SwmrRwLock<T, P> {
    /// Creates the lock for up to `max_readers` concurrent reader handles
    /// (plus the one writer).
    ///
    /// # Panics
    ///
    /// Panics if `max_readers == 0`.
    pub fn new(value: T, max_readers: usize) -> Self {
        assert!(max_readers > 0, "max_readers must be positive");
        Self {
            shared: Arc::new(Shared {
                raw: P::new(),
                registry: PidRegistry::new(max_readers + 1),
                data: UnsafeCell::new(value),
            }),
        }
    }

    /// Splits into the unique writer endpoint and the reader factory.
    pub fn split(self) -> (SwmrWriter<T, P>, SwmrReaders<T, P>) {
        let writer_pid = self.shared.registry.allocate().expect("fresh registry");
        (
            SwmrWriter { shared: Arc::clone(&self.shared), pid: writer_pid },
            SwmrReaders { shared: self.shared },
        )
    }
}

impl<T, P: SwmrPolicy> fmt::Debug for SwmrRwLock<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrRwLock").finish_non_exhaustive()
    }
}

/// The unique writer endpoint of a [`SwmrRwLock`]. Not `Clone`.
pub struct SwmrWriter<T, P: SwmrPolicy> {
    shared: Arc<Shared<T, P>>,
    pid: Pid,
}

impl<T, P: SwmrPolicy> SwmrWriter<T, P> {
    /// Acquires the write lock.
    pub fn write(&mut self) -> SwmrWriteGuard<'_, T, P> {
        let token = self.shared.raw.write_lock(self.pid);
        SwmrWriteGuard { writer: self, token: Some(token) }
    }
}

impl<T, P: SwmrPolicy> Drop for SwmrWriter<T, P> {
    fn drop(&mut self) {
        self.shared.registry.release(self.pid);
    }
}

impl<T, P: SwmrPolicy> fmt::Debug for SwmrWriter<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrWriter").field("pid", &self.pid).finish()
    }
}

/// Factory for reader handles of a [`SwmrRwLock`]. Cloneable and `Send`.
pub struct SwmrReaders<T, P: SwmrPolicy> {
    shared: Arc<Shared<T, P>>,
}

impl<T, P: SwmrPolicy> Clone for SwmrReaders<T, P> {
    fn clone(&self) -> Self {
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T, P: SwmrPolicy> SwmrReaders<T, P> {
    /// Registers one reader.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] when `max_readers` handles are live.
    pub fn reader(&self) -> Result<SwmrReader<T, P>, RegistryFull> {
        let pid = self.shared.registry.allocate()?;
        Ok(SwmrReader { shared: Arc::clone(&self.shared), pid })
    }
}

impl<T, P: SwmrPolicy> fmt::Debug for SwmrReaders<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrReaders").finish_non_exhaustive()
    }
}

/// One registered reader of a [`SwmrRwLock`].
pub struct SwmrReader<T, P: SwmrPolicy> {
    shared: Arc<Shared<T, P>>,
    pid: Pid,
}

impl<T, P: SwmrPolicy> SwmrReader<T, P> {
    /// Acquires the read lock.
    pub fn read(&mut self) -> SwmrReadGuard<'_, T, P> {
        let token = self.shared.raw.read_lock(self.pid);
        SwmrReadGuard { reader: self, token: Some(token) }
    }
}

impl<T, P: SwmrPolicy> Drop for SwmrReader<T, P> {
    fn drop(&mut self) {
        self.shared.registry.release(self.pid);
    }
}

impl<T, P: SwmrPolicy> fmt::Debug for SwmrReader<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrReader").field("pid", &self.pid).finish()
    }
}

/// RAII shared access through a [`SwmrReader`].
pub struct SwmrReadGuard<'a, T, P: SwmrPolicy> {
    reader: &'a SwmrReader<T, P>,
    token: Option<P::ReadToken>,
}

impl<T, P: SwmrPolicy> Deref for SwmrReadGuard<'_, T, P> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: readers share; the writer is excluded by the algorithm.
        unsafe { &*self.reader.shared.data.get() }
    }
}

impl<T, P: SwmrPolicy> Drop for SwmrReadGuard<'_, T, P> {
    fn drop(&mut self) {
        let token = self.token.take().expect("token present until drop");
        self.reader.shared.raw.read_unlock(self.reader.pid, token);
    }
}

impl<T: fmt::Debug, P: SwmrPolicy> fmt::Debug for SwmrReadGuard<'_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SwmrReadGuard").field(&&**self).finish()
    }
}

/// RAII exclusive access through the [`SwmrWriter`].
pub struct SwmrWriteGuard<'a, T, P: SwmrPolicy> {
    writer: &'a SwmrWriter<T, P>,
    token: Option<P::WriteToken>,
}

impl<T, P: SwmrPolicy> Deref for SwmrWriteGuard<'_, T, P> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the write session excludes all other access.
        unsafe { &*self.writer.shared.data.get() }
    }
}

impl<T, P: SwmrPolicy> DerefMut for SwmrWriteGuard<'_, T, P> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.writer.shared.data.get() }
    }
}

impl<T, P: SwmrPolicy> Drop for SwmrWriteGuard<'_, T, P> {
    fn drop(&mut self) {
        let token = self.token.take().expect("token present until drop");
        self.writer.shared.raw.write_unlock(self.writer.pid, token);
    }
}

impl<T: fmt::Debug, P: SwmrPolicy> fmt::Debug for SwmrWriteGuard<'_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SwmrWriteGuard").field(&&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn split_gives_one_writer_many_readers() {
        let (mut w, readers) = WriterPrioritySwmr::new(vec![1u8], 3).split();
        let mut r1 = readers.reader().unwrap();
        let mut r2 = readers.reader().unwrap();
        let mut r3 = readers.reader().unwrap();
        assert!(readers.reader().is_err(), "capacity is max_readers");
        assert_eq!(r1.read().len(), 1);
        w.write().push(2);
        assert_eq!(*r2.read(), vec![1, 2]);
        assert_eq!(*r3.read(), vec![1, 2]);
    }

    #[test]
    fn reader_slots_recycle() {
        let (_w, readers) = ReaderPrioritySwmr::new(0u8, 1).split();
        for _ in 0..5 {
            let mut r = readers.reader().unwrap();
            let _ = *r.read();
        }
    }

    #[test]
    fn concurrent_stress_both_policies() {
        fn stress<P: SwmrPolicy + 'static>() {
            let (mut w, readers) = SwmrRwLock::<u64, P>::new(0, 4).split();
            let stop = Arc::new(AtomicBool::new(false));
            let overlap = Arc::new(AtomicUsize::new(0));
            let mut threads = Vec::new();
            for _ in 0..3 {
                let readers = readers.clone();
                let stop = Arc::clone(&stop);
                let overlap = Arc::clone(&overlap);
                threads.push(std::thread::spawn(move || {
                    let mut r = readers.reader().unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        let g = r.read();
                        overlap.fetch_add(1, Ordering::Relaxed);
                        std::hint::black_box(*g);
                        overlap.fetch_sub(1, Ordering::Relaxed);
                    }
                }));
            }
            for _ in 0..200 {
                let mut g = w.write();
                assert_eq!(
                    overlap.load(Ordering::Relaxed),
                    0,
                    "reader overlapped a write session"
                );
                *g += 1;
            }
            stop.store(true, Ordering::Relaxed);
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(*w.write(), 200);
        }
        stress::<SwmrWriterPriority>();
        stress::<SwmrReaderPriority>();
    }
}
