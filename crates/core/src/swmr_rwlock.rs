//! Typed front end for the **single-writer** locks (Figures 1 and 2),
//! expressed as a thin wrapper over the unified guard module in
//! [`crate::rwlock`].
//!
//! Unlike the multi-writer [`RwLock`], the SWMR algorithms admit at most
//! one process in the writer role. This wrapper enforces that statically:
//! [`SwmrRwLock::split`] yields exactly one [`SwmrWriter`] plus a
//! [`SwmrReaders`] factory for reader handles, so a second concurrent
//! writer cannot be constructed without going through the multi-writer
//! transformation (which is what the paper does too).
//!
//! The guard types are plain aliases of the unified [`ReadGuard`] /
//! [`WriteGuard`] — there is no SWMR-specific guard machinery anymore.

use crate::raw::{RawRwLock, RawTryReadLock};
use crate::registry::{Pid, RegistryFull};
use crate::rwlock::{GuardPidSource, ReadGuard, RwLock, WriteGuard};
use crate::swmr::reader_priority::SwmrReaderPriority;
use crate::swmr::writer_priority::SwmrWriterPriority;
use std::fmt;
use std::sync::Arc;

/// RAII shared access through a [`SwmrReader`] — an alias of the unified
/// guard.
pub type SwmrReadGuard<'a, T, P> = ReadGuard<'a, T, P>;
/// RAII exclusive access through the [`SwmrWriter`] — an alias of the
/// unified guard.
pub type SwmrWriteGuard<'a, T, P> = WriteGuard<'a, T, P>;

/// A typed single-writer multi-reader lock over the Figure 1 or Figure 2
/// algorithm.
///
/// [`split`](SwmrRwLock::split) consumes the constructor output and
/// produces the unique writer endpoint plus a cloneable reader factory.
///
/// # Example
///
/// ```
/// use rmr_core::swmr_rwlock::SwmrRwLock;
/// use rmr_core::swmr::SwmrWriterPriority;
///
/// let (mut writer, readers) =
///     SwmrRwLock::<u64, SwmrWriterPriority>::new(0, 4).split();
///
/// let mut r1 = readers.reader().unwrap();
/// let handle = std::thread::spawn(move || *r1.read());
///
/// *writer.write() += 7;
/// let seen = handle.join().unwrap();
/// assert!(seen == 0 || seen == 7);
/// assert_eq!(*writer.write(), 7);
/// ```
pub struct SwmrRwLock<T, P: RawRwLock> {
    shared: Arc<RwLock<T, P>>,
}

/// Figure 1 flavor: writer priority + starvation freedom (Theorem 1).
pub type WriterPrioritySwmr<T> = SwmrRwLock<T, SwmrWriterPriority>;
/// Figure 2 flavor: reader priority (Theorem 2).
pub type ReaderPrioritySwmr<T> = SwmrRwLock<T, SwmrReaderPriority>;

impl<T, P: RawRwLock + Default> SwmrRwLock<T, P> {
    /// Creates the lock for up to `max_readers` concurrent reader handles
    /// (plus the one writer).
    ///
    /// # Panics
    ///
    /// Panics if `max_readers == 0`.
    pub fn new(value: T, max_readers: usize) -> Self {
        assert!(max_readers > 0, "max_readers must be positive");
        Self {
            shared: Arc::new(RwLock::with_raw_and_capacity(value, P::default(), max_readers + 1)),
        }
    }
}

impl<T, P: RawRwLock> SwmrRwLock<T, P> {
    /// Splits into the unique writer endpoint and the reader factory.
    pub fn split(self) -> (SwmrWriter<T, P>, SwmrReaders<T, P>) {
        let writer_pid = self.shared.registry.allocate().expect("fresh registry");
        (
            SwmrWriter { shared: Arc::clone(&self.shared), pid: writer_pid },
            SwmrReaders { shared: self.shared },
        )
    }
}

impl<T, P: RawRwLock> fmt::Debug for SwmrRwLock<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrRwLock").finish_non_exhaustive()
    }
}

/// The unique writer endpoint of a [`SwmrRwLock`]. Not `Clone`.
pub struct SwmrWriter<T, P: RawRwLock> {
    shared: Arc<RwLock<T, P>>,
    pid: Pid,
}

impl<T, P: RawRwLock> SwmrWriter<T, P> {
    /// Acquires the write lock.
    pub fn write(&mut self) -> SwmrWriteGuard<'_, T, P> {
        let token = self.shared.raw.write_lock(self.pid);
        self.shared.write_guard(self.pid, GuardPidSource::Handle, token)
    }
}

impl<T, P: RawRwLock> Drop for SwmrWriter<T, P> {
    fn drop(&mut self) {
        self.shared.registry.release(self.pid);
    }
}

impl<T, P: RawRwLock> fmt::Debug for SwmrWriter<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrWriter").field("pid", &self.pid).finish()
    }
}

/// Factory for reader handles of a [`SwmrRwLock`]. Cloneable and `Send`.
pub struct SwmrReaders<T, P: RawRwLock> {
    shared: Arc<RwLock<T, P>>,
}

impl<T, P: RawRwLock> Clone for SwmrReaders<T, P> {
    fn clone(&self) -> Self {
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T, P: RawRwLock> SwmrReaders<T, P> {
    /// Registers one reader.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] when `max_readers` handles are live.
    pub fn reader(&self) -> Result<SwmrReader<T, P>, RegistryFull> {
        let pid = self.shared.registry.allocate()?;
        Ok(SwmrReader { shared: Arc::clone(&self.shared), pid })
    }
}

impl<T, P: RawRwLock> fmt::Debug for SwmrReaders<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrReaders").finish_non_exhaustive()
    }
}

/// One registered reader of a [`SwmrRwLock`].
pub struct SwmrReader<T, P: RawRwLock> {
    shared: Arc<RwLock<T, P>>,
    pid: Pid,
}

impl<T, P: RawRwLock> SwmrReader<T, P> {
    /// Acquires the read lock.
    pub fn read(&mut self) -> SwmrReadGuard<'_, T, P> {
        let token = self.shared.raw.read_lock(self.pid);
        self.shared.read_guard(self.pid, GuardPidSource::Handle, token)
    }
}

impl<T, P: RawTryReadLock> SwmrReader<T, P> {
    /// Attempts to acquire the read lock without blocking (both SWMR
    /// algorithms have abortable reader try sections).
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::swmr::SwmrWriterPriority;
    /// use rmr_core::swmr_rwlock::SwmrRwLock;
    ///
    /// let (mut w, readers) = SwmrRwLock::<u8, SwmrWriterPriority>::new(0, 2).split();
    /// let mut r = readers.reader().unwrap();
    ///
    /// let g = w.write();
    /// assert!(r.try_read().is_none(), "writer holds the lock");
    /// drop(g);
    /// assert_eq!(*r.try_read().expect("writer gone"), 0);
    /// ```
    pub fn try_read(&mut self) -> Option<SwmrReadGuard<'_, T, P>> {
        let token = self.shared.raw.try_read_lock(self.pid)?;
        Some(self.shared.read_guard(self.pid, GuardPidSource::Handle, token))
    }
}

impl<T, P: RawRwLock> Drop for SwmrReader<T, P> {
    fn drop(&mut self) {
        self.shared.registry.release(self.pid);
    }
}

impl<T, P: RawRwLock> fmt::Debug for SwmrReader<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrReader").field("pid", &self.pid).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn split_gives_one_writer_many_readers() {
        let (mut w, readers) = WriterPrioritySwmr::new(vec![1u8], 3).split();
        let mut r1 = readers.reader().unwrap();
        let mut r2 = readers.reader().unwrap();
        let mut r3 = readers.reader().unwrap();
        assert!(readers.reader().is_err(), "capacity is max_readers");
        assert_eq!(r1.read().len(), 1);
        w.write().push(2);
        assert_eq!(*r2.read(), vec![1, 2]);
        assert_eq!(*r3.read(), vec![1, 2]);
    }

    #[test]
    fn reader_slots_recycle() {
        let (_w, readers) = ReaderPrioritySwmr::new(0u8, 1).split();
        for _ in 0..5 {
            let mut r = readers.reader().unwrap();
            let _ = *r.read();
        }
    }

    #[test]
    fn try_read_is_denied_while_writer_holds() {
        let (mut w, readers) = WriterPrioritySwmr::new(0u32, 2).split();
        let mut r = readers.reader().unwrap();
        assert!(r.try_read().is_some(), "no writer yet");
        let g = w.write();
        assert!(r.try_read().is_none(), "must not block or enter");
        drop(g);
        assert!(r.try_read().is_some());

        let (mut w, readers) = ReaderPrioritySwmr::new(0u32, 2).split();
        let mut r = readers.reader().unwrap();
        let g = w.write();
        assert!(r.try_read().is_none(), "must not block or enter");
        drop(g);
        assert!(r.try_read().is_some());
    }

    #[test]
    fn concurrent_stress_both_policies() {
        fn stress<P: RawRwLock + Default + 'static>() {
            let (mut w, readers) = SwmrRwLock::<u64, P>::new(0, 4).split();
            let stop = Arc::new(AtomicBool::new(false));
            let overlap = Arc::new(AtomicUsize::new(0));
            let mut threads = Vec::new();
            for _ in 0..3 {
                let readers = readers.clone();
                let stop = Arc::clone(&stop);
                let overlap = Arc::clone(&overlap);
                threads.push(std::thread::spawn(move || {
                    let mut r = readers.reader().unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        let g = r.read();
                        overlap.fetch_add(1, Ordering::Relaxed);
                        std::hint::black_box(*g);
                        overlap.fetch_sub(1, Ordering::Relaxed);
                    }
                }));
            }
            for _ in 0..200 {
                let mut g = w.write();
                assert_eq!(overlap.load(Ordering::Relaxed), 0, "reader overlapped a write session");
                *g += 1;
            }
            stop.store(true, Ordering::Relaxed);
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(*w.write(), 200);
        }
        stress::<SwmrWriterPriority>();
        stress::<SwmrReaderPriority>();
    }
}
