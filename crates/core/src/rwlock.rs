//! The unified typed, RAII-guarded front end over the raw locks.
//!
//! One guard machinery serves every lock in the workspace — the paper's
//! three multi-writer policies, the two single-writer algorithms (through
//! [`crate::swmr_rwlock`], which is a thin wrapper over this module), and
//! the baselines in `rmr-baselines`.
//!
//! Two ways to use a [`RwLock`]:
//!
//! * **Leased pids (ergonomic default).** Call [`RwLock::read`] /
//!   [`RwLock::write`] directly, like `std::sync::RwLock`. The first
//!   acquisition on a thread leases a [`Pid`] from the lock's
//!   [`PidRegistry`]; the lease is cached in thread-local storage, reused
//!   by every later acquisition on that thread, and returned automatically
//!   when the thread exits.
//! * **Pinned pids (explicit control).** Call [`RwLock::register`] once
//!   per participant to obtain a [`LockHandle`] that owns its pid until
//!   dropped. Guard-taking methods borrow the handle mutably, which
//!   enforces the paper's "one attempt at a time per process" discipline
//!   at compile time. Use this when pid identity matters (e.g. pinning
//!   pids to cores) or when registration failure must be handled as a
//!   `Result` rather than a panic.
//!
//! Where the raw lock supports the non-blocking tier
//! ([`RawTryReadLock`] / [`RawTryRwLock`]), the front end additionally
//! exposes [`RwLock::try_read`] / [`RwLock::try_write`].

use crate::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use crate::observed::{acquire_begin, acquire_end};
use crate::raw::{RawMultiWriter, RawRwLock, RawTryReadLock, RawTryRwLock};
use crate::registry::{Pid, PidRegistry, RegistryFull};
use rmr_obs::{Event, NoopRecorder, Recorder};
use std::cell::{Cell, RefCell, UnsafeCell};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Weak};

// ---------------------------------------------------------------------
// Thread-local pid leasing
// ---------------------------------------------------------------------

/// One cached lease: this thread holds `pid` of the registry behind `reg`.
///
/// `busy` is set while a leased guard is open, so a nested acquisition on
/// the same thread takes a distinct (transient) pid instead of reusing one
/// that is mid-attempt — reusing it would violate the raw contract's "one
/// attempt at a time per process".
struct LeaseEntry {
    reg: Weak<PidRegistry>,
    pid: Pid,
    busy: Cell<bool>,
}

/// Per-thread lease table. Dropped at thread exit, returning every still
/// live pid to its registry.
#[derive(Default)]
struct LeaseTable {
    entries: RefCell<Vec<LeaseEntry>>,
}

impl Drop for LeaseTable {
    fn drop(&mut self) {
        for entry in self.entries.borrow().iter() {
            // A still-busy lease means its guard was leaked (mem::forget):
            // the raw lock session for that pid is still open, so the pid
            // must stay reserved forever rather than be re-issued into the
            // middle of an unfinished attempt.
            if entry.busy.get() {
                continue;
            }
            // A dead Weak means the lock (and its registry) is already
            // gone; nothing to return. The Weak keeps the allocation
            // alive, so the pointer can never be reused by another
            // registry while this entry exists.
            if let Some(reg) = entry.reg.upgrade() {
                reg.release(entry.pid);
            }
        }
    }
}

thread_local! {
    static LEASES: LeaseTable = LeaseTable::default();
}

/// How a guard came by its pid; decides what its release must undo.
///
/// Returned by [`lease_pid`] and consumed by [`release_pid`]. Mostly an
/// internal detail of the guard machinery, but public so other tiers that
/// borrow a pid per passage (the `rmr-swap` snapshot guards) can share the
/// same thread-local lease cache instead of duplicating it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PidSource {
    /// Owned by a [`LockHandle`]; the handle releases it.
    Handle,
    /// The thread's cached lease; clear the busy flag on drop.
    Lease,
    /// Allocated just for this (nested) guard; return it on drop.
    Transient,
}

/// Leases a pid from `registry` for the calling thread: the thread's
/// cached lease if it is free, a transient pid if the lease is mid-attempt
/// (a nested guard), a fresh cached lease otherwise.
///
/// This is the leasing engine behind [`RwLock::read`] / [`RwLock::write`],
/// exposed so sibling tiers (e.g. `rmr-swap`'s `Snapshot::load`) can
/// participate in the same per-thread cache. Every successful call must be
/// paired with exactly one [`release_pid`] with the returned source.
pub fn lease_pid(registry: &Arc<PidRegistry>) -> Result<(Pid, PidSource), RegistryFull> {
    let key = Arc::as_ptr(registry);
    let leased = LEASES.try_with(|table| {
        let mut entries = table.entries.borrow_mut();
        // Fast path: cached-lease hit, no table maintenance.
        if let Some(e) = entries.iter().find(|e| std::ptr::eq(e.reg.as_ptr(), key)) {
            if e.busy.get() {
                // Nested acquisition: the cached pid is mid-attempt.
                let pid = registry.allocate()?;
                return Ok((pid, PidSource::Transient));
            }
            e.busy.set(true);
            return Ok((e.pid, PidSource::Lease));
        }
        // Miss (first acquisition against this registry on this thread):
        // sweep leases whose lock is gone before growing the table. Dead
        // entries are harmless until now — their Weak pins the
        // allocation, so the key can never collide.
        entries.retain(|e| e.reg.strong_count() > 0);
        let pid = registry.allocate()?;
        entries.push(LeaseEntry { reg: Arc::downgrade(registry), pid, busy: Cell::new(true) });
        Ok((pid, PidSource::Lease))
    });
    // During thread teardown the lease table may already be destroyed
    // (acquiring from another thread_local's destructor, which
    // std::sync::RwLock supports). Fall back to a transient pid —
    // matching the try_with tolerance on the release side.
    leased.unwrap_or_else(|_destroyed| registry.allocate().map(|pid| (pid, PidSource::Transient)))
}

/// Releases whatever hold `source` has on `pid`: the inverse of
/// [`lease_pid`] (guard drops and failed try-acquires share this).
pub fn release_pid(registry: &Arc<PidRegistry>, pid: Pid, source: PidSource) {
    match source {
        PidSource::Handle => {}
        PidSource::Transient => registry.release(pid),
        PidSource::Lease => {
            let key = Arc::as_ptr(registry);
            let cleared = LEASES.try_with(|table| {
                if let Ok(entries) = table.entries.try_borrow() {
                    if let Some(e) = entries.iter().find(|e| std::ptr::eq(e.reg.as_ptr(), key)) {
                        e.busy.set(false);
                    }
                }
            });
            // During thread teardown the table may already be destroyed.
            // Its Drop deliberately *skipped* this pid (the guard was
            // still open, busy = true), so the guard must return it to
            // the registry itself or the slot would leak; no double
            // release is possible for the same reason.
            if cleared.is_err() {
                registry.release(pid);
            }
        }
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A reader-writer lock protecting a value of type `T`, generic over the
/// raw lock policy `L`.
///
/// Use the policy-named constructors:
/// [`RwLock::starvation_free`] (Theorem 3), [`RwLock::reader_priority`]
/// (Theorem 4), [`RwLock::writer_priority`] (Theorem 5) — or
/// [`RwLock::with_raw`] for any other [`RawRwLock`] (e.g. the baselines in
/// `rmr-baselines`).
///
/// # Example
///
/// No registration ceremony — threads acquire directly and pids are leased
/// behind the scenes:
///
/// ```
/// use rmr_core::RwLock;
/// use std::sync::Arc;
///
/// let lock = Arc::new(RwLock::starvation_free(0u64, 4));
/// let mut threads = Vec::new();
/// for _ in 0..4 {
///     let lock = Arc::clone(&lock);
///     threads.push(std::thread::spawn(move || {
///         for _ in 0..100 {
///             *lock.write() += 1;
///             let _sum = *lock.read();
///         }
///     }));
/// }
/// for t in threads {
///     t.join().unwrap();
/// }
/// assert_eq!(*lock.read(), 400);
/// ```
///
/// # Observability
///
/// The third type parameter is an `rmr-obs` [`Recorder`], defaulted to
/// [`NoopRecorder`]: every hook sits behind `if R::ENABLED { … }`, which
/// const-folds away, so the default lock is bit-identical to the
/// uninstrumented one (the `Counting` backend proves it op for op).
/// [`RwLock::with_recorder`] swaps in a live recorder — typically an
/// `Arc<StatsRecorder>` — and every passage is then counted, classified
/// contended/uncontended and latency-histogrammed.
pub struct RwLock<T: ?Sized, L, R = NoopRecorder> {
    pub(crate) raw: L,
    pub(crate) registry: Arc<PidRegistry>,
    pub(crate) recorder: R,
    // Must stay the last field: `T: ?Sized` requires the unsized field in
    // tail position.
    pub(crate) data: UnsafeCell<T>,
}

// SAFETY: the raw lock guarantees that a `&mut T` (through WriteGuard) never
// coexists with any other access, and `&T` (ReadGuard) only coexists with
// other `&T`. Sending the lock additionally moves the value. (`Recorder`
// already implies `Send + Sync`.)
unsafe impl<T: ?Sized + Send, L: RawRwLock, R: Recorder> Send for RwLock<T, L, R> {}
unsafe impl<T: ?Sized + Send + Sync, L: RawRwLock, R: Recorder> Sync for RwLock<T, L, R> {}

/// [`RwLock`] over the no-priority, starvation-free policy (Theorem 3).
pub type StarvationFreeRwLock<T> = RwLock<T, MwmrStarvationFree>;
/// [`RwLock`] over the reader-priority policy (Theorem 4).
pub type ReaderPriorityRwLock<T> = RwLock<T, MwmrReaderPriority>;
/// [`RwLock`] over the writer-priority policy (Theorem 5).
pub type WriterPriorityRwLock<T> = RwLock<T, MwmrWriterPriority>;

impl<T> RwLock<T, MwmrStarvationFree> {
    /// Creates a starvation-free (no-priority) lock for up to
    /// `max_processes` concurrent threads.
    pub fn starvation_free(value: T, max_processes: usize) -> Self {
        Self::with_raw(value, MwmrStarvationFree::new(max_processes))
    }
}

impl<T> RwLock<T, MwmrReaderPriority> {
    /// Creates a reader-priority lock for up to `max_processes` concurrent
    /// threads. Writers may starve under continuous read traffic.
    pub fn reader_priority(value: T, max_processes: usize) -> Self {
        Self::with_raw(value, MwmrReaderPriority::new(max_processes))
    }
}

impl<T> RwLock<T, MwmrWriterPriority> {
    /// Creates a writer-priority lock for up to `max_processes` concurrent
    /// threads. Readers may starve under continuous write traffic.
    pub fn writer_priority(value: T, max_processes: usize) -> Self {
        Self::with_raw(value, MwmrWriterPriority::new(max_processes))
    }
}

impl<T, L: RawRwLock> RwLock<T, L> {
    /// Wraps `value` behind an arbitrary raw lock, sizing the pid registry
    /// to `raw.max_processes()`.
    ///
    /// # Panics
    ///
    /// Panics if the raw lock reports an unbounded process count
    /// (`usize::MAX`) — use [`RwLock::with_raw_and_capacity`] for those.
    pub fn with_raw(value: T, raw: L) -> Self {
        let cap = raw.max_processes();
        assert!(cap != usize::MAX, "raw lock has no process bound; use with_raw_and_capacity");
        Self::with_raw_and_capacity(value, raw, cap)
    }

    /// Wraps `value` behind `raw` with an explicit pid capacity — for raw
    /// locks with no per-process state (e.g. the single-writer algorithms,
    /// whose `max_processes()` is unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0, exceeds `u32::MAX`, or exceeds
    /// `raw.max_processes()`.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::swmr::SwmrReaderPriority;
    /// use rmr_core::RwLock;
    ///
    /// let lock = RwLock::with_raw_and_capacity(7u32, SwmrReaderPriority::new(), 2);
    /// assert_eq!(*lock.read(), 7);
    /// ```
    pub fn with_raw_and_capacity(value: T, raw: L, capacity: usize) -> Self {
        assert!(
            capacity <= raw.max_processes(),
            "capacity {capacity} exceeds the raw lock's bound {}",
            raw.max_processes()
        );
        Self {
            raw,
            registry: Arc::new(PidRegistry::new(capacity)),
            recorder: NoopRecorder,
            data: UnsafeCell::new(value),
        }
    }
}

impl<T, L: RawRwLock, R: Recorder> RwLock<T, L, R> {
    /// Replaces the lock's recorder, re-typing the lock: every subsequent
    /// passage (leased or handle, blocking or try) reports to `recorder`.
    ///
    /// Builder-style, because the recorder is a *type* parameter — that is
    /// what lets the disabled hooks const-fold to nothing instead of
    /// costing a runtime branch.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::RwLock;
    /// use rmr_obs::{Event, StatsRecorder};
    /// use std::sync::Arc;
    ///
    /// let rec = Arc::new(StatsRecorder::new(4));
    /// let lock = RwLock::starvation_free(0u32, 4).with_recorder(Arc::clone(&rec));
    /// *lock.write() += 1;
    /// assert_eq!(rec.counter(Event::WriteAcquire), 1);
    /// assert_eq!(rec.counter(Event::WriteRelease), 1);
    /// ```
    pub fn with_recorder<R2: Recorder>(self, recorder: R2) -> RwLock<T, L, R2> {
        RwLock { raw: self.raw, registry: self.registry, recorder, data: self.data }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized, L: RawRwLock, R: Recorder> RwLock<T, L, R> {
    /// Registers the calling context as a participating process with a
    /// pinned pid.
    ///
    /// The handle owns a [`Pid`] until dropped. Registration is not on the
    /// lock fast path; keep the handle around rather than re-registering
    /// per operation. Prefer the plain [`RwLock::read`] / [`RwLock::write`]
    /// (which lease a pid per thread) unless you need explicit pid control
    /// or `Result`-based capacity handling.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] if `capacity` pids are live.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::RwLock;
    ///
    /// let lock = RwLock::writer_priority(vec![1u8], 2);
    /// let mut handle = lock.register()?;
    /// handle.write().push(2);
    /// assert_eq!(*handle.read(), vec![1, 2]);
    /// # Ok::<(), rmr_core::RegistryFull>(())
    /// ```
    pub fn register(&self) -> Result<LockHandle<'_, T, L, R>, RegistryFull> {
        let pid = self.registry.allocate()?;
        Ok(LockHandle { lock: self, pid })
    }

    /// Acquires the lock for reading with this thread's leased pid,
    /// blocking (spinning) until granted.
    ///
    /// The first acquisition on a thread leases a pid from the registry;
    /// the lease is cached and returned when the thread exits. Nested
    /// acquisitions on the same thread (a second guard while one is open)
    /// lease an extra pid for the inner guard, so nesting never violates
    /// the raw locks' "one attempt at a time per pid" contract.
    ///
    /// # Deadlock
    ///
    /// Nesting carries `std::sync::RwLock`'s deadlock semantics,
    /// policy-sharpened: a nested *read* deadlocks if a writer is already
    /// waiting — under the starvation-free policy (FIFO doorway) and
    /// especially the writer-priority policy (WP1 makes the waiting writer
    /// overtake the inner reader, which in turn can never drain while the
    /// outer guard is held), so a reentrant read on a writer-priority lock
    /// self-deadlocks whenever a reload is pending. Only the
    /// reader-priority policy is immune (RP1 lets the inner reader
    /// overtake the waiting writer). "Waiting" is not only a blocked
    /// thread: since the doorway redesign, a parked `write().await`
    /// future on the same raw lock holds a tokened queue position
    /// ([`RawParkedWaiters`](crate::raw::RawParkedWaiters), `QUEUED`
    /// doorways) that closes the reader admission path exactly like a
    /// blocked writer — a nested read can therefore deadlock against a
    /// suspended *future*, though dropping that future revokes its
    /// position and unwedges the reader. A nested *write* while holding
    /// any guard on the same thread always deadlocks. Avoid holding a
    /// guard across calls that may re-acquire — or, for read-mostly data
    /// where reentrant reads are structural, use `rmr-swap`'s `Snapshot`,
    /// whose wait-free `load` never blocks and is safely reentrant.
    ///
    /// # Panics
    ///
    /// Panics if the registry is exhausted (more concurrent threads than
    /// the lock's capacity). Use [`RwLock::register`] or
    /// [`RwLock::try_read`] for non-panicking capacity handling.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::RwLock;
    ///
    /// let lock = RwLock::starvation_free(String::from("hi"), 2);
    /// assert_eq!(lock.read().len(), 2);
    /// ```
    pub fn read(&self) -> ReadGuard<'_, T, L, R> {
        let (pid, source) = self.lease().unwrap_or_else(|e| panic!("{}", lease_panic(e)));
        let token = self.locked_read(pid);
        self.read_guard(pid, source, token)
    }

    /// Runs `f` with shared access (convenience over [`RwLock::read`]).
    pub fn read_with<U>(&self, f: impl FnOnce(&T) -> U) -> U {
        f(&self.read())
    }

    /// Mutable access without locking — safe because `&mut self` proves
    /// exclusive ownership.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// The underlying raw lock.
    pub fn raw(&self) -> &L {
        &self.raw
    }

    /// The lock's recorder (the default is the inert [`NoopRecorder`]).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Number of threads that may participate simultaneously.
    pub fn max_processes(&self) -> usize {
        self.registry.capacity()
    }

    /// Number of pids currently leased or registered (approximate under
    /// concurrency). Checker entry point: after every participating thread
    /// has exited, this must be zero — thread-local leases are reclaimed
    /// at thread exit — which the real-code checker (`rmr-check`) and the
    /// registry tests assert.
    pub fn registered(&self) -> usize {
        self.registry.allocated()
    }

    /// Leases a pid for the calling thread — see [`lease_pid`].
    fn lease(&self) -> Result<(Pid, PidSource), RegistryFull> {
        lease_pid(&self.registry)
    }

    /// Returns a pid obtained from [`RwLock::lease`] without a guard having
    /// consumed it (the raw try-acquire failed).
    fn unlease(&self, pid: Pid, source: PidSource) {
        release_pid(&self.registry, pid, source);
    }

    /// The blocking read acquisition, with the observability hooks; shared
    /// by the leased ([`RwLock::read`]) and pinned ([`LockHandle::read`])
    /// paths. With the default [`NoopRecorder`] the `R::ENABLED` branch
    /// const-folds to the bare `read_lock` call.
    fn locked_read(&self, pid: Pid) -> L::ReadToken {
        if R::ENABLED {
            let s = acquire_begin(&self.recorder);
            let token = self.raw.read_lock(pid);
            acquire_end(&self.recorder, pid.index(), false, s);
            token
        } else {
            self.raw.read_lock(pid)
        }
    }

    /// The blocking write acquisition, with the observability hooks —
    /// see [`RwLock::locked_read`].
    fn locked_write(&self, pid: Pid) -> L::WriteToken {
        if R::ENABLED {
            let s = acquire_begin(&self.recorder);
            let token = self.raw.write_lock(pid);
            acquire_end(&self.recorder, pid.index(), true, s);
            token
        } else {
            self.raw.write_lock(pid)
        }
    }

    pub(crate) fn read_guard(
        &self,
        pid: Pid,
        source: PidSource,
        token: L::ReadToken,
    ) -> ReadGuard<'_, T, L, R> {
        ReadGuard { lock: self, pid, source, token: Some(token), _not_send: PhantomData }
    }

    pub(crate) fn write_guard(
        &self,
        pid: Pid,
        source: PidSource,
        token: L::WriteToken,
    ) -> WriteGuard<'_, T, L, R> {
        WriteGuard { lock: self, pid, source, token: Some(token), _not_send: PhantomData }
    }
}

impl<T: ?Sized, L: RawMultiWriter, R: Recorder> RwLock<T, L, R> {
    /// Acquires the lock for writing with this thread's leased pid,
    /// blocking (spinning) until granted. See [`RwLock::read`] for the
    /// leasing rules.
    ///
    /// Only available where the raw lock is a [`RawMultiWriter`]: handing
    /// out `&mut T` from arbitrary threads relies on writer-writer
    /// exclusion, which the single-writer algorithms (Figures 1–2) do not
    /// provide — use their [`SwmrWriter`](crate::swmr_rwlock::SwmrWriter)
    /// endpoint instead.
    ///
    /// # Deadlock
    ///
    /// A nested `write` while this thread holds *any* guard on the same
    /// lock always deadlocks, under every policy: the writer's entry waits
    /// for the critical section to drain, and the outer guard never will.
    /// The same holds against parked asynchronous state: blocking here
    /// while a `write().await` future on the same raw lock sits suspended
    /// with its doorway token
    /// ([`RawParkedWaiters`](crate::raw::RawParkedWaiters)) deadlocks if
    /// nothing ever polls or drops that future — the token is a real
    /// queue position, not a lazy retry, and only its revocation
    /// (dropping the future) or its grant clears it. See [`RwLock::read`]
    /// for the full nesting matrix.
    ///
    /// # Panics
    ///
    /// Panics if the registry is exhausted.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::RwLock;
    ///
    /// let lock = RwLock::reader_priority(0u32, 2);
    /// *lock.write() += 5;
    /// assert_eq!(*lock.read(), 5);
    /// ```
    pub fn write(&self) -> WriteGuard<'_, T, L, R> {
        let (pid, source) = self.lease().unwrap_or_else(|e| panic!("{}", lease_panic(e)));
        let token = self.locked_write(pid);
        self.write_guard(pid, source, token)
    }

    /// Runs `f` with exclusive access (convenience over [`RwLock::write`]).
    pub fn write_with<U>(&self, f: impl FnOnce(&mut T) -> U) -> U {
        f(&mut self.write())
    }
}

fn lease_panic(e: RegistryFull) -> String {
    format!(
        "cannot lease a pid: {e}; raise the lock's capacity, or use register()/try_read()/\
         try_write() to handle exhaustion without panicking"
    )
}

impl<T: ?Sized, L: RawTryReadLock, R: Recorder> RwLock<T, L, R> {
    /// Attempts to acquire the lock for reading without blocking, with this
    /// thread's leased pid.
    ///
    /// Returns `None` if the raw lock denied the bounded attempt (a writer
    /// holds or is entering the critical section) **or** the pid registry
    /// is exhausted.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::RwLock;
    ///
    /// let lock = RwLock::starvation_free(3u32, 2);
    /// let g = lock.try_read().expect("no writer active");
    /// assert_eq!(*g, 3);
    /// ```
    #[must_use = "a silently dropped guard releases the lock at once; check the Option"]
    pub fn try_read(&self) -> Option<ReadGuard<'_, T, L, R>> {
        let (pid, source) = self.lease().ok()?;
        let token = self.raw.try_read_lock(pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryReadOk } else { Event::TryReadFail };
            self.recorder.count(pid.index(), ev);
        }
        match token {
            Some(token) => Some(self.read_guard(pid, source, token)),
            None => {
                self.unlease(pid, source);
                None
            }
        }
    }
}

impl<T: ?Sized, L: RawTryRwLock + RawMultiWriter, R: Recorder> RwLock<T, L, R> {
    /// Attempts to acquire the lock for writing without blocking, with this
    /// thread's leased pid.
    ///
    /// Returns `None` if the raw lock denied the bounded attempt or the pid
    /// registry is exhausted. Only available where the raw lock implements
    /// [`RawTryRwLock`] — the paper's core locks do not (their writer
    /// doorway cannot be revoked), the baselines do.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_baselines::StdRwLock;
    /// use rmr_core::RwLock;
    ///
    /// let lock = RwLock::with_raw(0u32, StdRwLock::new(2));
    /// *lock.try_write().expect("uncontended") += 1;
    /// assert_eq!(*lock.read(), 1);
    /// ```
    #[must_use = "a silently dropped guard releases the lock at once; check the Option"]
    pub fn try_write(&self) -> Option<WriteGuard<'_, T, L, R>> {
        let (pid, source) = self.lease().ok()?;
        let token = self.raw.try_write_lock(pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryWriteOk } else { Event::TryWriteFail };
            self.recorder.count(pid.index(), ev);
        }
        match token {
            Some(token) => Some(self.write_guard(pid, source, token)),
            None => {
                self.unlease(pid, source);
                None
            }
        }
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock, R: Recorder> fmt::Debug for RwLock<T, L, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately does not read `data` (would need the lock).
        f.debug_struct("RwLock")
            .field("max_processes", &self.max_processes())
            .field("registered", &self.registry.allocated())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// LockHandle — the pinned-pid path
// ---------------------------------------------------------------------

/// A registered participant of an [`RwLock`]; owns a [`Pid`].
///
/// Guard-taking methods borrow the handle mutably: one attempt at a time
/// per process, enforced at compile time.
pub struct LockHandle<'l, T: ?Sized, L: RawRwLock, R: Recorder = NoopRecorder> {
    lock: &'l RwLock<T, L, R>,
    pid: Pid,
}

impl<'l, T: ?Sized, L: RawRwLock, R: Recorder> LockHandle<'l, T, L, R> {
    /// The pid this handle registered.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Acquires the lock for reading.
    pub fn read(&mut self) -> ReadGuard<'_, T, L, R> {
        let token = self.lock.locked_read(self.pid);
        self.lock.read_guard(self.pid, PidSource::Handle, token)
    }

    /// Runs `f` with shared access (convenience over [`Self::read`]).
    pub fn read_with<U>(&mut self, f: impl FnOnce(&T) -> U) -> U {
        f(&self.read())
    }
}

impl<'l, T: ?Sized, L: RawMultiWriter, R: Recorder> LockHandle<'l, T, L, R> {
    /// Acquires the lock for writing.
    ///
    /// Requires [`RawMultiWriter`]: any number of handles may exist, so
    /// `&mut T` safety needs writer-writer exclusion from the raw lock
    /// (the single-writer algorithms go through
    /// [`SwmrWriter`](crate::swmr_rwlock::SwmrWriter) instead).
    pub fn write(&mut self) -> WriteGuard<'_, T, L, R> {
        let token = self.lock.locked_write(self.pid);
        self.lock.write_guard(self.pid, PidSource::Handle, token)
    }

    /// Runs `f` with exclusive access (convenience over [`Self::write`]).
    pub fn write_with<U>(&mut self, f: impl FnOnce(&mut T) -> U) -> U {
        f(&mut self.write())
    }
}

impl<'l, T: ?Sized, L: RawTryReadLock, R: Recorder> LockHandle<'l, T, L, R> {
    /// Attempts to acquire the lock for reading without blocking.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_core::RwLock;
    ///
    /// let lock = RwLock::starvation_free(1u8, 2);
    /// let mut h = lock.register()?;
    /// assert_eq!(*h.try_read().expect("no writer"), 1);
    /// # Ok::<(), rmr_core::RegistryFull>(())
    /// ```
    #[must_use = "a silently dropped guard releases the lock at once; check the Option"]
    pub fn try_read(&mut self) -> Option<ReadGuard<'_, T, L, R>> {
        let token = self.lock.raw.try_read_lock(self.pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryReadOk } else { Event::TryReadFail };
            self.lock.recorder.count(self.pid.index(), ev);
        }
        Some(self.lock.read_guard(self.pid, PidSource::Handle, token?))
    }
}

impl<'l, T: ?Sized, L: RawTryRwLock + RawMultiWriter, R: Recorder> LockHandle<'l, T, L, R> {
    /// Attempts to acquire the lock for writing without blocking.
    #[must_use = "a silently dropped guard releases the lock at once; check the Option"]
    pub fn try_write(&mut self) -> Option<WriteGuard<'_, T, L, R>> {
        let token = self.lock.raw.try_write_lock(self.pid);
        if R::ENABLED {
            let ev = if token.is_some() { Event::TryWriteOk } else { Event::TryWriteFail };
            self.lock.recorder.count(self.pid.index(), ev);
        }
        Some(self.lock.write_guard(self.pid, PidSource::Handle, token?))
    }
}

impl<T: ?Sized, L: RawRwLock, R: Recorder> Drop for LockHandle<'_, T, L, R> {
    fn drop(&mut self) {
        self.lock.registry.release(self.pid);
    }
}

impl<T: ?Sized, L: RawRwLock, R: Recorder> fmt::Debug for LockHandle<'_, T, L, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockHandle").field("pid", &self.pid).finish()
    }
}

// ---------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------

/// RAII shared access to the protected value; released on drop
/// (bounded exit: the unlock path performs O(1) steps).
///
/// Not `Send`: the guard's pid belongs to the acquiring thread (leases are
/// thread-cached, and several raw unlock paths — e.g. Figure 2's `Promote`
/// — stamp the pid into shared CAS variables, so unlocking from a thread
/// that may concurrently reuse the pid would break the raw contract).
#[must_use = "dropping the guard immediately releases the read lock"]
pub struct ReadGuard<'l, T: ?Sized, L: RawRwLock, R: Recorder = NoopRecorder> {
    lock: &'l RwLock<T, L, R>,
    pid: Pid,
    source: PidSource,
    token: Option<L::ReadToken>,
    /// Suppresses the auto `Send`/`Sync` impls; `Sync` is re-added below.
    _not_send: PhantomData<*const ()>,
}

// SAFETY: a shared reference to the guard only exposes `&T` (plus pid
// metadata); the token is touched solely through `&mut`/drop.
unsafe impl<T: ?Sized + Sync, L: RawRwLock, R: Recorder> Sync for ReadGuard<'_, T, L, R> {}

impl<T: ?Sized, L: RawRwLock, R: Recorder> Deref for ReadGuard<'_, T, L, R> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the raw lock admits no writer while this read session is
        // open, so shared access is sound.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock, R: Recorder> Drop for ReadGuard<'_, T, L, R> {
    fn drop(&mut self) {
        let token = self.token.take().expect("read token taken twice");
        self.lock.raw.read_unlock(self.pid, token);
        if R::ENABLED {
            self.lock.recorder.count(self.pid.index(), Event::ReadRelease);
        }
        release_pid(&self.lock.registry, self.pid, self.source);
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock, R: Recorder> fmt::Debug for ReadGuard<'_, T, L, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ReadGuard").field(&&**self).finish()
    }
}

/// RAII exclusive access to the protected value; released on drop
/// (bounded exit: the unlock path performs O(1) steps).
///
/// Not `Send` for the same reason as [`ReadGuard`].
#[must_use = "dropping the guard immediately releases the write lock"]
pub struct WriteGuard<'l, T: ?Sized, L: RawRwLock, R: Recorder = NoopRecorder> {
    lock: &'l RwLock<T, L, R>,
    pid: Pid,
    source: PidSource,
    token: Option<L::WriteToken>,
    /// Suppresses the auto `Send`/`Sync` impls; `Sync` is re-added below.
    _not_send: PhantomData<*const ()>,
}

// SAFETY: a shared reference to the guard only exposes `&T`; exclusive
// access to `T` requires `&mut WriteGuard`, which shared references cannot
// produce.
unsafe impl<T: ?Sized + Sync, L: RawRwLock, R: Recorder> Sync for WriteGuard<'_, T, L, R> {}

impl<T: ?Sized, L: RawRwLock, R: Recorder> Deref for WriteGuard<'_, T, L, R> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this write session excludes all other access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock, R: Recorder> DerefMut for WriteGuard<'_, T, L, R> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: this write session excludes all other access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock, R: Recorder> Drop for WriteGuard<'_, T, L, R> {
    fn drop(&mut self) {
        let token = self.token.take().expect("write token taken twice");
        self.lock.raw.write_unlock(self.pid, token);
        if R::ENABLED {
            self.lock.recorder.count(self.pid.index(), Event::WriteRelease);
        }
        release_pid(&self.lock.registry, self.pid, self.source);
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock, R: Recorder> fmt::Debug for WriteGuard<'_, T, L, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("WriteGuard").field(&&**self).finish()
    }
}

// Crate-internal alias so the SWMR front end can build guards around
// pinned pids without duplicating the machinery.
pub(crate) use PidSource as GuardPidSource;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_and_write_guards_deref() {
        let lock = RwLock::starvation_free(vec![1, 2, 3], 2);
        let mut h = lock.register().unwrap();
        assert_eq!(h.read().len(), 3);
        h.write().push(4);
        assert_eq!(*h.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn all_three_policies_construct_and_lock() {
        let sf = RwLock::starvation_free(1u32, 2);
        let rp = RwLock::reader_priority(2u32, 2);
        let wp = RwLock::writer_priority(3u32, 2);
        let mut h = sf.register().unwrap();
        assert_eq!(*h.read(), 1);
        let mut h = rp.register().unwrap();
        assert_eq!(*h.read(), 2);
        let mut h = wp.register().unwrap();
        assert_eq!(*h.read(), 3);
    }

    #[test]
    fn registration_respects_capacity() {
        let lock = RwLock::starvation_free((), 2);
        let a = lock.register().unwrap();
        let b = lock.register().unwrap();
        assert!(lock.register().is_err());
        drop(a);
        let c = lock.register().unwrap();
        drop(b);
        drop(c);
    }

    #[test]
    fn pids_are_released_on_handle_drop() {
        let lock = RwLock::writer_priority(0u8, 1);
        for _ in 0..10 {
            let mut h = lock.register().unwrap();
            *h.write() += 1;
        }
        let mut h = lock.register().unwrap();
        assert_eq!(*h.read(), 10);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut lock = RwLock::reader_priority(String::from("a"), 2);
        lock.get_mut().push('b');
        assert_eq!(lock.into_inner(), "ab");
    }

    #[test]
    fn closure_helpers() {
        let lock = RwLock::starvation_free(10i64, 2);
        let mut h = lock.register().unwrap();
        h.write_with(|v| *v += 5);
        assert_eq!(h.read_with(|v| *v), 15);

        lock.write_with(|v| *v += 1);
        assert_eq!(lock.read_with(|v| *v), 16);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let lock = Arc::new(RwLock::starvation_free(0u64, 8));
        let mut threads = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            threads.push(std::thread::spawn(move || {
                let mut h = lock.register().unwrap();
                for _ in 0..100 {
                    *h.write() += 1;
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let mut h = lock.register().unwrap();
        assert_eq!(*h.read(), 800);
    }

    #[test]
    fn guards_are_debug() {
        let lock = RwLock::starvation_free(7u8, 2);
        let mut h = lock.register().unwrap();
        assert_eq!(format!("{:?}", h.read()), "ReadGuard(7)");
        assert_eq!(format!("{:?}", h.write()), "WriteGuard(7)");
        assert!(format!("{lock:?}").contains("RwLock"));
    }

    // --- thread-local pid leasing ---

    #[test]
    fn leased_reads_and_writes_need_no_registration() {
        let lock = RwLock::starvation_free(0u32, 2);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 1);
        // The lease is cached: repeated ops reuse one pid.
        for _ in 0..100 {
            *lock.write() += 1;
        }
        assert_eq!(*lock.read(), 101);
        assert_eq!(lock.registry.allocated(), 1);
    }

    #[test]
    fn concurrent_leased_increments_are_not_lost() {
        let lock = Arc::new(RwLock::starvation_free(0u64, 8));
        let mut threads = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            threads.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    *lock.write() += 1;
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lock.read(), 800);
    }

    #[test]
    fn thread_exit_returns_leased_pid() {
        let lock = Arc::new(RwLock::starvation_free(0u32, 1));
        for _ in 0..5 {
            let l2 = Arc::clone(&lock);
            std::thread::spawn(move || {
                *l2.write() += 1;
            })
            .join()
            .unwrap();
            // Capacity 1: each iteration only works if the previous
            // thread's lease was reclaimed at exit.
        }
        assert_eq!(lock.registry.allocated(), 0);
        assert_eq!(*lock.read(), 5);
    }

    #[test]
    fn nested_reads_take_a_transient_pid() {
        let lock = RwLock::starvation_free(9u8, 3);
        let outer = lock.read();
        let inner = lock.read(); // second pid, not a contract violation
        assert_eq!(*outer, *inner);
        assert_eq!(lock.registry.allocated(), 2);
        drop(inner);
        assert_eq!(lock.registry.allocated(), 1, "transient pid returned");
        drop(outer);
        assert_eq!(lock.registry.allocated(), 1, "cached lease survives");
    }

    #[test]
    #[should_panic(expected = "cannot lease a pid")]
    fn lease_exhaustion_panics_with_guidance() {
        let lock = RwLock::starvation_free((), 1);
        let _handle = lock.register().unwrap(); // eat the only pid
        let _ = lock.read();
    }

    #[test]
    fn leases_are_per_lock_instance() {
        let a = RwLock::starvation_free(1u8, 2);
        let b = RwLock::starvation_free(2u8, 2);
        let ga = a.read();
        let gb = b.read();
        assert_eq!(*ga, 1);
        assert_eq!(*gb, 2);
        drop((ga, gb));
        assert_eq!(a.registry.allocated(), 1);
        assert_eq!(b.registry.allocated(), 1);
    }

    #[test]
    fn try_read_on_core_lock_succeeds_uncontended() {
        let lock = RwLock::starvation_free(5u64, 2);
        let g = lock.try_read().expect("no writer");
        assert_eq!(*g, 5);
    }

    #[test]
    fn try_read_fails_under_held_write_lock() {
        let lock = Arc::new(RwLock::starvation_free(0u64, 4));
        let l2 = Arc::clone(&lock);
        let w = lock.write();
        // Another thread's bounded read attempt must return None, not spin.
        let denied = std::thread::spawn(move || l2.try_read().is_none()).join().unwrap();
        assert!(denied, "try_read blocked or succeeded under a write lock");
        drop(w);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn leaked_guard_pins_its_pid() {
        // A mem::forget'd guard leaves its raw read session open forever;
        // the thread-exit reclaim must NOT return that pid, or another
        // thread would be issued a pid with an unfinished attempt.
        let lock = Arc::new(RwLock::starvation_free(0u8, 1));
        let l2 = Arc::clone(&lock);
        std::thread::spawn(move || std::mem::forget(l2.read())).join().unwrap();
        assert_eq!(lock.registry.allocated(), 1, "leaked pid must stay reserved");
        assert!(lock.register().is_err());
    }

    #[test]
    fn recorder_observes_typed_passages() {
        use rmr_obs::{Event, Metric, StatsRecorder};
        let rec = Arc::new(StatsRecorder::new(4));
        let lock = RwLock::starvation_free(0u32, 4).with_recorder(Arc::clone(&rec));
        *lock.write() += 1;
        assert_eq!(*lock.read(), 1);
        drop(lock.try_read().expect("no writer active"));
        // Handle path reports through the same hooks.
        let mut h = lock.register().unwrap();
        assert_eq!(*h.read(), 1);
        assert_eq!(rec.counter(Event::WriteAcquire), 1);
        assert_eq!(rec.counter(Event::WriteRelease), 1);
        assert_eq!(rec.counter(Event::ReadAcquire), 2);
        assert_eq!(rec.counter(Event::ReadRelease), 3);
        assert_eq!(rec.counter(Event::TryReadOk), 1);
        assert_eq!(rec.samples(Metric::ReadAcquireNs), 2);
        assert_eq!(rec.samples(Metric::WriteAcquireNs), 1);
    }

    #[test]
    fn guards_are_not_send() {
        // Compile-time property, checked with the ambiguity trick: if the
        // guards ever became `Send`, both blanket impls would apply and
        // these calls would stop compiling.
        trait AmbiguousIfSend<A> {
            fn probe() {}
        }
        struct NotSendProbe;
        impl<T: ?Sized> AmbiguousIfSend<NotSendProbe> for T {}
        struct SendProbe;
        impl<T: ?Sized + Send> AmbiguousIfSend<SendProbe> for T {}
        <ReadGuard<'_, u8, MwmrStarvationFree> as AmbiguousIfSend<_>>::probe();
        <WriteGuard<'_, u8, MwmrStarvationFree> as AmbiguousIfSend<_>>::probe();
    }
}
