//! Typed, RAII-guarded front end over the raw locks.
//!
//! [`RwLock`] owns the protected value and a [`PidRegistry`]; each
//! participating thread calls [`RwLock::register`] once to obtain a
//! [`LockHandle`] (its pid), then takes [`ReadGuard`]s and [`WriteGuard`]s
//! through the handle. Guards borrow the handle mutably, which enforces the
//! paper's "one attempt at a time per process" discipline at compile time.

use crate::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use crate::raw::RawRwLock;
use crate::registry::{Pid, PidRegistry, RegistryFull};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// A reader-writer lock protecting a value of type `T`, generic over the
/// raw lock policy `L`.
///
/// Use the policy-named constructors:
/// [`RwLock::starvation_free`] (Theorem 3), [`RwLock::reader_priority`]
/// (Theorem 4), [`RwLock::writer_priority`] (Theorem 5) — or
/// [`RwLock::with_raw`] for any other [`RawRwLock`] (e.g. the baselines in
/// `rmr-baselines`).
///
/// # Example
///
/// ```
/// use rmr_core::rwlock::RwLock;
/// use std::sync::Arc;
///
/// let lock = Arc::new(RwLock::starvation_free(0u64, 4));
/// let mut handles = Vec::new();
/// for _ in 0..4 {
///     let lock = Arc::clone(&lock);
///     handles.push(std::thread::spawn(move || {
///         let mut h = lock.register().expect("capacity 4, 4 threads");
///         for _ in 0..100 {
///             *h.write() += 1;
///             let _sum = *h.read();
///         }
///     }));
/// }
/// for t in handles {
///     t.join().unwrap();
/// }
/// let mut h = lock.register().unwrap();
/// assert_eq!(*h.read(), 400);
/// ```
pub struct RwLock<T: ?Sized, L> {
    raw: L,
    registry: PidRegistry,
    data: UnsafeCell<T>,
}

// SAFETY: the raw lock guarantees that a `&mut T` (through WriteGuard) never
// coexists with any other access, and `&T` (ReadGuard) only coexists with
// other `&T`. Sending the lock additionally moves the value.
unsafe impl<T: ?Sized + Send, L: RawRwLock> Send for RwLock<T, L> {}
unsafe impl<T: ?Sized + Send + Sync, L: RawRwLock> Sync for RwLock<T, L> {}

/// [`RwLock`] over the no-priority, starvation-free policy (Theorem 3).
pub type StarvationFreeRwLock<T> = RwLock<T, MwmrStarvationFree>;
/// [`RwLock`] over the reader-priority policy (Theorem 4).
pub type ReaderPriorityRwLock<T> = RwLock<T, MwmrReaderPriority>;
/// [`RwLock`] over the writer-priority policy (Theorem 5).
pub type WriterPriorityRwLock<T> = RwLock<T, MwmrWriterPriority>;

impl<T> RwLock<T, MwmrStarvationFree> {
    /// Creates a starvation-free (no-priority) lock for up to
    /// `max_processes` registered threads.
    pub fn starvation_free(value: T, max_processes: usize) -> Self {
        Self::with_raw(value, MwmrStarvationFree::new(max_processes))
    }
}

impl<T> RwLock<T, MwmrReaderPriority> {
    /// Creates a reader-priority lock for up to `max_processes` registered
    /// threads. Writers may starve under continuous read traffic.
    pub fn reader_priority(value: T, max_processes: usize) -> Self {
        Self::with_raw(value, MwmrReaderPriority::new(max_processes))
    }
}

impl<T> RwLock<T, MwmrWriterPriority> {
    /// Creates a writer-priority lock for up to `max_processes` registered
    /// threads. Readers may starve under continuous write traffic.
    pub fn writer_priority(value: T, max_processes: usize) -> Self {
        Self::with_raw(value, MwmrWriterPriority::new(max_processes))
    }
}

impl<T, L: RawRwLock> RwLock<T, L> {
    /// Wraps `value` behind an arbitrary raw lock.
    pub fn with_raw(value: T, raw: L) -> Self {
        let registry = PidRegistry::new(raw.max_processes());
        Self { raw, registry, data: UnsafeCell::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized, L: RawRwLock> RwLock<T, L> {
    /// Registers the calling context as a participating process.
    ///
    /// The handle owns a [`Pid`] until dropped. Registration is not on the
    /// lock fast path; keep the handle around rather than re-registering
    /// per operation.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] if `max_processes` handles are live.
    pub fn register(&self) -> Result<LockHandle<'_, T, L>, RegistryFull> {
        let pid = self.registry.allocate()?;
        Ok(LockHandle { lock: self, pid })
    }

    /// Mutable access without locking — safe because `&mut self` proves
    /// exclusive ownership.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// The underlying raw lock.
    pub fn raw(&self) -> &L {
        &self.raw
    }

    /// Number of threads that may be registered simultaneously.
    pub fn max_processes(&self) -> usize {
        self.raw.max_processes()
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock> fmt::Debug for RwLock<T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately does not read `data` (would need the lock).
        f.debug_struct("RwLock")
            .field("max_processes", &self.max_processes())
            .field("registered", &self.registry.allocated())
            .finish_non_exhaustive()
    }
}

/// A registered participant of an [`RwLock`]; owns a [`Pid`].
///
/// Guard-taking methods borrow the handle mutably: one attempt at a time
/// per process, enforced at compile time.
pub struct LockHandle<'l, T: ?Sized, L: RawRwLock> {
    lock: &'l RwLock<T, L>,
    pid: Pid,
}

impl<'l, T: ?Sized, L: RawRwLock> LockHandle<'l, T, L> {
    /// The pid this handle registered.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Acquires the lock for reading.
    pub fn read(&mut self) -> ReadGuard<'_, 'l, T, L> {
        let token = self.lock.raw.read_lock(self.pid);
        ReadGuard { handle: self, token: Some(token) }
    }

    /// Acquires the lock for writing.
    pub fn write(&mut self) -> WriteGuard<'_, 'l, T, L> {
        let token = self.lock.raw.write_lock(self.pid);
        WriteGuard { handle: self, token: Some(token) }
    }

    /// Runs `f` with shared access (convenience over [`Self::read`]).
    pub fn read_with<R>(&mut self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.read())
    }

    /// Runs `f` with exclusive access (convenience over [`Self::write`]).
    pub fn write_with<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.write())
    }
}

impl<T: ?Sized, L: RawRwLock> Drop for LockHandle<'_, T, L> {
    fn drop(&mut self) {
        self.lock.registry.release(self.pid);
    }
}

impl<T: ?Sized, L: RawRwLock> fmt::Debug for LockHandle<'_, T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockHandle").field("pid", &self.pid).finish()
    }
}

/// RAII shared access to the protected value; released on drop
/// (bounded exit: the unlock path performs O(1) steps).
pub struct ReadGuard<'h, 'l, T: ?Sized, L: RawRwLock> {
    handle: &'h LockHandle<'l, T, L>,
    token: Option<L::ReadToken>,
}

impl<T: ?Sized, L: RawRwLock> Deref for ReadGuard<'_, '_, T, L> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the raw lock admits no writer while this read session is
        // open, so shared access is sound.
        unsafe { &*self.handle.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock> Drop for ReadGuard<'_, '_, T, L> {
    fn drop(&mut self) {
        let token = self.token.take().expect("read token taken twice");
        self.handle.lock.raw.read_unlock(self.handle.pid, token);
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock> fmt::Debug for ReadGuard<'_, '_, T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ReadGuard").field(&&**self).finish()
    }
}

/// RAII exclusive access to the protected value; released on drop
/// (bounded exit: the unlock path performs O(1) steps).
pub struct WriteGuard<'h, 'l, T: ?Sized, L: RawRwLock> {
    handle: &'h LockHandle<'l, T, L>,
    token: Option<L::WriteToken>,
}

impl<T: ?Sized, L: RawRwLock> Deref for WriteGuard<'_, '_, T, L> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this write session excludes all other access.
        unsafe { &*self.handle.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock> DerefMut for WriteGuard<'_, '_, T, L> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: this write session excludes all other access.
        unsafe { &mut *self.handle.lock.data.get() }
    }
}

impl<T: ?Sized, L: RawRwLock> Drop for WriteGuard<'_, '_, T, L> {
    fn drop(&mut self) {
        let token = self.token.take().expect("write token taken twice");
        self.handle.lock.raw.write_unlock(self.handle.pid, token);
    }
}

impl<T: fmt::Debug + ?Sized, L: RawRwLock> fmt::Debug for WriteGuard<'_, '_, T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("WriteGuard").field(&&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_and_write_guards_deref() {
        let lock = RwLock::starvation_free(vec![1, 2, 3], 2);
        let mut h = lock.register().unwrap();
        assert_eq!(h.read().len(), 3);
        h.write().push(4);
        assert_eq!(*h.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn all_three_policies_construct_and_lock() {
        let sf = RwLock::starvation_free(1u32, 2);
        let rp = RwLock::reader_priority(2u32, 2);
        let wp = RwLock::writer_priority(3u32, 2);
        let mut h = sf.register().unwrap();
        assert_eq!(*h.read(), 1);
        let mut h = rp.register().unwrap();
        assert_eq!(*h.read(), 2);
        let mut h = wp.register().unwrap();
        assert_eq!(*h.read(), 3);
    }

    #[test]
    fn registration_respects_capacity() {
        let lock = RwLock::starvation_free((), 2);
        let a = lock.register().unwrap();
        let b = lock.register().unwrap();
        assert!(lock.register().is_err());
        drop(a);
        let c = lock.register().unwrap();
        drop(b);
        drop(c);
    }

    #[test]
    fn pids_are_released_on_handle_drop() {
        let lock = RwLock::writer_priority(0u8, 1);
        for _ in 0..10 {
            let mut h = lock.register().unwrap();
            *h.write() += 1;
        }
        let mut h = lock.register().unwrap();
        assert_eq!(*h.read(), 10);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut lock = RwLock::reader_priority(String::from("a"), 2);
        lock.get_mut().push('b');
        assert_eq!(lock.into_inner(), "ab");
    }

    #[test]
    fn closure_helpers() {
        let lock = RwLock::starvation_free(10i64, 2);
        let mut h = lock.register().unwrap();
        h.write_with(|v| *v += 5);
        assert_eq!(h.read_with(|v| *v), 15);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let lock = Arc::new(RwLock::starvation_free(0u64, 8));
        let mut threads = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            threads.push(std::thread::spawn(move || {
                let mut h = lock.register().unwrap();
                for _ in 0..100 {
                    *h.write() += 1;
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let mut h = lock.register().unwrap();
        assert_eq!(*h.read(), 800);
    }

    #[test]
    fn guards_are_debug() {
        let lock = RwLock::starvation_free(7u8, 2);
        let mut h = lock.register().unwrap();
        assert_eq!(format!("{:?}", h.read()), "ReadGuard(7)");
        assert_eq!(format!("{:?}", h.write()), "WriteGuard(7)");
        assert!(format!("{lock:?}").contains("RwLock"));
    }
}
