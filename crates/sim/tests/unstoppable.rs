//! Scripted scenarios for the *unstoppable* properties (RP2 part 2, WP2)
//! and the appendix's Lemma 15 — the properties whose premises are too
//! history-dependent for the generic random battery, reproduced here as
//! the concrete situations §2.4 of the paper describes.

use rmr_sim::algos::fig1::Fig1;
use rmr_sim::algos::fig2::Fig2;
use rmr_sim::algos::fig4::Fig4;
use rmr_sim::cost::FreeModel;
use rmr_sim::machine::Phase;
use rmr_sim::props::check_waiting_reader_enabled;
use rmr_sim::runner::{enabled_solo, RandomSched, Runner, Scheduler, SubsetSched};
use rmr_sim::{Algorithm, StepEvent};

/// Steps `pid` until it reaches `phase` (panics if it blocks first).
fn step_until_phase<A: Algorithm>(r: &mut Runner<A, FreeModel>, pid: usize, phase: Phase) {
    for _ in 0..1000 {
        if r.algorithm().phase(pid, &r.config().locals[pid]) == phase {
            return;
        }
        let ev = r.step(pid);
        assert_ne!(
            ev,
            StepEvent::Blocked,
            "p{pid} blocked before reaching {phase:?} (at {:?})",
            r.config().locals[pid]
        );
    }
    panic!("p{pid} never reached {phase:?}");
}

/// Steps `pid` until it blocks or reaches `phase`.
fn step_to_wait_or_phase<A: Algorithm>(r: &mut Runner<A, FreeModel>, pid: usize, phase: Phase) {
    for _ in 0..1000 {
        if r.algorithm().phase(pid, &r.config().locals[pid]) == phase {
            return;
        }
        if r.step(pid) == StepEvent::Blocked {
            return;
        }
    }
    panic!("p{pid} neither blocked nor reached {phase:?}");
}

// ---------------------------------------------------------------------
// RP2 part 2 (Fig. 2): no writer in CS/exit + reader outranks all trying
// writers ⇒ reader is enabled.
// ---------------------------------------------------------------------

#[test]
fn rp2_part2_reader_outranking_all_writers_is_enabled() {
    // Scenario: reader 1 completes its doorway while the writer is still in
    // the remainder section; then the writer starts its try section. The
    // reader doorway-precedes the writer (r >rp w), no writer is in CS or
    // exit, so RP2(2) demands the reader be enabled.
    let mut r = Runner::new(Fig2::new(2), FreeModel, 1);
    // The reader must sail straight through to the CS (X ≠ true): it never
    // parks in the waiting room while every writer is at home.
    step_to_wait_or_phase(&mut r, 1, Phase::Cs);
    let ph = r.algorithm().phase(1, &r.config().locals[1]);
    assert_eq!(ph, Phase::Cs, "reader with no writer anywhere must reach the CS");

    // Restart with the writer *trying* while the reader is mid-doorway.
    let mut r = Runner::new(Fig2::new(2), FreeModel, 1);
    r.step(1); // reader line 18: C += 1 — doorway begun before writer's
    step_to_wait_or_phase(&mut r, 0, Phase::WaitingRoom); // writer to line 5
    assert_eq!(r.algorithm().phase(0, &r.config().locals[0]), Phase::WaitingRoom);
    // RP2(2): reader must be enabled (writer is only *waiting*, CS empty).
    assert!(
        enabled_solo(r.algorithm(), r.config(), 1, 64),
        "reader blocked by a merely-waiting writer (RP2(2) violated)"
    );
}

// ---------------------------------------------------------------------
// WP2 (Fig. 1 / Fig. 4): with the CS and exit empty and every active
// reader dominated, the waiting writers cannot be blocked — if exactly
// the doorway-concurrent set S' keeps stepping, one of them enters.
// ---------------------------------------------------------------------

#[test]
fn wp2_fig1_waiting_writer_is_enabled_when_cs_drains() {
    let mut r = Runner::new(Fig1::new(2), FreeModel, 1);
    // Reader 1 takes the CS.
    step_until_phase(&mut r, 1, Phase::Cs);
    // Writer completes its doorway and parks in the waiting room.
    step_to_wait_or_phase(&mut r, 0, Phase::Cs);
    assert_eq!(r.algorithm().phase(0, &r.config().locals[0]), Phase::WaitingRoom);
    assert!(!enabled_solo(r.algorithm(), r.config(), 0, 64), "writer must wait for the reader");
    // Reader leaves (CS and exit drain); any reader still around started
    // after the writer's doorway, so w >wp them all. WP2 ⇒ w enabled.
    step_until_phase(&mut r, 1, Phase::Remainder);
    assert!(
        enabled_solo(r.algorithm(), r.config(), 0, 64),
        "WP2 violated: writer not enabled after CS and exit drained"
    );
}

#[test]
fn wp2_fig4_some_doorway_concurrent_writer_enters_unassisted() {
    // Two writers complete their doorways concurrently (neither doorway-
    // precedes the other), both reach the waiting room with the CS empty
    // and a reader parked behind their doorways. Running ONLY the writers
    // (readers "crashed"), one writer must reach the CS — the paper's
    // formalization of "readers cannot block the writer class".
    let mut r = Runner::new(Fig4::new(2, 1), FreeModel, 1);
    // Interleave the two writers' doorways step by step so they are
    // doorway-concurrent.
    loop {
        let p0 = r.algorithm().phase(0, &r.config().locals[0]);
        let p1 = r.algorithm().phase(1, &r.config().locals[1]);
        let done0 = matches!(p0, Phase::WaitingRoom | Phase::Cs);
        let done1 = matches!(p1, Phase::WaitingRoom | Phase::Cs);
        if done0 && done1 {
            break;
        }
        if !done0 {
            r.step(0);
        }
        if !done1 {
            r.step(1);
        }
    }
    // Reader arrives after both doorways: dominated by both writers.
    r.step(2);

    // Only the writers take steps from here (SubsetSched models the
    // premise "regardless of whether other processes ... have crashed").
    let mut sched = SubsetSched::new(vec![0, 1]);
    let mut entered = false;
    for _ in 0..10_000 {
        let runnable = r.runnable();
        if runnable.is_empty() {
            break;
        }
        let pid = sched.next(&runnable);
        r.step(pid);
        if (0..2).any(|w| r.algorithm().phase(w, &r.config().locals[w]) == Phase::Cs) {
            entered = true;
            break;
        }
    }
    assert!(entered, "WP2 violated: neither doorway-concurrent writer entered unassisted");
    assert!(r.violations().is_empty());
}

// ---------------------------------------------------------------------
// Lemma 15 (Fig. 1): a reader waiting through a write session is enabled
// by the time the first reader enters afterwards.
// ---------------------------------------------------------------------

#[test]
fn lemma15_waiting_reader_enabled_fig1() {
    for seed in 0..25 {
        let mut r = Runner::new(Fig1::new(4), FreeModel, 3);
        r.snapshot_cs_entries(true);
        let mut sched = RandomSched::new(seed);
        r.run(&mut sched, 3_000_000);
        assert!(r.quiescent());
        check_waiting_reader_enabled(r.algorithm(), r.finished_attempts(), r.snapshots(), 64)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

// ---------------------------------------------------------------------
// RP2 part 1 premise includes writers in the EXIT section: a reader must
// be enabled while a reader holds the CS even if a writer is exiting.
// ---------------------------------------------------------------------

#[test]
fn rp2_part1_holds_even_with_writer_in_exit_fig2() {
    let mut r = Runner::new(Fig2::new(2), FreeModel, 1);
    // Writer enters and reaches its exit section (after opening Gate[D]).
    step_until_phase(&mut r, 0, Phase::Cs);
    r.step(0); // leave CS → L7
    r.step(0); // L7: close other gate
    r.step(0); // L8: open Gate[D] — writer now at L9 (still Exit phase)
    assert_eq!(r.algorithm().phase(0, &r.config().locals[0]), Phase::Exit);
    // A reader that parked during the write session must now be enabled.
    step_to_wait_or_phase(&mut r, 1, Phase::Cs);
    let ph = r.algorithm().phase(1, &r.config().locals[1]);
    if ph == Phase::WaitingRoom {
        assert!(
            enabled_solo(r.algorithm(), r.config(), 1, 64),
            "reader not enabled although Gate[D] is open and writer is only exiting"
        );
    } else {
        assert_eq!(ph, Phase::Cs);
    }
}
