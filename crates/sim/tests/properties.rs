//! Randomized property battery: the paper's specification (§2) checked
//! over many seeded schedules of every algorithm.
//!
//! | Property | Checked here on |
//! |---|---|
//! | P2 bounded exit | all five algorithms |
//! | P3 FCFS writers | Fig. 3 (both), Fig. 4 |
//! | P4 FIFE readers | Fig. 1, Fig. 2 (snapshot + solo-probe) |
//! | P5 concurrent entering | Fig. 1, Fig. 2 (writer-free runs) |
//! | P6/P7 liveness (bounded) | all five (fair schedules must quiesce) |
//! | RP1 reader priority | Fig. 2, Fig. 3-RP |
//! | RP2(1) unstoppable readers | Fig. 2 |
//! | WP1 writer priority | Fig. 1, Fig. 4 |
//!
//! Mutual exclusion (P1) is checked online by the runner in every one of
//! these runs; the exhaustive suite in `exhaustive.rs` additionally covers
//! *all* interleavings of small instances.

use rmr_sim::algos::fig1::Fig1;
use rmr_sim::algos::fig2::Fig2;
use rmr_sim::algos::fig3::{Fig3Rp, Fig3Sf};
use rmr_sim::algos::fig4::Fig4;
use rmr_sim::cost::FreeModel;
use rmr_sim::props::{
    check_bounded_exit, check_concurrent_entering, check_fcfs_writers, check_fife_readers,
    check_reader_priority, check_unstoppable_readers, check_writer_priority,
};
use rmr_sim::runner::{RandomSched, Runner, WeightedSched};
use rmr_sim::Algorithm;

const SEEDS: u64 = 25;

fn run_to_quiescence<A: Algorithm>(
    alg: A,
    seed: u64,
    attempts: u32,
    snapshots: bool,
) -> Runner<A, FreeModel> {
    let mut r = Runner::new(alg, FreeModel, attempts);
    r.snapshot_cs_entries(snapshots);
    let mut sched = RandomSched::new(seed);
    r.run(&mut sched, 3_000_000);
    assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
    assert!(r.quiescent(), "seed {seed}: liveness failure (did not quiesce)");
    r
}

// ---------------- P2: bounded exit ----------------

#[test]
fn bounded_exit_all_algorithms() {
    for seed in 0..SEEDS {
        let r = run_to_quiescence(Fig1::new(3), seed, 3, false);
        check_bounded_exit(r.finished_attempts(), 6).unwrap();
        let r = run_to_quiescence(Fig2::new(3), seed, 3, false);
        check_bounded_exit(r.finished_attempts(), 8).unwrap();
        let r = run_to_quiescence(Fig3Sf::new(2, 2), seed, 3, false);
        check_bounded_exit(r.finished_attempts(), 8).unwrap();
        let r = run_to_quiescence(Fig3Rp::new(2, 2), seed, 3, false);
        check_bounded_exit(r.finished_attempts(), 10).unwrap();
        let r = run_to_quiescence(Fig4::new(2, 2), seed, 3, false);
        check_bounded_exit(r.finished_attempts(), 10).unwrap();
    }
}

// ---------------- P3: FCFS among writers ----------------

#[test]
fn fcfs_writers_fig3_both_and_fig4() {
    for seed in 0..SEEDS {
        let r = run_to_quiescence(Fig3Sf::new(3, 2), seed, 3, false);
        check_fcfs_writers(r.finished_attempts())
            .unwrap_or_else(|e| panic!("fig3sf seed {seed}: {e}"));
        let r = run_to_quiescence(Fig3Rp::new(3, 2), seed, 3, false);
        check_fcfs_writers(r.finished_attempts())
            .unwrap_or_else(|e| panic!("fig3rp seed {seed}: {e}"));
        let r = run_to_quiescence(Fig4::new(3, 2), seed, 3, false);
        check_fcfs_writers(r.finished_attempts())
            .unwrap_or_else(|e| panic!("fig4 seed {seed}: {e}"));
    }
}

// ---------------- P4: FIFE among readers ----------------

#[test]
fn fife_readers_fig1_and_fig2() {
    for seed in 0..SEEDS {
        let r = run_to_quiescence(Fig1::new(4), seed, 3, true);
        check_fife_readers(r.algorithm(), r.finished_attempts(), r.snapshots(), 64)
            .unwrap_or_else(|e| panic!("fig1 seed {seed}: {e}"));
        let r = run_to_quiescence(Fig2::new(4), seed, 3, true);
        check_fife_readers(r.algorithm(), r.finished_attempts(), r.snapshots(), 64)
            .unwrap_or_else(|e| panic!("fig2 seed {seed}: {e}"));
    }
}

// ---------------- P5: concurrent entering ----------------

#[test]
fn concurrent_entering_without_writers() {
    for seed in 0..SEEDS {
        let mut r = Runner::new(Fig1::new(4), FreeModel, 4);
        r.set_budget(0, 0); // writer stays home
        let mut sched = RandomSched::new(seed);
        r.run(&mut sched, 1_000_000);
        assert!(r.quiescent());
        check_concurrent_entering(r.finished_attempts(), 8).unwrap();

        let mut r = Runner::new(Fig2::new(4), FreeModel, 4);
        r.set_budget(0, 0);
        let mut sched = RandomSched::new(seed);
        r.run(&mut sched, 1_000_000);
        assert!(r.quiescent());
        check_concurrent_entering(r.finished_attempts(), 6).unwrap();
    }
}

// ---------------- RP1: reader priority ----------------

#[test]
fn reader_priority_fig2_and_fig3rp() {
    for seed in 0..SEEDS {
        let r = run_to_quiescence(Fig2::new(3), seed, 3, false);
        check_reader_priority(r.finished_attempts())
            .unwrap_or_else(|e| panic!("fig2 seed {seed}: {e}"));
        let r = run_to_quiescence(Fig3Rp::new(2, 3), seed, 3, false);
        check_reader_priority(r.finished_attempts())
            .unwrap_or_else(|e| panic!("fig3rp seed {seed}: {e}"));
    }
}

// ---------------- RP2 part 1: unstoppable readers ----------------

#[test]
fn unstoppable_readers_fig2() {
    for seed in 0..SEEDS {
        let r = run_to_quiescence(Fig2::new(4), seed, 3, true);
        check_unstoppable_readers(r.algorithm(), r.snapshots(), 64)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

// ---------------- WP1: writer priority ----------------

#[test]
fn writer_priority_fig1_and_fig4() {
    for seed in 0..SEEDS {
        let r = run_to_quiescence(Fig1::new(3), seed, 3, false);
        check_writer_priority(r.finished_attempts())
            .unwrap_or_else(|e| panic!("fig1 seed {seed}: {e}"));
        let r = run_to_quiescence(Fig4::new(2, 3), seed, 3, false);
        check_writer_priority(r.finished_attempts())
            .unwrap_or_else(|e| panic!("fig4 seed {seed}: {e}"));
    }
}

// ---------------- adversarial schedules ----------------

#[test]
fn reader_storm_does_not_break_safety_or_wp() {
    // Readers step 30× as often as writers; Fig. 4 writers must still be
    // safe and unovertaken per WP1.
    for seed in 0..10 {
        let alg = Fig4::new(2, 4);
        let n = alg.processes();
        let mut weights = vec![1.0; n];
        for w in weights.iter_mut().skip(2) {
            *w = 30.0;
        }
        let mut r = Runner::new(alg, FreeModel, 3);
        let mut sched = WeightedSched::new(seed, weights);
        r.run(&mut sched, 3_000_000);
        assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
        assert!(r.quiescent(), "seed {seed}");
        check_writer_priority(r.finished_attempts()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn writer_storm_does_not_break_safety_or_rp() {
    for seed in 0..10 {
        let alg = Fig3Rp::new(4, 2);
        let n = alg.processes();
        let mut weights = vec![30.0; n];
        for w in weights.iter_mut().skip(4) {
            *w = 1.0;
        }
        let mut r = Runner::new(alg, FreeModel, 3);
        let mut sched = WeightedSched::new(seed, weights);
        r.run(&mut sched, 3_000_000);
        assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
        assert!(r.quiescent(), "seed {seed}");
        check_reader_priority(r.finished_attempts()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

// ---------------- population soak ----------------

#[test]
fn large_population_soak() {
    // Bigger than the exhaustive instances can afford: 4 writers + 12
    // readers on every multi-writer machine, plus 20 readers on the SWMR
    // machines, several seeds each. Safety is checked online at every
    // step; fair runs must quiesce.
    for seed in 0..5 {
        run_to_quiescence(Fig1::new(20), seed, 2, false);
        run_to_quiescence(Fig2::new(20), seed, 2, false);
        run_to_quiescence(Fig3Sf::new(4, 12), seed, 2, false);
        run_to_quiescence(Fig3Rp::new(4, 12), seed, 2, false);
        run_to_quiescence(Fig4::new(4, 12), seed, 2, false);
    }
}
