//! Failure injection: the §3.3/§4.3 "subtle features" really are
//! load-bearing, and our checker really can see them fall.
//!
//! Each test removes one feature the paper argues is necessary and asserts
//! that the exhaustive explorer **finds a mutual-exclusion violation**.
//! This validates the paper's informal arguments and, just as importantly,
//! demonstrates the verification harness has teeth (a checker that passes
//! everything proves nothing).

use rmr_sim::algos::mutants::{Fig1NoExitWait, Fig2Break, Fig2Mutant};
use rmr_sim::explore::explore;

#[test]
fn fig1_without_exit_wait_violates_mutual_exclusion() {
    // §3.3: without lines 9–12 a reader parked between its C[d] decrement
    // and its Permit write can wake a *future* write attempt over a live
    // reader. Needs the writer to run two attempts.
    let alg = Fig1NoExitWait::new(2);
    let report = explore(&alg, &[3, 2, 2], 60_000_000, &[]);
    println!("fig1-no-exit-wait: {report}");
    assert!(
        !report.violations.is_empty(),
        "expected a P1 violation from the §3.3 scenario, explorer saw none ({report})"
    );
    assert!(
        report.violations.iter().any(|v| v.contains("P1 violated")),
        "violations found were not exclusion failures: {:?}",
        report.violations
    );
}

#[test]
fn fig2_without_feature_a_violates_mutual_exclusion() {
    // §4.3 (A): without the reader's pid stamp (lines 20–22), a reader can
    // slip into the CS while a promoter that already observed C = 0
    // completes the writer's promotion.
    let alg = Fig2Mutant::new(2, Fig2Break::NoFeatureA);
    let report = explore(&alg, &[2, 2, 2], 60_000_000, &[]);
    println!("fig2-no-feature-a: {report}");
    assert!(
        report.violations.iter().any(|v| v.contains("P1 violated")),
        "expected a P1 violation from the §4.3(A) scenario: {report} {:?}",
        report.violations
    );
}

#[test]
fn fig2_without_feature_b_violates_mutual_exclusion() {
    // §4.3 (B): if Promote CASes `true` straight over the observed value, a
    // stale promoter whose observation was recycled (ABA on X) wakes the
    // writer over live readers. Needs several attempts for the ABA.
    let alg = Fig2Mutant::new(2, Fig2Break::NoFeatureB);
    let report = explore(&alg, &[3, 3, 3], 80_000_000, &[]);
    println!("fig2-no-feature-b: {report}");
    assert!(
        report.violations.iter().any(|v| v.contains("P1 violated")),
        "expected a P1 violation from the §4.3(B) scenario: {report} {:?}",
        report.violations
    );
}
