//! Exhaustive (bounded) model checking of the paper's algorithms.
//!
//! Every test explores the FULL interleaving space of a small instance —
//! every reachable configuration is checked for mutual exclusion (P1),
//! deadlock freedom, and the Appendix A / Figure 5 proof invariants.
//! These runs are the strongest evidence of transcription fidelity: each
//! of the misreadings discussed in DESIGN.md §6 fails one of these within
//! seconds.

use rmr_sim::algos::fig1::Fig1;
use rmr_sim::algos::fig2::Fig2;
use rmr_sim::algos::fig3::{Fig3Rp, Fig3Sf};
use rmr_sim::algos::fig4::Fig4;
use rmr_sim::explore::{explore, StateCheck};
use rmr_sim::invariants::{fig1_invariants, fig2_invariants, fig3sf_invariants, fig4_invariants};

const CAP: usize = 30_000_000;

#[test]
fn fig1_one_writer_two_readers_two_attempts() {
    let alg = Fig1::new(2);
    let checks: [StateCheck<'_, Fig1>; 1] = [&fig1_invariants];
    let report = explore(&alg, &[2, 2, 2], CAP, &checks);
    println!("fig1 2r×2a: {report}");
    assert!(
        report.clean(),
        "{report}\nviolations: {:#?}\ndeadlocks: {:#?}",
        report.violations,
        report.deadlocks
    );
}

#[test]
fn fig1_three_readers_one_attempt() {
    let alg = Fig1::new(3);
    let checks: [StateCheck<'_, Fig1>; 1] = [&fig1_invariants];
    let report = explore(&alg, &[2, 1, 1, 1], CAP, &checks);
    println!("fig1 3r×1a: {report}");
    assert!(report.clean(), "{report}\n{:#?}\n{:#?}", report.violations, report.deadlocks);
}

#[test]
fn fig2_one_writer_two_readers_two_attempts() {
    let alg = Fig2::new(2);
    let checks: [StateCheck<'_, Fig2>; 1] = [&fig2_invariants];
    let report = explore(&alg, &[2, 2, 2], CAP, &checks);
    println!("fig2 2r×2a: {report}");
    assert!(report.clean(), "{report}\n{:#?}\n{:#?}", report.violations, report.deadlocks);
}

#[test]
fn fig2_three_readers_one_attempt() {
    let alg = Fig2::new(3);
    let checks: [StateCheck<'_, Fig2>; 1] = [&fig2_invariants];
    let report = explore(&alg, &[2, 1, 1, 1], CAP, &checks);
    println!("fig2 3r×1a: {report}");
    assert!(report.clean(), "{report}\n{:#?}\n{:#?}", report.violations, report.deadlocks);
}

#[test]
fn fig3_sf_two_writers_one_reader() {
    let alg = Fig3Sf::new(2, 1);
    let checks: [StateCheck<'_, Fig3Sf>; 1] = [&fig3sf_invariants];
    let report = explore(&alg, &[2, 2, 2], CAP, &checks);
    println!("fig3sf 2w+1r: {report}");
    assert!(report.clean(), "{report}\n{:#?}\n{:#?}", report.violations, report.deadlocks);
}

#[test]
fn fig3_rp_two_writers_one_reader() {
    let alg = Fig3Rp::new(2, 1);
    let report = explore(&alg, &[2, 2, 2], CAP, &[]);
    println!("fig3rp 2w+1r: {report}");
    assert!(report.clean(), "{report}\n{:#?}\n{:#?}", report.violations, report.deadlocks);
}

#[test]
fn fig4_two_writers_one_reader() {
    let alg = Fig4::new(2, 1);
    let checks: [StateCheck<'_, Fig4>; 1] = [&fig4_invariants];
    let report = explore(&alg, &[2, 2, 2], CAP, &checks);
    println!("fig4 2w+1r: {report}");
    assert!(report.clean(), "{report}\n{:#?}\n{:#?}", report.violations, report.deadlocks);
}

#[test]
fn fig4_one_writer_two_readers() {
    let alg = Fig4::new(1, 2);
    let checks: [StateCheck<'_, Fig4>; 1] = [&fig4_invariants];
    let report = explore(&alg, &[2, 2, 2], CAP, &checks);
    println!("fig4 1w+2r: {report}");
    assert!(report.clean(), "{report}\n{:#?}\n{:#?}", report.violations, report.deadlocks);
}
