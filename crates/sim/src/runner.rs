//! Execution harness: drives encoded algorithms under a scheduler, records
//! per-attempt logs (timing, steps, RMRs) and checks mutual exclusion
//! online.

use crate::cost::CostModel;
use crate::machine::{Algorithm, Phase, Role, StepEvent};
use crate::mem::MemAccess;
use crate::rng::SplitMix64;
use std::fmt;

/// A complete interleaving state: shared memory plus every process's local
/// state. Hashable so the explorer can deduplicate.
pub struct Config<A: Algorithm> {
    /// Shared-memory image.
    pub cells: Vec<u64>,
    /// Per-process local state.
    pub locals: Vec<A::Local>,
}

// Manual impls: the derives would wrongly require `A: Clone + Eq + Hash`.
impl<A: Algorithm> Clone for Config<A> {
    fn clone(&self) -> Self {
        Self { cells: self.cells.clone(), locals: self.locals.clone() }
    }
}

impl<A: Algorithm> PartialEq for Config<A> {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells && self.locals == other.locals
    }
}

impl<A: Algorithm> Eq for Config<A> {}

impl<A: Algorithm> std::hash::Hash for Config<A> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.cells.hash(state);
        self.locals.hash(state);
    }
}

impl<A: Algorithm> fmt::Debug for Config<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Config").field("cells", &self.cells).field("locals", &self.locals).finish()
    }
}

impl<A: Algorithm> Config<A> {
    /// The initial configuration of `alg`.
    pub fn initial(alg: &A) -> Self {
        Self {
            cells: alg.layout().build(),
            locals: (0..alg.processes()).map(|p| alg.initial_local(p)).collect(),
        }
    }
}

/// Everything recorded about one attempt (one Try–CS–Exit traversal).
#[derive(Debug, Clone)]
pub struct AttemptLog {
    /// Acting process.
    pub pid: usize,
    /// Reader or writer.
    pub role_writer: bool,
    /// 0-based attempt number of this process.
    pub seq: u32,
    /// Time (global step count) of the first try-section step.
    pub begin: usize,
    /// Time the doorway completed, if it did.
    pub doorway_end: Option<usize>,
    /// Time the process entered the CS, if it did.
    pub cs_enter: Option<usize>,
    /// Time the process began the exit section, if it did.
    pub exit_begin: Option<usize>,
    /// Time the attempt completed (back in the remainder), if it did.
    pub complete: Option<usize>,
    /// Steps spent in the try section (doorway + waiting room).
    pub try_steps: u32,
    /// Steps spent in the exit section.
    pub exit_steps: u32,
    /// RMRs charged over the whole attempt (try + CS + exit).
    pub rmrs: u64,
}

/// Chooses which process steps next.
pub trait Scheduler {
    /// Picks one pid from `runnable` (never empty).
    fn next(&mut self, runnable: &[usize]) -> usize;
}

/// Deterministic round-robin (a fair scheduler for liveness checks).
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl Scheduler for RoundRobin {
    fn next(&mut self, runnable: &[usize]) -> usize {
        let pick = runnable[self.cursor % runnable.len()];
        self.cursor = self.cursor.wrapping_add(1);
        pick
    }
}

/// Seeded uniform-random scheduler (probabilistically fair).
#[derive(Debug)]
pub struct RandomSched {
    rng: SplitMix64,
}

impl RandomSched {
    /// Creates the scheduler from a seed (runs are reproducible).
    pub fn new(seed: u64) -> Self {
        Self { rng: SplitMix64::new(seed) }
    }
}

impl Scheduler for RandomSched {
    fn next(&mut self, runnable: &[usize]) -> usize {
        runnable[self.rng.gen_index(runnable.len())]
    }
}

/// Random scheduler with per-process weights — the adversary used to starve
/// or storm particular roles (e.g. weight readers 50× over the writer).
#[derive(Debug)]
pub struct WeightedSched {
    rng: SplitMix64,
    weights: Vec<f64>,
}

impl WeightedSched {
    /// Creates the scheduler; `weights[pid]` is the relative step rate.
    pub fn new(seed: u64, weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|w| *w >= 0.0));
        Self { rng: SplitMix64::new(seed), weights }
    }
}

impl Scheduler for WeightedSched {
    fn next(&mut self, runnable: &[usize]) -> usize {
        let total: f64 = runnable.iter().map(|&p| self.weights[p].max(1e-9)).sum();
        let mut x = self.rng.gen_f64() * total;
        for &p in runnable {
            x -= self.weights[p].max(1e-9);
            if x <= 0.0 {
                return p;
            }
        }
        *runnable.last().expect("runnable set is never empty")
    }
}

/// Scheduler that only lets an allowed subset of processes run (models
/// "the processes in S keep taking steps while everyone else has crashed",
/// as in the premise of the paper's WP2). Falls back to any runnable
/// process if the subset has nothing to do.
#[derive(Debug)]
pub struct SubsetSched {
    inner: RoundRobin,
    allowed: Vec<usize>,
}

impl SubsetSched {
    /// Creates the scheduler restricted to `allowed` pids.
    pub fn new(allowed: Vec<usize>) -> Self {
        Self { inner: RoundRobin::default(), allowed }
    }
}

impl Scheduler for SubsetSched {
    fn next(&mut self, runnable: &[usize]) -> usize {
        let filtered: Vec<usize> =
            runnable.iter().copied().filter(|p| self.allowed.contains(p)).collect();
        if filtered.is_empty() {
            self.inner.next(runnable)
        } else {
            self.inner.next(&filtered)
        }
    }
}

/// A safety violation detected online.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Global step time.
    pub time: usize,
    /// Description ("two writers in CS", ...).
    pub message: String,
}

/// Drives one algorithm instance and records everything the property
/// checkers need.
pub struct Runner<A: Algorithm, C: CostModel> {
    alg: A,
    cost: C,
    cfg: Config<A>,
    time: usize,
    /// Max attempts per process (`u32::MAX` = unbounded).
    budgets: Vec<u32>,
    completed: Vec<u32>,
    in_flight: Vec<Option<AttemptLog>>,
    finished: Vec<AttemptLog>,
    violations: Vec<Violation>,
    /// Snapshots taken whenever any process enters the CS (for enabledness
    /// probes); disabled by default.
    snapshot_cs_entries: bool,
    snapshots: Vec<(usize, usize, Config<A>)>,
}

impl<A: Algorithm, C: CostModel> Runner<A, C> {
    /// Creates a runner with `attempts` per process.
    pub fn new(alg: A, cost: C, attempts: u32) -> Self {
        let n = alg.processes();
        let cfg = Config::initial(&alg);
        Self {
            alg,
            cost,
            cfg,
            time: 0,
            budgets: vec![attempts; n],
            completed: vec![0; n],
            in_flight: (0..n).map(|_| None).collect(),
            finished: Vec::new(),
            violations: Vec::new(),
            snapshot_cs_entries: false,
            snapshots: Vec::new(),
        }
    }

    /// Overrides the attempt budget of one process.
    pub fn set_budget(&mut self, pid: usize, attempts: u32) {
        self.budgets[pid] = attempts;
    }

    /// Enables configuration snapshots at every CS entry (used by the FIFE
    /// and unstoppable-property probes).
    pub fn snapshot_cs_entries(&mut self, on: bool) {
        self.snapshot_cs_entries = on;
    }

    /// The algorithm under test.
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// Current configuration.
    pub fn config(&self) -> &Config<A> {
        &self.cfg
    }

    /// Global step count so far.
    pub fn time(&self) -> usize {
        self.time
    }

    /// Mutual-exclusion (and other online) violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Completed attempt logs.
    pub fn finished_attempts(&self) -> &[AttemptLog] {
        &self.finished
    }

    /// Attempt logs still in flight (incomplete at the end of the run).
    pub fn inflight_attempts(&self) -> Vec<AttemptLog> {
        self.in_flight.iter().flatten().cloned().collect()
    }

    /// Snapshots `(time, entering_pid, config)` taken at CS entries.
    pub fn snapshots(&self) -> &[(usize, usize, Config<A>)] {
        &self.snapshots
    }

    /// Processes that may still take steps: mid-attempt, or with budget
    /// left to start a new attempt.
    pub fn runnable(&self) -> Vec<usize> {
        (0..self.alg.processes())
            .filter(|&p| {
                let phase = self.alg.phase(p, &self.cfg.locals[p]);
                phase != Phase::Remainder || self.completed[p] < self.budgets[p]
            })
            .collect()
    }

    /// Whether every process has used its budget and returned to the
    /// remainder section.
    pub fn quiescent(&self) -> bool {
        self.runnable().is_empty()
    }

    /// Executes one step of `pid`; returns what happened.
    pub fn step(&mut self, pid: usize) -> StepEvent {
        let before = self.alg.phase(pid, &self.cfg.locals[pid]);
        let mut mem = MemAccess::new(pid, &mut self.cfg.cells, &mut self.cost);
        let event = self.alg.step(pid, &mut self.cfg.locals[pid], &mut mem);
        let rmrs = mem.rmrs();
        let after = self.alg.phase(pid, &self.cfg.locals[pid]);
        self.time += 1;
        self.record(pid, before, after, rmrs);
        self.check_exclusion();
        event
    }

    fn record(&mut self, pid: usize, before: Phase, after: Phase, rmrs: u64) {
        // Attempt bookkeeping driven purely by phase transitions.
        if before == Phase::Remainder && after != Phase::Remainder {
            self.in_flight[pid] = Some(AttemptLog {
                pid,
                role_writer: self.alg.role(pid) == Role::Writer,
                seq: self.completed[pid],
                begin: self.time - 1,
                doorway_end: None,
                cs_enter: None,
                exit_begin: None,
                complete: None,
                try_steps: 0,
                exit_steps: 0,
                rmrs: 0,
            });
        }
        let snapshot = self.snapshot_cs_entries
            && after == Phase::Cs
            && !matches!(before, Phase::Cs)
            && self.in_flight[pid].as_ref().is_some_and(|a| a.cs_enter.is_none());
        if let Some(attempt) = self.in_flight[pid].as_mut() {
            attempt.rmrs += rmrs;
            match before {
                Phase::Doorway | Phase::WaitingRoom => attempt.try_steps += 1,
                Phase::Exit => attempt.exit_steps += 1,
                Phase::Remainder => attempt.try_steps += 1, // the starting step
                Phase::Cs => {}
            }
            if matches!(before, Phase::Doorway | Phase::Remainder)
                && matches!(after, Phase::WaitingRoom | Phase::Cs)
                && attempt.doorway_end.is_none()
            {
                attempt.doorway_end = Some(self.time);
            }
            if after == Phase::Cs && attempt.cs_enter.is_none() {
                attempt.cs_enter = Some(self.time);
            }
            if after == Phase::Exit && attempt.exit_begin.is_none() {
                attempt.exit_begin = Some(self.time);
            }
            if after == Phase::Remainder {
                attempt.complete = Some(self.time);
                let done = self.in_flight[pid].take().expect("attempt in flight");
                self.finished.push(done);
                self.completed[pid] += 1;
            }
        }
        if snapshot {
            self.snapshots.push((self.time, pid, self.cfg.clone()));
        }
    }

    fn check_exclusion(&mut self) {
        let mut writers_in = 0usize;
        let mut readers_in = 0usize;
        for p in 0..self.alg.processes() {
            if self.alg.phase(p, &self.cfg.locals[p]) == Phase::Cs {
                match self.alg.role(p) {
                    Role::Writer => writers_in += 1,
                    Role::Reader => readers_in += 1,
                }
            }
        }
        if writers_in > 1 || (writers_in == 1 && readers_in > 0) {
            self.violations.push(Violation {
                time: self.time,
                message: format!(
                    "mutual exclusion violated: {writers_in} writer(s) and {readers_in} reader(s) in CS"
                ),
            });
        }
    }

    /// Runs under `sched` until quiescent or `max_steps` elapse. Returns
    /// the number of steps taken.
    pub fn run(&mut self, sched: &mut dyn Scheduler, max_steps: usize) -> usize {
        let mut steps = 0;
        while steps < max_steps {
            let runnable = self.runnable();
            if runnable.is_empty() {
                break;
            }
            let pid = sched.next(&runnable);
            self.step(pid);
            steps += 1;
        }
        steps
    }
}

impl<A: Algorithm, C: CostModel> fmt::Debug for Runner<A, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runner")
            .field("alg", &self.alg.name())
            .field("time", &self.time)
            .field("finished", &self.finished.len())
            .field("violations", &self.violations.len())
            .finish()
    }
}

/// Solo-run enabledness probe (the paper's Definition 2, restricted to the
/// run where only `pid` takes steps — a necessary condition for being
/// enabled, and for these algorithms also sufficient, since waiting
/// conditions never become true without other processes acting).
///
/// Returns `true` iff `pid` reaches the CS within `bound` of its own steps
/// from `cfg`.
pub fn enabled_solo<A: Algorithm>(alg: &A, cfg: &Config<A>, pid: usize, bound: u32) -> bool {
    let mut cells = cfg.cells.clone();
    let mut local = cfg.locals[pid].clone();
    let mut cost = crate::cost::FreeModel;
    for _ in 0..bound {
        if alg.phase(pid, &local) == Phase::Cs {
            return true;
        }
        let mut mem = MemAccess::new(pid, &mut cells, &mut cost);
        let event = alg.step(pid, &mut local, &mut mem);
        if event == StepEvent::Blocked {
            // Solo stepping is deterministic: a failed wait now fails forever.
            return false;
        }
    }
    alg.phase(pid, &local) == Phase::Cs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair() {
        let mut rr = RoundRobin::default();
        let picks: Vec<_> = (0..6).map(|_| rr.next(&[0, 1, 2])).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_sched_is_deterministic_per_seed() {
        let a: Vec<_> = {
            let mut s = RandomSched::new(42);
            (0..20).map(|_| s.next(&[0, 1, 2, 3])).collect()
        };
        let b: Vec<_> = {
            let mut s = RandomSched::new(42);
            (0..20).map(|_| s.next(&[0, 1, 2, 3])).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_sched_respects_zero_weightish() {
        let mut s = WeightedSched::new(7, vec![1.0, 1000.0]);
        let picks: Vec<_> = (0..100).map(|_| s.next(&[0, 1])).collect();
        let ones = picks.iter().filter(|&&p| p == 1).count();
        assert!(ones > 90, "heavy weight should dominate, got {ones}");
    }
}
